//! # openmx-repro — facade crate
//!
//! Reproduction of Goglin & Furmento, *Finding a Tradeoff between Host
//! Interrupt Load and MPI Latency over Ethernet* (IEEE Cluster 2009).
//!
//! This crate re-exports the workspace's public API under a single name so
//! examples and downstream users can depend on one crate:
//!
//! * [`sim`] — discrete-event simulation engine,
//! * [`fabric`] — Ethernet wire model (links, switch, disturbance injectors),
//! * [`nic`] — NIC model and the interrupt-coalescing strategies,
//! * [`host`] — host model (cores, sleep states, IRQ routing, cache bounces),
//! * [`core`] — the Open-MX stack (wire protocol, marking, endpoints,
//!   cluster orchestrator, built-in microbenchmark workloads),
//! * [`mpi`] — mini-MPI layer (point-to-point + collectives),
//! * [`nas`] — NAS Parallel Benchmark communication skeletons.
//!
//! See `README.md` for a quickstart and `DESIGN.md` for the experiment map.

#![warn(missing_docs)]

pub use omx_core as core;
pub use omx_fabric as fabric;
pub use omx_host as host;
pub use omx_mpi as mpi;
pub use omx_nas as nas;
pub use omx_nic as nic;
pub use omx_sim as sim;

/// Convenience prelude pulling in the types most programs need.
pub mod prelude {
    pub use omx_core::prelude::*;
    pub use omx_sim::{Time, TimeDelta};
}
