set xlabel 'Interrupt coalescing (microseconds)'
set ylabel 'Messages received / second'
set key bottom right
plot 'fig4.dat' index 0 w lp t 'single core, no sleep', \
'' index 1 w lp t 'single core, sleep possible', \
'' index 2 w lp t 'all cores, sleep possible (default)'
pause -1
