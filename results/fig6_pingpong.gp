set logscale x 2
set xlabel 'Message size (bytes)'
set ylabel 'Normalized Transfer Time'
set key top right
plot for [i=0:38] 'fig6_pingpong.dat' index i w lp t columnheader(1)
pause -1
