//! Packet mis-ordering on a disturbed fabric (Table III's scenario).
//!
//! Moves the latency-sensitive mark of a 32 KiB medium message away from
//! the last fragment (the way the paper emulated mis-ordering) and adds
//! fabric jitter, then compares how the Open-MX and Stream strategies cope:
//! Stream's deferred interrupt re-merges the displaced fragments when the
//! timing allows, recovering part of the penalty.
//!
//! Run with: `cargo run --release --example misordered_fabric`

use openmx_repro::core::marking::MarkingPolicy;
use openmx_repro::core::workloads::transfer::TransferSpec;
use openmx_repro::fabric::DisturbanceConfig;
use openmx_repro::prelude::*;

fn main() {
    println!("32 KiB medium messages (23 fragments) with a displaced mark + fabric jitter\n");
    println!(
        "{:<10} {:>8} {:>15} {:>12}",
        "strategy", "degree", "transfer (us)", "rx irq/msg"
    );

    for (name, strategy) in [
        ("open-mx", CoalescingStrategy::OpenMx { delay_us: 75 }),
        ("stream", CoalescingStrategy::Stream { delay_us: 75 }),
    ] {
        for degree in [0u32, 1, 3] {
            let marking = MarkingPolicy {
                medium_mark_displacement: degree,
                ..MarkingPolicy::all()
            };
            let mut cluster = ClusterBuilder::new()
                .nodes(2)
                .strategy(strategy)
                .marking(marking)
                .disturbance(DisturbanceConfig {
                    jitter_ns: 400,
                    ..DisturbanceConfig::none()
                })
                .build();
            let repeats = 120;
            let report = cluster.run_transfer(TransferSpec {
                msg_len: 32 * 1024,
                repeats,
                gap_ns: 300_000,
            });
            let rx_irqs = cluster.metrics().nodes[1].nic.interrupts.get();
            println!(
                "{:<10} {:>8} {:>15.0} {:>12.2}",
                name,
                degree,
                report.transfer_ns / 1e3,
                rx_irqs as f64 / f64::from(repeats),
            );
        }
    }

    println!(
        "\nPaper (Table III): mis-ordering costs Open-MX ~21 us; Stream recovers \
         part of it (~6 us at degree 1) because the deferred interrupt waits for \
         the trailing fragments when they arrive within the DMA window."
    );
}
