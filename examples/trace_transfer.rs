//! Packet-level timeline of one large-message transfer.
//!
//! Enables event tracing and prints the full lifecycle of a 234 KiB pull
//! transfer (the paper's Table II message) under Open-MX coalescing: the
//! rendezvous, the five pipelined pull requests, 160 reply frames, the
//! marked block-tails raising interrupts, and the notify — exactly the
//! protocol of §III-A.
//!
//! Run with: `cargo run --release --example trace_transfer | head -80`

use openmx_repro::core::system::{Actor, ActorCtx, RecvCompletion};
use openmx_repro::core::wire::EndpointAddr;
use openmx_repro::prelude::*;
use std::any::Any;

struct OneSender;
impl Actor for OneSender {
    fn on_start(&mut self, ctx: &mut ActorCtx) {
        ctx.post_send(EndpointAddr::new(1, 0), 234 * 1024, 1, 1);
    }
    fn as_any(&self) -> &dyn Any {
        self
    }
}

struct OneReceiver;
impl Actor for OneReceiver {
    fn on_start(&mut self, ctx: &mut ActorCtx) {
        ctx.post_recv(1, !0, 1);
    }
    fn on_recv_complete(&mut self, ctx: &mut ActorCtx, c: RecvCompletion) {
        println!(
            "-- receive of {} bytes completed at {} --\n",
            c.len,
            ctx.now()
        );
        ctx.stop();
    }
    fn as_any(&self) -> &dyn Any {
        self
    }
}

fn main() {
    let mut cluster = ClusterBuilder::new()
        .nodes(2)
        .strategy(CoalescingStrategy::OpenMx { delay_us: 75 })
        .build();
    cluster.enable_tracing(4_096);
    cluster.add_actor(0, 0, Box::new(OneSender));
    cluster.add_actor(1, 0, Box::new(OneReceiver));
    cluster.run(Time::from_secs(1));

    let tracer = cluster.tracer().expect("tracing enabled");
    println!("{}", tracer.render());
    println!(
        "{} events; interrupts on both nodes: {}",
        tracer.len(),
        cluster.total_interrupts()
    );
}
