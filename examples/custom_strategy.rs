//! Plugging a custom interrupt-coalescing strategy into the simulated NIC.
//!
//! The paper's firmware hooks are exposed as the [`omx_nic::Coalescer`]
//! trait; anything implementing it can be dropped into a node's NIC. This
//! example builds a "hybrid" strategy the paper hints at in §VI (combining
//! adaptive delays with message-aware marking): marked packets interrupt
//! immediately *and* the fallback timeout adapts to the recent packet rate.
//!
//! Run with: `cargo run --release --example custom_strategy`

use omx_nic::{AdaptiveCoalescing, Coalescer, Decision, PacketMeta};
use omx_sim::Time;
use openmx_repro::prelude::*;

/// §VI's future-work idea: adaptive fallback + Open-MX markers.
struct AdaptiveOpenMx {
    fallback: AdaptiveCoalescing,
}

impl AdaptiveOpenMx {
    fn new() -> Self {
        AdaptiveOpenMx {
            fallback: AdaptiveCoalescing::new(0, 75, 25_000.0, 250_000.0),
        }
    }
}

impl Coalescer for AdaptiveOpenMx {
    fn name(&self) -> &'static str {
        "adaptive+open-mx"
    }

    fn on_packet_arrival(&mut self, now: Time, meta: &PacketMeta) -> Decision {
        self.fallback.on_packet_arrival(now, meta)
    }

    fn on_dma_complete(&mut self, now: Time, marked: bool, pending: usize, ready: u32) -> Decision {
        if marked {
            // The paper's Algorithm 1 branch: marked descriptor → interrupt.
            Decision::RAISE
        } else {
            self.fallback.on_dma_complete(now, marked, pending, ready)
        }
    }

    fn on_timer(&mut self, now: Time) -> Decision {
        self.fallback.on_timer(now)
    }

    fn on_interrupt(&mut self, now: Time) {
        self.fallback.on_interrupt(now);
    }
}

fn main() {
    println!("custom Coalescer demo: adaptive fallback + Open-MX markers (§VI)\n");

    for (name, custom) in [
        ("built-in open-mx", false),
        ("custom adaptive+open-mx", true),
    ] {
        let mut cluster = ClusterBuilder::new()
            .nodes(2)
            .strategy(CoalescingStrategy::OpenMx { delay_us: 75 })
            .build();
        if custom {
            // Swap in the custom firmware on both nodes.
            cluster.set_node_strategy(0, Box::new(AdaptiveOpenMx::new()));
            cluster.set_node_strategy(1, Box::new(AdaptiveOpenMx::new()));
        }
        let report = cluster.run_pingpong(PingPongSpec {
            msg_len: 128,
            iterations: 50,
            warmup: 10,
        });
        println!(
            "{name:<26} 128 B half-RTT {:>6.1} us, {:.2} interrupts/iter",
            report.half_rtt_ns as f64 / 1e3,
            report.interrupts_per_iter,
        );
    }

    println!(
        "\nAny Coalescer implementation can be plugged per node via Cluster::set_node_strategy."
    );
}
