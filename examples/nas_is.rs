//! The paper's headline application result: NAS IS, 16 ranks on 2 nodes.
//!
//! Runs the IS (integer sort) communication skeleton — the most
//! communication-intensive NAS kernel — under all four coalescing
//! strategies and prints execution time and interrupt counts, i.e. one row
//! of Table IV and Table V.
//!
//! Run with: `cargo run --release --example nas_is [B|C]`
//! (class B by default; class C takes a few seconds longer).

use openmx_repro::core::system::ClusterConfig;
use openmx_repro::nas::{run_nas, NasBenchmark, NasClass, NasSpec};
use openmx_repro::prelude::*;

fn main() {
    let class = match std::env::args().nth(1).as_deref() {
        Some("C") | Some("c") => NasClass::C,
        _ => NasClass::B,
    };
    let spec = NasSpec {
        benchmark: NasBenchmark::Is,
        class,
    };
    println!("{} under the four coalescing strategies:\n", spec.name());
    println!(
        "{:<22} {:>10} {:>14} {:>12}",
        "strategy", "time (s)", "interrupts", "vs default"
    );

    let mut default_s = None;
    for (name, strategy) in [
        (
            "timeout-75us (default)",
            CoalescingStrategy::Timeout { delay_us: 75 },
        ),
        ("disabled", CoalescingStrategy::Disabled),
        ("open-mx", CoalescingStrategy::OpenMx { delay_us: 75 }),
        ("stream", CoalescingStrategy::Stream { delay_us: 75 }),
    ] {
        let mut cfg = ClusterConfig::default();
        cfg.nic.strategy = strategy;
        let report = run_nas(spec, cfg).expect("IS is runnable");
        let secs = report.elapsed_ns as f64 / 1e9;
        let base = *default_s.get_or_insert(secs);
        println!(
            "{:<22} {:>10.2} {:>14} {:>+11.1}%",
            name,
            secs,
            report.metrics.total_interrupts(),
            (secs - base) / base * 100.0,
        );
    }

    println!(
        "\nPaper (Table IV/V): disabling coalescing slows is.C by 11.6 % while \
         raising 22x more interrupts; the Open-MX strategy keeps the interrupt \
         count near the default."
    );
}
