//! Quickstart: the headline result of the paper in one screen.
//!
//! Runs a two-node ping-pong at 8 B and 1 MiB under the three coalescing
//! strategies of Figure 6 and prints the latency/throughput tradeoff the
//! Open-MX-aware firmware resolves:
//!
//! * timeout coalescing ruins small-message latency (~10 µs → ~80 µs),
//! * disabling coalescing ruins large-message throughput,
//! * Open-MX coalescing gets both right without manual tuning.
//!
//! Run with: `cargo run --release --example quickstart`

use openmx_repro::prelude::*;

fn main() {
    println!("Open-MX interrupt coalescing quickstart (two 8-core nodes, 10 GbE, MTU 1500)\n");
    let strategies = [
        (
            "timeout-75us (NIC default)",
            CoalescingStrategy::Timeout { delay_us: 75 },
        ),
        ("disabled (rx-usecs 0)", CoalescingStrategy::Disabled),
        (
            "open-mx (paper, Alg. 1)",
            CoalescingStrategy::OpenMx { delay_us: 75 },
        ),
    ];

    println!(
        "{:<28} {:>14} {:>16} {:>12}",
        "strategy", "8 B latency", "1 MiB transfer", "interrupts"
    );
    for (name, strategy) in strategies {
        let small = run_pingpong(strategy, 8);
        let large = run_pingpong(strategy, 1 << 20);
        println!(
            "{:<28} {:>11.1} us {:>13.2} ms {:>12}",
            name,
            small.half_rtt_ns as f64 / 1e3,
            large.half_rtt_ns as f64 / 1e6,
            small.interrupts + large.interrupts,
        );
    }

    println!(
        "\nThe Open-MX strategy matches 'disabled' on latency and 'timeout' on \
         throughput — the paper's tradeoff, resolved by marking latency-sensitive \
         packets in the sender driver."
    );
}

fn run_pingpong(strategy: CoalescingStrategy, msg_len: u32) -> PingPongReport {
    ClusterBuilder::new()
        .nodes(2)
        .strategy(strategy)
        .build()
        .run_pingpong(PingPongSpec {
            msg_len,
            iterations: 50,
            warmup: 10,
        })
}
