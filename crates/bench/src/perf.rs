//! Tracked performance baseline of the simulation substrate.
//!
//! `omx-bench perf` runs the substrate micro-benchmarks (the same workloads
//! as `cargo bench --bench engine`, plus a timer re-arm stress) and writes a
//! machine-readable report to `BENCH_sim.json` in the working directory.
//! Each entry carries the tracked pre-optimisation baseline captured before
//! the indexed-heap/timer-wheel queue landed, so a regression shows up as a
//! `speedup_vs_baseline` below 1.0 without digging through CI logs.
//!
//! `--smoke` runs one warmup and one timed iteration per workload — enough
//! for CI to prove the binary works and to publish a report artifact without
//! burning minutes on statistics.
//!
//! Report schema (`omx-bench-perf/1`):
//!
//! ```json
//! {
//!   "schema": "omx-bench-perf/1",
//!   "mode": "full" | "smoke",
//!   "benches": [
//!     {
//!       "id": "event_queue/push_cancel_pop_10k",
//!       "mean_ns": 410000, "min_ns": 395000, "iters": 20,
//!       "baseline_mean_ns": 1988000,    // null for new benches
//!       "speedup_vs_baseline": 4.85     // baseline_mean / mean; null if no baseline
//!     }
//!   ]
//! }
//! ```

use crate::timing::{measure, BenchStats};
use omx_sim::json::Json;
use omx_sim::{Engine, EventQueue, Model, Scheduler, Time};

/// Mean per-iteration wall time (ns) of each workload on the tracked
/// reference machine, captured with the pre-PR `BinaryHeap` + tombstone-set
/// queue. New workloads without a pre-PR equivalent carry no baseline.
const BASELINE_MEAN_NS: &[(&str, u64)] = &[
    ("event_queue/push_pop_10k_fifo", 1_654_000),
    ("event_queue/push_cancel_pop_10k", 1_988_000),
    ("engine/dispatch_100k_chained_events", 5_816_000),
];

struct Chain {
    remaining: u64,
}

impl Model for Chain {
    type Event = ();
    fn handle(&mut self, _now: Time, _ev: (), sched: &mut Scheduler<()>) {
        if self.remaining > 0 {
            self.remaining -= 1;
            sched.schedule_in(10, ());
        }
    }
}

fn push_pop_10k_fifo() -> EventQueue<u64> {
    let mut q = EventQueue::<u64>::new();
    for i in 0..10_000u64 {
        q.push(Time::from_nanos(i), i);
    }
    while q.pop().is_some() {}
    q
}

fn push_cancel_pop_10k() -> EventQueue<u64> {
    let mut q = EventQueue::<u64>::new();
    let tokens: Vec<_> = (0..10_000u64)
        .map(|i| q.push(Time::from_nanos(i % 512), i))
        .collect();
    for t in tokens.iter().step_by(2) {
        q.cancel(*t);
    }
    while q.pop().is_some() {}
    q
}

/// The NIC coalescing pattern: a short-horizon timer cancelled and re-armed
/// once per delivered packet, behind an earlier backstop event. Every push
/// lands in the timer wheel and every cancel is an O(1) bucket removal.
fn timer_rearm_100k() -> EventQueue<u64> {
    let mut q = EventQueue::<u64>::new();
    q.push(Time::ZERO, 0);
    let mut tok = q.push(Time::from_nanos(60_000), 1);
    for i in 0..100_000u64 {
        q.cancel(tok);
        tok = q.push(Time::from_nanos(60_000 + (i % 1_000)), 1);
    }
    q
}

fn dispatch_100k_chained_events() -> u64 {
    let mut eng = Engine::new(Chain { remaining: 100_000 });
    eng.prime(Time::ZERO, ());
    eng.run(Time::MAX, u64::MAX);
    eng.events_processed()
}

fn entry(id: &str, stats: BenchStats) -> Json {
    let baseline = BASELINE_MEAN_NS
        .iter()
        .find(|(k, _)| *k == id)
        .map(|(_, ns)| *ns);
    Json::obj(vec![
        ("id", Json::Str(id.to_string())),
        ("mean_ns", Json::U64(stats.mean_ns)),
        ("min_ns", Json::U64(stats.min_ns)),
        ("iters", Json::U64(u64::from(stats.iters))),
        ("baseline_mean_ns", baseline.map_or(Json::Null, Json::U64)),
        (
            "speedup_vs_baseline",
            baseline.map_or(Json::Null, |b| {
                Json::F64(b as f64 / stats.mean_ns.max(1) as f64)
            }),
        ),
    ])
}

/// Run the perf suite and return the report. `smoke` = 1 warmup / 1 iter.
pub fn run(smoke: bool) -> Json {
    let (w, n, we, ne) = if smoke { (1, 1, 1, 1) } else { (3, 20, 1, 10) };
    let benches = vec![
        entry(
            "event_queue/push_pop_10k_fifo",
            measure(w, n, push_pop_10k_fifo),
        ),
        entry(
            "event_queue/push_cancel_pop_10k",
            measure(w, n, push_cancel_pop_10k),
        ),
        entry(
            "event_queue/timer_rearm_100k",
            measure(w, n, timer_rearm_100k),
        ),
        entry(
            "engine/dispatch_100k_chained_events",
            measure(we, ne, dispatch_100k_chained_events),
        ),
    ];
    Json::obj(vec![
        ("schema", Json::Str("omx-bench-perf/1".into())),
        (
            "mode",
            Json::Str(if smoke { "smoke" } else { "full" }.into()),
        ),
        ("benches", Json::Arr(benches)),
    ])
}

/// Render `report` to `BENCH_sim.json` in the working directory.
pub fn write_report(report: &Json) -> std::io::Result<()> {
    std::fs::write("BENCH_sim.json", report.render_pretty())
}

/// Print a human-readable summary of a report produced by [`run`].
pub fn print_summary(report: &Json) {
    let Some(benches) = report.get("benches").and_then(|b| b.as_arr()) else {
        return;
    };
    for b in benches {
        let id = b.get("id").and_then(|v| v.as_str()).unwrap_or("?");
        let mean = b.get("mean_ns").and_then(|v| v.as_u64()).unwrap_or(0);
        let min = b.get("min_ns").and_then(|v| v.as_u64()).unwrap_or(0);
        match b.get("speedup_vs_baseline").and_then(|v| v.as_f64()) {
            Some(s) => println!(
                "{id:<40} mean {:>10} ns  min {:>10} ns  {s:.2}x vs baseline",
                mean, min
            ),
            None => println!(
                "{id:<40} mean {:>10} ns  min {:>10} ns  (no baseline)",
                mean, min
            ),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_run_produces_all_benches_and_baselines() {
        let report = run(true);
        assert_eq!(
            report.get("schema").and_then(|s| s.as_str()),
            Some("omx-bench-perf/1")
        );
        let benches = report.get("benches").and_then(|b| b.as_arr()).unwrap();
        assert_eq!(benches.len(), 4);
        let with_baseline = benches
            .iter()
            .filter(|b| b.get("baseline_mean_ns").and_then(|v| v.as_u64()).is_some())
            .count();
        assert_eq!(with_baseline, BASELINE_MEAN_NS.len());
        for b in benches {
            assert!(b.get("mean_ns").and_then(|v| v.as_u64()).unwrap() > 0);
        }
    }
}
