//! Tracked performance baseline of the simulation substrate.
//!
//! `omx-bench perf` runs the substrate micro-benchmarks (the same workloads
//! as `cargo bench --bench engine`, plus a timer re-arm stress), **the
//! `e2e/*` whole-simulation benches** (full clusters driven to completion,
//! reported in frames/sec), **and the `campaign/*` wall-clock benches**
//! (whole quick campaigns on the work-stealing pool, parallel and serial),
//! and writes a machine-readable report to `BENCH_sim.json` in the working
//! directory. Each entry carries a tracked baseline, so a regression shows
//! up as a `speedup_vs_baseline` below 1.0 without digging through CI logs.
//!
//! Baselines come from three sources, in order (after the first full run
//! no entry is ever `null`):
//!
//! 1. the static pre-optimisation anchors pinned in this module,
//! 2. the `baseline_mean_ns` recorded for the same id in the
//!    `BENCH_sim.json` already on disk (baselines persist once captured),
//! 3. for a **full** run of a bench with neither: the run's own mean is
//!    captured as the baseline (smoke means are too noisy to anchor a
//!    gate on, so smoke never self-captures).
//!
//! `campaign/<name>` entries are special: their baseline is the
//! **serial mean measured in the same run** (the matching
//! `campaign/<name>_serial` entry, forced through the `--jobs 1` path), so
//! `speedup_vs_baseline` is the live parallel-over-serial campaign speedup
//! on this machine — near-linear in cores for `faults`/`scale`.
//!
//! `e2e/<name>_par` entries work the same way for the conservative
//! parallel DES core (DESIGN §12): the matching `e2e/<name>_par_serial`
//! entry runs the identical simulation on the serial engine (forced
//! through `with_sim_jobs(1)`), and its same-run mean is the parallel
//! entry's baseline — so `speedup_vs_baseline` is the live
//! single-simulation engine speedup at this run's `--sim-jobs` width, the
//! number the ROADMAP's parallel-DES item tracks. Two shapes are paired:
//! the drained 16-node alltoall (concurrent barrier epochs) and the
//! stop-voted two-node pingpong (the global-stop-vote path, dominated by
//! single-active inline windows). Each parallel entry also contributes a
//! per-segment wall-time breakdown (`engine_segments`: dispatch / merge /
//! barrier / fast-forward, cumulative across the entry's runs) so a
//! speedup shortfall can be attributed to a specific engine phase.
//!
//! `--smoke` runs one warmup and one timed iteration per workload — enough
//! for CI to prove the binary works and to publish a report artifact without
//! burning minutes on statistics. In smoke mode the run doubles as a
//! regression gate: any bench with a recorded baseline whose mean regresses
//! more than 2× past it fails the run (see [`regressions`]), and on a
//! machine with ≥ 4 cores a `campaign/*` parallel speedup below 2× fails it
//! too (see [`speedup_shortfalls`]). `--iters N` overrides every bench's
//! timed iteration count (the gates still apply to the resulting means).
//!
//! Report schema (`omx-bench-perf/4`):
//!
//! ```json
//! {
//!   "schema": "omx-bench-perf/4",
//!   "mode": "full" | "smoke",
//!   "jobs": 4,        // campaign pool width this run (--jobs / OMX_JOBS / cores)
//!   "sim_jobs": 1,    // parallel-engine width this run (--sim-jobs / OMX_SIM_JOBS)
//!   "cores": 4,       // std::thread::available_parallelism
//!   "benches": [
//!     {
//!       "id": "event_queue/push_cancel_pop_10k",
//!       "mean_ns": 410000, "min_ns": 395000, "iters": 20,
//!       "baseline_mean_ns": 1988000,    // null for new benches
//!       "speedup_vs_baseline": 4.85     // baseline_mean / mean; null if no baseline
//!     },
//!     {
//!       "id": "e2e/pingpong_small_50k",
//!       "mean_ns": 1, "min_ns": 1, "iters": 5,
//!       "baseline_mean_ns": 1, "speedup_vs_baseline": 1.0,
//!       "frames": 120000,               // e2e/* only: frames the cluster carried
//!       "frames_per_sec": 1.0e8         // e2e/* only: frames / mean wall time
//!     },
//!     {
//!       "id": "campaign/scale_quick",    // whole scale --quick campaign, pooled
//!       "mean_ns": 600000000, "min_ns": 590000000, "iters": 1,
//!       "baseline_mean_ns": 1800000000,  // = campaign/scale_quick_serial mean, same run
//!       "speedup_vs_baseline": 3.0       // live parallel-vs-serial speedup
//!     }
//!   ],
//!   "engine_segments": [                 // one per e2e/*_par entry
//!     {
//!       "id": "e2e/scale_alltoall_16n_par",
//!       "runs": 6,                       // warmup + timed iterations covered
//!       "dispatch_ns": 40000000,         // worker/inline event dispatch
//!       "merge_ns": 2000000,             // lineage replay + effect apply
//!       "barrier_ns": 3000000,           // epoch barrier waits (coordinator view)
//!       "fast_forward_ns": 500000        // shard reassembly + engine catch-up
//!     }
//!   ]
//! }
//! ```
//!
//! `frames` counts simulated Ethernet frames carried by the fabric in one
//! bench iteration (deterministic — fixed seeds), so `frames_per_sec` is the
//! end-to-end simulator throughput the ROADMAP tracks.
//!
//! The `campaign/*` serial-vs-parallel pairs are additionally summarised
//! into `results/campaign_speedup.json` (see [`write_campaign_comparison`])
//! — the artifact CI uploads so the pool's speedup is tracked per run.

use crate::experiments::{faults, scale};
use crate::timing::{measure, BenchStats};
use omx_core::prelude::*;
use omx_mpi::{MpiWorld, Op, WorldSpec};
use omx_sim::json::Json;
use omx_sim::{pool, Engine, EventQueue, Model, Scheduler, Time};

/// Mean per-iteration wall time (ns) of each workload on the tracked
/// reference machine, captured with the pre-optimisation implementation
/// (`event_queue/*`, `engine/*`: the pre-PR-2 `BinaryHeap` + tombstone-set
/// queue; `e2e/*`: the pre-PR-5 map-based protocol state and `Box<dyn
/// Coalescer>` NIC dispatch). New workloads without a pre-optimisation
/// equivalent carry no baseline. `e2e/scale_alltoall_16n_telemetry` is the
/// exception: its baseline is the cost measured when the telemetry
/// subsystem landed, so the gate catches windowed sampling turning from
/// observation into load.
const BASELINE_MEAN_NS: &[(&str, u64)] = &[
    ("event_queue/push_pop_10k_fifo", 1_654_000),
    ("event_queue/push_cancel_pop_10k", 1_988_000),
    ("engine/dispatch_100k_chained_events", 5_816_000),
    ("e2e/pingpong_small_50k", 884_195_000),
    ("e2e/table1_medium_cell", 10_859_000),
    ("e2e/scale_alltoall_16n", 16_967_000),
    ("e2e/scale_alltoall_16n_telemetry", 10_263_000),
];

struct Chain {
    remaining: u64,
}

impl Model for Chain {
    type Event = ();
    fn handle(&mut self, _now: Time, _ev: (), sched: &mut Scheduler<()>) {
        if self.remaining > 0 {
            self.remaining -= 1;
            sched.schedule_in(10, ());
        }
    }
}

fn push_pop_10k_fifo() -> EventQueue<u64> {
    let mut q = EventQueue::<u64>::new();
    for i in 0..10_000u64 {
        q.push(Time::from_nanos(i), i);
    }
    while q.pop().is_some() {}
    q
}

fn push_cancel_pop_10k() -> EventQueue<u64> {
    let mut q = EventQueue::<u64>::new();
    let tokens: Vec<_> = (0..10_000u64)
        .map(|i| q.push(Time::from_nanos(i % 512), i))
        .collect();
    for t in tokens.iter().step_by(2) {
        q.cancel(*t);
    }
    while q.pop().is_some() {}
    q
}

/// The NIC coalescing pattern: a short-horizon timer cancelled and re-armed
/// once per delivered packet, behind an earlier backstop event. Every push
/// lands in the timer wheel and every cancel is an O(1) bucket removal.
fn timer_rearm_100k() -> EventQueue<u64> {
    let mut q = EventQueue::<u64>::new();
    q.push(Time::ZERO, 0);
    let mut tok = q.push(Time::from_nanos(60_000), 1);
    for i in 0..100_000u64 {
        q.cancel(tok);
        tok = q.push(Time::from_nanos(60_000 + (i % 1_000)), 1);
    }
    q
}

fn dispatch_100k_chained_events() -> u64 {
    let mut eng = Engine::new(Chain { remaining: 100_000 });
    eng.prime(Time::ZERO, ());
    eng.run(Time::MAX, u64::MAX);
    eng.events_processed()
}

/// 50 000 128-byte ping-pongs on a two-node cluster under the paper's
/// open-mx strategy. Every frame takes the small-message eager path, so
/// this is the per-packet protocol + NIC dispatch cost laid bare.
fn e2e_pingpong_small_50k() -> u64 {
    let mut cluster = ClusterBuilder::new()
        .nodes(2)
        .strategy(CoalescingStrategy::OpenMx { delay_us: 75 })
        .build();
    cluster.run_pingpong(PingPongSpec {
        msg_len: 128,
        iterations: 50_000,
        warmup: 0,
    });
    cluster.metrics().frames_carried
}

/// The Table I medium-message cell (32 KiB × 400, window 32, default
/// strategy): fragment reassembly and the retransmit-timer path under a
/// windowed stream.
fn e2e_table1_medium_cell() -> u64 {
    let mut cluster = ClusterBuilder::new()
        .nodes(2)
        .strategy(CoalescingStrategy::Timeout { delay_us: 75 })
        .build();
    cluster.run_stream(StreamSpec {
        msg_len: 32 << 10,
        messages: 400,
        window: 32,
    });
    cluster.metrics().frames_carried
}

/// A 16-node (32-rank) 16 KiB alltoall through the bounded-buffer switch —
/// the scale campaign's heaviest shape: rendezvous pulls, convergent
/// traffic, and the full MPI stack above the protocol layer.
fn e2e_scale_alltoall_16n() -> u64 {
    let mut cfg = ClusterConfig::default();
    cfg.nic.strategy = CoalescingStrategy::Timeout { delay_us: 75 };
    cfg.fabric.switch_buffer_frames = 32;
    cfg.seed = 0xE2E;
    let spec = WorldSpec {
        ranks: 32,
        ranks_per_node: 2,
    };
    let (report, _sanitizer) =
        MpiWorld::new(spec, cfg).run_drained(|_| vec![Op::Alltoall { bytes: 16 << 10 }]);
    report.metrics.frames_carried
}

/// The same 16-node alltoall with windowed telemetry enabled (100 µs
/// windows, the `omx-bench timeline` configuration): pins the sampling
/// tick + snapshot overhead on top of `e2e/scale_alltoall_16n`.
fn e2e_scale_alltoall_16n_telemetry() -> u64 {
    let mut cfg = ClusterConfig::default();
    cfg.nic.strategy = CoalescingStrategy::Timeout { delay_us: 75 };
    cfg.fabric.switch_buffer_frames = 32;
    cfg.seed = 0xE2E;
    let spec = WorldSpec {
        ranks: 32,
        ranks_per_node: 2,
    };
    let mut world = MpiWorld::new(spec, cfg);
    world.enable_telemetry(TelemetryConfig::default());
    let (report, _sanitizer) = world.run_drained(|_| vec![Op::Alltoall { bytes: 16 << 10 }]);
    report.metrics.frames_carried
}

/// `baseline_mean_ns` values recorded in the `BENCH_sim.json` already in
/// the working directory (if any): once a baseline has been captured it
/// persists across regenerations, exactly like the static anchors.
fn prior_baselines() -> Vec<(String, u64)> {
    let Ok(text) = std::fs::read_to_string("BENCH_sim.json") else {
        return Vec::new();
    };
    let Ok(json) = Json::parse(&text) else {
        return Vec::new();
    };
    let Some(benches) = json.get("benches").and_then(|b| b.as_arr()) else {
        return Vec::new();
    };
    benches
        .iter()
        .filter_map(|b| {
            Some((
                b.get("id")?.as_str()?.to_string(),
                b.get("baseline_mean_ns")?.as_u64()?,
            ))
        })
        .collect()
}

/// Resolve the tracked baseline for `id`: static anchor → baseline already
/// recorded on disk → (full runs only) capture this run's own mean. After
/// the first full run every bench therefore has a baseline and
/// `speedup_vs_baseline` is never null — which also puts new benches under
/// the CI regression gate from their second run onward.
fn resolve_baseline(
    id: &str,
    prior: &[(String, u64)],
    full_run: bool,
    mean_ns: u64,
) -> Option<u64> {
    if let Some((_, ns)) = BASELINE_MEAN_NS.iter().find(|(k, _)| *k == id) {
        return Some(*ns);
    }
    if let Some((_, ns)) = prior.iter().find(|(k, _)| k == id) {
        return Some(*ns);
    }
    full_run.then_some(mean_ns)
}

fn entry_with_baseline(
    id: &str,
    stats: BenchStats,
    baseline: Option<u64>,
    frames: Option<u64>,
) -> Json {
    let mut fields = vec![
        ("id", Json::Str(id.to_string())),
        ("mean_ns", Json::U64(stats.mean_ns)),
        ("min_ns", Json::U64(stats.min_ns)),
        ("iters", Json::U64(u64::from(stats.iters))),
        ("baseline_mean_ns", baseline.map_or(Json::Null, Json::U64)),
        (
            "speedup_vs_baseline",
            baseline.map_or(Json::Null, |b| {
                Json::F64(b as f64 / stats.mean_ns.max(1) as f64)
            }),
        ),
    ];
    if let Some(frames) = frames {
        fields.push(("frames", Json::U64(frames)));
        fields.push((
            "frames_per_sec",
            Json::F64(frames as f64 * 1e9 / stats.mean_ns.max(1) as f64),
        ));
    }
    Json::obj(fields)
}

/// One whole `omx-bench scale --quick` campaign (60 cells) on the
/// configured pool — the wall-clock number the parallel executor exists to
/// shrink. The result is dropped; cells assert their own invariants.
fn campaign_scale_quick() -> usize {
    scale::run(true, false).cells.len()
}

/// One whole `omx-bench faults --quick` campaign (65 cells).
fn campaign_faults_quick() -> usize {
    faults::run(true, false).cells.len()
}

/// Run the perf suite and return the report. `smoke` = 1 warmup / 1 iter;
/// `iters_override` replaces every bench's timed iteration count.
pub fn run(smoke: bool, iters_override: Option<u32>) -> Json {
    let full_run = !smoke;
    let prior = prior_baselines();
    let (w, n, we, ne) = if smoke { (1, 1, 1, 1) } else { (3, 20, 1, 10) };
    // Whole-simulation runs are orders of magnitude longer than the
    // microbenches; a handful of iterations already gives stable means.
    let (wf, nf) = if smoke { (1, 1) } else { (1, 5) };
    // Whole campaigns are seconds each; no warmup, few iterations.
    let nc = if smoke { 1 } else { 3 };
    let ov = |n: u32| iters_override.unwrap_or(n);

    // (id, stats, frames) for the single-simulation benches, measured
    // strictly serially — one sim on one thread — so their means stay
    // comparable across `--jobs` settings.
    let mut raw: Vec<(&str, BenchStats, Option<u64>)> = vec![
        (
            "event_queue/push_pop_10k_fifo",
            measure(w, ov(n), push_pop_10k_fifo),
            None,
        ),
        (
            "event_queue/push_cancel_pop_10k",
            measure(w, ov(n), push_cancel_pop_10k),
            None,
        ),
        (
            "event_queue/timer_rearm_100k",
            measure(w, ov(n), timer_rearm_100k),
            None,
        ),
        (
            "engine/dispatch_100k_chained_events",
            measure(we, ov(ne), dispatch_100k_chained_events),
            None,
        ),
    ];
    // The e2e family is pinned to the serial engine (`with_sim_jobs(1)`)
    // so its means stay comparable to the historical baselines across
    // `--sim-jobs` settings too — the parallel engine is measured only by
    // the explicit e2e/*_par pair below.
    let mut e2e = |id: &'static str, f: fn() -> u64| {
        let mut frames = 0;
        let stats = pool::with_sim_jobs(1, || measure(wf, ov(nf), || frames = f()));
        raw.push((id, stats, Some(frames)));
    };
    e2e("e2e/pingpong_small_50k", e2e_pingpong_small_50k);
    e2e("e2e/table1_medium_cell", e2e_table1_medium_cell);
    e2e("e2e/scale_alltoall_16n", e2e_scale_alltoall_16n);
    e2e(
        "e2e/scale_alltoall_16n_telemetry",
        e2e_scale_alltoall_16n_telemetry,
    );
    let mut benches: Vec<Json> = raw
        .into_iter()
        .map(|(id, stats, frames)| {
            let baseline = resolve_baseline(id, &prior, full_run, stats.mean_ns);
            entry_with_baseline(id, stats, baseline, frames)
        })
        .collect();

    // campaign/*: serial first (forced through the `--jobs 1` inline
    // path), then parallel on the configured pool; the serial mean of the
    // same run is the parallel entry's baseline, so speedup_vs_baseline is
    // the live pool speedup on this machine.
    type CampaignFn = fn() -> usize;
    let campaigns: [(&str, CampaignFn); 2] = [
        ("campaign/scale_quick", campaign_scale_quick),
        ("campaign/faults_quick", campaign_faults_quick),
    ];
    // Pinned to the serial engine for the same reason as the e2e family:
    // this pair isolates the *pool* speedup. The thread-local
    // `with_sim_jobs` cannot reach cells dispatched to pool workers, so
    // pin the process-wide knob for the duration and restore it after
    // (the perf run owns the process; nothing else writes it).
    let configured_sim_jobs = pool::configured_sim_jobs();
    pool::set_sim_jobs(1);
    for (id, f) in campaigns {
        let serial_id = format!("{id}_serial");
        let serial = pool::with_jobs(1, || measure(0, ov(nc), f));
        let parallel = measure(0, ov(nc), f);
        let serial_baseline = resolve_baseline(&serial_id, &prior, full_run, serial.mean_ns);
        benches.push(entry_with_baseline(
            &serial_id,
            serial,
            serial_baseline,
            None,
        ));
        benches.push(entry_with_baseline(
            id,
            parallel,
            Some(serial.mean_ns),
            None,
        ));
    }
    pool::set_sim_jobs(configured_sim_jobs);

    // e2e/*_par: two end-to-end cells again, serial engine first (forced
    // through `with_sim_jobs(1)`), then on the conservative parallel DES
    // core at this run's `--sim-jobs` width. The serial mean of the same
    // run is the parallel entry's baseline, so `speedup_vs_baseline` is
    // the live engine speedup on this machine. Both runs produce
    // byte-identical simulation output (asserted in
    // tests/engine_determinism.rs) — only wall time may differ. The
    // alltoall is the drained concurrent-epoch shape; the pingpong is the
    // global-stop-vote shape (a strict dependency chain, so its parallel
    // run is an upper bound on engine overhead, not a speedup candidate).
    // Each parallel run's per-segment engine wall time (cumulative over
    // warmup + timed iterations) lands in the report's `engine_segments`.
    let mut engine_segments: Vec<Json> = Vec::new();
    type E2eFn = fn() -> u64;
    let engine_cells: [(&str, E2eFn); 2] = [
        ("e2e/scale_alltoall_16n", e2e_scale_alltoall_16n),
        ("e2e/pingpong_small_50k", e2e_pingpong_small_50k),
    ];
    for (base, f) in engine_cells {
        let mut frames_serial = 0;
        let serial = pool::with_sim_jobs(1, || measure(wf, ov(nf), || frames_serial = f()));
        let _ = omx_core::take_engine_segments(); // reset before the timed pair half
        let mut frames_par = 0;
        let parallel = measure(wf, ov(nf), || frames_par = f());
        let seg = omx_core::take_engine_segments();
        assert_eq!(
            frames_serial, frames_par,
            "parallel engine diverged from serial for {base}"
        );
        let serial_id = format!("{base}_par_serial");
        let serial_baseline = resolve_baseline(&serial_id, &prior, full_run, serial.mean_ns);
        benches.push(entry_with_baseline(
            &serial_id,
            serial,
            serial_baseline,
            Some(frames_serial),
        ));
        benches.push(entry_with_baseline(
            &format!("{base}_par"),
            parallel,
            Some(serial.mean_ns),
            Some(frames_par),
        ));
        engine_segments.push(Json::obj(vec![
            ("id", Json::Str(format!("{base}_par"))),
            ("runs", Json::U64(u64::from(wf + ov(nf)))),
            ("dispatch_ns", Json::U64(seg.dispatch_ns)),
            ("merge_ns", Json::U64(seg.merge_ns)),
            ("barrier_ns", Json::U64(seg.barrier_ns)),
            ("fast_forward_ns", Json::U64(seg.fast_forward_ns)),
        ]));
    }

    Json::obj(vec![
        ("schema", Json::Str("omx-bench-perf/4".into())),
        (
            "mode",
            Json::Str(if smoke { "smoke" } else { "full" }.into()),
        ),
        ("jobs", Json::U64(pool::effective_jobs() as u64)),
        ("sim_jobs", Json::U64(pool::effective_sim_jobs() as u64)),
        (
            "cores",
            Json::U64(std::thread::available_parallelism().map_or(1, |c| c.get()) as u64),
        ),
        ("benches", Json::Arr(benches)),
        ("engine_segments", Json::Arr(engine_segments)),
    ])
}

/// Benches whose mean regressed more than `factor`× past their recorded
/// baseline, as `(id, mean_ns, baseline_mean_ns)`. The CI smoke step fails
/// the job on a non-empty result with `factor = 2.0` — loose enough for
/// shared-runner noise on one-iteration timings, tight enough to catch an
/// accidental O(n) slip on the hot path.
///
/// `e2e/*_par` entries are excluded: their baseline is the *same-run
/// serial-engine* mean, and on a host too narrow for the epoch engine to
/// win (1–2 cores, where barriers are pure overhead) "slower than serial"
/// is the expected outcome, not a regression — those pairs are judged by
/// [`engine_speedup_shortfalls`], whose vacuity conditions encode exactly
/// when a speedup can be demanded.
pub fn regressions(report: &Json, factor: f64) -> Vec<(String, u64, u64)> {
    let Some(benches) = report.get("benches").and_then(|b| b.as_arr()) else {
        return Vec::new();
    };
    benches
        .iter()
        .filter_map(|b| {
            let id = b.get("id")?.as_str()?;
            if id.ends_with("_par") {
                return None;
            }
            let mean = b.get("mean_ns")?.as_u64()?;
            let baseline = b.get("baseline_mean_ns")?.as_u64()?;
            (mean as f64 > baseline as f64 * factor).then(|| (id.to_string(), mean, baseline))
        })
        .collect()
}

/// The `campaign/*` serial-vs-parallel pairs of a report, as
/// `(id, parallel_mean_ns, serial_mean_ns, speedup)`. The serial mean is
/// the parallel entry's recorded baseline (measured in the same run).
pub fn campaign_speedups(report: &Json) -> Vec<(String, u64, u64, f64)> {
    let Some(benches) = report.get("benches").and_then(|b| b.as_arr()) else {
        return Vec::new();
    };
    benches
        .iter()
        .filter_map(|b| {
            let id = b.get("id")?.as_str()?;
            if !id.starts_with("campaign/") || id.ends_with("_serial") {
                return None;
            }
            let mean = b.get("mean_ns")?.as_u64()?;
            let serial = b.get("baseline_mean_ns")?.as_u64()?;
            Some((
                id.to_string(),
                mean,
                serial,
                serial as f64 / mean.max(1) as f64,
            ))
        })
        .collect()
}

/// Campaign benches whose parallel speedup fell below `min_speedup`, as
/// `(id, speedup)` — the other half of the CI perf gate. Only meaningful
/// when the pool was actually parallel and the machine has cores to spend,
/// so the check is skipped (empty result) when the run's `jobs` was below
/// 2 or the machine has fewer than `min_cores` cores; single-core smoke
/// runs and explicit `--jobs 1` runs pass vacuously.
pub fn speedup_shortfalls(report: &Json, min_speedup: f64, min_cores: u64) -> Vec<(String, f64)> {
    let jobs = report.get("jobs").and_then(|j| j.as_u64()).unwrap_or(1);
    let cores = report.get("cores").and_then(|c| c.as_u64()).unwrap_or(1);
    if jobs < 2 || cores < min_cores {
        return Vec::new();
    }
    campaign_speedups(report)
        .into_iter()
        .filter(|(_, _, _, s)| *s < min_speedup)
        .map(|(id, _, _, s)| (id, s))
        .collect()
}

/// The `e2e/*_par` engine serial-vs-parallel pairs of a report, as
/// `(id, parallel_mean_ns, serial_mean_ns, speedup)`. The serial mean is
/// the parallel entry's recorded baseline (measured in the same run on the
/// serial engine).
pub fn engine_speedups(report: &Json) -> Vec<(String, u64, u64, f64)> {
    let Some(benches) = report.get("benches").and_then(|b| b.as_arr()) else {
        return Vec::new();
    };
    benches
        .iter()
        .filter_map(|b| {
            let id = b.get("id")?.as_str()?;
            if !id.starts_with("e2e/") || !id.ends_with("_par") {
                return None;
            }
            let mean = b.get("mean_ns")?.as_u64()?;
            let serial = b.get("baseline_mean_ns")?.as_u64()?;
            Some((
                id.to_string(),
                mean,
                serial,
                serial as f64 / mean.max(1) as f64,
            ))
        })
        .collect()
}

/// `e2e/*_par` benches whose parallel-engine speedup fell below
/// `min_speedup`, as `(id, speedup)` — the parallel-DES half of the CI
/// perf gate. A conservative epoch engine can only win when it has both
/// workers and cores, so the check is skipped (empty result) when the
/// run's `sim_jobs` was below `min_sim_jobs` or the machine has fewer
/// than `min_cores` cores; default `--sim-jobs 1` runs and small CI
/// runners pass vacuously.
pub fn engine_speedup_shortfalls(
    report: &Json,
    min_speedup: f64,
    min_sim_jobs: u64,
    min_cores: u64,
) -> Vec<(String, f64)> {
    let sim_jobs = report.get("sim_jobs").and_then(|j| j.as_u64()).unwrap_or(1);
    let cores = report.get("cores").and_then(|c| c.as_u64()).unwrap_or(1);
    if sim_jobs < min_sim_jobs || cores < min_cores {
        return Vec::new();
    }
    engine_speedups(report)
        .into_iter()
        .filter(|(id, _, _, _)| !ENGINE_GATE_EXEMPT.contains(&id.as_str()))
        .filter(|(_, _, _, s)| *s < min_speedup)
        .map(|(id, _, _, s)| (id, s))
        .collect()
}

/// `e2e/*_par` entries exempt from the speedup gate: shapes whose event
/// graph is a strict dependency chain, where at any instant exactly one
/// partition has work. The parallel engine runs them almost entirely in
/// single-active inline windows, so "no slower than serial" is the best
/// possible outcome and the pair exists to track engine overhead (via the
/// `engine_segments` breakdown), not to demand a speedup.
const ENGINE_GATE_EXEMPT: &[&str] = &["e2e/pingpong_small_50k_par"];

/// Write the `e2e/*_par` engine parallel-vs-serial comparison to
/// `results/engine_speedup.json` — the artifact CI uploads, and the source
/// of the engine-speedup table in EXPERIMENTS.md. Each entry folds in its
/// per-segment breakdown from the report's `engine_segments` (when
/// present), so the artifact answers both "how fast" and "where the time
/// went" in one file.
pub fn write_engine_comparison(report: &Json) -> std::io::Result<()> {
    let segments = report.get("engine_segments").and_then(|s| s.as_arr());
    let segment_of = |id: &str| {
        segments?
            .iter()
            .find(|s| s.get("id").and_then(|v| v.as_str()) == Some(id))
            .cloned()
    };
    let entries: Vec<Json> = engine_speedups(report)
        .into_iter()
        .map(|(id, mean, serial, speedup)| {
            let mut fields = vec![
                ("id", Json::Str(id.clone())),
                ("parallel_mean_ns", Json::U64(mean)),
                ("serial_mean_ns", Json::U64(serial)),
                ("speedup", Json::F64(speedup)),
            ];
            if let Some(seg) = segment_of(&id) {
                for key in [
                    "runs",
                    "dispatch_ns",
                    "merge_ns",
                    "barrier_ns",
                    "fast_forward_ns",
                ] {
                    if let Some(v) = seg.get(key) {
                        fields.push((key, v.clone()));
                    }
                }
            }
            Json::obj(fields)
        })
        .collect();
    let out = Json::obj(vec![
        ("schema", Json::Str("omx-engine-speedup/2".into())),
        (
            "sim_jobs",
            report.get("sim_jobs").cloned().unwrap_or(Json::U64(1)),
        ),
        (
            "cores",
            report.get("cores").cloned().unwrap_or(Json::U64(1)),
        ),
        ("entries", Json::Arr(entries)),
    ]);
    std::fs::create_dir_all("results")?;
    std::fs::write("results/engine_speedup.json", out.render_pretty())
}

/// Write the `campaign/*` parallel-vs-serial comparison to
/// `results/campaign_speedup.json` — the artifact CI uploads, and the
/// source of the speedup table in EXPERIMENTS.md.
pub fn write_campaign_comparison(report: &Json) -> std::io::Result<()> {
    let entries: Vec<Json> = campaign_speedups(report)
        .into_iter()
        .map(|(id, mean, serial, speedup)| {
            Json::obj(vec![
                ("id", Json::Str(id)),
                ("parallel_mean_ns", Json::U64(mean)),
                ("serial_mean_ns", Json::U64(serial)),
                ("speedup", Json::F64(speedup)),
            ])
        })
        .collect();
    let out = Json::obj(vec![
        ("schema", Json::Str("omx-campaign-speedup/1".into())),
        ("jobs", report.get("jobs").cloned().unwrap_or(Json::U64(1))),
        (
            "cores",
            report.get("cores").cloned().unwrap_or(Json::U64(1)),
        ),
        ("entries", Json::Arr(entries)),
    ]);
    std::fs::create_dir_all("results")?;
    std::fs::write("results/campaign_speedup.json", out.render_pretty())
}

/// Render `report` to `BENCH_sim.json` in the working directory.
pub fn write_report(report: &Json) -> std::io::Result<()> {
    std::fs::write("BENCH_sim.json", report.render_pretty())
}

/// Print a human-readable summary of a report produced by [`run`].
pub fn print_summary(report: &Json) {
    let Some(benches) = report.get("benches").and_then(|b| b.as_arr()) else {
        return;
    };
    for b in benches {
        let id = b.get("id").and_then(|v| v.as_str()).unwrap_or("?");
        let mean = b.get("mean_ns").and_then(|v| v.as_u64()).unwrap_or(0);
        let min = b.get("min_ns").and_then(|v| v.as_u64()).unwrap_or(0);
        match b.get("speedup_vs_baseline").and_then(|v| v.as_f64()) {
            Some(s) => println!(
                "{id:<40} mean {:>10} ns  min {:>10} ns  {s:.2}x vs baseline",
                mean, min
            ),
            None => println!(
                "{id:<40} mean {:>10} ns  min {:>10} ns  (no baseline)",
                mean, min
            ),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_run_produces_all_benches_and_baselines() {
        let report = run(true, None);
        assert_eq!(
            report.get("schema").and_then(|s| s.as_str()),
            Some("omx-bench-perf/4")
        );
        assert!(report.get("jobs").and_then(|j| j.as_u64()).unwrap() >= 1);
        assert!(report.get("sim_jobs").and_then(|j| j.as_u64()).unwrap() >= 1);
        assert!(report.get("cores").and_then(|c| c.as_u64()).unwrap() >= 1);
        let benches = report.get("benches").and_then(|b| b.as_arr()).unwrap();
        assert_eq!(benches.len(), 16);
        for b in benches {
            assert!(b.get("mean_ns").and_then(|v| v.as_u64()).unwrap() > 0);
            let id = b.get("id").and_then(|v| v.as_str()).unwrap();
            if id.starts_with("e2e/") {
                // Deterministic sims carry a nonzero, reproducible frame
                // count; frames_per_sec is derived from it.
                assert!(b.get("frames").and_then(|v| v.as_u64()).unwrap() > 0);
                assert!(b.get("frames_per_sec").and_then(|v| v.as_f64()).unwrap() > 0.0);
            } else {
                assert!(b.get("frames").is_none());
            }
        }
        // Every static anchor resolved, and every campaign parallel entry
        // carries its same-run serial mean as baseline — so the
        // parallel-vs-serial comparison is always present.
        let baseline_of = |id: &str| {
            benches
                .iter()
                .find(|b| b.get("id").and_then(|v| v.as_str()) == Some(id))
                .and_then(|b| b.get("baseline_mean_ns"))
                .and_then(|v| v.as_u64())
        };
        for (id, ns) in BASELINE_MEAN_NS {
            assert_eq!(baseline_of(id), Some(*ns), "static anchor for {id}");
        }
        let speedups = campaign_speedups(&report);
        assert_eq!(speedups.len(), 2);
        for (id, mean, serial, speedup) in &speedups {
            assert!(id.starts_with("campaign/"), "got {id}");
            assert!(*mean > 0 && *serial > 0);
            assert!(*speedup > 0.0);
        }
        // Likewise the parallel-engine entries always carry their same-run
        // serial mean, so the engine comparison is always present — the
        // drained alltoall and the stop-voted pingpong.
        let engines = engine_speedups(&report);
        assert_eq!(engines.len(), 2);
        assert_eq!(engines[0].0, "e2e/scale_alltoall_16n_par");
        assert_eq!(engines[1].0, "e2e/pingpong_small_50k_par");
        for (_, mean, serial, _) in &engines {
            assert!(*mean > 0 && *serial > 0);
        }
        // Each parallel entry contributes a per-segment wall-time
        // breakdown; in this smoke run the engine is parallel only when
        // the ambient --sim-jobs exceeds 1, so just check the shape.
        let segments = report
            .get("engine_segments")
            .and_then(|s| s.as_arr())
            .unwrap();
        assert_eq!(segments.len(), 2);
        for seg in segments {
            assert!(seg
                .get("id")
                .and_then(|v| v.as_str())
                .unwrap()
                .ends_with("_par"));
            assert!(seg.get("runs").and_then(|v| v.as_u64()).unwrap() >= 2);
            for key in ["dispatch_ns", "merge_ns", "barrier_ns", "fast_forward_ns"] {
                assert!(seg.get(key).and_then(|v| v.as_u64()).is_some(), "{key}");
            }
        }
    }

    /// Satellite: baseline resolution never leaves a full-run entry null —
    /// static anchor first, then the baseline recorded on disk, then
    /// self-capture; smoke runs never self-capture.
    #[test]
    fn baseline_resolution_order_and_capture() {
        let prior = vec![("x/prior".to_string(), 500u64)];
        // Static anchor wins even over a prior recording.
        assert_eq!(
            resolve_baseline("event_queue/push_pop_10k_fifo", &prior, false, 1),
            Some(1_654_000)
        );
        // Prior recording wins over self-capture.
        assert_eq!(resolve_baseline("x/prior", &prior, true, 123), Some(500));
        // Full run self-captures a brand-new bench (speedup 1.0, never null)…
        assert_eq!(resolve_baseline("x/new", &prior, true, 123), Some(123));
        // …but a smoke run does not anchor a gate on a 1-iteration mean.
        assert_eq!(resolve_baseline("x/new", &prior, false, 123), None);
    }

    /// The speedup gate trips only on parallel runs on big-enough machines.
    #[test]
    fn speedup_gate_respects_jobs_and_cores() {
        let report = |jobs: u64, cores: u64, mean: u64| {
            Json::obj(vec![
                ("jobs", Json::U64(jobs)),
                ("cores", Json::U64(cores)),
                (
                    "benches",
                    Json::Arr(vec![Json::obj(vec![
                        ("id", Json::Str("campaign/scale_quick".into())),
                        ("mean_ns", Json::U64(mean)),
                        ("baseline_mean_ns", Json::U64(1_000)),
                    ])]),
                ),
            ])
        };
        // 4 cores, parallel, 1.25x speedup < 2x → shortfall.
        let short = speedup_shortfalls(&report(4, 4, 800), 2.0, 4);
        assert_eq!(short.len(), 1);
        assert_eq!(short[0].0, "campaign/scale_quick");
        // Fast enough → clean.
        assert!(speedup_shortfalls(&report(4, 4, 400), 2.0, 4).is_empty());
        // Serial run or small machine → vacuously clean.
        assert!(speedup_shortfalls(&report(1, 4, 800), 2.0, 4).is_empty());
        assert!(speedup_shortfalls(&report(4, 2, 800), 2.0, 4).is_empty());
    }

    /// The engine gate trips only with enough simulation workers AND cores.
    #[test]
    fn engine_speedup_gate_respects_sim_jobs_and_cores() {
        let report = |sim_jobs: u64, cores: u64, mean: u64| {
            Json::obj(vec![
                ("sim_jobs", Json::U64(sim_jobs)),
                ("cores", Json::U64(cores)),
                (
                    "benches",
                    Json::Arr(vec![Json::obj(vec![
                        ("id", Json::Str("e2e/scale_alltoall_16n_par".into())),
                        ("mean_ns", Json::U64(mean)),
                        ("baseline_mean_ns", Json::U64(1_000)),
                    ])]),
                ),
            ])
        };
        // 4 workers on 4 cores, 1.25x < 1.5x → shortfall.
        let short = engine_speedup_shortfalls(&report(4, 4, 800), 1.5, 4, 4);
        assert_eq!(short.len(), 1);
        assert_eq!(short[0].0, "e2e/scale_alltoall_16n_par");
        // Fast enough → clean.
        assert!(engine_speedup_shortfalls(&report(4, 4, 500), 1.5, 4, 4).is_empty());
        // Too few workers or too few cores → vacuously clean.
        assert!(engine_speedup_shortfalls(&report(2, 4, 800), 1.5, 4, 4).is_empty());
        assert!(engine_speedup_shortfalls(&report(4, 1, 800), 1.5, 4, 4).is_empty());
        // The serial-side campaign gate ignores e2e entries entirely.
        assert!(speedup_shortfalls(&report(4, 4, 800), 2.0, 4).is_empty());
        // Dependency-chain shapes are never gated on speedup: their pair
        // tracks engine overhead, not parallel wins.
        let exempt = Json::obj(vec![
            ("sim_jobs", Json::U64(4)),
            ("cores", Json::U64(4)),
            (
                "benches",
                Json::Arr(vec![Json::obj(vec![
                    ("id", Json::Str("e2e/pingpong_small_50k_par".into())),
                    ("mean_ns", Json::U64(800)),
                    ("baseline_mean_ns", Json::U64(1_000)),
                ])]),
            ),
        ]);
        assert!(engine_speedup_shortfalls(&exempt, 1.5, 4, 4).is_empty());
    }

    #[test]
    fn regression_gate_flags_only_means_past_the_factor() {
        let report = Json::obj(vec![(
            "benches",
            Json::Arr(vec![
                // 2× exactly is not a regression; past 2× is.
                Json::obj(vec![
                    ("id", Json::Str("a".into())),
                    ("mean_ns", Json::U64(200)),
                    ("baseline_mean_ns", Json::U64(100)),
                ]),
                Json::obj(vec![
                    ("id", Json::Str("b".into())),
                    ("mean_ns", Json::U64(201)),
                    ("baseline_mean_ns", Json::U64(100)),
                ]),
                // No baseline: never gated.
                Json::obj(vec![
                    ("id", Json::Str("c".into())),
                    ("mean_ns", Json::U64(1_000_000)),
                    ("baseline_mean_ns", Json::Null),
                ]),
                // Engine pair: "slower than same-run serial" is expected on
                // narrow hosts and judged by the engine gate, never here.
                Json::obj(vec![
                    ("id", Json::Str("e2e/scale_alltoall_16n_par".into())),
                    ("mean_ns", Json::U64(1_000)),
                    ("baseline_mean_ns", Json::U64(100)),
                ]),
            ]),
        )]);
        let r = regressions(&report, 2.0);
        assert_eq!(r, vec![("b".to_string(), 201, 100)]);
    }
}
