//! Tracked performance baseline of the simulation substrate.
//!
//! `omx-bench perf` runs the substrate micro-benchmarks (the same workloads
//! as `cargo bench --bench engine`, plus a timer re-arm stress) **and the
//! `e2e/*` whole-simulation benches** (full clusters driven to completion,
//! reported in frames/sec) and writes a machine-readable report to
//! `BENCH_sim.json` in the working directory. Each entry carries the tracked
//! pre-optimisation baseline captured before the corresponding hot-path
//! overhaul landed (the indexed-heap/timer-wheel queue for `event_queue/*`
//! and `engine/*`; the slab-indexed protocol state + enum-dispatch
//! coalescers for `e2e/*`), so a regression shows up as a
//! `speedup_vs_baseline` below 1.0 without digging through CI logs.
//!
//! `--smoke` runs one warmup and one timed iteration per workload — enough
//! for CI to prove the binary works and to publish a report artifact without
//! burning minutes on statistics. In smoke mode the run doubles as a
//! regression gate: any bench with a recorded baseline whose mean regresses
//! more than 2× past it fails the run (see [`regressions`]).
//!
//! Report schema (`omx-bench-perf/1`):
//!
//! ```json
//! {
//!   "schema": "omx-bench-perf/1",
//!   "mode": "full" | "smoke",
//!   "benches": [
//!     {
//!       "id": "event_queue/push_cancel_pop_10k",
//!       "mean_ns": 410000, "min_ns": 395000, "iters": 20,
//!       "baseline_mean_ns": 1988000,    // null for new benches
//!       "speedup_vs_baseline": 4.85     // baseline_mean / mean; null if no baseline
//!     },
//!     {
//!       "id": "e2e/pingpong_small_50k",
//!       "mean_ns": 1, "min_ns": 1, "iters": 5,
//!       "baseline_mean_ns": 1, "speedup_vs_baseline": 1.0,
//!       "frames": 120000,               // e2e/* only: frames the cluster carried
//!       "frames_per_sec": 1.0e8         // e2e/* only: frames / mean wall time
//!     }
//!   ]
//! }
//! ```
//!
//! `frames` counts simulated Ethernet frames carried by the fabric in one
//! bench iteration (deterministic — fixed seeds), so `frames_per_sec` is the
//! end-to-end simulator throughput the ROADMAP tracks.

use crate::timing::{measure, BenchStats};
use omx_core::prelude::*;
use omx_mpi::{MpiWorld, Op, WorldSpec};
use omx_sim::json::Json;
use omx_sim::{Engine, EventQueue, Model, Scheduler, Time};

/// Mean per-iteration wall time (ns) of each workload on the tracked
/// reference machine, captured with the pre-optimisation implementation
/// (`event_queue/*`, `engine/*`: the pre-PR-2 `BinaryHeap` + tombstone-set
/// queue; `e2e/*`: the pre-PR-5 map-based protocol state and `Box<dyn
/// Coalescer>` NIC dispatch). New workloads without a pre-optimisation
/// equivalent carry no baseline. `e2e/scale_alltoall_16n_telemetry` is the
/// exception: its baseline is the cost measured when the telemetry
/// subsystem landed, so the gate catches windowed sampling turning from
/// observation into load.
const BASELINE_MEAN_NS: &[(&str, u64)] = &[
    ("event_queue/push_pop_10k_fifo", 1_654_000),
    ("event_queue/push_cancel_pop_10k", 1_988_000),
    ("engine/dispatch_100k_chained_events", 5_816_000),
    ("e2e/pingpong_small_50k", 884_195_000),
    ("e2e/table1_medium_cell", 10_859_000),
    ("e2e/scale_alltoall_16n", 16_967_000),
    ("e2e/scale_alltoall_16n_telemetry", 10_263_000),
];

struct Chain {
    remaining: u64,
}

impl Model for Chain {
    type Event = ();
    fn handle(&mut self, _now: Time, _ev: (), sched: &mut Scheduler<()>) {
        if self.remaining > 0 {
            self.remaining -= 1;
            sched.schedule_in(10, ());
        }
    }
}

fn push_pop_10k_fifo() -> EventQueue<u64> {
    let mut q = EventQueue::<u64>::new();
    for i in 0..10_000u64 {
        q.push(Time::from_nanos(i), i);
    }
    while q.pop().is_some() {}
    q
}

fn push_cancel_pop_10k() -> EventQueue<u64> {
    let mut q = EventQueue::<u64>::new();
    let tokens: Vec<_> = (0..10_000u64)
        .map(|i| q.push(Time::from_nanos(i % 512), i))
        .collect();
    for t in tokens.iter().step_by(2) {
        q.cancel(*t);
    }
    while q.pop().is_some() {}
    q
}

/// The NIC coalescing pattern: a short-horizon timer cancelled and re-armed
/// once per delivered packet, behind an earlier backstop event. Every push
/// lands in the timer wheel and every cancel is an O(1) bucket removal.
fn timer_rearm_100k() -> EventQueue<u64> {
    let mut q = EventQueue::<u64>::new();
    q.push(Time::ZERO, 0);
    let mut tok = q.push(Time::from_nanos(60_000), 1);
    for i in 0..100_000u64 {
        q.cancel(tok);
        tok = q.push(Time::from_nanos(60_000 + (i % 1_000)), 1);
    }
    q
}

fn dispatch_100k_chained_events() -> u64 {
    let mut eng = Engine::new(Chain { remaining: 100_000 });
    eng.prime(Time::ZERO, ());
    eng.run(Time::MAX, u64::MAX);
    eng.events_processed()
}

/// 50 000 128-byte ping-pongs on a two-node cluster under the paper's
/// open-mx strategy. Every frame takes the small-message eager path, so
/// this is the per-packet protocol + NIC dispatch cost laid bare.
fn e2e_pingpong_small_50k() -> u64 {
    let mut cluster = ClusterBuilder::new()
        .nodes(2)
        .strategy(CoalescingStrategy::OpenMx { delay_us: 75 })
        .build();
    cluster.run_pingpong(PingPongSpec {
        msg_len: 128,
        iterations: 50_000,
        warmup: 0,
    });
    cluster.metrics().frames_carried
}

/// The Table I medium-message cell (32 KiB × 400, window 32, default
/// strategy): fragment reassembly and the retransmit-timer path under a
/// windowed stream.
fn e2e_table1_medium_cell() -> u64 {
    let mut cluster = ClusterBuilder::new()
        .nodes(2)
        .strategy(CoalescingStrategy::Timeout { delay_us: 75 })
        .build();
    cluster.run_stream(StreamSpec {
        msg_len: 32 << 10,
        messages: 400,
        window: 32,
    });
    cluster.metrics().frames_carried
}

/// A 16-node (32-rank) 16 KiB alltoall through the bounded-buffer switch —
/// the scale campaign's heaviest shape: rendezvous pulls, convergent
/// traffic, and the full MPI stack above the protocol layer.
fn e2e_scale_alltoall_16n() -> u64 {
    let mut cfg = ClusterConfig::default();
    cfg.nic.strategy = CoalescingStrategy::Timeout { delay_us: 75 };
    cfg.fabric.switch_buffer_frames = 32;
    cfg.seed = 0xE2E;
    let spec = WorldSpec {
        ranks: 32,
        ranks_per_node: 2,
    };
    let (report, _sanitizer) =
        MpiWorld::new(spec, cfg).run_drained(|_| vec![Op::Alltoall { bytes: 16 << 10 }]);
    report.metrics.frames_carried
}

/// The same 16-node alltoall with windowed telemetry enabled (100 µs
/// windows, the `omx-bench timeline` configuration): pins the sampling
/// tick + snapshot overhead on top of `e2e/scale_alltoall_16n`.
fn e2e_scale_alltoall_16n_telemetry() -> u64 {
    let mut cfg = ClusterConfig::default();
    cfg.nic.strategy = CoalescingStrategy::Timeout { delay_us: 75 };
    cfg.fabric.switch_buffer_frames = 32;
    cfg.seed = 0xE2E;
    let spec = WorldSpec {
        ranks: 32,
        ranks_per_node: 2,
    };
    let mut world = MpiWorld::new(spec, cfg);
    world.enable_telemetry(TelemetryConfig::default());
    let (report, _sanitizer) = world.run_drained(|_| vec![Op::Alltoall { bytes: 16 << 10 }]);
    report.metrics.frames_carried
}

fn entry_with_frames(id: &str, stats: BenchStats, frames: Option<u64>) -> Json {
    let baseline = BASELINE_MEAN_NS
        .iter()
        .find(|(k, _)| *k == id)
        .map(|(_, ns)| *ns);
    let mut fields = vec![
        ("id", Json::Str(id.to_string())),
        ("mean_ns", Json::U64(stats.mean_ns)),
        ("min_ns", Json::U64(stats.min_ns)),
        ("iters", Json::U64(u64::from(stats.iters))),
        ("baseline_mean_ns", baseline.map_or(Json::Null, Json::U64)),
        (
            "speedup_vs_baseline",
            baseline.map_or(Json::Null, |b| {
                Json::F64(b as f64 / stats.mean_ns.max(1) as f64)
            }),
        ),
    ];
    if let Some(frames) = frames {
        fields.push(("frames", Json::U64(frames)));
        fields.push((
            "frames_per_sec",
            Json::F64(frames as f64 * 1e9 / stats.mean_ns.max(1) as f64),
        ));
    }
    Json::obj(fields)
}

fn entry(id: &str, stats: BenchStats) -> Json {
    entry_with_frames(id, stats, None)
}

/// An `e2e/*` entry: `f` runs one whole simulation and returns the frames
/// the fabric carried (deterministic — fixed seeds), reported alongside the
/// wall-time stats as `frames_per_sec`.
fn entry_e2e(id: &str, warmup: u32, iters: u32, f: impl FnMut() -> u64) -> Json {
    let mut f = f;
    let mut frames = 0;
    let stats = measure(warmup, iters, || frames = f());
    entry_with_frames(id, stats, Some(frames))
}

/// Run the perf suite and return the report. `smoke` = 1 warmup / 1 iter.
pub fn run(smoke: bool) -> Json {
    let (w, n, we, ne) = if smoke { (1, 1, 1, 1) } else { (3, 20, 1, 10) };
    // Whole-simulation runs are orders of magnitude longer than the
    // microbenches; a handful of iterations already gives stable means.
    let (wf, nf) = if smoke { (1, 1) } else { (1, 5) };
    let benches = vec![
        entry(
            "event_queue/push_pop_10k_fifo",
            measure(w, n, push_pop_10k_fifo),
        ),
        entry(
            "event_queue/push_cancel_pop_10k",
            measure(w, n, push_cancel_pop_10k),
        ),
        entry(
            "event_queue/timer_rearm_100k",
            measure(w, n, timer_rearm_100k),
        ),
        entry(
            "engine/dispatch_100k_chained_events",
            measure(we, ne, dispatch_100k_chained_events),
        ),
        entry_e2e("e2e/pingpong_small_50k", wf, nf, e2e_pingpong_small_50k),
        entry_e2e("e2e/table1_medium_cell", wf, nf, e2e_table1_medium_cell),
        entry_e2e("e2e/scale_alltoall_16n", wf, nf, e2e_scale_alltoall_16n),
        entry_e2e(
            "e2e/scale_alltoall_16n_telemetry",
            wf,
            nf,
            e2e_scale_alltoall_16n_telemetry,
        ),
    ];
    Json::obj(vec![
        ("schema", Json::Str("omx-bench-perf/1".into())),
        (
            "mode",
            Json::Str(if smoke { "smoke" } else { "full" }.into()),
        ),
        ("benches", Json::Arr(benches)),
    ])
}

/// Benches whose mean regressed more than `factor`× past their recorded
/// baseline, as `(id, mean_ns, baseline_mean_ns)`. The CI smoke step fails
/// the job on a non-empty result with `factor = 2.0` — loose enough for
/// shared-runner noise on one-iteration timings, tight enough to catch an
/// accidental O(n) slip on the hot path.
pub fn regressions(report: &Json, factor: f64) -> Vec<(String, u64, u64)> {
    let Some(benches) = report.get("benches").and_then(|b| b.as_arr()) else {
        return Vec::new();
    };
    benches
        .iter()
        .filter_map(|b| {
            let id = b.get("id")?.as_str()?;
            let mean = b.get("mean_ns")?.as_u64()?;
            let baseline = b.get("baseline_mean_ns")?.as_u64()?;
            (mean as f64 > baseline as f64 * factor).then(|| (id.to_string(), mean, baseline))
        })
        .collect()
}

/// Render `report` to `BENCH_sim.json` in the working directory.
pub fn write_report(report: &Json) -> std::io::Result<()> {
    std::fs::write("BENCH_sim.json", report.render_pretty())
}

/// Print a human-readable summary of a report produced by [`run`].
pub fn print_summary(report: &Json) {
    let Some(benches) = report.get("benches").and_then(|b| b.as_arr()) else {
        return;
    };
    for b in benches {
        let id = b.get("id").and_then(|v| v.as_str()).unwrap_or("?");
        let mean = b.get("mean_ns").and_then(|v| v.as_u64()).unwrap_or(0);
        let min = b.get("min_ns").and_then(|v| v.as_u64()).unwrap_or(0);
        match b.get("speedup_vs_baseline").and_then(|v| v.as_f64()) {
            Some(s) => println!(
                "{id:<40} mean {:>10} ns  min {:>10} ns  {s:.2}x vs baseline",
                mean, min
            ),
            None => println!(
                "{id:<40} mean {:>10} ns  min {:>10} ns  (no baseline)",
                mean, min
            ),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_run_produces_all_benches_and_baselines() {
        let report = run(true);
        assert_eq!(
            report.get("schema").and_then(|s| s.as_str()),
            Some("omx-bench-perf/1")
        );
        let benches = report.get("benches").and_then(|b| b.as_arr()).unwrap();
        assert_eq!(benches.len(), 8);
        let with_baseline = benches
            .iter()
            .filter(|b| b.get("baseline_mean_ns").and_then(|v| v.as_u64()).is_some())
            .count();
        assert_eq!(with_baseline, BASELINE_MEAN_NS.len());
        for b in benches {
            assert!(b.get("mean_ns").and_then(|v| v.as_u64()).unwrap() > 0);
            let id = b.get("id").and_then(|v| v.as_str()).unwrap();
            if id.starts_with("e2e/") {
                // Deterministic sims carry a nonzero, reproducible frame
                // count; frames_per_sec is derived from it.
                assert!(b.get("frames").and_then(|v| v.as_u64()).unwrap() > 0);
                assert!(b.get("frames_per_sec").and_then(|v| v.as_f64()).unwrap() > 0.0);
            } else {
                assert!(b.get("frames").is_none());
            }
        }
    }

    #[test]
    fn regression_gate_flags_only_means_past_the_factor() {
        let report = Json::obj(vec![(
            "benches",
            Json::Arr(vec![
                // 2× exactly is not a regression; past 2× is.
                Json::obj(vec![
                    ("id", Json::Str("a".into())),
                    ("mean_ns", Json::U64(200)),
                    ("baseline_mean_ns", Json::U64(100)),
                ]),
                Json::obj(vec![
                    ("id", Json::Str("b".into())),
                    ("mean_ns", Json::U64(201)),
                    ("baseline_mean_ns", Json::U64(100)),
                ]),
                // No baseline: never gated.
                Json::obj(vec![
                    ("id", Json::Str("c".into())),
                    ("mean_ns", Json::U64(1_000_000)),
                    ("baseline_mean_ns", Json::Null),
                ]),
            ]),
        )]);
        let r = regressions(&report, 2.0);
        assert_eq!(r, vec![("b".to_string(), 201, 100)]);
    }
}
