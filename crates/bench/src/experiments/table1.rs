//! Table I — message rate by size and coalescing strategy.
//!
//! Paper values (msg/s, receiver side):
//!
//! | size   | Default | Disabled | Open-MX | Stream |
//! |--------|---------|----------|---------|--------|
//! | 0 B    | 490k    | 252k     | 423k    | 435k   |
//! | 32 KiB | 14507   | 6476     | 14533   | 14691  |
//! | 1 MiB  | 452     | 334      | 451     | 447    |

use super::{paper_strategies, parallel_map};
use crate::report::Table;
use omx_core::prelude::*;

/// One cell of the table.
#[derive(Debug, Clone)]
pub struct Table1Cell {
    /// Message size in bytes.
    pub msg_len: u32,
    /// Strategy label.
    pub strategy: String,
    /// Receiver-side message rate.
    pub msgs_per_sec: f64,
    /// Receiver interrupts per message.
    pub interrupts_per_msg: f64,
}

/// Full table.
#[derive(Debug, Clone)]
pub struct Table1Result {
    /// All cells.
    pub cells: Vec<Table1Cell>,
}

/// Messages per size class — fewer for big messages to bound run time.
fn messages_for(len: u32) -> u32 {
    match len {
        0..=1024 => 1_500,
        1025..=65_536 => 400,
        _ => 60,
    }
}

/// Run the table.
pub fn run() -> Table1Result {
    let sizes = [0u32, 32 << 10, 1 << 20];
    let mut jobs = Vec::new();
    for &len in &sizes {
        for (label, strategy) in paper_strategies() {
            jobs.push((len, label, strategy));
        }
    }
    let cells = parallel_map(jobs, |(len, label, strategy)| {
        let mut cluster = ClusterBuilder::new().nodes(2).strategy(strategy).build();
        let r = cluster.run_stream(StreamSpec {
            msg_len: len,
            messages: messages_for(len),
            window: 32,
        });
        Table1Cell {
            msg_len: len,
            strategy: label.to_string(),
            msgs_per_sec: r.msgs_per_sec,
            interrupts_per_msg: r.interrupts_per_msg,
        }
    });
    Table1Result { cells }
}

/// Format as a table (strategies as columns, like the paper).
pub fn table(result: &Table1Result) -> Table {
    let mut t = Table::new(vec!["size", "default", "disabled", "open-mx", "stream"]);
    for &len in &[0u32, 32 << 10, 1 << 20] {
        let cell = |strategy: &str| {
            result
                .cells
                .iter()
                .find(|c| c.msg_len == len && c.strategy == strategy)
                .map(|c| format!("{:.0}", c.msgs_per_sec))
                .unwrap_or_default()
        };
        let label = match len {
            0 => "0 B".to_string(),
            l if l >= 1 << 20 => format!("{} MiB", l >> 20),
            l => format!("{} KiB", l >> 10),
        };
        t.row(vec![
            label,
            cell("default"),
            cell("disabled"),
            cell("open-mx"),
            cell("stream"),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rates_follow_paper_ordering() {
        let r = run();
        let rate = |len: u32, strategy: &str| {
            r.cells
                .iter()
                .find(|c| c.msg_len == len && c.strategy == strategy)
                .unwrap()
                .msgs_per_sec
        };
        // 0 B row: disabled roughly halves the default rate (paper: 490k
        // vs 252k).
        assert!(rate(0, "default") > rate(0, "disabled") * 1.6);
        // Stream beats plain Open-MX at 0 B (its design goal).
        assert!(rate(0, "stream") > rate(0, "open-mx") * 1.2);
        // 32 KiB: open-mx and stream track the default closely; disabled lags
        // (the paper's gap is larger — see EXPERIMENTS.md).
        assert!(rate(32 << 10, "open-mx") > rate(32 << 10, "default") * 0.9);
        assert!(rate(32 << 10, "disabled") < rate(32 << 10, "default") * 0.92);
        // 1 MiB: disabled is the slow column.
        assert!(rate(1 << 20, "disabled") < rate(1 << 20, "default") * 0.9);
        assert!(rate(1 << 20, "open-mx") > rate(1 << 20, "default") * 0.85);
    }
}

omx_sim::impl_to_json!(Table1Cell {
    msg_len,
    strategy,
    msgs_per_sec,
    interrupts_per_msg,
});
omx_sim::impl_to_json!(Table1Result { cells });
