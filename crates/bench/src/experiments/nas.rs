//! Tables IV & V — NAS Parallel Benchmarks, 16 ranks on 2 nodes.
//!
//! Table IV: execution times per strategy (paper: disabling coalescing
//! costs up to 11.6 % on is.C; Open-MX coalescing gains 7–8 % on IS).
//! Table V: total interrupt counts for IS (disabled ≈ 22× the default;
//! Open-MX / Stream ≈ +16–21 %).

use super::{paper_strategies, parallel_map};
use crate::report::Table;
use omx_core::system::ClusterConfig;
use omx_nas::{run_nas, NasSpec};

/// One benchmark × strategy measurement.
#[derive(Debug, Clone)]
pub struct NasCell {
    /// Benchmark name (`is.C.16` style).
    pub name: String,
    /// Strategy label.
    pub strategy: String,
    /// Execution time in seconds (`None` = not runnable, like ft.C).
    pub seconds: Option<f64>,
    /// Total interrupts, both nodes.
    pub interrupts: Option<u64>,
    /// CPU time interrupts stole from compute phases, seconds.
    pub stolen_s: Option<f64>,
}

/// Full Tables IV & V dataset.
#[derive(Debug, Clone)]
pub struct NasResult {
    /// All cells.
    pub cells: Vec<NasCell>,
}

/// Run every paper row × strategy. `rows` filters benchmarks by name prefix
/// (empty = all).
pub fn run(filter: &str) -> NasResult {
    let rows: Vec<NasSpec> = omx_nas::workloads::paper_table_rows()
        .into_iter()
        .filter(|spec| filter.is_empty() || spec.name().starts_with(filter))
        .collect();
    let mut jobs = Vec::new();
    for spec in rows {
        for (label, strategy) in paper_strategies() {
            jobs.push((spec, label, strategy));
        }
    }
    let cells = parallel_map(jobs, |(spec, label, strategy)| {
        let mut cfg = ClusterConfig::default();
        cfg.nic.strategy = strategy;
        match run_nas(spec, cfg) {
            None => NasCell {
                name: spec.name(),
                strategy: label.to_string(),
                seconds: None,
                interrupts: None,
                stolen_s: None,
            },
            Some(report) => NasCell {
                name: spec.name(),
                strategy: label.to_string(),
                seconds: Some(report.elapsed_ns as f64 / 1e9),
                interrupts: Some(report.metrics.total_interrupts()),
                stolen_s: Some(report.stolen_ns as f64 / 1e9),
            },
        }
    });
    NasResult { cells }
}

fn cell<'a>(r: &'a NasResult, name: &str, strategy: &str) -> Option<&'a NasCell> {
    r.cells
        .iter()
        .find(|c| c.name == name && c.strategy == strategy)
}

/// Table IV formatting: times with speedup percentages vs default.
pub fn table_iv(result: &NasResult) -> Table {
    let mut t = Table::new(vec!["NAS", "default", "disabled", "open-mx", "stream"]);
    let mut names: Vec<String> = result.cells.iter().map(|c| c.name.clone()).collect();
    names.dedup();
    for name in names {
        let default = cell(result, &name, "default").and_then(|c| c.seconds);
        let fmt = |strategy: &str| -> String {
            match (
                cell(result, &name, strategy).and_then(|c| c.seconds),
                default,
            ) {
                (None, _) => "OOM".to_string(),
                (Some(s), Some(d)) if strategy != "default" => {
                    let speedup = (d - s) / d * 100.0;
                    if speedup.abs() >= 1.0 {
                        format!("{s:.2} ({speedup:+.1} %)")
                    } else {
                        format!("{s:.2}")
                    }
                }
                (Some(s), _) => format!("{s:.2}"),
            }
        };
        t.row(vec![
            name.clone(),
            fmt("default"),
            fmt("disabled"),
            fmt("open-mx"),
            fmt("stream"),
        ]);
    }
    t
}

/// Table V formatting: interrupt counts for the IS rows.
pub fn table_v(result: &NasResult) -> Table {
    let mut t = Table::new(vec!["NAS", "default", "disabled", "open-mx", "stream"]);
    for name in ["is.C.16", "is.B.16"] {
        if cell(result, name, "default").is_none() {
            continue;
        }
        let base = cell(result, name, "default")
            .and_then(|c| c.interrupts)
            .unwrap_or(0) as f64;
        let fmt = |strategy: &str| -> String {
            let Some(irqs) = cell(result, name, strategy).and_then(|c| c.interrupts) else {
                return "-".to_string();
            };
            if strategy == "default" {
                format!("{:.1}k", irqs as f64 / 1e3)
            } else if irqs as f64 > base * 3.0 {
                format!("{:.2}M (x{:.0})", irqs as f64 / 1e6, irqs as f64 / base)
            } else {
                format!(
                    "{:.1}k ({:+.0} %)",
                    irqs as f64 / 1e3,
                    (irqs as f64 - base) / base * 100.0
                )
            }
        };
        t.row(vec![
            name.to_string(),
            fmt("default"),
            fmt("disabled"),
            fmt("open-mx"),
            fmt("stream"),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn is_c_shape() {
        let r = run("is.C");
        let secs = |strategy: &str| cell(&r, "is.C.16", strategy).unwrap().seconds.unwrap();
        let irqs = |strategy: &str| cell(&r, "is.C.16", strategy).unwrap().interrupts.unwrap();
        // Table IV: default lands near the paper's 32.75 s; disabled is
        // several percent slower.
        let default = secs("default");
        assert!((26.0..40.0).contains(&default), "default {default}");
        let disabled = secs("disabled");
        assert!(
            disabled > default * 1.04,
            "disabled {disabled} vs default {default}"
        );
        // Table V: disabled raises an order of magnitude more interrupts;
        // open-mx raises more than default but far less than disabled.
        assert!(irqs("disabled") > irqs("default") * 10);
        assert!(irqs("open-mx") > irqs("default"));
        assert!(irqs("open-mx") < irqs("disabled") / 5);
    }
}

omx_sim::impl_to_json!(NasCell {
    name,
    strategy,
    seconds,
    interrupts,
    stolen_s
});
omx_sim::impl_to_json!(NasResult { cells });
