//! §VI (future work) — adaptive coalescing.
//!
//! The paper's early tests found adaptive coalescing "helps microbenchmarks
//! but cannot help real applications as well as our firmware modifications
//! do". We compare Adaptive against Timeout-75 and Open-MX on the ping-pong
//! (microbenchmark) and on NAS IS (application).

use super::parallel_map;
use crate::report::Table;
use omx_core::prelude::*;
use omx_core::system::ClusterConfig;
use omx_nas::{run_nas, NasBenchmark, NasClass, NasSpec};

/// One comparison row.
#[derive(Debug, Clone)]
pub struct AdaptiveRow {
    /// Workload label.
    pub workload: String,
    /// Strategy label.
    pub strategy: String,
    /// Metric value (µs for ping-pong, seconds for IS).
    pub value: f64,
}

/// Full comparison.
#[derive(Debug, Clone)]
pub struct AdaptiveResult {
    /// All rows.
    pub rows: Vec<AdaptiveRow>,
}

fn strategies() -> Vec<(&'static str, CoalescingStrategy)> {
    vec![
        ("timeout-75us", CoalescingStrategy::Timeout { delay_us: 75 }),
        (
            "adaptive",
            CoalescingStrategy::Adaptive {
                min_delay_us: 0,
                max_delay_us: 75,
            },
        ),
        ("open-mx", CoalescingStrategy::OpenMx { delay_us: 75 }),
    ]
}

/// Run the comparison. `is_class_b` keeps runtimes short when true.
pub fn run(pingpong_iters: u32, is_class_b: bool) -> AdaptiveResult {
    // Microbenchmark: small-message ping-pong latency.
    let micro = parallel_map(strategies(), |(label, strategy)| {
        let mut cluster = ClusterBuilder::new().nodes(2).strategy(strategy).build();
        let r = cluster.run_pingpong(PingPongSpec {
            msg_len: 8,
            iterations: pingpong_iters,
            warmup: pingpong_iters / 5,
        });
        AdaptiveRow {
            workload: "pingpong 8 B (us, half RTT)".to_string(),
            strategy: label.to_string(),
            value: r.half_rtt_ns as f64 / 1_000.0,
        }
    });
    // Application: NAS IS.
    let spec = NasSpec {
        benchmark: NasBenchmark::Is,
        class: if is_class_b { NasClass::B } else { NasClass::C },
    };
    let app = parallel_map(strategies(), |(label, strategy)| {
        let mut cfg = ClusterConfig::default();
        cfg.nic.strategy = strategy;
        let report = run_nas(spec, cfg).expect("runnable");
        AdaptiveRow {
            workload: format!("{} (s)", spec.name()),
            strategy: label.to_string(),
            value: report.elapsed_ns as f64 / 1e9,
        }
    });
    let mut rows = micro;
    rows.extend(app);
    AdaptiveResult { rows }
}

/// Format as a table.
pub fn table(result: &AdaptiveResult) -> Table {
    let mut t = Table::new(vec!["workload", "strategy", "value"]);
    for row in &result.rows {
        t.row(vec![
            row.workload.clone(),
            row.strategy.clone(),
            format!("{:.2}", row.value),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn adaptive_helps_the_microbenchmark() {
        let r = run(20, true);
        let value = |workload_prefix: &str, strategy: &str| {
            r.rows
                .iter()
                .find(|x| x.workload.starts_with(workload_prefix) && x.strategy == strategy)
                .unwrap()
                .value
        };
        // §VI: adaptive coalescing helps the ping-pong (low traffic → short
        // delays) relative to the fixed 75 µs timeout...
        let adaptive = value("pingpong", "adaptive");
        let timeout = value("pingpong", "timeout-75us");
        assert!(
            adaptive < timeout * 0.6,
            "adaptive {adaptive}us vs timeout {timeout}us"
        );
        // ... but does not beat the message-aware strategy on the
        // application.
        let adaptive_is = value("is.", "adaptive");
        let openmx_is = value("is.", "open-mx");
        assert!(
            openmx_is <= adaptive_is * 1.02,
            "open-mx {openmx_is}s should at least match adaptive {adaptive_is}s on IS"
        );
    }
}

omx_sim::impl_to_json!(AdaptiveRow {
    workload,
    strategy,
    value
});
omx_sim::impl_to_json!(AdaptiveResult { rows });
