//! Fault-injection & recovery-validation campaign (beyond the paper).
//!
//! DESIGN §7 promises failure-injection coverage: packet loss must exercise
//! the retransmit path and ring overflow the drop/refill path. This
//! experiment drives the *full cluster* — not per-crate units — through
//! both, sweeping loss rate × coalescing strategy × the three Table I size
//! classes, plus a ring-overflow scenario per strategy (a 16-slot RX ring
//! against a host that copies 7× slower than calibrated).
//!
//! Every cell runs to quiescence (no actor ever calls `stop`), then checks
//! the sim-sanitizer invariants: exact byte conservation, no stranded
//! protocol state, interrupt liveness (see `omx_core::sanitizer`). A cell
//! with violations still renders — `sanitizer_violations` is part of the
//! report — but the run panics first unless every invariant holds, so a
//! green `omx-bench faults` certifies the recovery path end to end.
//!
//! Cells are independent (own cluster, own fixed seed derived from the
//! cell index) and run through [`super::parallel_map`] on the shared
//! work-stealing pool, committing in cell-index order — `--jobs N` changes
//! wall-clock time, never a byte of `results/faults.json` (DESIGN §11;
//! enforced by `tests/parallel_determinism.rs`).

use super::{all_strategies, parallel_map};
use crate::report::Table;
use omx_core::prelude::*;
use omx_core::system::{Actor, ActorCtx, RecvCompletion};
use omx_fabric::DisturbanceConfig;
use omx_sim::json::{Json, ToJson};
use omx_sim::stats::Histogram;
use omx_sim::StopCondition;
use std::any::Any;

/// Loss rates swept, as probabilities ({0, 0.1 %, 1 %, 5 %}).
pub const LOSS_RATES: [f64; 4] = [0.0, 0.001, 0.01, 0.05];

/// Table I size classes: header-only, medium (fragmented eager), large
/// (rendezvous → pull).
pub const SIZE_CLASSES: [u32; 3] = [0, 32 << 10, 1 << 20];

/// One cell of the campaign.
#[derive(Debug, Clone)]
pub struct FaultCell {
    /// Scenario: `loss` (fabric drops frames) or `ring-pressure`
    /// (16-slot RX ring + slow host copies → NIC ring overflow).
    pub scenario: String,
    /// Message size in bytes.
    pub msg_len: u32,
    /// Injected frame-loss probability.
    pub loss: f64,
    /// Strategy label.
    pub strategy: String,
    /// Messages delivered (all posted messages, or the run fails).
    pub messages: u32,
    /// First-post-to-quiescence span, ns.
    pub completion_ns: u64,
    /// Delivered message rate over the completion span.
    pub msgs_per_sec: f64,
    /// Delivered payload rate over the completion span, Mbit/s.
    pub goodput_mbps: f64,
    /// Completion span relative to the zero-loss cell of the same size
    /// and strategy (1.0 = no slowdown); the campaign's recovery-time
    /// metric.
    pub recovery_ratio: f64,
    /// Eager data packets retransmitted after an RTO.
    pub eager_retransmits: u64,
    /// Pull blocks re-requested after a receiver-side stall.
    pub pull_rerequests: u64,
    /// Frames dropped to NIC RX-ring overflow.
    pub ring_drops: u64,
    /// Frames dropped by the fabric injector.
    pub frames_dropped: u64,
    /// Sanitizer violations (always 0 in a successful run; kept in the
    /// report so a `--keep-going` future mode stays honest).
    pub sanitizer_violations: u64,
    /// Per-message post-to-completion latency percentiles, present only
    /// when the campaign ran with `--slo` (the field is omitted from the
    /// JSON otherwise, so default reports stay byte-identical).
    pub slo: Option<SloSummary>,
}

/// Full campaign result.
#[derive(Debug, Clone)]
pub struct FaultsResult {
    /// All cells, loss sweep first, then ring-pressure.
    pub cells: Vec<FaultCell>,
}

/// Sender: keeps `window` posts outstanding until `total` are posted,
/// then goes quiet — the run ends at queue-empty, never via `stop()`.
struct FaultSender {
    peer: EndpointAddr,
    msg_len: u32,
    total: u32,
    window: u32,
    posted: u32,
    completed: u32,
    /// Post timestamp of message `i` (match info `i`), for SLO latency.
    post_ns: Vec<u64>,
}

impl FaultSender {
    fn pump(&mut self, ctx: &mut ActorCtx) {
        while self.posted < self.total && self.posted < self.completed + self.window {
            ctx.post_send(
                self.peer,
                self.msg_len,
                u64::from(self.posted),
                u64::from(self.posted),
            );
            self.post_ns.push(ctx.now().as_nanos());
            self.posted += 1;
        }
    }
}

impl Actor for FaultSender {
    /// Fault cells run to quiescence (the retransmission machinery must
    /// drain); neither side ever calls `stop()`.
    fn may_stop(&self) -> bool {
        false
    }

    fn on_start(&mut self, ctx: &mut ActorCtx) {
        self.pump(ctx);
    }

    fn on_send_complete(&mut self, ctx: &mut ActorCtx, _handle: u64) {
        self.completed += 1;
        self.pump(ctx);
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
}

/// Receiver: posts exactly `expect` receives (a 64-deep pre-posted pool,
/// refilled per completion) and records the delivery span. Never stops.
struct FaultReceiver {
    expect: u32,
    posted: u32,
    got: u32,
    first_ns: u64,
    last_ns: u64,
    /// Completion timestamp of message `i`, indexed by the sender's
    /// match info (== posted index), for SLO latency.
    recv_ns: Vec<u64>,
}

impl Actor for FaultReceiver {
    /// See `FaultSender::may_stop`.
    fn may_stop(&self) -> bool {
        false
    }

    fn blocking_waits(&self) -> bool {
        true
    }

    fn on_start(&mut self, ctx: &mut ActorCtx) {
        while self.posted < self.expect.min(64) {
            ctx.post_recv(0, 0, u64::from(self.posted));
            self.posted += 1;
        }
    }

    fn on_recv_complete(&mut self, ctx: &mut ActorCtx, c: RecvCompletion) {
        if self.got == 0 {
            self.first_ns = ctx.now().as_nanos();
        }
        self.got += 1;
        self.last_ns = ctx.now().as_nanos();
        let idx = c.match_info as usize;
        if idx < self.recv_ns.len() {
            self.recv_ns[idx] = ctx.now().as_nanos();
        }
        if self.posted < self.expect {
            ctx.post_recv(0, 0, u64::from(self.posted));
            self.posted += 1;
        }
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
}

/// Messages per size class (fewer for big messages to bound run time).
fn messages_for(len: u32, quick: bool) -> u32 {
    let full = match len {
        0..=1024 => 300,
        1025..=65_536 => 120,
        _ => 24,
    };
    if quick {
        (full / 6).max(4)
    } else {
        full
    }
}

struct Job {
    scenario: &'static str,
    msg_len: u32,
    loss: f64,
    strategy_idx: usize,
    strategy: CoalescingStrategy,
    label: &'static str,
    messages: u32,
    seed: u64,
    /// Collect per-message latency percentiles into [`FaultCell::slo`].
    slo: bool,
}

fn run_cell(job: &Job) -> FaultCell {
    let mut cfg = ClusterConfig::default();
    cfg.nic.strategy = job.strategy;
    cfg.fabric.disturbance = DisturbanceConfig {
        loss_probability: job.loss,
        ..DisturbanceConfig::none()
    };
    cfg.seed = job.seed;
    if job.scenario == "ring-pressure" {
        // A near-starved RX ring against a host that copies 7× slower
        // than calibrated: DMA + ready occupancy overflows the ring and
        // the NIC drops, so delivery relies on the retransmit path.
        cfg.nic.rx_ring_slots = 16;
        cfg.host.costs.copy_bytes_per_us = 100;
    }
    let mut cluster = Cluster::new(cfg);
    cluster.add_actor(
        0,
        0,
        Box::new(FaultSender {
            peer: EndpointAddr::new(1, 0),
            msg_len: job.msg_len,
            total: job.messages,
            window: 16,
            posted: 0,
            completed: 0,
            post_ns: Vec::new(),
        }),
    );
    cluster.add_actor(
        1,
        0,
        Box::new(FaultReceiver {
            expect: job.messages,
            posted: 0,
            got: 0,
            first_ns: 0,
            last_ns: 0,
            recv_ns: vec![0; job.messages as usize],
        }),
    );
    let stop = cluster.run(Time::from_secs(300));
    assert_eq!(
        stop,
        StopCondition::QueueEmpty,
        "faults cell ({} {} B loss={} {}) did not quiesce: {stop:?}",
        job.scenario,
        job.msg_len,
        job.loss,
        job.label,
    );
    let sanitizer = cluster.sanitize();
    let violations = sanitizer.all_violations();
    assert!(
        violations.is_empty(),
        "faults cell ({} {} B loss={} {}) violated sim-sanitizer invariants:\n  {}",
        job.scenario,
        job.msg_len,
        job.loss,
        job.label,
        violations.join("\n  ")
    );
    let recv = cluster.actor::<FaultReceiver>(1, 0).expect("receiver");
    assert_eq!(recv.got, job.messages, "sanitizer missed a lost delivery?");
    let span_ns = recv.last_ns.saturating_sub(recv.first_ns).max(1);
    let slo = if job.slo {
        let sender = cluster.actor::<FaultSender>(0, 0).expect("sender");
        let mut h = Histogram::new();
        for (i, &done) in recv.recv_ns.iter().enumerate() {
            h.record(done.saturating_sub(sender.post_ns[i]));
        }
        SloSummary::from_histogram(&h)
    } else {
        None
    };
    let m = cluster.metrics();
    FaultCell {
        scenario: job.scenario.to_string(),
        msg_len: job.msg_len,
        loss: job.loss,
        strategy: job.label.to_string(),
        messages: job.messages,
        completion_ns: span_ns,
        msgs_per_sec: (job.messages.saturating_sub(1)) as f64 / (span_ns as f64 / 1e9),
        goodput_mbps: sanitizer.bytes_delivered as f64 * 8.0 / 1e6 / (span_ns as f64 / 1e9),
        recovery_ratio: 1.0, // filled in against the zero-loss baseline below
        eager_retransmits: m.total_retransmits(),
        pull_rerequests: m.total_pull_rerequests(),
        ring_drops: m.total_ring_drops(),
        frames_dropped: m.frames_dropped,
        sanitizer_violations: violations.len() as u64,
        slo,
    }
}

/// Run the campaign. `quick` shrinks per-cell message counts for CI smoke
/// runs; the swept matrix (4 loss rates × 5 strategies × 3 sizes, plus 5
/// ring-pressure cells) is identical in both modes. `slo` additionally
/// records per-message post-to-completion latency percentiles into each
/// cell (pure observation: timestamps are harvested from actor state the
/// run already tracks, so the simulation itself is unchanged).
pub fn run(quick: bool, slo: bool) -> FaultsResult {
    let mut jobs = Vec::new();
    for &msg_len in &SIZE_CLASSES {
        for (li, &loss) in LOSS_RATES.iter().enumerate() {
            for (si, (label, strategy)) in all_strategies().into_iter().enumerate() {
                jobs.push(Job {
                    scenario: "loss",
                    msg_len,
                    loss,
                    strategy_idx: si,
                    strategy,
                    label,
                    messages: messages_for(msg_len, quick),
                    // Deterministic per-cell seed: same seed ⇒ same frames
                    // lost ⇒ byte-identical report across processes.
                    seed: 0xFA017 + (msg_len as u64) * 1_000 + (li as u64) * 10 + si as u64,
                    slo,
                });
            }
        }
    }
    for (si, (label, strategy)) in all_strategies().into_iter().enumerate() {
        jobs.push(Job {
            scenario: "ring-pressure",
            msg_len: 32 << 10,
            loss: 0.0,
            strategy_idx: si,
            strategy,
            label,
            messages: messages_for(32 << 10, quick) / 2,
            seed: 0x000F_A017_0000 + si as u64,
            slo,
        });
    }
    let mut cells = parallel_map(jobs, |job| (run_cell(&job), job));
    // Recovery ratio: completion span vs the zero-loss cell of the same
    // size and strategy (needs the whole result set, hence post-hoc).
    let baselines: Vec<(u32, usize, u64)> = cells
        .iter()
        .filter(|(c, j)| j.scenario == "loss" && c.loss == 0.0)
        .map(|(c, j)| (c.msg_len, j.strategy_idx, c.completion_ns))
        .collect();
    for (cell, job) in &mut cells {
        if job.scenario != "loss" {
            continue;
        }
        let base = baselines
            .iter()
            .find(|(len, si, _)| *len == cell.msg_len && *si == job.strategy_idx)
            .map(|(_, _, ns)| *ns)
            .unwrap_or(1);
        cell.recovery_ratio = cell.completion_ns as f64 / base.max(1) as f64;
    }
    FaultsResult {
        cells: cells.into_iter().map(|(c, _)| c).collect(),
    }
}

/// Render the loss sweep (completion slowdown vs zero loss) plus recovery
/// counters, one block per size class. Cells carrying an [`SloSummary`]
/// (`--slo` runs) gain p50/p99/p999 message-latency columns.
pub fn table(result: &FaultsResult) -> Table {
    let slo = result.cells.iter().any(|c| c.slo.is_some());
    let mut headers = vec![
        "scenario", "size", "loss", "strategy", "msgs/s", "slowdown", "retx", "rereq", "ringdrop",
        "lost",
    ];
    if slo {
        headers.extend(["p50_us", "p99_us", "p999_us"]);
    }
    let mut t = Table::new(headers);
    for c in &result.cells {
        let label = match c.msg_len {
            0 => "0 B".to_string(),
            l if l >= 1 << 20 => format!("{} MiB", l >> 20),
            l => format!("{} KiB", l >> 10),
        };
        let mut row = vec![
            c.scenario.clone(),
            label,
            format!("{:.1}%", c.loss * 100.0),
            c.strategy.clone(),
            format!("{:.0}", c.msgs_per_sec),
            format!("{:.2}x", c.recovery_ratio),
            c.eager_retransmits.to_string(),
            c.pull_rerequests.to_string(),
            c.ring_drops.to_string(),
            c.frames_dropped.to_string(),
        ];
        if slo {
            match &c.slo {
                Some(s) => row.extend([
                    format!("{:.1}", s.p50_ns as f64 / 1e3),
                    format!("{:.1}", s.p99_ns as f64 / 1e3),
                    format!("{:.1}", s.p999_ns as f64 / 1e3),
                ]),
                None => row.extend(["-".into(), "-".into(), "-".into()]),
            }
        }
        t.row(row);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    /// One lossy cell end to end: delivers everything, retransmits
    /// something, and the sanitizer stays clean (the assertions inside
    /// `run_cell` are the real check).
    #[test]
    fn lossy_cell_recovers_clean() {
        let cell = run_cell(&Job {
            scenario: "loss",
            msg_len: 4096,
            loss: 0.02,
            strategy_idx: 0,
            strategy: CoalescingStrategy::Timeout { delay_us: 75 },
            label: "default",
            messages: 40,
            seed: 42,
            slo: true,
        });
        assert_eq!(cell.sanitizer_violations, 0);
        assert!(cell.frames_dropped > 0, "2% loss on 40×4 KiB must drop");
        assert!(cell.eager_retransmits > 0, "drops must force retransmits");
        let slo = cell.slo.expect("slo requested");
        assert_eq!(slo.count, 40);
        assert!(slo.p50_ns > 0 && slo.p50_ns <= slo.p99_ns && slo.p99_ns <= slo.p999_ns);
        // The JSON shape without --slo must match the pre-SLO report
        // exactly: the optional field is omitted, not null.
        let mut plain = cell.clone();
        plain.slo = None;
        let rendered = plain.to_json().render();
        assert!(
            !rendered.contains("slo"),
            "default cell JSON gained a field"
        );
    }

    /// Ring-pressure scenario actually overflows the ring.
    #[test]
    fn ring_pressure_forces_ring_drops() {
        let cell = run_cell(&Job {
            scenario: "ring-pressure",
            msg_len: 32 << 10,
            loss: 0.0,
            strategy_idx: 0,
            strategy: CoalescingStrategy::Timeout { delay_us: 75 },
            label: "default",
            messages: 20,
            seed: 7,
            slo: false,
        });
        assert_eq!(cell.sanitizer_violations, 0);
        assert!(cell.ring_drops > 0, "16-slot ring + slow host must drop");
        assert!(cell.slo.is_none(), "slo not requested");
    }
}

// Hand-written (not `impl_to_json!`) so the optional `slo` field is omitted
// entirely when absent: default `omx-bench faults` output stays
// byte-identical to the pre-SLO golden reports.
impl ToJson for FaultCell {
    fn to_json(&self) -> Json {
        let mut fields = vec![
            ("scenario".to_string(), self.scenario.to_json()),
            ("msg_len".to_string(), self.msg_len.to_json()),
            ("loss".to_string(), self.loss.to_json()),
            ("strategy".to_string(), self.strategy.to_json()),
            ("messages".to_string(), self.messages.to_json()),
            ("completion_ns".to_string(), self.completion_ns.to_json()),
            ("msgs_per_sec".to_string(), self.msgs_per_sec.to_json()),
            ("goodput_mbps".to_string(), self.goodput_mbps.to_json()),
            ("recovery_ratio".to_string(), self.recovery_ratio.to_json()),
            (
                "eager_retransmits".to_string(),
                self.eager_retransmits.to_json(),
            ),
            (
                "pull_rerequests".to_string(),
                self.pull_rerequests.to_json(),
            ),
            ("ring_drops".to_string(), self.ring_drops.to_json()),
            ("frames_dropped".to_string(), self.frames_dropped.to_json()),
            (
                "sanitizer_violations".to_string(),
                self.sanitizer_violations.to_json(),
            ),
        ];
        if let Some(slo) = &self.slo {
            fields.push(("slo".to_string(), slo.to_json()));
        }
        Json::Obj(fields)
    }
}
omx_sim::impl_to_json!(FaultsResult { cells });
