//! Figure 4 — message rate of a 128 B stream vs. interrupt coalescing delay
//! for three host configurations.
//!
//! Paper shape: the default configuration (interrupts on all cores, sleeping
//! possible) reaches ~433k msg/s at large delays and loses more than half of
//! that at delay 0; binding interrupts to one core and disabling sleep
//! recovers most of the low-delay loss.

use super::parallel_map;
use crate::report::Table;
use omx_core::prelude::*;
use omx_host::IrqRouting;

/// One measured point.
#[derive(Debug, Clone)]
pub struct Fig4Point {
    /// Host configuration label.
    pub config: String,
    /// Coalescing delay in microseconds (0 = disabled).
    pub delay_us: u64,
    /// Receiver-side message rate.
    pub msgs_per_sec: f64,
    /// Receiver interrupts per message.
    pub interrupts_per_msg: f64,
    /// Receiver C1E wakeups.
    pub wakeups: u64,
}

/// Full Figure 4 dataset.
#[derive(Debug, Clone)]
pub struct Fig4Result {
    /// All sweep points.
    pub points: Vec<Fig4Point>,
}

/// Host configurations of the figure's three curves.
fn configs() -> Vec<(&'static str, IrqRouting, bool)> {
    vec![
        (
            "single-core, sleeping disabled",
            IrqRouting::Fixed(1),
            false,
        ),
        ("single-core, sleeping possible", IrqRouting::Fixed(1), true),
        (
            "all-cores, sleeping possible (default)",
            IrqRouting::RoundRobin,
            true,
        ),
    ]
}

/// Run the sweep.
pub fn run(messages: u32) -> Fig4Result {
    let delays: Vec<u64> = vec![0, 5, 10, 15, 20, 25, 30, 40, 50, 60, 70, 75, 80];
    let mut jobs = Vec::new();
    for (label, routing, sleep) in configs() {
        for &delay in &delays {
            jobs.push((label, routing, sleep, delay));
        }
    }
    let points = parallel_map(jobs, |(label, routing, sleep, delay)| {
        let strategy = if delay == 0 {
            CoalescingStrategy::Disabled
        } else {
            CoalescingStrategy::Timeout { delay_us: delay }
        };
        let mut cluster = ClusterBuilder::new()
            .nodes(2)
            .strategy(strategy)
            .routing(routing)
            .sleep(sleep)
            .build();
        let r = cluster.run_stream(StreamSpec {
            msg_len: 128,
            messages,
            window: 32,
        });
        Fig4Point {
            config: label.to_string(),
            delay_us: delay,
            msgs_per_sec: r.msgs_per_sec,
            interrupts_per_msg: r.interrupts_per_msg,
            wakeups: r.rx_wakeups,
        }
    });
    Fig4Result { points }
}

/// Format as a table.
pub fn table(result: &Fig4Result) -> Table {
    let mut t = Table::new(vec!["config", "delay (us)", "msg/s", "irq/msg", "wakeups"]);
    for p in &result.points {
        t.row(vec![
            p.config.clone(),
            p.delay_us.to_string(),
            format!("{:.0}", p.msgs_per_sec),
            format!("{:.3}", p.interrupts_per_msg),
            p.wakeups.to_string(),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shape_matches_paper() {
        let result = run(800);
        let rate = |config: &str, delay: u64| {
            result
                .points
                .iter()
                .find(|p| p.config.starts_with(config) && p.delay_us == delay)
                .map(|p| p.msgs_per_sec)
                .expect("point exists")
        };
        // Default config: delay 0 loses more than a third vs delay 75.
        let default_75 = rate("all-cores", 75);
        let default_0 = rate("all-cores", 0);
        assert!(
            default_75 > default_0 * 1.5,
            "default 75us {default_75} vs 0us {default_0}"
        );
        // Disabling sleep helps at delay 0.
        let nosleep_0 = rate("single-core, sleeping disabled", 0);
        assert!(nosleep_0 > default_0, "{nosleep_0} vs {default_0}");
    }
}

omx_sim::impl_to_json!(Fig4Point {
    config,
    delay_us,
    msgs_per_sec,
    interrupts_per_msg,
    wakeups,
});
omx_sim::impl_to_json!(Fig4Result { points });
