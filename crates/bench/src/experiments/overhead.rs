//! §IV-B2 — per-packet interrupt processing overhead.
//!
//! Paper anchors: 965 ns per packet with an interrupt per packet, 774 ns
//! with coalescing (−20 %), and another ~40 ns saved by binding interrupts
//! to a single core.

use super::parallel_map;
use crate::report::Table;
use omx_core::prelude::*;
use omx_core::workloads::overhead::{OverheadReport, OverheadSpec};
use omx_host::IrqRouting;

/// One configuration's measurement.
#[derive(Debug, Clone)]
pub struct OverheadRow {
    /// Configuration label.
    pub config: String,
    /// Receiver CPU time per packet, nanoseconds.
    pub per_packet_ns: f64,
    /// Interrupts raised.
    pub interrupts: u64,
    /// Packets received.
    pub packets: u64,
}

/// Full experiment result.
#[derive(Debug, Clone)]
pub struct OverheadResult {
    /// All rows.
    pub rows: Vec<OverheadRow>,
    /// Paper anchors for side-by-side comparison.
    pub paper_disabled_ns: f64,
    /// Paper anchor with coalescing enabled.
    pub paper_coalesced_ns: f64,
}

/// Run the experiment.
pub fn run(packets: u32) -> OverheadResult {
    let jobs: Vec<(&'static str, CoalescingStrategy, IrqRouting)> = vec![
        (
            "interrupt per packet, scattered",
            CoalescingStrategy::Disabled,
            IrqRouting::RoundRobin,
        ),
        (
            "interrupt per packet, bound to one core",
            CoalescingStrategy::Disabled,
            IrqRouting::Fixed(0),
        ),
        (
            "coalesced (75 us), scattered",
            CoalescingStrategy::Timeout { delay_us: 75 },
            IrqRouting::RoundRobin,
        ),
        (
            "coalesced (75 us), bound to one core",
            CoalescingStrategy::Timeout { delay_us: 75 },
            IrqRouting::Fixed(0),
        ),
    ];
    let rows = parallel_map(jobs, |(label, strategy, routing)| {
        let mut cluster = ClusterBuilder::new()
            .nodes(2)
            .strategy(strategy)
            .routing(routing)
            .build();
        let r: OverheadReport = cluster.run_overhead(OverheadSpec {
            packets,
            len: 128,
            gap_ns: 5_000,
        });
        OverheadRow {
            config: label.to_string(),
            per_packet_ns: r.per_packet_ns,
            interrupts: r.interrupts,
            packets: r.packets,
        }
    });
    OverheadResult {
        rows,
        paper_disabled_ns: 965.0,
        paper_coalesced_ns: 774.0,
    }
}

/// Format as a table.
pub fn table(result: &OverheadResult) -> Table {
    let mut t = Table::new(vec!["config", "ns/packet", "interrupts", "packets"]);
    for row in &result.rows {
        t.row(vec![
            row.config.clone(),
            format!("{:.0}", row.per_packet_ns),
            row.interrupts.to_string(),
            row.packets.to_string(),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn anchors_reproduced() {
        let r = run(6_000);
        let per = |label: &str| {
            r.rows
                .iter()
                .find(|row| row.config.starts_with(label))
                .unwrap()
                .per_packet_ns
        };
        let disabled = per("interrupt per packet, scattered");
        let coalesced = per("coalesced (75 us), scattered");
        assert!((disabled - 965.0).abs() < 80.0, "disabled {disabled}");
        assert!((coalesced - 774.0).abs() < 80.0, "coalesced {coalesced}");
        let bound = per("interrupt per packet, bound");
        assert!(
            (15.0..70.0).contains(&(disabled - bound)),
            "binding saved {}",
            disabled - bound
        );
    }
}

omx_sim::impl_to_json!(OverheadRow {
    config,
    per_packet_ns,
    interrupts,
    packets
});
omx_sim::impl_to_json!(OverheadResult {
    rows,
    paper_disabled_ns,
    paper_coalesced_ns
});
