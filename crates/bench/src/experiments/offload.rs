//! NIC-offloaded collectives vs. host-driven coalescing (beyond the paper).
//!
//! Every other campaign in this repo explores one side of the paper's
//! tradeoff: how should the host absorb the interrupts that collective
//! traffic generates? This campaign asks the follow-up question raised in
//! the related offload literature: what if the collective never generates
//! per-hop interrupts at all? Each cell runs one small-message collective
//! — barrier, 256 B broadcast, or 8 B allreduce — on {4, 8, 16, 32, 64}
//! two-rank nodes (quick mode: {4, 8, 16}) in six execution modes: the
//! five host coalescing strategies (collectives decomposed into Open-MX
//! point-to-point rounds, every hop paying the RX/IRQ path) head-to-head
//! against `nic-offload`, where the NIC firmware runs the dissemination /
//! binomial schedule itself ([`omx_core::offload`]) and the host takes
//! exactly **one** completion interrupt per operation per resident rank.
//!
//! Every cell drains to quiescence via `MpiWorld::run_drained`, asserting
//! the sim-sanitizer invariants (offload frames included: posted =
//! delivered = completed byte conservation, no stranded schedule state).
//! Per-cell seeds are fixed, cells fan out through [`super::parallel_map`]
//! and commit in cell-index order, and the drained runs are eligible for
//! the conservative parallel engine — `results/offload.json` is
//! byte-identical across processes, `--jobs`, and `--sim-jobs` values.
//! Completion-latency SLOs (p50/p99/p999 over per-rank per-iteration
//! samples) are always collected: latency is the axis the offload trades
//! against, not an optional extra.

use super::{all_strategies, parallel_map};
use crate::report::Table;
use omx_core::offload::OffloadCounters;
use omx_core::prelude::*;
use omx_mpi::{CollectiveExec, MpiWorld, Op, WorldSpec};

/// Node counts swept (quick mode stops at 16).
pub const NODE_COUNTS: [usize; 5] = [4, 8, 16, 32, 64];

/// Ranks per node; matches the scale campaign so host-path numbers are
/// comparable across reports.
pub const RANKS_PER_NODE: usize = 2;

/// Switch egress buffer bound (frames), same as the scale campaign. The
/// offloaded collectives are token/small-payload traffic that never comes
/// close to filling it; the host-path cells keep the bound so their
/// numbers match `omx-bench scale` where the sweeps overlap.
pub const SWITCH_BUFFER_FRAMES: u32 = 32;

/// The label the report uses for the NIC-resident execution mode.
pub const OFFLOAD_MODE: &str = "nic-offload";

/// One cell of the campaign.
#[derive(Debug, Clone)]
pub struct OffloadCell {
    /// Collective name: `barrier`, `bcast`, or `allreduce`.
    pub collective: String,
    /// Per-rank payload bytes (0 for barrier).
    pub bytes: u32,
    /// Simulated nodes ([`RANKS_PER_NODE`] ranks each).
    pub nodes: u32,
    /// Total MPI ranks (`nodes × RANKS_PER_NODE`).
    pub ranks: u32,
    /// Execution mode: a host coalescing strategy label, or
    /// [`OFFLOAD_MODE`] for NIC-resident execution.
    pub mode: String,
    /// Back-to-back iterations of the collective in this cell.
    pub iterations: u32,
    /// Mean completion time of one collective, ns (job elapsed /
    /// iterations).
    pub completion_ns: u64,
    /// Interrupts across all nodes for the whole job. In offload mode this
    /// is exactly `ranks × iterations` — one completion IRQ per op per
    /// rank, independent of the schedule's hop count.
    pub total_interrupts: u64,
    /// Mean interrupts per node — the paper's host-load axis.
    pub interrupts_per_node: f64,
    /// Host-path eager-data retransmits (0 in offload mode: offloaded
    /// collectives never touch the Open-MX protocol engine).
    pub retransmits: u64,
    /// NIC offload-engine counters summed over all nodes (all zero in the
    /// host modes).
    pub offload: OffloadCounters,
    /// Sanitizer violations (always 0 in a successful run; the cell
    /// panics before rendering otherwise).
    pub sanitizer_violations: u64,
    /// Per-rank collective completion-latency percentiles, one sample per
    /// rank per iteration. Always collected: completion latency is the
    /// axis NIC offload trades against host interrupt load.
    pub slo: SloSummary,
}

/// Full campaign result.
#[derive(Debug, Clone)]
pub struct OffloadResult {
    /// All cells: collective-major, then node count, then mode.
    pub cells: Vec<OffloadCell>,
}

/// The swept collectives as `(name, bytes, op, iterations, quick_iters)`.
/// All three fit the firmware payload cap, so in offload mode nothing
/// falls back to the host path.
fn collectives(quick: bool) -> Vec<(&'static str, u32, Op, u32)> {
    let it = |full: u32, q: u32| if quick { q } else { full };
    vec![
        ("barrier", 0, Op::Barrier, it(10, 4)),
        (
            "bcast",
            256,
            Op::Bcast {
                root: 0,
                bytes: 256,
            },
            it(10, 4),
        ),
        ("allreduce", 8, Op::Allreduce { bytes: 8 }, it(10, 4)),
    ]
}

/// An execution mode: host collectives under one coalescing strategy, or
/// NIC-resident collectives.
#[derive(Debug, Clone, Copy)]
enum Mode {
    Host(CoalescingStrategy),
    NicOffload,
}

/// The six modes in column order: the five host strategies, then
/// [`OFFLOAD_MODE`].
fn modes() -> Vec<(&'static str, Mode)> {
    let mut m: Vec<(&'static str, Mode)> = all_strategies()
        .into_iter()
        .map(|(label, s)| (label, Mode::Host(s)))
        .collect();
    m.push((OFFLOAD_MODE, Mode::NicOffload));
    m
}

struct Job {
    collective: &'static str,
    bytes: u32,
    op: Op,
    nodes: usize,
    mode: Mode,
    label: &'static str,
    iterations: u32,
    seed: u64,
}

fn run_cell(job: &Job) -> OffloadCell {
    let mut cfg = ClusterConfig::default();
    cfg.fabric.switch_buffer_frames = SWITCH_BUFFER_FRAMES;
    cfg.seed = job.seed;
    let exec = match job.mode {
        Mode::Host(strategy) => {
            cfg.nic.strategy = strategy;
            CollectiveExec::Host
        }
        Mode::NicOffload => CollectiveExec::NicOffload,
    };
    let spec = WorldSpec {
        ranks: job.nodes * RANKS_PER_NODE,
        ranks_per_node: RANKS_PER_NODE,
    };
    let op = job.op.clone();
    let iters = job.iterations as usize;
    let (report, sanitizer) = MpiWorld::new(spec, cfg)
        .with_collective_exec(exec)
        .run_drained(|_| std::iter::repeat_with(|| op.clone()).take(iters).collect());
    let violations = sanitizer.all_violations();
    let m = &report.metrics;
    let mut offload = OffloadCounters::default();
    for c in &report.offload {
        offload.merge(c);
    }
    OffloadCell {
        collective: job.collective.to_string(),
        bytes: job.bytes,
        nodes: job.nodes as u32,
        ranks: (job.nodes * RANKS_PER_NODE) as u32,
        mode: job.label.to_string(),
        iterations: job.iterations,
        completion_ns: report.elapsed_ns / u64::from(job.iterations.max(1)),
        total_interrupts: m.total_interrupts(),
        interrupts_per_node: m.total_interrupts() as f64 / job.nodes as f64,
        retransmits: m.total_retransmits(),
        offload,
        sanitizer_violations: violations.len() as u64,
        // Offload programs are pure collective sequences, so each rank's
        // per-step latency IS one collective's completion time.
        slo: SloSummary::from_histogram(&report.op_latency)
            .expect("every cell records at least one per-rank sample"),
    }
}

/// The representative cell pinned by the golden file
/// (`crates/bench/tests/golden/offload_cell.json`): 16-node (32-rank)
/// 8 B allreduce in `nic-offload` mode, with the same seed the campaign
/// assigns that cell and the quick-mode iteration count.
pub fn golden_cell() -> OffloadCell {
    run_cell(&Job {
        collective: "allreduce",
        bytes: 8,
        op: Op::Allreduce { bytes: 8 },
        nodes: 16,
        mode: Mode::NicOffload,
        label: OFFLOAD_MODE,
        iterations: 4,
        seed: 0x0FF10AD + 2 * 10_000 + 16 * 10 + 5,
    })
}

/// Run the campaign. `quick` caps the sweep at 16 nodes and shrinks
/// iteration counts for CI smoke runs; cell structure and seeds for the
/// shared cells are identical in both modes.
pub fn run(quick: bool) -> OffloadResult {
    let node_counts: &[usize] = if quick {
        &NODE_COUNTS[..3]
    } else {
        &NODE_COUNTS
    };
    let mut jobs = Vec::new();
    for (ci, (collective, bytes, op, iterations)) in collectives(quick).into_iter().enumerate() {
        for &nodes in node_counts {
            for (si, (label, mode)) in modes().into_iter().enumerate() {
                jobs.push(Job {
                    collective,
                    bytes,
                    op: op.clone(),
                    nodes,
                    mode,
                    label,
                    iterations,
                    // Deterministic per-cell seed ⇒ byte-identical report
                    // across processes and machines.
                    seed: 0x0FF10AD + (ci as u64) * 10_000 + (nodes as u64) * 10 + si as u64,
                });
            }
        }
    }
    let cells = parallel_map(jobs, |job| run_cell(&job));
    OffloadResult { cells }
}

/// Render the head-to-head: completion time and per-node interrupt load
/// per cell, with p50/p99/p999 completion-latency columns. In offload
/// rows `irq/node` is constant across node counts (one IRQ per op per
/// resident rank); in host rows it grows with the schedule depth.
pub fn table(result: &OffloadResult) -> Table {
    let mut t = Table::new(vec![
        "collective",
        "size",
        "nodes",
        "ranks",
        "mode",
        "time/op",
        "irq/node",
        "retx",
        "off-retx",
        "p50_us",
        "p99_us",
        "p999_us",
    ]);
    for c in &result.cells {
        let size = match c.bytes {
            0 => "-".to_string(),
            b => format!("{b} B"),
        };
        t.row(vec![
            c.collective.clone(),
            size,
            c.nodes.to_string(),
            c.ranks.to_string(),
            c.mode.clone(),
            format!("{:.1} us", c.completion_ns as f64 / 1_000.0),
            format!("{:.1}", c.interrupts_per_node),
            c.retransmits.to_string(),
            c.offload.retransmits.to_string(),
            format!("{:.1}", c.slo.p50_ns as f64 / 1e3),
            format!("{:.1}", c.slo.p99_ns as f64 / 1e3),
            format!("{:.1}", c.slo.p999_ns as f64 / 1e3),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    /// One offload cell end to end: quiesces, sanitizes clean, completes
    /// every posted op, and pays exactly one IRQ per op per rank.
    #[test]
    fn offload_cell_pays_one_irq_per_op_per_rank() {
        let cell = run_cell(&Job {
            collective: "allreduce",
            bytes: 8,
            op: Op::Allreduce { bytes: 8 },
            nodes: 8,
            mode: Mode::NicOffload,
            label: OFFLOAD_MODE,
            iterations: 4,
            seed: 0x0FF10AD,
        });
        assert_eq!(cell.sanitizer_violations, 0);
        assert_eq!(cell.offload.ops_posted, 16 * 4);
        assert_eq!(cell.offload.ops_completed, cell.offload.ops_posted);
        assert_eq!(cell.total_interrupts, 16 * 4);
        assert_eq!(cell.slo.count, 16 * 4);
    }

    /// The same cell in a host mode leaves the offload counters at zero
    /// and costs strictly more interrupts per node.
    #[test]
    fn host_cell_keeps_offload_engine_idle() {
        let host = run_cell(&Job {
            collective: "allreduce",
            bytes: 8,
            op: Op::Allreduce { bytes: 8 },
            nodes: 8,
            mode: Mode::Host(CoalescingStrategy::Timeout { delay_us: 75 }),
            label: "default",
            iterations: 4,
            seed: 0x0FF10AD,
        });
        assert_eq!(host.sanitizer_violations, 0);
        assert_eq!(host.offload.ops_posted, 0);
        assert_eq!(host.offload.data_tx, 0);
        assert!(
            host.total_interrupts > 16 * 4,
            "host path must pay per-hop interrupts, got {}",
            host.total_interrupts
        );
    }
}

omx_sim::impl_to_json!(OffloadCell {
    collective,
    bytes,
    nodes,
    ranks,
    mode,
    iterations,
    completion_ns,
    total_interrupts,
    interrupts_per_node,
    retransmits,
    offload,
    sanitizer_violations,
    slo,
});
omx_sim::impl_to_json!(OffloadResult { cells });
