//! Table II — anatomy of a 234 KiB transfer, plus the §IV-C3 marker
//! ablation.
//!
//! Paper values: Disabled 705 µs / 92.4 interrupts, Timeout-75 762 µs /
//! 14.4, Open-MX 708 µs / 13.7 (counted on both sides). The ablation found
//! marking the rendezvous worth ~20 µs, pull requests ~5 µs, last pull
//! replies ~2 µs, and the notify negligible.

use super::parallel_map;
use crate::report::Table;
use omx_core::marking::{MarkClass, MarkingPolicy};
use omx_core::prelude::*;
use omx_core::workloads::transfer::TransferSpec;

/// One strategy row.
#[derive(Debug, Clone)]
pub struct Table2Row {
    /// Strategy label.
    pub strategy: String,
    /// Mean transfer time, nanoseconds.
    pub transfer_ns: f64,
    /// Interrupts per transfer (both sides).
    pub interrupts: f64,
}

/// One marker-ablation row.
#[derive(Debug, Clone)]
pub struct AblationRow {
    /// Which marker class was removed ("none" = full policy).
    pub removed: String,
    /// Mean transfer time, nanoseconds.
    pub transfer_ns: f64,
    /// Slow-down vs the full policy, nanoseconds.
    pub delta_ns: f64,
}

/// Full Table II result.
#[derive(Debug, Clone)]
pub struct Table2Result {
    /// Strategy comparison (the table proper).
    pub rows: Vec<Table2Row>,
    /// Marker ablation (§IV-C3).
    pub ablation: Vec<AblationRow>,
}

fn spec(repeats: u32) -> TransferSpec {
    TransferSpec {
        msg_len: 234 * 1024,
        repeats,
        gap_ns: 400_000,
    }
}

/// Run the experiment.
pub fn run(repeats: u32) -> Table2Result {
    let strategies = vec![
        ("disabled", CoalescingStrategy::Disabled),
        ("timeout-75us", CoalescingStrategy::Timeout { delay_us: 75 }),
        ("open-mx", CoalescingStrategy::OpenMx { delay_us: 75 }),
    ];
    let rows = parallel_map(strategies, |(label, strategy)| {
        let mut cluster = ClusterBuilder::new().nodes(2).strategy(strategy).build();
        let r = cluster.run_transfer(spec(repeats));
        Table2Row {
            strategy: label.to_string(),
            transfer_ns: r.transfer_ns,
            interrupts: r.interrupts_per_transfer,
        }
    });

    // Ablation: Open-MX coalescing with one marker class removed at a time.
    let mut policies: Vec<(String, MarkingPolicy)> =
        vec![("none".to_string(), MarkingPolicy::all())];
    for class in MarkClass::ALL {
        policies.push((class.label().to_string(), MarkingPolicy::all_except(class)));
    }
    let measured = parallel_map(policies, |(label, policy)| {
        let mut cluster = ClusterBuilder::new()
            .nodes(2)
            .strategy(CoalescingStrategy::OpenMx { delay_us: 75 })
            .marking(policy)
            .build();
        let r = cluster.run_transfer(spec(repeats));
        (label, r.transfer_ns)
    });
    let baseline = measured
        .iter()
        .find(|(l, _)| l == "none")
        .expect("baseline present")
        .1;
    let ablation = measured
        .into_iter()
        .map(|(removed, transfer_ns)| AblationRow {
            removed,
            transfer_ns,
            delta_ns: transfer_ns - baseline,
        })
        .collect();

    Table2Result { rows, ablation }
}

/// Format as tables.
pub fn table(result: &Table2Result) -> (Table, Table) {
    let mut t = Table::new(vec!["strategy", "transfer (us)", "interrupts"]);
    for row in &result.rows {
        t.row(vec![
            row.strategy.clone(),
            format!("{:.0}", row.transfer_ns / 1_000.0),
            format!("{:.1}", row.interrupts),
        ]);
    }
    let mut a = Table::new(vec!["marker removed", "transfer (us)", "delta (us)"]);
    for row in &result.ablation {
        a.row(vec![
            row.removed.clone(),
            format!("{:.0}", row.transfer_ns / 1_000.0),
            format!("{:+.1}", row.delta_ns / 1_000.0),
        ]);
    }
    (t, a)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_orderings() {
        let r = run(10);
        let row = |label: &str| r.rows.iter().find(|x| x.strategy == label).unwrap();
        let disabled = row("disabled");
        let timeout = row("timeout-75us");
        let openmx = row("open-mx");
        // Time: open-mx tracks disabled; timeout is slower.
        assert!(timeout.transfer_ns > disabled.transfer_ns);
        assert!(openmx.transfer_ns < disabled.transfer_ns * 1.06);
        // Interrupts: disabled raises many; open-mx stays near timeout.
        assert!(disabled.interrupts > timeout.interrupts * 4.0);
        assert!(openmx.interrupts < timeout.interrupts * 1.8);
    }

    #[test]
    fn rendezvous_is_the_most_valuable_marker() {
        let r = run(10);
        let delta = |label: &str| {
            r.ablation
                .iter()
                .find(|x| x.removed == label)
                .unwrap()
                .delta_ns
        };
        // §IV-C3: the rendezvous and pull-request markers carry the
        // handshake latency; the notify marker is worthless (the paper's
        // surprising result, reproduced).
        let rendezvous = delta("rendezvous");
        assert!(
            rendezvous > 10_000.0,
            "rendezvous marker should be worth >10us, got {rendezvous}"
        );
        assert!(delta("pull-request") > 10_000.0);
        assert!(
            delta("pull-reply-last") > 0.0 && delta("pull-reply-last") < rendezvous,
            "reply markers matter, but less than the handshake ones"
        );
        assert!(
            delta("notify").abs() < 5_000.0,
            "the notify marker is ~worthless (paper §IV-C3), got {}",
            delta("notify")
        );
    }
}

omx_sim::impl_to_json!(Table2Row {
    strategy,
    transfer_ns,
    interrupts
});
omx_sim::impl_to_json!(AblationRow {
    removed,
    transfer_ns,
    delta_ns
});
omx_sim::impl_to_json!(Table2Result { rows, ablation });
