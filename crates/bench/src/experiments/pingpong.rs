//! Figures 5 & 6 — ping-pong transfer time across message sizes.
//!
//! Figure 5 compares the default 75 µs timeout against disabled coalescing;
//! Figure 6 adds the Open-MX strategy. Values are normalized per size to
//! the fastest strategy, like the paper's "Normalized Transfer Time" axis:
//! timeout coalescing is ~7× worse at 1 B and disabled coalescing is the
//! slow one at 1 MiB, with Open-MX tracking the best of both everywhere.

use super::parallel_map;
use crate::report::Table;
use omx_core::prelude::*;

/// One (size, strategy) measurement.
#[derive(Debug, Clone)]
pub struct PingPongPoint {
    /// Strategy label.
    pub strategy: String,
    /// Message size in bytes.
    pub msg_len: u32,
    /// Mean half round trip, nanoseconds.
    pub half_rtt_ns: u64,
    /// Transfer time normalized to the fastest strategy at this size.
    pub normalized: f64,
}

/// Full sweep result.
#[derive(Debug, Clone)]
pub struct PingPongResult {
    /// Whether the Open-MX strategy is included (Fig. 6) or not (Fig. 5).
    pub with_openmx: bool,
    /// All points.
    pub points: Vec<PingPongPoint>,
}

/// The paper's x-axis: 1 B to 1 MiB.
pub fn sizes() -> Vec<u32> {
    vec![
        1,
        4,
        16,
        64,
        128,
        256,
        1 << 10,
        4 << 10,
        16 << 10,
        32 << 10,
        64 << 10,
        256 << 10,
        1 << 20,
    ]
}

/// Run the sweep; `with_openmx` selects Fig. 6 (true) vs Fig. 5 (false).
pub fn run(with_openmx: bool, iterations: u32) -> PingPongResult {
    let mut strategies = vec![
        ("timeout-75us", CoalescingStrategy::Timeout { delay_us: 75 }),
        ("disabled", CoalescingStrategy::Disabled),
    ];
    if with_openmx {
        strategies.push(("open-mx", CoalescingStrategy::OpenMx { delay_us: 75 }));
    }
    let mut jobs = Vec::new();
    for &(label, strategy) in &strategies {
        for &len in &sizes() {
            jobs.push((label, strategy, len));
        }
    }
    let raw = parallel_map(jobs, |(label, strategy, len)| {
        let mut cluster = ClusterBuilder::new().nodes(2).strategy(strategy).build();
        let r = cluster.run_pingpong(PingPongSpec {
            msg_len: len,
            iterations,
            warmup: iterations / 5,
        });
        (label.to_string(), len, r.half_rtt_ns)
    });
    // Normalize per size to the fastest strategy.
    let mut points = Vec::with_capacity(raw.len());
    for &len in &sizes() {
        let best = raw
            .iter()
            .filter(|(_, l, _)| *l == len)
            .map(|(_, _, t)| *t)
            .min()
            .expect("size measured") as f64;
        for (label, l, t) in &raw {
            if *l == len {
                points.push(PingPongPoint {
                    strategy: label.clone(),
                    msg_len: len,
                    half_rtt_ns: *t,
                    normalized: *t as f64 / best,
                });
            }
        }
    }
    PingPongResult {
        with_openmx,
        points,
    }
}

/// Format as a table.
pub fn table(result: &PingPongResult) -> Table {
    let mut t = Table::new(vec!["size (B)", "strategy", "half RTT (us)", "normalized"]);
    for p in &result.points {
        t.row(vec![
            p.msg_len.to_string(),
            p.strategy.clone(),
            format!("{:.1}", p.half_rtt_ns as f64 / 1_000.0),
            format!("{:.2}", p.normalized),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    fn point<'a>(r: &'a PingPongResult, strategy: &str, len: u32) -> &'a PingPongPoint {
        r.points
            .iter()
            .find(|p| p.strategy == strategy && p.msg_len == len)
            .expect("point")
    }

    #[test]
    fn fig5_small_and_large_crossover() {
        let r = run(false, 20);
        // Small messages: timeout is several times slower than disabled.
        assert!(point(&r, "timeout-75us", 1).normalized > 3.0);
        assert!(point(&r, "disabled", 1).normalized < 1.05);
        // Large messages: disabled is the slower one (the paper's gap is
        // ~15-20 %; ours is a little smaller because the ping-pong receiver
        // polls, so only per-interrupt dispatch is on the critical path).
        assert!(point(&r, "disabled", 1 << 20).normalized > 1.04);
        assert!(point(&r, "timeout-75us", 1 << 20).normalized < 1.1);
    }

    #[test]
    fn fig6_openmx_tracks_the_best_everywhere() {
        let r = run(true, 20);
        for &len in &sizes() {
            let openmx = point(&r, "open-mx", len).normalized;
            assert!(
                openmx < 1.25,
                "open-mx normalized {openmx} at {len} B — should track the best"
            );
        }
    }
}

omx_sim::impl_to_json!(PingPongPoint {
    strategy,
    msg_len,
    half_rtt_ns,
    normalized
});
omx_sim::impl_to_json!(PingPongResult {
    with_openmx,
    points
});
