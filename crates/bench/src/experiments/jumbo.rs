//! Jumbo frames — §IV-A's side claim.
//!
//! "A larger MTU (9000-bytes jumboframes) would exhibit the same behavior
//! for small messages (where the MTU does not matter) and for
//! proportionally-larger messages." We run the ping-pong at MTU 1500 and
//! 9000 and check both halves of the sentence.

use super::parallel_map;
use crate::report::Table;
use omx_core::prelude::*;

/// One (mtu, size, strategy) cell.
#[derive(Debug, Clone)]
pub struct JumboCell {
    /// Fabric MTU.
    pub mtu: u32,
    /// Message size.
    pub msg_len: u32,
    /// Strategy label.
    pub strategy: String,
    /// Half round trip (ns).
    pub half_rtt_ns: u64,
}

/// Full result.
#[derive(Debug, Clone)]
pub struct JumboResult {
    /// All cells.
    pub cells: Vec<JumboCell>,
}

/// Run the MTU comparison.
pub fn run(iterations: u32) -> JumboResult {
    let strategies = [
        ("timeout-75us", CoalescingStrategy::Timeout { delay_us: 75 }),
        ("disabled", CoalescingStrategy::Disabled),
        ("open-mx", CoalescingStrategy::OpenMx { delay_us: 75 }),
    ];
    // Small (MTU-independent), and a "proportionally larger" pair: 32 KiB at
    // MTU 1500 plays the role 192 KiB plays at MTU 9000 (≈ same 23 frames).
    let mut jobs = Vec::new();
    for &(label, strategy) in &strategies {
        for &(mtu, len) in &[
            (1_500u32, 64u32),
            (9_000, 64),
            (1_500, 32 << 10),
            (9_000, 192 << 10),
        ] {
            jobs.push((label, strategy, mtu, len));
        }
    }
    let cells = parallel_map(jobs, |(label, strategy, mtu, len)| {
        let mut cluster = ClusterBuilder::new()
            .nodes(2)
            .strategy(strategy)
            .mtu(mtu)
            .build();
        let r = cluster.run_pingpong(PingPongSpec {
            msg_len: len,
            iterations,
            warmup: iterations / 5,
        });
        JumboCell {
            mtu,
            msg_len: len,
            strategy: label.to_string(),
            half_rtt_ns: r.half_rtt_ns,
        }
    });
    JumboResult { cells }
}

/// Format as a table.
pub fn table(r: &JumboResult) -> Table {
    let mut t = Table::new(vec!["MTU", "size", "strategy", "half RTT (us)"]);
    for c in &r.cells {
        t.row(vec![
            c.mtu.to_string(),
            c.msg_len.to_string(),
            c.strategy.clone(),
            format!("{:.1}", c.half_rtt_ns as f64 / 1e3),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cell(r: &JumboResult, mtu: u32, len: u32, strategy: &str) -> u64 {
        r.cells
            .iter()
            .find(|c| c.mtu == mtu && c.msg_len == len && c.strategy == strategy)
            .expect("cell")
            .half_rtt_ns
    }

    #[test]
    fn jumbo_frames_preserve_the_small_message_behaviour() {
        let r = run(20);
        // Small messages: MTU is irrelevant, for every strategy.
        for strategy in ["timeout-75us", "disabled", "open-mx"] {
            let at1500 = cell(&r, 1_500, 64, strategy) as f64;
            let at9000 = cell(&r, 9_000, 64, strategy) as f64;
            assert!(
                (at1500 - at9000).abs() / at1500 < 0.02,
                "{strategy}: 64 B latency moved with MTU ({at1500} vs {at9000})"
            );
        }
    }

    #[test]
    fn jumbo_frames_preserve_the_shape_at_proportional_sizes() {
        let r = run(20);
        // The timeout-vs-disabled ratio for a ~23-fragment message is the
        // same story at both MTUs (same interrupt structure, bigger frames).
        let ratio = |mtu: u32, len: u32| {
            cell(&r, mtu, len, "timeout-75us") as f64 / cell(&r, mtu, len, "disabled") as f64
        };
        let std = ratio(1_500, 32 << 10);
        let jumbo = ratio(9_000, 192 << 10);
        assert!(std > 1.1, "timeout must lag at 23 fragments (std {std})");
        assert!(jumbo > 1.05, "same direction with jumbo frames ({jumbo})");
    }
}

omx_sim::impl_to_json!(JumboCell {
    mtu,
    msg_len,
    strategy,
    half_rtt_ns
});
omx_sim::impl_to_json!(JumboResult { cells });
