//! TCP/IP coexistence — the paper's non-interference claim.
//!
//! §IV-B / §VI: "non-Open-MX traffic (such as TCP/IP) is not disturbed by
//! our modification since the new coalescing techniques only look at marked
//! packets." We verify it two ways:
//!
//! 1. a pure raw-Ethernet (TCP stand-in) stream sees *identical* interrupt
//!    behaviour under Timeout-75 and Open-MX coalescing,
//! 2. mixing an Open-MX ping-pong into the stream changes the Open-MX
//!    latency (it gets its marked interrupts) without inflating the IP
//!    stream's own interrupt share.

use crate::report::Table;
use omx_core::prelude::*;
use omx_core::system::{Actor, ActorCtx};
use omx_core::wire::NodeId;
use std::any::Any;

/// Result of the coexistence check.
#[derive(Debug, Clone)]
pub struct CoexistenceResult {
    /// Interrupts for a pure IP stream under timeout coalescing.
    pub ip_only_timeout_irqs: u64,
    /// Interrupts for the same stream under Open-MX coalescing.
    pub ip_only_openmx_irqs: u64,
    /// Interrupts with Open-MX ping-pong traffic mixed in (Open-MX strategy).
    pub mixed_openmx_irqs: u64,
    /// Ping-pong half RTT alongside the IP stream, Open-MX strategy (ns).
    pub mixed_half_rtt_ns: u64,
    /// Ping-pong half RTT alongside the IP stream, timeout strategy (ns).
    pub mixed_half_rtt_timeout_ns: u64,
}

/// Paced raw-Ethernet source (TCP stand-in).
struct IpSource {
    dst: NodeId,
    remaining: u32,
    gap_ns: u64,
    stop_when_done: bool,
}

impl Actor for IpSource {
    fn on_start(&mut self, ctx: &mut ActorCtx) {
        self.on_timer(ctx, 0);
    }
    fn on_timer(&mut self, ctx: &mut ActorCtx, _token: u64) {
        if self.remaining == 0 {
            if self.stop_when_done {
                ctx.stop();
            }
            return;
        }
        self.remaining -= 1;
        ctx.send_raw_ethernet(self.dst, 1460);
        ctx.set_timer(ctx.now() + TimeDelta::from_nanos(self.gap_ns as i64), 0);
    }
    fn as_any(&self) -> &dyn Any {
        self
    }
}

const IP_PACKETS: u32 = 5_000;
const IP_GAP_NS: u64 = 4_000;

fn ip_only(strategy: CoalescingStrategy) -> u64 {
    let mut cluster = ClusterBuilder::new().nodes(2).strategy(strategy).build();
    cluster.add_actor(
        0,
        0,
        Box::new(IpSource {
            dst: NodeId(1),
            remaining: IP_PACKETS,
            gap_ns: IP_GAP_NS,
            stop_when_done: true,
        }),
    );
    cluster.run(Time::from_secs(60));
    cluster.metrics().nodes[1].nic.interrupts.get()
}

fn mixed(strategy: CoalescingStrategy) -> (u64, u64) {
    let mut cluster = ClusterBuilder::new()
        .nodes(2)
        .endpoints_per_node(2)
        .strategy(strategy)
        .build();
    // Background IP stream on endpoint 1 (runs for the whole measurement).
    cluster.add_actor(
        0,
        1,
        Box::new(IpSource {
            dst: NodeId(1),
            remaining: IP_PACKETS * 4,
            gap_ns: IP_GAP_NS,
            stop_when_done: false,
        }),
    );
    let report = cluster.run_pingpong(PingPongSpec {
        msg_len: 64,
        iterations: 200,
        warmup: 20,
    });
    (
        report.half_rtt_ns,
        cluster.metrics().nodes[1].nic.interrupts.get(),
    )
}

/// Run the coexistence experiment.
pub fn run() -> CoexistenceResult {
    let ip_only_timeout_irqs = ip_only(CoalescingStrategy::Timeout { delay_us: 75 });
    let ip_only_openmx_irqs = ip_only(CoalescingStrategy::OpenMx { delay_us: 75 });
    let (mixed_half_rtt_ns, mixed_openmx_irqs) = mixed(CoalescingStrategy::OpenMx { delay_us: 75 });
    let (mixed_half_rtt_timeout_ns, _) = mixed(CoalescingStrategy::Timeout { delay_us: 75 });
    CoexistenceResult {
        ip_only_timeout_irqs,
        ip_only_openmx_irqs,
        mixed_openmx_irqs,
        mixed_half_rtt_ns,
        mixed_half_rtt_timeout_ns,
    }
}

/// Format as a table.
pub fn table(r: &CoexistenceResult) -> Table {
    let mut t = Table::new(vec!["measurement", "value"]);
    t.row(vec![
        "IP-only stream, timeout-75us: rx interrupts".to_string(),
        r.ip_only_timeout_irqs.to_string(),
    ]);
    t.row(vec![
        "IP-only stream, open-mx: rx interrupts".to_string(),
        r.ip_only_openmx_irqs.to_string(),
    ]);
    t.row(vec![
        "mixed (IP + ping-pong), open-mx: rx interrupts".to_string(),
        r.mixed_openmx_irqs.to_string(),
    ]);
    t.row(vec![
        "ping-pong under IP load, open-mx (us)".to_string(),
        format!("{:.1}", r.mixed_half_rtt_ns as f64 / 1e3),
    ]);
    t.row(vec![
        "ping-pong under IP load, timeout-75us (us)".to_string(),
        format!("{:.1}", r.mixed_half_rtt_timeout_ns as f64 / 1e3),
    ]);
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ip_traffic_is_undisturbed_and_omx_still_gets_low_latency() {
        let r = run();
        // 1. Pure IP streams behave identically under both firmwares (no
        //    marked packets → the Open-MX logic never engages).
        assert_eq!(
            r.ip_only_timeout_irqs, r.ip_only_openmx_irqs,
            "IP-only interrupt behaviour must be identical"
        );
        // 2. Mixed in with a busy IP stream, the Open-MX strategy still
        //    delivers near-disabled small-message latency...
        assert!(
            r.mixed_half_rtt_ns < 30_000,
            "open-mx latency under IP load {} ns",
            r.mixed_half_rtt_ns
        );
        // ... while timeout coalescing cannot (the IP traffic keeps the
        // timer busy but the ping still waits tens of microseconds).
        assert!(
            r.mixed_half_rtt_timeout_ns > r.mixed_half_rtt_ns * 2,
            "timeout {} vs open-mx {}",
            r.mixed_half_rtt_timeout_ns,
            r.mixed_half_rtt_ns
        );
    }
}

omx_sim::impl_to_json!(CoexistenceResult {
    ip_only_timeout_irqs,
    ip_only_openmx_irqs,
    mixed_openmx_irqs,
    mixed_half_rtt_ns,
    mixed_half_rtt_timeout_ns,
});
