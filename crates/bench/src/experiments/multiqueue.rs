//! Multiqueue interrupt steering — the paper's §VI future-work idea.
//!
//! "We are thus looking at adding Open-MX-aware Multiqueue support to solve
//! this issue by attaching each communication channel processing to a
//! single core." We approximate it with flow-hashed IRQ steering
//! ([`omx_host::IrqRouting::Multiqueue`]) and measure the cache-line-bounce
//! reduction against the round-robin default on a multi-flow small-message
//! workload.

use super::parallel_map;
use crate::report::Table;
use omx_core::prelude::*;
use omx_core::system::{Actor, ActorCtx, RecvCompletion};
use omx_core::wire::EndpointAddr;
use omx_host::IrqRouting;
use std::any::Any;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

/// One routing policy's measurement.
#[derive(Debug, Clone)]
pub struct MultiqueueRow {
    /// Routing label.
    pub routing: String,
    /// Wall time to drain all flows, nanoseconds.
    pub elapsed_ns: u64,
    /// Cache-line bounces on the receiving node.
    pub rx_cache_bounces: u64,
    /// Receiver interrupts.
    pub rx_interrupts: u64,
}

/// Full comparison.
#[derive(Debug, Clone)]
pub struct MultiqueueResult {
    /// One row per routing policy.
    pub rows: Vec<MultiqueueRow>,
}

struct FlowSender {
    dst: EndpointAddr,
    remaining: u32,
    inflight_cap: u32,
    completed: u32,
    posted: u32,
}

impl Actor for FlowSender {
    /// Only the receiver counts deliveries and stops the run.
    fn may_stop(&self) -> bool {
        false
    }

    fn on_start(&mut self, ctx: &mut ActorCtx) {
        while self.posted < self.remaining.min(self.inflight_cap) {
            ctx.post_send(self.dst, 128, u64::from(self.posted), 0);
            self.posted += 1;
        }
    }
    fn on_send_complete(&mut self, ctx: &mut ActorCtx, _h: u64) {
        self.completed += 1;
        if self.posted < self.remaining {
            ctx.post_send(self.dst, 128, u64::from(self.posted), 0);
            self.posted += 1;
        }
    }
    fn as_any(&self) -> &dyn Any {
        self
    }
}

struct FlowReceiver {
    expect: u32,
    got: u32,
    done: Arc<AtomicUsize>,
    flows: usize,
}

impl Actor for FlowReceiver {
    fn on_start(&mut self, ctx: &mut ActorCtx) {
        for i in 0..8u64 {
            ctx.post_recv(0, 0, i);
        }
    }
    fn on_recv_complete(&mut self, ctx: &mut ActorCtx, _c: RecvCompletion) {
        self.got += 1;
        if self.got == self.expect {
            if self.done.fetch_add(1, Ordering::Relaxed) + 1 == self.flows {
                ctx.stop();
            }
        } else {
            ctx.post_recv(0, 0, 99);
        }
    }
    fn as_any(&self) -> &dyn Any {
        self
    }
}

/// Run `flows` parallel 128 B streams under each routing policy.
pub fn run(flows: usize, msgs_per_flow: u32) -> MultiqueueResult {
    let policies = vec![
        ("round-robin (default)", IrqRouting::RoundRobin),
        ("multiqueue (flow-hashed)", IrqRouting::Multiqueue),
        ("single core", IrqRouting::Fixed(0)),
    ];
    let rows = parallel_map(policies, |(label, routing)| {
        let mut cluster = ClusterBuilder::new()
            .nodes(2)
            .endpoints_per_node(flows)
            .strategy(CoalescingStrategy::OpenMx { delay_us: 75 })
            .routing(routing)
            .build();
        let done = Arc::new(AtomicUsize::new(0));
        for ep in 0..flows as u8 {
            cluster.add_actor(
                0,
                ep,
                Box::new(FlowSender {
                    dst: EndpointAddr::new(1, ep),
                    remaining: msgs_per_flow,
                    inflight_cap: 16,
                    completed: 0,
                    posted: 0,
                }),
            );
            cluster.add_actor(
                1,
                ep,
                Box::new(FlowReceiver {
                    expect: msgs_per_flow,
                    got: 0,
                    done: Arc::clone(&done),
                    flows,
                }),
            );
        }
        cluster.run(Time::from_secs(60));
        let m = cluster.metrics();
        MultiqueueRow {
            routing: label.to_string(),
            elapsed_ns: cluster.now().as_nanos(),
            rx_cache_bounces: m.nodes[1].host.cache_bounces.get(),
            rx_interrupts: m.nodes[1].nic.interrupts.get(),
        }
    });
    MultiqueueResult { rows }
}

/// Format as a table.
pub fn table(r: &MultiqueueResult) -> Table {
    let mut t = Table::new(vec!["routing", "elapsed (ms)", "rx bounces", "rx irqs"]);
    for row in &r.rows {
        t.row(vec![
            row.routing.clone(),
            format!("{:.2}", row.elapsed_ns as f64 / 1e6),
            row.rx_cache_bounces.to_string(),
            row.rx_interrupts.to_string(),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn multiqueue_cuts_channel_bounces() {
        let r = run(4, 400);
        let row = |label: &str| {
            r.rows
                .iter()
                .find(|x| x.routing.starts_with(label))
                .unwrap()
        };
        let rr = row("round-robin");
        let mq = row("multiqueue");
        // Flow-hashed steering keeps each channel's descriptors on one core:
        // far fewer bounces than round-robin scattering.
        assert!(
            mq.rx_cache_bounces * 4 < rr.rx_cache_bounces,
            "multiqueue {} vs round-robin {} bounces",
            mq.rx_cache_bounces,
            rr.rx_cache_bounces
        );
        // Steering every channel to its consumer's core trades cache
        // locality for handler-preemption of that consumer; it must stay in
        // the same performance class as the default.
        assert!(mq.elapsed_ns <= rr.elapsed_ns * 5 / 4);
    }
}

omx_sim::impl_to_json!(MultiqueueRow {
    routing,
    elapsed_ns,
    rx_cache_bounces,
    rx_interrupts,
});
omx_sim::impl_to_json!(MultiqueueResult { rows });
