//! Scale-out collective campaign (beyond the paper).
//!
//! The paper measures interrupt-coalescing strategies on a two-node
//! testbed; this campaign asks how the same tradeoff behaves when a
//! collective spans a switched cluster. Each cell runs one MPI collective
//! — barrier, allreduce (8 B and 64 KiB), or alltoall (16 KiB) — on
//! {4, 8, 16, 32, 64} two-rank nodes (quick mode: {4, 8, 16}) under
//! every coalescing strategy, through a switch whose egress buffers are
//! bounded to [`SWITCH_BUFFER_FRAMES`] frames so incast is a real hazard
//! rather than an abstraction (see DESIGN §8).
//!
//! Every cell drains to quiescence via `MpiWorld::run_drained`, which
//! asserts the sim-sanitizer invariants (exact byte conservation,
//! duplicate detection, no stranded protocol state) — so a green
//! `omx-bench scale` certifies the collectives and the bounded-buffer
//! recovery path together. Per-cell seeds are fixed: the report is
//! byte-identical across runs and machines — including across `--jobs`
//! values, since cells are independent simulations fanned out through
//! [`super::parallel_map`] and committed in cell-index order (DESIGN §11;
//! enforced by `tests/parallel_determinism.rs`).

use super::{all_strategies, parallel_map};
use crate::report::Table;
use omx_core::prelude::*;
use omx_mpi::{MpiWorld, Op, WorldSpec};
use omx_sim::json::{Json, ToJson};

/// Node counts swept (quick mode stops at 16).
pub const NODE_COUNTS: [usize; 5] = [4, 8, 16, 32, 64];

/// Ranks per node. Two co-located ranks (the paper's NAS runs co-locate
/// ranks the same way) make convergent traffic possible: two flows aimed
/// at the same node share one switch egress port, so collective skew can
/// pile frames onto a bounded buffer — with one rank per node every swept
/// collective is a per-round permutation and incast never materialises.
pub const RANKS_PER_NODE: usize = 2;

/// Switch egress buffer bound used by every cell, in frames. Small enough
/// that convergent bursts can overflow it at the larger node counts, large
/// enough (≈40 µs of 10 GbE serialization) that queueing never outlives
/// the 20 ms retransmission timeout.
pub const SWITCH_BUFFER_FRAMES: u32 = 32;

/// One cell of the campaign.
#[derive(Debug, Clone)]
pub struct ScaleCell {
    /// Collective name: `barrier`, `allreduce`, or `alltoall`.
    pub collective: String,
    /// Per-rank payload bytes (0 for barrier).
    pub bytes: u32,
    /// Simulated nodes ([`RANKS_PER_NODE`] ranks each).
    pub nodes: u32,
    /// Total MPI ranks (`nodes × RANKS_PER_NODE`).
    pub ranks: u32,
    /// Strategy label.
    pub strategy: String,
    /// Back-to-back iterations of the collective in this cell.
    pub iterations: u32,
    /// Mean completion time of one collective, ns (job elapsed /
    /// iterations).
    pub completion_ns: u64,
    /// Interrupts across all nodes for the whole job.
    pub total_interrupts: u64,
    /// Mean interrupts per node — the paper's host-load axis at scale.
    pub interrupts_per_node: f64,
    /// Frames tail-dropped at full switch egress buffers.
    pub switch_drops: u64,
    /// Deepest any switch egress buffer got, in frames.
    pub switch_occupancy_peak: u64,
    /// Eager data packets retransmitted (switch drops surface here).
    pub retransmits: u64,
    /// Sanitizer violations (always 0 in a successful run; the cell
    /// panics before rendering otherwise).
    pub sanitizer_violations: u64,
    /// Per-rank collective completion-latency percentiles (one sample per
    /// rank per iteration), present only when the campaign ran with
    /// `--slo`; the field is omitted from the JSON otherwise so default
    /// reports — and the pinned golden cell — stay byte-identical.
    pub slo: Option<SloSummary>,
}

/// Full campaign result.
#[derive(Debug, Clone)]
pub struct ScaleResult {
    /// All cells: collective-major, then node count, then strategy.
    pub cells: Vec<ScaleCell>,
}

/// The swept collectives as `(name, op, iterations, quick_iterations)`.
fn collectives(quick: bool) -> Vec<(&'static str, u32, Op, u32)> {
    let it = |full: u32, q: u32| if quick { q } else { full };
    vec![
        ("barrier", 0, Op::Barrier, it(10, 4)),
        ("allreduce", 8, Op::Allreduce { bytes: 8 }, it(10, 4)),
        (
            "allreduce",
            64 << 10,
            Op::Allreduce { bytes: 64 << 10 },
            it(4, 2),
        ),
        (
            "alltoall",
            16 << 10,
            Op::Alltoall { bytes: 16 << 10 },
            it(2, 1),
        ),
    ]
}

struct Job {
    collective: &'static str,
    bytes: u32,
    op: Op,
    nodes: usize,
    strategy: CoalescingStrategy,
    label: &'static str,
    iterations: u32,
    seed: u64,
    /// Summarize per-rank collective latency into [`ScaleCell::slo`].
    slo: bool,
}

fn run_cell(job: &Job) -> ScaleCell {
    let mut cfg = ClusterConfig::default();
    cfg.nic.strategy = job.strategy;
    cfg.fabric.switch_buffer_frames = SWITCH_BUFFER_FRAMES;
    cfg.seed = job.seed;
    let spec = WorldSpec {
        ranks: job.nodes * RANKS_PER_NODE,
        ranks_per_node: RANKS_PER_NODE,
    };
    let op = job.op.clone();
    let iters = job.iterations as usize;
    // run_drained panics unless the run reaches QueueEmpty with every
    // sanitizer invariant intact — byte conservation holds even when the
    // bounded switch buffers dropped frames (retransmission recovers).
    let (report, sanitizer) = MpiWorld::new(spec, cfg)
        .run_drained(|_| std::iter::repeat_with(|| op.clone()).take(iters).collect());
    let violations = sanitizer.all_violations();
    let m = &report.metrics;
    ScaleCell {
        collective: job.collective.to_string(),
        bytes: job.bytes,
        nodes: job.nodes as u32,
        ranks: (job.nodes * RANKS_PER_NODE) as u32,
        strategy: job.label.to_string(),
        iterations: job.iterations,
        completion_ns: report.elapsed_ns / u64::from(job.iterations.max(1)),
        total_interrupts: m.total_interrupts(),
        interrupts_per_node: m.total_interrupts() as f64 / job.nodes as f64,
        switch_drops: m.switch_drops,
        switch_occupancy_peak: m.switch_occupancy_peak,
        retransmits: m.total_retransmits(),
        sanitizer_violations: violations.len() as u64,
        // Scale programs are pure collective sequences, so each rank's
        // per-step latency IS one collective's completion time.
        slo: if job.slo {
            SloSummary::from_histogram(&report.op_latency)
        } else {
            None
        },
    }
}

/// The representative cell pinned by the golden file
/// (`crates/bench/tests/golden/scale_cell.json`): 16-node (32-rank)
/// 64 KiB allreduce under the default strategy, with the same seed the
/// campaign assigns that cell and the quick-mode iteration count.
pub fn golden_cell() -> ScaleCell {
    run_cell(&Job {
        collective: "allreduce",
        bytes: 64 << 10,
        op: Op::Allreduce { bytes: 64 << 10 },
        nodes: 16,
        strategy: CoalescingStrategy::Timeout { delay_us: 75 },
        label: "default",
        iterations: 2,
        seed: 0x5CA1E + 2 * 10_000 + 16 * 10,
        slo: false,
    })
}

/// Run the campaign. `quick` caps the sweep at 16 nodes and shrinks
/// iteration counts for CI smoke runs; cell structure and seeds for the
/// shared cells are identical in both modes. `slo` additionally summarizes
/// per-rank collective-completion latency into each cell (harvested from
/// actor timestamps the run already tracks — the simulation itself is
/// unchanged).
pub fn run(quick: bool, slo: bool) -> ScaleResult {
    let node_counts: &[usize] = if quick {
        &NODE_COUNTS[..3]
    } else {
        &NODE_COUNTS
    };
    let mut jobs = Vec::new();
    for (ci, (collective, bytes, op, iterations)) in collectives(quick).into_iter().enumerate() {
        for &nodes in node_counts {
            for (si, (label, strategy)) in all_strategies().into_iter().enumerate() {
                jobs.push(Job {
                    collective,
                    bytes,
                    op: op.clone(),
                    nodes,
                    strategy,
                    label,
                    iterations,
                    // Deterministic per-cell seed ⇒ byte-identical report
                    // across processes and machines.
                    seed: 0x5CA1E + (ci as u64) * 10_000 + (nodes as u64) * 10 + si as u64,
                    slo,
                });
            }
        }
    }
    let cells = parallel_map(jobs, |job| run_cell(&job));
    ScaleResult { cells }
}

/// Render completion time, per-node interrupt load, and the switch-egress
/// pressure counters, one row per cell. Cells carrying an [`SloSummary`]
/// (`--slo` runs) gain p50/p99/p999 collective-latency columns.
pub fn table(result: &ScaleResult) -> Table {
    let slo = result.cells.iter().any(|c| c.slo.is_some());
    let mut headers = vec![
        "collective",
        "size",
        "nodes",
        "ranks",
        "strategy",
        "time/op",
        "irq/node",
        "swdrop",
        "peak",
        "retx",
    ];
    if slo {
        headers.extend(["p50_us", "p99_us", "p999_us"]);
    }
    let mut t = Table::new(headers);
    for c in &result.cells {
        let size = match c.bytes {
            0 => "-".to_string(),
            b if b >= 1 << 10 => format!("{} KiB", b >> 10),
            b => format!("{b} B"),
        };
        let mut row = vec![
            c.collective.clone(),
            size,
            c.nodes.to_string(),
            c.ranks.to_string(),
            c.strategy.clone(),
            format!("{:.1} us", c.completion_ns as f64 / 1_000.0),
            format!("{:.1}", c.interrupts_per_node),
            c.switch_drops.to_string(),
            c.switch_occupancy_peak.to_string(),
            c.retransmits.to_string(),
        ];
        if slo {
            match &c.slo {
                Some(s) => row.extend([
                    format!("{:.1}", s.p50_ns as f64 / 1e3),
                    format!("{:.1}", s.p99_ns as f64 / 1e3),
                    format!("{:.1}", s.p999_ns as f64 / 1e3),
                ]),
                None => row.extend(["-".into(), "-".into(), "-".into()]),
            }
        }
        t.row(row);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    /// One representative cell end to end: quiesces, sanitizes clean, and
    /// actually works the switch (nonzero occupancy).
    #[test]
    fn sixteen_node_allreduce_cell_is_clean() {
        let cell = run_cell(&Job {
            collective: "allreduce",
            bytes: 64 << 10,
            op: Op::Allreduce { bytes: 64 << 10 },
            nodes: 16,
            strategy: CoalescingStrategy::Timeout { delay_us: 75 },
            label: "default",
            iterations: 2,
            seed: 0x5CA1E,
            slo: true,
        });
        assert_eq!(cell.sanitizer_violations, 0);
        assert!(cell.completion_ns > 0);
        assert!(
            cell.switch_occupancy_peak >= 1,
            "a 16-node 64 KiB allreduce must queue at the switch"
        );
        // 32 ranks × 2 iterations = 64 per-rank collective samples.
        let slo = cell.slo.expect("slo requested");
        assert_eq!(slo.count, 64);
        assert!(slo.p50_ns > 0 && slo.p50_ns <= slo.p999_ns);
    }

    /// A non-power-of-two world drains clean through the campaign path.
    #[test]
    fn odd_world_cell_is_clean() {
        let cell = run_cell(&Job {
            collective: "alltoall",
            bytes: 4 << 10,
            op: Op::Alltoall { bytes: 4 << 10 },
            nodes: 6,
            strategy: CoalescingStrategy::Disabled,
            label: "disabled",
            iterations: 1,
            seed: 0x0DD,
            slo: false,
        });
        assert_eq!(cell.sanitizer_violations, 0);
        assert_eq!(cell.nodes, 6);
        assert!(cell.slo.is_none(), "slo not requested");
    }
}

// Hand-written (not `impl_to_json!`) so the optional `slo` field is omitted
// entirely when absent: default `omx-bench scale` output — and the pinned
// golden cell — stay byte-identical to the pre-SLO reports.
impl ToJson for ScaleCell {
    fn to_json(&self) -> Json {
        let mut fields = vec![
            ("collective".to_string(), self.collective.to_json()),
            ("bytes".to_string(), self.bytes.to_json()),
            ("nodes".to_string(), self.nodes.to_json()),
            ("ranks".to_string(), self.ranks.to_json()),
            ("strategy".to_string(), self.strategy.to_json()),
            ("iterations".to_string(), self.iterations.to_json()),
            ("completion_ns".to_string(), self.completion_ns.to_json()),
            (
                "total_interrupts".to_string(),
                self.total_interrupts.to_json(),
            ),
            (
                "interrupts_per_node".to_string(),
                self.interrupts_per_node.to_json(),
            ),
            ("switch_drops".to_string(), self.switch_drops.to_json()),
            (
                "switch_occupancy_peak".to_string(),
                self.switch_occupancy_peak.to_json(),
            ),
            ("retransmits".to_string(), self.retransmits.to_json()),
            (
                "sanitizer_violations".to_string(),
                self.sanitizer_violations.to_json(),
            ),
        ];
        if let Some(slo) = &self.slo {
            fields.push(("slo".to_string(), slo.to_json()));
        }
        Json::Obj(fields)
    }
}
omx_sim::impl_to_json!(ScaleResult { cells });
