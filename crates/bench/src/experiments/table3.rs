//! Table III — packet mis-ordering vs. Stream coalescing.
//!
//! The paper emulates mis-ordering exactly as we do: the latency-sensitive
//! mark moves from the last fragment of a 32 KiB medium message (23
//! packets) to an earlier one (degree X marks fragment N−X). Paper values:
//! Open-MX 156/177/177 µs and Stream 156/171/174 µs for degrees 0/1/3, with
//! Stream's deferral succeeding ~30 % (X=1) and ~15 % (X=3) of the time.
//!
//! Fabric jitter stands in for the loaded-fabric timing noise that made the
//! real deferral only partially effective.

use super::parallel_map;
use crate::report::Table;
use omx_core::marking::MarkingPolicy;
use omx_core::prelude::*;
use omx_core::workloads::transfer::TransferSpec;
use omx_fabric::DisturbanceConfig;

/// One (strategy, degree) cell.
#[derive(Debug, Clone)]
pub struct Table3Cell {
    /// Strategy label.
    pub strategy: String,
    /// Mis-ordering degree (0 = correct order).
    pub degree: u32,
    /// Mean transfer time of the 32 KiB message, nanoseconds.
    pub transfer_ns: f64,
    /// Receiver interrupts per message (1.0 = deferral always succeeded).
    pub interrupts_per_msg: f64,
}

/// Full Table III result.
#[derive(Debug, Clone)]
pub struct Table3Result {
    /// All cells.
    pub cells: Vec<Table3Cell>,
}

/// Run the experiment.
pub fn run(repeats: u32) -> Table3Result {
    let strategies = vec![
        ("open-mx", CoalescingStrategy::OpenMx { delay_us: 75 }),
        ("stream", CoalescingStrategy::Stream { delay_us: 75 }),
    ];
    let degrees = [0u32, 1, 3];
    let mut jobs = Vec::new();
    for &(label, strategy) in &strategies {
        for &degree in &degrees {
            jobs.push((label, strategy, degree));
        }
    }
    let cells = parallel_map(jobs, |(label, strategy, degree)| {
        let marking = MarkingPolicy {
            medium_mark_displacement: degree,
            ..MarkingPolicy::all()
        };
        // Loaded-fabric jitter: enough to vary DMA/arrival overlap, not
        // enough to reorder whole blocks.
        let disturbance = DisturbanceConfig {
            jitter_ns: 400,
            ..DisturbanceConfig::none()
        };
        let mut cluster = ClusterBuilder::new()
            .nodes(2)
            .strategy(strategy)
            .marking(marking)
            .disturbance(disturbance)
            .build();
        let r = cluster.run_transfer(TransferSpec {
            msg_len: 32 * 1024,
            repeats,
            gap_ns: 300_000,
        });
        // Receiver-side interrupts per message (how often the deferral
        // failed shows up as a second interrupt).
        let rx_irqs = cluster.metrics().nodes[1].nic.interrupts.get();
        Table3Cell {
            strategy: label.to_string(),
            degree,
            transfer_ns: r.transfer_ns,
            interrupts_per_msg: rx_irqs as f64 / repeats as f64,
        }
    });
    Table3Result { cells }
}

/// Format as a table.
pub fn table(result: &Table3Result) -> Table {
    let mut t = Table::new(vec!["strategy", "degree", "transfer (us)", "rx irq/msg"]);
    for c in &result.cells {
        t.row(vec![
            c.strategy.clone(),
            c.degree.to_string(),
            format!("{:.0}", c.transfer_ns / 1_000.0),
            format!("{:.2}", c.interrupts_per_msg),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cell<'a>(r: &'a Table3Result, strategy: &str, degree: u32) -> &'a Table3Cell {
        r.cells
            .iter()
            .find(|c| c.strategy == strategy && c.degree == degree)
            .expect("cell")
    }

    #[test]
    fn misordering_slows_openmx_and_stream_recovers_part() {
        let r = run(60);
        // Correct order: both strategies equal (Stream's deferral is a
        // no-op when the mark is on the last fragment).
        let base_open = cell(&r, "open-mx", 0).transfer_ns;
        let base_stream = cell(&r, "stream", 0).transfer_ns;
        assert!((base_open - base_stream).abs() / base_open < 0.05);

        // Mis-ordering hurts Open-MX.
        for degree in [1, 3] {
            let open = cell(&r, "open-mx", degree).transfer_ns;
            assert!(
                open > base_open * 1.015,
                "degree {degree}: open-mx {open} vs base {base_open}"
            );
        }
        // Stream recovers (at least part of) the penalty at degree 1.
        let open1 = cell(&r, "open-mx", 1).transfer_ns;
        let stream1 = cell(&r, "stream", 1).transfer_ns;
        assert!(
            stream1 < open1,
            "stream ({stream1}) should beat open-mx ({open1}) under mis-ordering"
        );
        // At the deeper displacement the recovery is partial (paper: the
        // success rate drops to ~15 % at degree 3).
        let stream3 = cell(&r, "stream", 3).transfer_ns;
        assert!(
            stream3 > base_stream * 1.01,
            "stream should not fully recover at degree 3: {stream3} vs {base_stream}"
        );
    }

    #[test]
    fn stream_defer_success_is_partial() {
        let r = run(60);
        // At degree 1 the deferral sometimes succeeds (fewer interrupts
        // than open-mx) but not always (more than exactly 1 per message
        // after accounting for ack/echo interrupts).
        let open1 = cell(&r, "open-mx", 1).interrupts_per_msg;
        let stream1 = cell(&r, "stream", 1).interrupts_per_msg;
        assert!(
            stream1 <= open1,
            "stream must not raise more interrupts than open-mx"
        );
    }
}

omx_sim::impl_to_json!(Table3Cell {
    strategy,
    degree,
    transfer_ns,
    interrupts_per_msg,
});
omx_sim::impl_to_json!(Table3Result { cells });
