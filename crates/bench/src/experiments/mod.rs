//! All paper experiments.

pub mod adaptive;
pub mod coexistence;
pub mod faults;
pub mod fig4;
pub mod jumbo;
pub mod multiqueue;
pub mod nas;
pub mod offload;
pub mod overhead;
pub mod pingpong;
pub mod scale;
pub mod sensitivity;
pub mod table1;
pub mod table2;
pub mod table3;

use omx_core::prelude::*;

/// The four strategies of the paper's tables, in column order.
pub fn paper_strategies() -> Vec<(&'static str, CoalescingStrategy)> {
    vec![
        ("default", CoalescingStrategy::Timeout { delay_us: 75 }),
        ("disabled", CoalescingStrategy::Disabled),
        ("open-mx", CoalescingStrategy::OpenMx { delay_us: 75 }),
        ("stream", CoalescingStrategy::Stream { delay_us: 75 }),
    ]
}

/// All five implemented strategies: the paper's four columns plus the
/// §VI adaptive strategy (used by the fault campaign, which must cover
/// every recovery × coalescing interaction).
pub fn all_strategies() -> Vec<(&'static str, CoalescingStrategy)> {
    let mut s = paper_strategies();
    s.push((
        "adaptive",
        CoalescingStrategy::Adaptive {
            min_delay_us: 0,
            max_delay_us: 75,
        },
    ));
    s
}

/// Run independent campaign cells in parallel, committing results in
/// input-index order so the output — and every report rendered from it —
/// is byte-identical to a serial run.
///
/// The worker count is the process-wide jobs policy (`--jobs N` >
/// `OMX_JOBS` > all cores; see [`omx_sim::pool`]). At `--jobs 1` this *is*
/// the serial path — a plain in-order `map` on the calling thread, no pool
/// involved; above 1 the cells run on the shared work-stealing pool
/// ([`omx_sim::pool::global`]) and a panic in any cell (a failed sanitizer
/// invariant, a cell that did not quiesce) propagates to the caller just
/// as it would serially. Each cell owns its cluster, seed, and telemetry
/// buffers, so nothing is shared until the ordered commit.
pub fn parallel_map<I, O, F>(inputs: Vec<I>, f: F) -> Vec<O>
where
    I: Send,
    O: Send,
    F: Fn(I) -> O + Sync,
{
    if omx_sim::pool::effective_jobs() <= 1 {
        inputs.into_iter().map(f).collect()
    } else {
        omx_sim::pool::global().map(inputs, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parallel_map_preserves_order() {
        let out = parallel_map((0..50).collect(), |x: i32| x * 2);
        assert_eq!(out, (0..50).map(|x| x * 2).collect::<Vec<_>>());
    }

    /// The serial path (`--jobs 1`) and the pooled path commit the same
    /// output — the executor-level half of the campaign byte-identity
    /// contract (the campaign-level half lives in
    /// `tests/parallel_determinism.rs`).
    #[test]
    fn serial_and_pooled_paths_agree() {
        let serial =
            omx_sim::pool::with_jobs(1, || parallel_map((0..40).collect(), |x: i32| x * x - 3));
        let pooled =
            omx_sim::pool::with_jobs(4, || parallel_map((0..40).collect(), |x: i32| x * x - 3));
        assert_eq!(serial, pooled);
    }

    #[test]
    fn strategies_cover_the_paper_columns() {
        let s = paper_strategies();
        assert_eq!(s.len(), 4);
        assert_eq!(s[0].0, "default");
        assert_eq!(s[1].0, "disabled");
    }

    #[test]
    fn all_strategies_adds_adaptive() {
        let s = all_strategies();
        assert_eq!(s.len(), 5);
        assert_eq!(s[4].0, "adaptive");
    }
}
