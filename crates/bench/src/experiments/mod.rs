//! All paper experiments.

pub mod adaptive;
pub mod coexistence;
pub mod faults;
pub mod fig4;
pub mod jumbo;
pub mod multiqueue;
pub mod nas;
pub mod overhead;
pub mod pingpong;
pub mod scale;
pub mod sensitivity;
pub mod table1;
pub mod table2;
pub mod table3;

use omx_core::prelude::*;

/// The four strategies of the paper's tables, in column order.
pub fn paper_strategies() -> Vec<(&'static str, CoalescingStrategy)> {
    vec![
        ("default", CoalescingStrategy::Timeout { delay_us: 75 }),
        ("disabled", CoalescingStrategy::Disabled),
        ("open-mx", CoalescingStrategy::OpenMx { delay_us: 75 }),
        ("stream", CoalescingStrategy::Stream { delay_us: 75 }),
    ]
}

/// All five implemented strategies: the paper's four columns plus the
/// §VI adaptive strategy (used by the fault campaign, which must cover
/// every recovery × coalescing interaction).
pub fn all_strategies() -> Vec<(&'static str, CoalescingStrategy)> {
    let mut s = paper_strategies();
    s.push((
        "adaptive",
        CoalescingStrategy::Adaptive {
            min_delay_us: 0,
            max_delay_us: 75,
        },
    ));
    s
}

/// Run independent jobs in parallel, preserving input order in the output.
pub fn parallel_map<I, O, F>(inputs: Vec<I>, f: F) -> Vec<O>
where
    I: Send,
    O: Send,
    F: Fn(I) -> O + Sync,
{
    let threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4);
    let n = inputs.len();
    let mut out: Vec<Option<O>> = Vec::with_capacity(n);
    out.resize_with(n, || None);
    let out = std::sync::Mutex::new(out);
    let jobs = std::sync::Mutex::new(inputs.into_iter().enumerate().collect::<Vec<_>>());
    std::thread::scope(|scope| {
        for _ in 0..threads.min(n.max(1)) {
            scope.spawn(|| loop {
                let Some((idx, input)) = jobs.lock().expect("jobs lock").pop() else {
                    break;
                };
                let result = f(input);
                out.lock().expect("out lock")[idx] = Some(result);
            });
        }
    });
    out.into_inner()
        .expect("out lock")
        .into_iter()
        .map(|o| o.expect("all jobs ran"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parallel_map_preserves_order() {
        let out = parallel_map((0..50).collect(), |x: i32| x * 2);
        assert_eq!(out, (0..50).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn strategies_cover_the_paper_columns() {
        let s = paper_strategies();
        assert_eq!(s.len(), 4);
        assert_eq!(s[0].0, "default");
        assert_eq!(s[1].0, "disabled");
    }

    #[test]
    fn all_strategies_adds_adaptive() {
        let s = all_strategies();
        assert_eq!(s.len(), 5);
        assert_eq!(s[4].0, "adaptive");
    }
}
