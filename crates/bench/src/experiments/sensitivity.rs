//! Cost-model sensitivity — how robust are the paper's conclusions?
//!
//! The reproduction calibrates `CostModel` constants against the paper's
//! anchors; a fair question is whether the headline conclusions depend on
//! the exact values. This experiment perturbs the three most influential
//! constants (process wakeup latency, per-packet copy bandwidth, and the
//! application-preemption cost) by ±50 % and re-measures the two headline
//! ratios:
//!
//! * `rate_ratio` — Table I, 0 B: default-coalescing rate / disabled rate
//!   (paper: ≈1.9×; the claim is "more than a factor of two"),
//! * `latency_ratio` — Fig. 5, small messages: timeout latency / disabled
//!   latency (paper: ≈7.5×; the claim is "latency inflates to the delay").
//!
//! A conclusion is robust when the ratio stays on the same side of 1 with a
//! healthy margin across the whole perturbation range.

use super::parallel_map;
use crate::report::Table;
use omx_core::prelude::*;

/// Which constant is being perturbed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Knob {
    /// `proc_wakeup_ns` — blocked-process wakeup latency.
    ProcWakeup,
    /// `copy_bytes_per_us` — receive-path copy bandwidth.
    CopyBandwidth,
    /// `irq_preempt_ns` — application-disturbance cost per interrupt.
    IrqPreempt,
}

impl Knob {
    /// All perturbed knobs.
    pub const ALL: [Knob; 3] = [Knob::ProcWakeup, Knob::CopyBandwidth, Knob::IrqPreempt];

    /// Table label.
    pub fn label(&self) -> &'static str {
        match self {
            Knob::ProcWakeup => "proc_wakeup_ns",
            Knob::CopyBandwidth => "copy_bytes_per_us",
            Knob::IrqPreempt => "irq_preempt_ns",
        }
    }

    fn apply(&self, costs: &mut omx_host::CostModel, scale: f64) {
        let s = |v: u64| ((v as f64) * scale).round().max(1.0) as u64;
        match self {
            Knob::ProcWakeup => costs.proc_wakeup_ns = s(costs.proc_wakeup_ns),
            Knob::CopyBandwidth => costs.copy_bytes_per_us = s(costs.copy_bytes_per_us),
            Knob::IrqPreempt => costs.irq_preempt_ns = s(costs.irq_preempt_ns),
        }
    }
}

/// One perturbation's measurements.
#[derive(Debug, Clone)]
pub struct SensitivityRow {
    /// Perturbed knob.
    pub knob: String,
    /// Multiplier applied to the calibrated value.
    pub scale: f64,
    /// Default-coalescing / disabled message-rate ratio (0 B messages).
    pub rate_ratio: f64,
    /// Timeout / disabled small-message latency ratio.
    pub latency_ratio: f64,
}

/// Full study.
#[derive(Debug, Clone)]
pub struct SensitivityResult {
    /// One row per (knob, scale), plus the calibrated baseline.
    pub rows: Vec<SensitivityRow>,
}

fn measure(knob: Option<(Knob, f64)>, messages: u32) -> (f64, f64) {
    let build = |strategy: CoalescingStrategy| {
        let mut builder = ClusterBuilder::new().nodes(2).strategy(strategy);
        if let Some((k, scale)) = knob {
            k.apply(&mut builder.config_mut().host.costs, scale);
        }
        builder.build()
    };
    // Rate ratio (Table I, 0 B).
    let spec = StreamSpec {
        msg_len: 0,
        messages,
        window: 32,
    };
    let default_rate = build(CoalescingStrategy::Timeout { delay_us: 75 })
        .run_stream(spec)
        .msgs_per_sec;
    let disabled_rate = build(CoalescingStrategy::Disabled)
        .run_stream(spec)
        .msgs_per_sec;
    // Latency ratio (Fig. 5, 8 B).
    let pp = PingPongSpec {
        msg_len: 8,
        iterations: 30,
        warmup: 5,
    };
    let timeout_lat = build(CoalescingStrategy::Timeout { delay_us: 75 })
        .run_pingpong(pp)
        .half_rtt_ns as f64;
    let disabled_lat = build(CoalescingStrategy::Disabled)
        .run_pingpong(pp)
        .half_rtt_ns as f64;
    (default_rate / disabled_rate, timeout_lat / disabled_lat)
}

/// Run the study.
pub fn run(messages: u32) -> SensitivityResult {
    let mut jobs: Vec<Option<(Knob, f64)>> = vec![None];
    for knob in Knob::ALL {
        for scale in [0.5, 0.75, 1.25, 1.5] {
            jobs.push(Some((knob, scale)));
        }
    }
    let rows = parallel_map(jobs, |job| {
        let (rate_ratio, latency_ratio) = measure(job, messages);
        match job {
            None => SensitivityRow {
                knob: "baseline (calibrated)".to_string(),
                scale: 1.0,
                rate_ratio,
                latency_ratio,
            },
            Some((knob, scale)) => SensitivityRow {
                knob: knob.label().to_string(),
                scale,
                rate_ratio,
                latency_ratio,
            },
        }
    });
    SensitivityResult { rows }
}

/// Format as a table.
pub fn table(r: &SensitivityResult) -> Table {
    let mut t = Table::new(vec![
        "knob",
        "scale",
        "default/disabled rate",
        "timeout/disabled latency",
    ]);
    for row in &r.rows {
        t.row(vec![
            row.knob.clone(),
            format!("{:.2}", row.scale),
            format!("{:.2}x", row.rate_ratio),
            format!("{:.2}x", row.latency_ratio),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conclusions_survive_50_percent_perturbations() {
        let r = run(600);
        for row in &r.rows {
            // The rate conclusion (coalescing helps message rate) and the
            // latency conclusion (the timeout ruins small latency) must hold
            // for every perturbation, with margin.
            assert!(
                row.rate_ratio > 1.3,
                "{} x{}: rate ratio collapsed to {:.2}",
                row.knob,
                row.scale,
                row.rate_ratio
            );
            assert!(
                row.latency_ratio > 3.0,
                "{} x{}: latency ratio collapsed to {:.2}",
                row.knob,
                row.scale,
                row.latency_ratio
            );
        }
        // And the baseline sits near the paper's observed ratios.
        let base = r
            .rows
            .iter()
            .find(|x| x.knob.starts_with("baseline"))
            .unwrap();
        assert!((1.6..2.6).contains(&base.rate_ratio), "{}", base.rate_ratio);
        assert!(
            (5.0..16.0).contains(&base.latency_ratio),
            "{}",
            base.latency_ratio
        );
    }
}

omx_sim::impl_to_json!(SensitivityRow {
    knob,
    scale,
    rate_ratio,
    latency_ratio
});
omx_sim::impl_to_json!(SensitivityResult { rows });
