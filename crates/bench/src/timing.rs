//! Minimal wall-clock micro-benchmark harness.
//!
//! The original harness used Criterion; this self-contained replacement
//! keeps the same bench entry points (`cargo bench`) without an external
//! dependency. It runs a warmup pass, then a fixed number of timed
//! iterations, and prints mean / min per-iteration wall time. Numbers are
//! indicative, not statistically rigorous — good enough to spot an
//! order-of-magnitude regression in the simulator hot paths.

use std::hint::black_box;
use std::time::Instant;

/// Per-benchmark wall-clock statistics, in nanoseconds per iteration.
#[derive(Debug, Clone, Copy)]
pub struct BenchStats {
    /// Mean wall time per timed iteration.
    pub mean_ns: u64,
    /// Minimum wall time over the timed iterations (least-noise estimate).
    pub min_ns: u64,
    /// Number of timed iterations.
    pub iters: u32,
}

/// Run `f` `iters` times (after `warmup` untimed runs) and return per-call
/// mean and min wall time.
pub fn measure<T>(warmup: u32, iters: u32, mut f: impl FnMut() -> T) -> BenchStats {
    assert!(iters > 0, "need at least one timed iteration");
    for _ in 0..warmup {
        black_box(f());
    }
    let mut total_ns: u128 = 0;
    let mut min_ns: u128 = u128::MAX;
    for _ in 0..iters {
        let t0 = Instant::now();
        black_box(f());
        let dt = t0.elapsed().as_nanos();
        total_ns += dt;
        min_ns = min_ns.min(dt);
    }
    BenchStats {
        mean_ns: (total_ns / iters as u128) as u64,
        min_ns: min_ns as u64,
        iters,
    }
}

/// Like [`measure`], printing the result under the given `group/name` label.
///
/// Setting the `OMX_BENCH_SMOKE` environment variable clamps every bench to
/// one warmup and one timed iteration — CI uses this to prove the bench
/// binaries still run without paying for real statistics.
pub fn bench<T>(group: &str, name: &str, warmup: u32, iters: u32, f: impl FnMut() -> T) {
    let (warmup, iters) = if std::env::var_os("OMX_BENCH_SMOKE").is_some() {
        (1, 1)
    } else {
        (warmup, iters)
    };
    let stats = measure(warmup, iters, f);
    println!(
        "{group}/{name:<32} mean {:>12}  min {:>12}  ({} iters)",
        fmt_ns(stats.mean_ns as u128),
        fmt_ns(stats.min_ns as u128),
        stats.iters
    );
}

fn fmt_ns(ns: u128) -> String {
    if ns >= 1_000_000_000 {
        format!("{:.3} s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.3} ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.3} µs", ns as f64 / 1e3)
    } else {
        format!("{ns} ns")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_runs_and_counts() {
        let mut calls = 0u32;
        bench("test", "counter", 2, 5, || {
            calls += 1;
            calls
        });
        assert_eq!(calls, 7, "warmup + timed iterations all execute");
    }

    #[test]
    fn ns_formatting() {
        assert_eq!(fmt_ns(999), "999 ns");
        assert_eq!(fmt_ns(1_500), "1.500 µs");
        assert_eq!(fmt_ns(2_500_000), "2.500 ms");
        assert_eq!(fmt_ns(3_000_000_000), "3.000 s");
    }
}
