//! Minimal wall-clock micro-benchmark harness.
//!
//! The original harness used Criterion; this self-contained replacement
//! keeps the same bench entry points (`cargo bench`) without an external
//! dependency. It runs a warmup pass, then a fixed number of timed
//! iterations, and prints mean / min per-iteration wall time. Numbers are
//! indicative, not statistically rigorous — good enough to spot an
//! order-of-magnitude regression in the simulator hot paths.

use std::hint::black_box;
use std::time::Instant;

/// Run `f` `iters` times (after `warmup` untimed runs) and print per-call
/// mean and min wall time under the given `group/name` label.
pub fn bench<T>(group: &str, name: &str, warmup: u32, iters: u32, mut f: impl FnMut() -> T) {
    assert!(iters > 0, "need at least one timed iteration");
    for _ in 0..warmup {
        black_box(f());
    }
    let mut total_ns: u128 = 0;
    let mut min_ns: u128 = u128::MAX;
    for _ in 0..iters {
        let t0 = Instant::now();
        black_box(f());
        let dt = t0.elapsed().as_nanos();
        total_ns += dt;
        min_ns = min_ns.min(dt);
    }
    let mean_ns = total_ns / iters as u128;
    println!(
        "{group}/{name:<32} mean {:>12}  min {:>12}  ({iters} iters)",
        fmt_ns(mean_ns),
        fmt_ns(min_ns)
    );
}

fn fmt_ns(ns: u128) -> String {
    if ns >= 1_000_000_000 {
        format!("{:.3} s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.3} ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.3} µs", ns as f64 / 1e3)
    } else {
        format!("{ns} ns")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_runs_and_counts() {
        let mut calls = 0u32;
        bench("test", "counter", 2, 5, || {
            calls += 1;
            calls
        });
        assert_eq!(calls, 7, "warmup + timed iterations all execute");
    }

    #[test]
    fn ns_formatting() {
        assert_eq!(fmt_ns(999), "999 ns");
        assert_eq!(fmt_ns(1_500), "1.500 µs");
        assert_eq!(fmt_ns(2_500_000), "2.500 ms");
        assert_eq!(fmt_ns(3_000_000_000), "3.000 s");
    }
}
