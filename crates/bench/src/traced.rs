//! `omx-bench trace <experiment>` — capture structured traces.
//!
//! Runs a small representative scenario of an experiment with packet-level
//! tracing enabled, then writes three artifacts per strategy under
//! `results/`:
//!
//! * `trace_<exp>_<strategy>.chrome.json` — Chrome trace-event format; load
//!   in Perfetto (<https://ui.perfetto.dev>) or `chrome://tracing`,
//! * `trace_<exp>_<strategy>.jsonl` — one JSON object per event,
//! * `trace_<exp>_<strategy>.txt` — human-readable timeline.
//!
//! It also prints a per-strategy latency attribution (mean phase
//! decomposition over the delivered messages) and, when both the `timeout`
//! and `disabled` strategies are in the scenario, states how much of the
//! latency gap between them the coalesce-hold phase explains — the paper's
//! Figure 5 plateau, made mechanical.

use omx_core::latency::{self, LatencyBreakdown, PhaseSummary};
use omx_core::prelude::*;
use omx_core::trace::TraceEvent;
use std::path::Path;

/// Trace buffer capacity: large enough that a capture scenario never
/// evicts (a ping-pong iteration is ~7 events per direction).
const TRACE_CAPACITY: usize = 1 << 16;

/// One traced strategy run.
pub struct TraceCapture {
    /// Strategy label (file-name friendly).
    pub strategy: String,
    /// Mean half round trip reported by the workload, nanoseconds.
    pub half_rtt_ns: u64,
    /// Per-message latency decompositions.
    pub breakdowns: Vec<LatencyBreakdown>,
    /// Aggregate of `breakdowns`.
    pub summary: PhaseSummary,
    /// Paths written (chrome, jsonl, txt).
    pub files: Vec<String>,
}

/// Experiments the trace subcommand understands.
pub fn supported() -> &'static [&'static str] {
    &["fig5", "fig6", "pingpong", "table2"]
}

fn scenario(experiment: &str) -> Option<(u32, Vec<(&'static str, CoalescingStrategy)>)> {
    let timeout = ("timeout-75us", CoalescingStrategy::Timeout { delay_us: 75 });
    let disabled = ("disabled", CoalescingStrategy::Disabled);
    let openmx = ("open-mx", CoalescingStrategy::OpenMx { delay_us: 75 });
    match experiment {
        // The paper's headline latency case: 0-byte ping-pong, where the
        // 75 µs hold dominates end-to-end latency (Fig. 5 left edge).
        "fig5" | "pingpong" => Some((0, vec![timeout, disabled])),
        "fig6" => Some((0, vec![timeout, disabled, openmx])),
        // Table II's 234 KiB transfer anatomy.
        "table2" => Some((234 * 1024, vec![timeout, disabled, openmx])),
        _ => None,
    }
}

fn capture_one(
    experiment: &str,
    label: &str,
    strategy: CoalescingStrategy,
    msg_len: u32,
    iterations: u32,
    out_override: Option<&str>,
) -> std::io::Result<TraceCapture> {
    let mut cluster = ClusterBuilder::new().nodes(2).strategy(strategy).build();
    cluster.enable_tracing(TRACE_CAPACITY);
    let report = cluster.run_pingpong(PingPongSpec {
        msg_len,
        iterations,
        warmup: 1,
    });
    let tracer = cluster.tracer().expect("tracing enabled");
    let events: Vec<TraceEvent> = tracer.events().copied().collect();
    let breakdowns = latency::analyze(&events);
    let summary = PhaseSummary::of(&breakdowns);

    let dir = Path::new("results");
    std::fs::create_dir_all(dir)?;
    let stem = format!("trace_{experiment}_{label}");
    let chrome_path = match out_override {
        Some(f) => std::path::PathBuf::from(f),
        None => dir.join(format!("{stem}.chrome.json")),
    };
    std::fs::write(&chrome_path, tracer.to_chrome_json().render_pretty())?;
    let jsonl_path = dir.join(format!("{stem}.jsonl"));
    std::fs::write(&jsonl_path, tracer.to_jsonl())?;
    let txt_path = dir.join(format!("{stem}.txt"));
    std::fs::write(&txt_path, tracer.render())?;
    let files = vec![
        chrome_path.display().to_string(),
        jsonl_path.display().to_string(),
        txt_path.display().to_string(),
    ];
    for f in &files {
        eprintln!("wrote {f}");
    }
    Ok(TraceCapture {
        strategy: label.to_string(),
        half_rtt_ns: report.half_rtt_ns,
        breakdowns,
        summary,
        files,
    })
}

/// Run the trace subcommand. `out_override` (the `--trace=FILE` value)
/// redirects the *chrome* export of the first strategy; other artifacts
/// keep their default paths.
pub fn run(experiment: &str, quick: bool, out_override: Option<&str>) -> Result<(), String> {
    let Some((msg_len, strategies)) = scenario(experiment) else {
        return Err(format!(
            "experiment '{experiment}' has no trace scenario (supported: {})",
            supported().join(", ")
        ));
    };
    let iterations = if quick { 5 } else { 20 };
    println!(
        "== trace capture: {experiment} ({} B ping-pong, {iterations} iterations) ==",
        msg_len
    );
    let mut captures = Vec::new();
    for (i, (label, strategy)) in strategies.into_iter().enumerate() {
        let cap = capture_one(
            experiment,
            label,
            strategy,
            msg_len,
            iterations,
            if i == 0 { out_override } else { None },
        )
        .map_err(|e| format!("writing trace artifacts: {e}"))?;
        println!(
            "-- {} (half RTT {:.1} us) --",
            cap.strategy,
            cap.half_rtt_ns as f64 / 1_000.0
        );
        print!("{}", cap.summary.render());
        captures.push(cap);
    }
    attribution(&captures);
    Ok(())
}

/// When the scenario contains both the timeout and disabled strategies,
/// report how much of their latency gap the coalesce-hold phase explains.
fn attribution(captures: &[TraceCapture]) {
    let find = |l: &str| captures.iter().find(|c| c.strategy == l);
    let (Some(timeout), Some(disabled)) = (find("timeout-75us"), find("disabled")) else {
        return;
    };
    let gap = timeout
        .summary
        .mean_total_ns()
        .saturating_sub(disabled.summary.mean_total_ns());
    if gap == 0 {
        return;
    }
    // coalesce_hold is phase index 2 (see PhaseSummary::PHASE_NAMES).
    let hold_gap = timeout
        .summary
        .mean_phase_ns(2)
        .saturating_sub(disabled.summary.mean_phase_ns(2));
    println!(
        "\ntimeout-75us is {:.1} us slower per message than disabled; \
         the coalesce-hold phase accounts for {:.1} us of that ({:.0}%).",
        gap as f64 / 1_000.0,
        hold_gap as f64 / 1_000.0,
        100.0 * hold_gap as f64 / gap as f64
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_supported_experiment_has_a_scenario() {
        for exp in supported() {
            assert!(scenario(exp).is_some(), "{exp} must have a scenario");
        }
        assert!(scenario("fig4").is_none());
    }

    #[test]
    fn zero_byte_pingpong_attributes_gap_to_coalesce_hold() {
        // The acceptance scenario: under the 75 µs timeout the coalesce-hold
        // phase dominates a 0-byte ping-pong; with coalescing disabled it
        // vanishes.
        let run = |strategy| {
            let mut cluster = ClusterBuilder::new().nodes(2).strategy(strategy).build();
            cluster.enable_tracing(TRACE_CAPACITY);
            cluster.run_pingpong(PingPongSpec {
                msg_len: 0,
                iterations: 5,
                warmup: 1,
            });
            let events: Vec<omx_core::trace::TraceEvent> = cluster
                .tracer()
                .expect("enabled")
                .events()
                .copied()
                .collect();
            let b = omx_core::latency::analyze(&events);
            assert!(!b.is_empty(), "breakdowns assembled");
            for x in &b {
                assert_eq!(x.phase_sum(), x.total_ns(), "phases sum to total");
            }
            PhaseSummary::of(&b)
        };
        let timeout = run(CoalescingStrategy::Timeout { delay_us: 75 });
        let disabled = run(CoalescingStrategy::Disabled);
        // ~75 us of hold under the timeout strategy...
        assert!(
            timeout.mean_phase_ns(2) > 50_000,
            "timeout coalescing holds packets ({} ns)",
            timeout.mean_phase_ns(2)
        );
        // ...and (near) none when disabled.
        assert!(
            disabled.mean_phase_ns(2) < 5_000,
            "disabled coalescing holds nothing ({} ns)",
            disabled.mean_phase_ns(2)
        );
        assert!(timeout.mean_total_ns() > disabled.mean_total_ns());
    }
}
