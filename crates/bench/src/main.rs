//! Experiment CLI — regenerates every table and figure of the paper.
//!
//! ```text
//! omx-bench <experiment> [--quick] [--slo] [--jobs N] [--sim-jobs N] [--trace[=FILE]]
//! omx-bench trace <experiment> [--quick]
//! omx-bench timeline <experiment> [--quick] [--jobs N]
//! omx-bench perf [--smoke] [--iters N] [--jobs N] [--sim-jobs N]
//!
//! experiments:
//!   fig4               message rate vs coalescing delay (Fig. 4)
//!   overhead           per-packet interrupt overhead (§IV-B2)
//!   fig5               ping-pong, timeout vs disabled (Fig. 5)
//!   fig6               ping-pong + open-mx (Fig. 6)
//!   table1             message rate by size × strategy (Table I)
//!   table2             234 KiB anatomy + marker ablation (Table II, §IV-C3)
//!   table3             packet mis-ordering vs stream coalescing (Table III)
//!   table4 [prefix]    NAS execution times (Table IV); optional row filter
//!   table5             NAS IS interrupt counts (Table V; implies the IS rows)
//!   faults             fault-injection campaign: loss × strategy × size,
//!                      ring overflow, sanitizer invariants (beyond paper)
//!   scale              collectives on 4-64 switched nodes × strategy, with
//!                      bounded switch egress buffers (beyond paper)
//!   offload            NIC-resident collectives head-to-head vs the five
//!                      host coalescing strategies (beyond paper)
//!   adaptive           adaptive coalescing comparison (§VI)
//!   coexistence        TCP/IP non-interference check (§IV/§VI)
//!   multiqueue         flow-hashed IRQ steering (§VI future work)
//!   jumbo              MTU 9000 sanity check (§IV-A)
//!   sensitivity        cost-model perturbation study (robustness)
//!   perf [--smoke]     substrate micro-benchmarks → BENCH_sim.json
//!   all                everything above (except perf)
//! ```
//!
//! `trace <experiment>` runs a small representative scenario with
//! packet-level tracing enabled and writes Chrome trace-event JSON
//! (Perfetto-loadable), JSONL and a text timeline under `results/`,
//! then prints a per-phase latency attribution (supported: fig5, fig6,
//! pingpong, table2). The global `--trace[=FILE]` flag does the same after
//! a normal experiment run; `FILE` overrides the Chrome export path.
//!
//! `timeline <experiment>` re-runs a campaign's headline cell with the
//! windowed telemetry subsystem enabled and writes the 100 µs counter
//! timeline (JSONL + Perfetto counter tracks) under `results/`
//! (supported: scale; `--quick` shrinks the world for CI smoke runs).
//!
//! `--slo` adds p50/p99/p999 message-latency summaries to the `faults`
//! and `scale` campaign cells (table columns and a `slo` JSON field;
//! default output is byte-identical to runs without the flag).
//!
//! `--quick` shrinks repetition counts (useful for smoke tests). Results are
//! printed and written as JSON under `results/`.
//!
//! `--jobs N` sets how many campaign cells run concurrently on the in-repo
//! work-stealing pool (`omx_sim::pool`). The default is all cores (or the
//! `OMX_JOBS` environment variable); `--jobs 1` is the serial path. Any
//! value produces byte-identical artifacts — cells are independent
//! simulations with fixed seeds and results commit in cell-index order
//! (DESIGN §11) — so `--jobs` only changes wall-clock time.
//!
//! `--sim-jobs N` sets how many worker threads the conservative parallel
//! DES core (DESIGN §12) uses *inside* each drained simulation (default 1
//! = serial engine; or the `OMX_SIM_JOBS` environment variable). It is
//! orthogonal to `--jobs`: one splits a single big simulation across
//! cores, the other runs independent cells concurrently. Any value
//! produces byte-identical artifacts.
//!
//! `--iters N` (perf only) overrides every benchmark's timed iteration
//! count; the `--smoke` regression gate still applies to the means it
//! produces.

use omx_bench::experiments::{
    adaptive, coexistence, faults, fig4, jumbo, multiqueue, nas, offload, overhead, pingpong,
    scale, sensitivity, table1, table2, table3,
};
use omx_bench::write_json;

/// Fail loudly if a results artifact could not be written: a benchmark whose
/// output silently vanished is indistinguishable from one that succeeded.
fn persist(what: &str, result: std::io::Result<()>) {
    if let Err(e) = result {
        eprintln!("failed to write {what}: {e}");
        std::process::exit(1);
    }
}

/// `(subcommand, one-line description)` for `omx-bench list`.
const EXPERIMENTS: &[(&str, &str)] = &[
    ("fig4", "message rate vs coalescing delay (Fig. 4)"),
    ("overhead", "per-packet interrupt overhead (§IV-B2)"),
    ("fig5", "ping-pong, timeout vs disabled (Fig. 5)"),
    ("fig6", "ping-pong + open-mx (Fig. 6)"),
    ("table1", "message rate by size × strategy (Table I)"),
    (
        "table2",
        "234 KiB anatomy + marker ablation (Table II, §IV-C3)",
    ),
    (
        "table3",
        "packet mis-ordering vs stream coalescing (Table III)",
    ),
    (
        "table4",
        "NAS execution times (Table IV); optional row filter",
    ),
    ("table5", "NAS IS interrupt counts (Table V)"),
    (
        "faults",
        "fault-injection campaign: loss × strategy × size (beyond paper)",
    ),
    (
        "scale",
        "collectives on 4-64 switched nodes × strategy (beyond paper)",
    ),
    (
        "offload",
        "NIC-resident collectives vs host coalescing (beyond paper)",
    ),
    ("adaptive", "adaptive coalescing comparison (§VI)"),
    ("coexistence", "TCP/IP non-interference check (§IV/§VI)"),
    ("multiqueue", "flow-hashed IRQ steering (§VI future work)"),
    ("jumbo", "MTU 9000 sanity check (§IV-A)"),
    ("sensitivity", "cost-model perturbation study (robustness)"),
    (
        "perf",
        "substrate micro-benchmarks → BENCH_sim.json (--smoke, --iters N)",
    ),
    (
        "trace",
        "trace capture: omx-bench trace <experiment> [--quick]",
    ),
    (
        "timeline",
        "windowed telemetry: omx-bench timeline <experiment> [--quick]",
    ),
    ("all", "every experiment above (except perf)"),
];

/// Extract `--NAME N` / `--NAME=N` from `args`, returning the parsed value
/// and removing the flag (and its detached value) so the positional scan
/// below never mistakes `N` for an experiment name. Exits with status 2 on
/// a malformed or missing value, like the unknown-experiment path.
fn take_numeric_flag(args: &mut Vec<String>, name: &str) -> Option<u64> {
    let prefix = format!("{name}=");
    let idx = args
        .iter()
        .position(|a| a == name || a.starts_with(&prefix))?;
    let raw = if args[idx] == name {
        if idx + 1 >= args.len() {
            eprintln!("{name} requires a value, e.g. `{name} 4`");
            std::process::exit(2);
        }
        args.remove(idx + 1)
    } else {
        args[idx][prefix.len()..].to_string()
    };
    args.remove(idx);
    match raw.parse::<u64>() {
        Ok(n) if n > 0 => Some(n),
        _ => {
            eprintln!("{name} expects a positive integer, got '{raw}'");
            std::process::exit(2);
        }
    }
}

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    // Campaign parallelism: `--jobs N` pins the work-stealing pool width
    // (over OMX_JOBS and auto-detection); must be set before anything
    // touches the shared pool. `--jobs 1` selects the serial path.
    if let Some(jobs) = take_numeric_flag(&mut args, "--jobs") {
        omx_sim::pool::set_jobs(jobs as usize);
    }
    // Engine parallelism: `--sim-jobs N` sets how many worker threads the
    // conservative parallel DES core uses *inside* one drained simulation
    // (over OMX_SIM_JOBS; default 1 = serial). Orthogonal to `--jobs`,
    // which parallelizes across campaign cells. Output is byte-identical
    // at any value (DESIGN §12).
    if let Some(jobs) = take_numeric_flag(&mut args, "--sim-jobs") {
        omx_sim::pool::set_sim_jobs(jobs as usize);
    }
    let iters_override = take_numeric_flag(&mut args, "--iters").map(|n| n as u32);
    let quick = args.iter().any(|a| a == "--quick");
    let slo = args.iter().any(|a| a == "--slo");
    // Global --trace[=FILE] flag: capture a trace after the experiment.
    let trace_flag: Option<Option<String>> = args.iter().find_map(|a| {
        if a == "--trace" {
            Some(None)
        } else {
            a.strip_prefix("--trace=").map(|f| Some(f.to_string()))
        }
    });
    let mut positional = args.iter().filter(|a| !a.starts_with("--"));
    let which = positional.next().map(String::as_str).unwrap_or("all");
    let filter = positional.next().cloned().unwrap_or_default();

    if which == "list" {
        for (name, what) in EXPERIMENTS {
            println!("{name:<18} {what}");
        }
        return;
    }

    if which == "trace" {
        let experiment = if filter.is_empty() { "fig5" } else { &filter };
        let out = trace_flag.as_ref().and_then(|f| f.as_deref());
        if let Err(e) = omx_bench::traced::run(experiment, quick, out) {
            eprintln!("{e}");
            std::process::exit(2);
        }
        return;
    }

    if which == "timeline" {
        let experiment = if filter.is_empty() { "scale" } else { &filter };
        if let Err(e) = omx_bench::timeline::run(experiment, quick) {
            eprintln!("{e}");
            std::process::exit(2);
        }
        return;
    }

    let t0 = std::time::Instant::now();
    match which {
        "fig4" => run_fig4(quick),
        "overhead" => run_overhead(quick),
        "fig5" => run_pingpong(false, quick),
        "fig6" => run_pingpong(true, quick),
        "table1" => run_table1(),
        "table2" => run_table2(quick),
        "table3" => run_table3(quick),
        "table4" => run_nas(&filter),
        "table5" => run_nas("is."),
        "faults" => run_faults(quick, slo),
        "scale" => run_scale(quick, slo),
        "offload" => run_offload(quick),
        "adaptive" => run_adaptive(quick),
        "coexistence" => run_coexistence(),
        "multiqueue" => run_multiqueue(),
        "jumbo" => run_jumbo(quick),
        "sensitivity" => run_sensitivity(quick),
        "perf" => run_perf(args.iter().any(|a| a == "--smoke"), iters_override),
        "all" => {
            run_fig4(quick);
            run_overhead(quick);
            run_pingpong(false, quick);
            run_pingpong(true, quick);
            run_table1();
            run_table2(quick);
            run_table3(quick);
            run_adaptive(quick);
            run_coexistence();
            run_multiqueue();
            run_jumbo(quick);
            run_sensitivity(quick);
            run_faults(quick, slo);
            run_scale(quick, slo);
            run_offload(quick);
            run_nas(if quick { "is." } else { "" });
        }
        other => {
            eprintln!("unknown experiment '{other}'; `omx-bench list` enumerates them");
            std::process::exit(2);
        }
    }
    if let Some(out) = &trace_flag {
        if omx_bench::traced::supported().contains(&which) {
            // A failed trace export (e.g. --trace=FILE pointing at an
            // unwritable path) fails the run: silently missing artifacts
            // are indistinguishable from successful ones.
            if let Err(e) = omx_bench::traced::run(which, quick, out.as_deref()) {
                eprintln!("{e}");
                std::process::exit(1);
            }
        } else {
            eprintln!(
                "--trace: no trace scenario for '{which}' (supported: {})",
                omx_bench::traced::supported().join(", ")
            );
        }
    }
    eprintln!("total wall time: {:.1}s", t0.elapsed().as_secs_f64());
}

fn run_fig4(quick: bool) {
    println!("== Figure 4: message rate vs interrupt coalescing delay ==");
    let result = fig4::run(if quick { 600 } else { 2_000 });
    println!("{}", fig4::table(&result).render());
    persist(
        "fig4_message_rate JSON",
        write_json("fig4_message_rate", &result),
    );
    // gnuplot: one column block per curve (delay, rate).
    let mut configs: Vec<String> = result.points.iter().map(|p| p.config.clone()).collect();
    configs.dedup();
    let mut rows = Vec::new();
    for config in &configs {
        rows.push(vec![format!("\n# {config}")]);
        for p in result.points.iter().filter(|p| &p.config == config) {
            rows.push(vec![
                p.delay_us.to_string(),
                format!("{:.0}", p.msgs_per_sec),
            ]);
        }
        rows.push(vec![String::new()]);
    }
    persist(
        "fig4 dat",
        omx_bench::report::write_dat("fig4", "delay_us msgs_per_sec (blocks per config)", &rows),
    );
    persist(
        "fig4 gnuplot script",
        omx_bench::report::write_gnuplot(
            "fig4",
            "set xlabel 'Interrupt coalescing (microseconds)'\n\
         set ylabel 'Messages received / second'\n\
         set key bottom right\n\
         plot 'fig4.dat' index 0 w lp t 'single core, no sleep', \\\n\
              '' index 1 w lp t 'single core, sleep possible', \\\n\
              '' index 2 w lp t 'all cores, sleep possible (default)'\n\
         pause -1\n",
        ),
    );
}

fn run_overhead(quick: bool) {
    println!("== §IV-B2: per-packet interrupt overhead ==");
    let result = overhead::run(if quick { 5_000 } else { 20_000 });
    println!("{}", overhead::table(&result).render());
    println!(
        "paper anchors: disabled {} ns, coalesced {} ns\n",
        result.paper_disabled_ns, result.paper_coalesced_ns
    );
    persist("overhead JSON", write_json("overhead", &result));
}

fn run_pingpong(with_openmx: bool, quick: bool) {
    let (name, label) = if with_openmx {
        ("fig6_pingpong", "Figure 6")
    } else {
        ("fig5_pingpong", "Figure 5")
    };
    println!("== {label}: ping-pong transfer time ==");
    let result = pingpong::run(with_openmx, if quick { 20 } else { 60 });
    println!("{}", pingpong::table(&result).render());
    persist("name JSON", write_json(name, &result));
    // gnuplot: blocks per strategy (size, normalized transfer time).
    let mut strategies: Vec<String> = result.points.iter().map(|p| p.strategy.clone()).collect();
    strategies.dedup();
    let mut rows = Vec::new();
    for strategy in &strategies {
        rows.push(vec![format!("\n# {strategy}")]);
        for p in result.points.iter().filter(|p| &p.strategy == strategy) {
            rows.push(vec![p.msg_len.to_string(), format!("{:.3}", p.normalized)]);
        }
        rows.push(vec![String::new()]);
    }
    persist(
        "name dat",
        omx_bench::report::write_dat(name, "size_bytes normalized_transfer_time", &rows),
    );
    persist(
        "name gnuplot script",
        omx_bench::report::write_gnuplot(
            name,
            &format!(
                "set logscale x 2\nset xlabel 'Message size (bytes)'\n\
             set ylabel 'Normalized Transfer Time'\nset key top right\n\
             plot for [i=0:{}] '{name}.dat' index i w lp t columnheader(1)\npause -1\n",
                strategies.len() - 1
            ),
        ),
    );
}

fn run_table1() {
    println!("== Table I: message rate (msg/s) by size and strategy ==");
    let result = table1::run();
    println!("{}", table1::table(&result).render());
    persist(
        "table1_message_rate JSON",
        write_json("table1_message_rate", &result),
    );
}

fn run_table2(quick: bool) {
    println!("== Table II: 234 KiB transfer anatomy ==");
    let result = table2::run(if quick { 10 } else { 30 });
    let (main, ablation) = table2::table(&result);
    println!("{}", main.render());
    println!("-- §IV-C3 marker ablation (open-mx coalescing) --");
    println!("{}", ablation.render());
    persist("table2_anatomy JSON", write_json("table2_anatomy", &result));
}

fn run_table3(quick: bool) {
    println!("== Table III: packet mis-ordering (32 KiB medium messages) ==");
    let result = table3::run(if quick { 40 } else { 200 });
    println!("{}", table3::table(&result).render());
    persist(
        "table3_misordering JSON",
        write_json("table3_misordering", &result),
    );
}

fn run_nas(filter: &str) {
    println!("== Tables IV & V: NAS Parallel Benchmarks (16 ranks, 2 nodes) ==");
    if !filter.is_empty() {
        println!("(row filter: {filter})");
    }
    let result = nas::run(filter);
    println!("-- Table IV: execution time (s) --");
    println!("{}", nas::table_iv(&result).render());
    println!("-- Table V: interrupts --");
    println!("{}", nas::table_v(&result).render());
    persist(
        "table4_table5_nas JSON",
        write_json("table4_table5_nas", &result),
    );
}

fn run_coexistence() {
    println!("== §IV/§VI: TCP/IP coexistence (non-interference claim) ==");
    let result = coexistence::run();
    println!("{}", coexistence::table(&result).render());
    persist("coexistence JSON", write_json("coexistence", &result));
}

fn run_multiqueue() {
    println!("== §VI: multiqueue interrupt steering (future work) ==");
    let result = multiqueue::run(4, 1_000);
    println!("{}", multiqueue::table(&result).render());
    persist("multiqueue JSON", write_json("multiqueue", &result));
}

fn run_jumbo(quick: bool) {
    println!("== §IV-A: jumbo frames (MTU 9000) ==");
    let result = jumbo::run(if quick { 20 } else { 50 });
    println!("{}", jumbo::table(&result).render());
    persist("jumbo JSON", write_json("jumbo", &result));
}

fn run_sensitivity(quick: bool) {
    println!("== Cost-model sensitivity: are the conclusions robust? ==");
    let result = sensitivity::run(if quick { 500 } else { 1_200 });
    println!("{}", sensitivity::table(&result).render());
    persist("sensitivity JSON", write_json("sensitivity", &result));
}

fn run_perf(smoke: bool, iters: Option<u32>) {
    println!(
        "== substrate perf baseline{} ==",
        if smoke { " (smoke)" } else { "" }
    );
    let report = omx_bench::perf::run(smoke, iters);
    omx_bench::perf::print_summary(&report);
    match omx_bench::perf::write_report(&report) {
        Ok(()) => println!("wrote BENCH_sim.json"),
        Err(e) => eprintln!("failed to write BENCH_sim.json: {e}"),
    }
    // The campaign/* serial-vs-parallel comparison doubles as a CI
    // artifact: results/campaign_speedup.json.
    persist(
        "campaign speedup comparison",
        omx_bench::perf::write_campaign_comparison(&report),
    );
    // Likewise the e2e/*_par parallel-engine comparison:
    // results/engine_speedup.json.
    persist(
        "engine speedup comparison",
        omx_bench::perf::write_engine_comparison(&report),
    );
    // Smoke mode doubles as CI's perf regression gate: any bench with a
    // recorded baseline that regressed past 2× fails the run; on a
    // multi-core runner the campaign/* parallel benches must clear 2×
    // over their same-run serial baselines (vacuous at --jobs 1 or on
    // hosts with fewer than 4 cores, where the speedup cannot exist),
    // and the e2e/*_par parallel-engine benches must clear 1.5× over
    // their same-run serial-engine baselines (vacuous below --sim-jobs 4
    // or 4 cores — epoch barriers only pay off with real parallelism).
    if smoke {
        let regressed = omx_bench::perf::regressions(&report, 2.0);
        for (id, mean, baseline) in &regressed {
            eprintln!("perf regression: {id} mean {mean} ns > 2x baseline {baseline} ns");
        }
        let shortfalls = omx_bench::perf::speedup_shortfalls(&report, 2.0, 4);
        for (id, speedup) in &shortfalls {
            eprintln!("campaign speedup shortfall: {id} at {speedup:.2}x, expected >= 2x serial");
        }
        let engine_shortfalls = omx_bench::perf::engine_speedup_shortfalls(&report, 1.5, 4, 4);
        for (id, speedup) in &engine_shortfalls {
            eprintln!(
                "engine speedup shortfall: {id} at {speedup:.2}x, expected >= 1.5x serial engine"
            );
        }
        if !regressed.is_empty() || !shortfalls.is_empty() || !engine_shortfalls.is_empty() {
            std::process::exit(3);
        }
    }
}

fn run_scale(quick: bool, slo: bool) {
    println!("== Scale-out collectives: nodes x strategy, bounded switch buffers ==");
    let result = scale::run(quick, slo);
    println!("{}", scale::table(&result).render());
    println!(
        "{} cells, {} switch drops, {} sanitizer violations",
        result.cells.len(),
        result.cells.iter().map(|c| c.switch_drops).sum::<u64>(),
        result
            .cells
            .iter()
            .map(|c| c.sanitizer_violations)
            .sum::<u64>()
    );
    persist("scale JSON", write_json("scale", &result));
}

fn run_offload(quick: bool) {
    println!("== NIC-resident collectives vs host coalescing ==");
    let result = offload::run(quick);
    println!("{}", offload::table(&result).render());
    let off = |f: fn(&offload::OffloadCell) -> u64| {
        result
            .cells
            .iter()
            .filter(|c| c.mode == offload::OFFLOAD_MODE)
            .map(f)
            .sum::<u64>()
    };
    println!(
        "{} cells, {} offloaded ops ({} completed), {} sanitizer violations",
        result.cells.len(),
        off(|c| c.offload.ops_posted),
        off(|c| c.offload.ops_completed),
        result
            .cells
            .iter()
            .map(|c| c.sanitizer_violations)
            .sum::<u64>()
    );
    persist("offload JSON", write_json("offload", &result));
}

fn run_adaptive(quick: bool) {
    println!("== §VI: adaptive coalescing ==");
    let result = adaptive::run(if quick { 20 } else { 60 }, quick);
    println!("{}", adaptive::table(&result).render());
    persist("adaptive JSON", write_json("adaptive", &result));
}

fn run_faults(quick: bool, slo: bool) {
    println!("== Fault injection: loss × strategy × size, ring overflow ==");
    let result = faults::run(quick, slo);
    println!("{}", faults::table(&result).render());
    println!(
        "{} cells, {} sanitizer violations",
        result.cells.len(),
        result
            .cells
            .iter()
            .map(|c| c.sanitizer_violations)
            .sum::<u64>()
    );
    persist("faults JSON", write_json("faults", &result));
}
