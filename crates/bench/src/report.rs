//! Result formatting and persistence.
//!
//! Every experiment persists its result struct as pretty-printed JSON
//! under `results/<name>.json` via [`write_json`]. The JSON shape is the
//! struct's field list, verbatim (see `omx_sim::impl_to_json!`); renderings
//! are deterministic — fixed seeds give byte-identical files, which the
//! golden tests in `crates/bench/tests/` rely on. The schemas by
//! experiment family:
//!
//! ## Message-rate family
//!
//! - `fig4_message_rate.json` — `{points: [{config, delay_us,
//!   msgs_per_sec, interrupts_per_msg, wakeups}]}`: one point per
//!   coalescing delay × host config curve of Fig. 4.
//! - `table1_message_rate.json` — `{cells: [{msg_len, strategy,
//!   msgs_per_sec, interrupts_per_msg}]}`: Table I, size × strategy.
//! - `overhead.json` — `{rows: [{config, per_packet_ns, interrupts,
//!   packets}], paper_disabled_ns, paper_coalesced_ns}`: §IV-B2 per-packet
//!   interrupt overhead against the paper's anchors.
//!
//! ## Latency family
//!
//! - `fig5_pingpong.json` / `fig6_pingpong.json` — `{with_openmx, points:
//!   [{strategy, msg_len, half_rtt_ns, normalized}]}`: ping-pong transfer
//!   time by size, absolute and normalized to the disabled strategy.
//! - `table2_anatomy.json` — `{rows: [{strategy, transfer_ns,
//!   interrupts}], ablation: [{removed, transfer_ns, delta_ns}]}`: the
//!   234 KiB anatomy plus the §IV-C3 marker ablation.
//! - `table3_misordering.json` — `{cells: [{strategy, degree,
//!   transfer_ns, interrupts_per_msg}]}`: mis-ordering degree × strategy.
//! - `jumbo.json` — `{cells: [{mtu, msg_len, strategy, half_rtt_ns}]}`.
//!
//! ## Application family
//!
//! - `table4_table5_nas.json` — `{cells: [{name, strategy, seconds,
//!   interrupts, stolen_s}]}`: NAS kernel × strategy execution times
//!   (Table IV) and interrupt counts (Table V).
//! - `adaptive.json` — `{rows: [{workload, strategy, value}]}`: §VI
//!   adaptive-coalescing comparison across workload archetypes.
//! - `coexistence.json`, `multiqueue.json`, `sensitivity.json` — scalar
//!   row sets for the §VI side studies (field lists in their modules).
//!
//! ## Robustness campaigns (beyond the paper)
//!
//! - `faults.json` — `{cells: [{scenario, msg_len, loss, strategy,
//!   messages, completion_ns, msgs_per_sec, goodput_mbps, recovery_ratio,
//!   eager_retransmits, pull_rerequests, ring_drops, frames_dropped,
//!   sanitizer_violations}]}`: loss × strategy × size plus ring-pressure
//!   cells; every cell drains to quiescence under sanitizer invariants.
//! - `scale.json` — `{cells: [{collective, bytes, nodes, ranks, strategy,
//!   iterations, completion_ns, total_interrupts, interrupts_per_node,
//!   switch_drops, switch_occupancy_peak, retransmits,
//!   sanitizer_violations}]}`: collectives on 4–64 switched nodes with
//!   bounded switch egress buffers (see
//!   [`crate::experiments::scale`]).
//! - `offload.json` — `{cells: [{collective, bytes, nodes, ranks, mode,
//!   iterations, completion_ns, total_interrupts, interrupts_per_node,
//!   retransmits, offload: {ops_posted, ops_completed, data_tx, data_rx,
//!   acks_tx, acks_rx, retransmits, duplicates, combines},
//!   sanitizer_violations, slo: {count, mean_ns, p50_ns, p99_ns,
//!   p999_ns}}]}`: NIC-resident collectives head-to-head against the five
//!   host coalescing strategies on 4–64 nodes. `mode` is a strategy label
//!   or `nic-offload`; the nested `offload` object is the NIC engine's
//!   counter block summed over nodes (all zero in host modes), and `slo`
//!   is always present (see [`crate::experiments::offload`]).
//!
//! Under `--slo`, `faults.json` and `scale.json` cells additionally carry
//! `slo: {count, mean_ns, p50_ns, p99_ns, p999_ns}` (message / collective
//! completion latency); the field is omitted entirely without the flag, so
//! default reports are byte-identical to pre-SLO releases.
//!
//! `timeline_<exp>_<N>n.{jsonl,chrome.json}` (written by `omx-bench
//! timeline`) are the windowed telemetry exports; their schema is
//! documented in [`crate::timeline`] and DESIGN §10.
//!
//! `BENCH_sim.json` (repo root, written by `omx-bench perf`) is the
//! substrate micro-benchmark baseline; its schema is documented in
//! [`crate::perf`].

use std::fmt::Write as _;
use std::path::Path;

use omx_sim::json::ToJson;

/// A simple aligned text table for terminal output.
#[derive(Debug, Default)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Start a table with the given column headers.
    pub fn new<S: Into<String>>(header: Vec<S>) -> Self {
        Table {
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row (must match the header length).
    pub fn row<S: Into<String>>(&mut self, cells: Vec<S>) {
        let cells: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(cells.len(), self.header.len(), "row/header mismatch");
        self.rows.push(cells);
    }

    /// Render with aligned columns.
    pub fn render(&self) -> String {
        let cols = self.header.len();
        let mut widths = vec![0usize; cols];
        for (i, h) in self.header.iter().enumerate() {
            widths[i] = h.len();
        }
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        let line = |out: &mut String, cells: &[String]| {
            for (i, c) in cells.iter().enumerate() {
                let _ = write!(out, "| {:width$} ", c, width = widths[i]);
            }
            out.push_str("|\n");
        };
        line(&mut out, &self.header);
        for (i, w) in widths.iter().enumerate() {
            let _ = write!(out, "|{:-<width$}", "", width = w + 2);
            if i + 1 == cols {
                out.push_str("|\n");
            }
        }
        for row in &self.rows {
            line(&mut out, row);
        }
        out
    }
}

/// Write whitespace-separated data rows under `results/<name>.dat` for
/// gnuplot (one comment header line, then one row per entry).
pub fn write_dat(name: &str, header: &str, rows: &[Vec<String>]) -> std::io::Result<()> {
    let dir = Path::new("results");
    std::fs::create_dir_all(dir)?;
    let path = dir.join(format!("{name}.dat"));
    let mut out = format!("# {header}\n");
    for row in rows {
        out.push_str(&row.join(" "));
        out.push('\n');
    }
    std::fs::write(&path, out)?;
    Ok(())
}

/// Write a gnuplot script under `results/<name>.gp`.
pub fn write_gnuplot(name: &str, script: &str) -> std::io::Result<()> {
    let dir = Path::new("results");
    std::fs::create_dir_all(dir)?;
    std::fs::write(dir.join(format!("{name}.gp")), script)?;
    Ok(())
}

/// Write a result struct as pretty JSON under `results/<name>.json`.
pub fn write_json<T: ToJson>(name: &str, value: &T) -> std::io::Result<()> {
    let dir = Path::new("results");
    std::fs::create_dir_all(dir)?;
    let path = dir.join(format!("{name}.json"));
    let json = value.to_json().render_pretty();
    std::fs::write(&path, json)?;
    eprintln!("wrote {}", path.display());
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let mut t = Table::new(vec!["name", "value"]);
        t.row(vec!["a", "1"]);
        t.row(vec!["long-name", "22"]);
        let s = t.render();
        assert!(s.contains("| name      | value |"));
        assert!(s.contains("| long-name | 22    |"));
        assert!(s.lines().count() == 4);
    }

    #[test]
    #[should_panic(expected = "row/header mismatch")]
    fn mismatched_row_panics() {
        let mut t = Table::new(vec!["a", "b"]);
        t.row(vec!["only-one"]);
    }
}
