//! Result formatting and persistence.

use std::fmt::Write as _;
use std::path::Path;

use omx_sim::json::ToJson;

/// A simple aligned text table for terminal output.
#[derive(Debug, Default)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Start a table with the given column headers.
    pub fn new<S: Into<String>>(header: Vec<S>) -> Self {
        Table {
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row (must match the header length).
    pub fn row<S: Into<String>>(&mut self, cells: Vec<S>) {
        let cells: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(cells.len(), self.header.len(), "row/header mismatch");
        self.rows.push(cells);
    }

    /// Render with aligned columns.
    pub fn render(&self) -> String {
        let cols = self.header.len();
        let mut widths = vec![0usize; cols];
        for (i, h) in self.header.iter().enumerate() {
            widths[i] = h.len();
        }
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        let line = |out: &mut String, cells: &[String]| {
            for (i, c) in cells.iter().enumerate() {
                let _ = write!(out, "| {:width$} ", c, width = widths[i]);
            }
            out.push_str("|\n");
        };
        line(&mut out, &self.header);
        for (i, w) in widths.iter().enumerate() {
            let _ = write!(out, "|{:-<width$}", "", width = w + 2);
            if i + 1 == cols {
                out.push_str("|\n");
            }
        }
        for row in &self.rows {
            line(&mut out, row);
        }
        out
    }
}

/// Write whitespace-separated data rows under `results/<name>.dat` for
/// gnuplot (one comment header line, then one row per entry).
pub fn write_dat(name: &str, header: &str, rows: &[Vec<String>]) -> std::io::Result<()> {
    let dir = Path::new("results");
    std::fs::create_dir_all(dir)?;
    let path = dir.join(format!("{name}.dat"));
    let mut out = format!("# {header}\n");
    for row in rows {
        out.push_str(&row.join(" "));
        out.push('\n');
    }
    std::fs::write(&path, out)?;
    Ok(())
}

/// Write a gnuplot script under `results/<name>.gp`.
pub fn write_gnuplot(name: &str, script: &str) -> std::io::Result<()> {
    let dir = Path::new("results");
    std::fs::create_dir_all(dir)?;
    std::fs::write(dir.join(format!("{name}.gp")), script)?;
    Ok(())
}

/// Write a result struct as pretty JSON under `results/<name>.json`.
pub fn write_json<T: ToJson>(name: &str, value: &T) -> std::io::Result<()> {
    let dir = Path::new("results");
    std::fs::create_dir_all(dir)?;
    let path = dir.join(format!("{name}.json"));
    let json = value.to_json().render_pretty();
    std::fs::write(&path, json)?;
    eprintln!("wrote {}", path.display());
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let mut t = Table::new(vec!["name", "value"]);
        t.row(vec!["a", "1"]);
        t.row(vec!["long-name", "22"]);
        let s = t.render();
        assert!(s.contains("| name      | value |"));
        assert!(s.contains("| long-name | 22    |"));
        assert!(s.lines().count() == 4);
    }

    #[test]
    #[should_panic(expected = "row/header mismatch")]
    fn mismatched_row_panics() {
        let mut t = Table::new(vec!["a", "b"]);
        t.row(vec!["only-one"]);
    }
}
