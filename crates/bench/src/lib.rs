//! # omx-bench — experiment harness
//!
//! One module per paper artifact. Each experiment returns a serialisable
//! result struct, prints a formatted table to stdout, and is persisted as
//! JSON under `results/` by the CLI (`src/main.rs`).
//!
//! | module | paper artifact |
//! |---|---|
//! | [`experiments::fig4`] | Fig. 4 — message rate vs coalescing delay × host config |
//! | [`experiments::overhead`] | §IV-B2 — per-packet interrupt overhead |
//! | [`experiments::pingpong`] | Figs. 5 & 6 — ping-pong transfer time vs size |
//! | [`experiments::table1`] | Table I — message rate by size × strategy |
//! | [`experiments::table2`] | Table II — 234 KiB anatomy (+ §IV-C3 marker ablation) |
//! | [`experiments::table3`] | Table III — packet mis-ordering vs Stream coalescing |
//! | [`experiments::nas`] | Tables IV & V — NAS times and interrupt counts |
//! | [`experiments::adaptive`] | §VI — adaptive coalescing comparison |
//! | [`timeline`] | windowed telemetry timelines (beyond paper; DESIGN §10) |

#![warn(missing_docs)]

pub mod experiments;
pub mod perf;
pub mod report;
pub mod timeline;
pub mod timing;
pub mod traced;

pub use report::{write_json, Table};
