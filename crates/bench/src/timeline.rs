//! `omx-bench timeline <experiment>` — windowed telemetry timelines.
//!
//! Re-runs a campaign's headline cell with the windowed telemetry
//! subsystem enabled (`omx_core::telemetry`, 100 µs windows) and writes
//! the counter timeline under `results/`:
//!
//! * `timeline_<exp>_<N>n.jsonl` — one JSON object per (window, series),
//!   time-major; the schema is documented in DESIGN §10,
//! * `timeline_<exp>_<N>n.chrome.json` — Perfetto counter tracks (load in
//!   <https://ui.perfetto.dev>): per-node interrupt/hold/ring/retransmit/
//!   goodput series plus per-switch-port queue depth and drops.
//!
//! The `scale` scenario is the scale campaign's headline cell: a 64-node
//! (128-rank) 16 KiB alltoall through 32-frame switch egress buffers,
//! under the default 75 µs timeout strategy, with the exact per-cell seed
//! the campaign assigns — so the timeline lines up with the matching row
//! of `results/scale.json`. Incast overflows the bounded buffers and the
//! drops phase-lock into the 20 ms retransmission timeout; the timeline
//! makes that stall visible as saturated `switch_queue_len`, goodput
//! collapsing to zero for ~20 ms, then a retransmit burst draining the
//! stragglers (see EXPERIMENTS.md for a worked reading).
//!
//! `--quick` shrinks the world to 8 nodes (CI smoke mode). Every artifact
//! is byte-identical across runs and machines for a given node count —
//! `crates/bench/tests/timeline_golden.rs` pins a small cell.

use crate::experiments::scale::{RANKS_PER_NODE, SWITCH_BUFFER_FRAMES};
use omx_core::prelude::*;
use omx_mpi::{MpiWorld, Op, WorldSpec};
use std::path::Path;

/// Experiments the timeline subcommand understands.
pub fn supported() -> &'static [&'static str] {
    &["scale", "alltoall"]
}

/// One captured timeline: rendered artifacts plus headline numbers.
pub struct TimelineData {
    /// Simulated nodes ([`RANKS_PER_NODE`] ranks each).
    pub nodes: usize,
    /// Job completion time, ns.
    pub elapsed_ns: u64,
    /// Telemetry windows sampled (cluster-wide snapshots).
    pub windows: u64,
    /// JSONL timeline, time-major, one object per (window, series).
    pub jsonl: String,
    /// Perfetto counter-track export (compact trace-event JSON).
    pub chrome: String,
    /// p50/p99/p999 of per-rank collective completion latency.
    pub slo: Option<SloSummary>,
    /// Frames tail-dropped at the bounded switch egress buffers.
    pub switch_drops: u64,
    /// Eager retransmits over the whole run.
    pub retransmits: u64,
    /// Deepest windowed switch egress queue sample, frames.
    pub peak_queue: u64,
    /// Largest single-window per-node retransmit burst.
    pub peak_window_retx: u64,
}

/// Capture the 16 KiB-alltoall timeline on `nodes` two-rank nodes,
/// `iterations` back-to-back collectives per rank (the full campaign runs
/// 2 — the incast stall needs the per-rank skew iteration 1 leaves
/// behind, so iteration 2 is where the buffers overflow).
///
/// Pure observation of the scale campaign's cell: telemetry ticks sample
/// counters the run already maintains and cannot schedule events, so the
/// simulated outcome is identical with or without the capture.
pub fn capture(nodes: usize, iterations: u32) -> TimelineData {
    let mut cfg = ClusterConfig::default();
    cfg.nic.strategy = CoalescingStrategy::Timeout { delay_us: 75 };
    cfg.fabric.switch_buffer_frames = SWITCH_BUFFER_FRAMES;
    // The scale campaign's per-cell seed for (alltoall = collective index
    // 3, default strategy = index 0) on this node count.
    cfg.seed = 0x5CA1E + 3 * 10_000 + (nodes as u64) * 10;
    let mut world = MpiWorld::new(
        WorldSpec {
            ranks: nodes * RANKS_PER_NODE,
            ranks_per_node: RANKS_PER_NODE,
        },
        cfg,
    );
    world.enable_telemetry(TelemetryConfig::default());
    let (report, _sanitizer) = world.run_drained(|_| {
        std::iter::repeat_with(|| Op::Alltoall { bytes: 16 << 10 })
            .take(iterations as usize)
            .collect()
    });
    let tel = report.telemetry.expect("telemetry enabled");
    // The two exports are independent pure renderings of the same
    // captured counters, so above --jobs 1 the Chrome export runs on the
    // pool while this thread renders the JSONL — byte-identical either
    // way, just overlapped (the Chrome export is the expensive one: one
    // counter event per series per window).
    let (jsonl, chrome) = if omx_sim::pool::effective_jobs() > 1 {
        let mut chrome = None;
        let jsonl = omx_sim::pool::global().scope(|s| {
            s.spawn(|| chrome = Some(tel.to_chrome_json().render()));
            tel.to_jsonl()
        });
        (jsonl, chrome.expect("scope joins before returning"))
    } else {
        (tel.to_jsonl(), tel.to_chrome_json().render())
    };
    let peak_queue = (0..tel.port_count())
        .flat_map(|p| tel.port_windows(p))
        .map(|w| w.queue_len)
        .max()
        .unwrap_or(0);
    let peak_window_retx = (0..tel.node_count())
        .flat_map(|n| tel.node_windows(n))
        .map(|w| w.retransmits)
        .max()
        .unwrap_or(0);
    TimelineData {
        nodes,
        elapsed_ns: report.elapsed_ns,
        windows: tel.windows_recorded(),
        jsonl,
        chrome,
        slo: SloSummary::from_histogram(&report.op_latency),
        switch_drops: report.metrics.switch_drops,
        retransmits: report.metrics.total_retransmits(),
        peak_queue,
        peak_window_retx,
    }
}

/// Run the timeline subcommand: capture, persist, summarize.
///
/// Artifact paths are checked on write: an unwritable `results/` (or a
/// full disk) surfaces as `Err`, which the CLI turns into a non-zero
/// exit — a timeline whose artifacts silently vanished is
/// indistinguishable from a successful run otherwise.
pub fn run(experiment: &str, quick: bool) -> Result<(), String> {
    if !supported().contains(&experiment) {
        return Err(format!(
            "experiment '{experiment}' has no timeline scenario (supported: {})",
            supported().join(", ")
        ));
    }
    // The full run is the scale campaign's 64-node cell verbatim (2
    // iterations — see `capture`); smoke mode shrinks the world.
    let (nodes, iterations) = if quick { (8, 1) } else { (64, 2) };
    println!(
        "== timeline: {nodes}-node ({}-rank) 16 KiB alltoall x{iterations}, 100 us windows ==",
        nodes * RANKS_PER_NODE
    );
    let data = capture(nodes, iterations);
    let dir = Path::new("results");
    let stem = format!("timeline_alltoall_{nodes}n");
    let write = |name: String, contents: &str| -> Result<String, String> {
        std::fs::create_dir_all(dir)
            .map_err(|e| format!("timeline: cannot create {}: {e}", dir.display()))?;
        let path = dir.join(name);
        std::fs::write(&path, contents)
            .map_err(|e| format!("timeline: cannot write {}: {e}", path.display()))?;
        eprintln!("wrote {}", path.display());
        Ok(path.display().to_string())
    };
    write(format!("{stem}.jsonl"), &data.jsonl)?;
    write(format!("{stem}.chrome.json"), &data.chrome)?;
    println!(
        "elapsed {:.2} ms, {} windows; switch drops {}, peak egress queue {} frames, \
         retransmits {} (peak {} in one 100 us window)",
        data.elapsed_ns as f64 / 1e6,
        data.windows,
        data.switch_drops,
        data.peak_queue,
        data.retransmits,
        data.peak_window_retx,
    );
    if let Some(slo) = &data.slo {
        println!(
            "per-rank collective latency: p50 {:.1} us, p99 {:.1} us, p999 {:.1} us \
             ({} samples)",
            slo.p50_ns as f64 / 1e3,
            slo.p99_ns as f64 / 1e3,
            slo.p999_ns as f64 / 1e3,
            slo.count,
        );
    }
    if data.switch_drops > 0 && data.elapsed_ns > 20_000_000 {
        println!(
            "incast stall: bounded switch buffers dropped frames and the job ran past \
             the 20 ms retransmission timeout — look for the goodput gap in the timeline."
        );
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A small capture produces a non-trivial, internally consistent
    /// timeline (the golden byte-identity test lives in
    /// `tests/timeline_golden.rs`).
    #[test]
    fn small_capture_has_windows_and_slo() {
        let data = capture(4, 1);
        assert!(data.windows > 0, "at least one window sampled");
        assert!(!data.jsonl.is_empty());
        assert!(
            data.chrome.contains("\"ph\":\"C\""),
            "counter events present"
        );
        let slo = data.slo.expect("8 ranks completed an alltoall");
        assert_eq!(slo.count, (4 * RANKS_PER_NODE) as u64);
        assert!(slo.p50_ns > 0 && slo.p50_ns <= slo.p999_ns);
        // Every JSONL line parses and carries the window-end timestamp.
        for line in data.jsonl.lines() {
            assert!(line.starts_with("{\"t_ns\":"), "schema drift: {line}");
        }
    }

    #[test]
    fn unsupported_experiment_is_an_error() {
        assert!(run("fig4", true).is_err());
    }

    /// The overlapped export path (Chrome render on the pool, JSONL on
    /// the capturing thread) emits the same bytes as the serial path.
    #[test]
    fn exports_are_jobs_invariant() {
        let serial = omx_sim::pool::with_jobs(1, || capture(2, 1));
        let pooled = omx_sim::pool::with_jobs(4, || capture(2, 1));
        assert_eq!(serial.jsonl, pooled.jsonl);
        assert_eq!(serial.chrome, pooled.chrome);
        assert_eq!(serial.elapsed_ns, pooled.elapsed_ns);
    }
}
