//! Cross-process determinism of the parallel campaign executor (ISSUE 7,
//! satellite 3).
//!
//! The determinism contract (DESIGN §11): **parallelism may reorder
//! execution, but never observable output**. Campaign cells are
//! independent fixed-seed simulations and results commit in cell-index
//! order, so `results/faults.json`, `results/scale.json`, and every golden
//! must regenerate *byte-identical* at any `--jobs` value. These tests
//! spawn the real `omx-bench` binary — separate processes, separate
//! working directories — at `--jobs 1` (the serial path), `--jobs 2`, and
//! `--jobs 8` (more workers than this machine has cores, so stealing and
//! oversubscription are both in play), and compare artifact bytes.
//!
//! In-process companions pin the full-resolution goldens (Table I runs at
//! full message counts — no quick mode exists for it — and the pinned
//! scale cell) through the pooled path against the committed golden files.

use omx_sim::pool;
use std::path::PathBuf;
use std::process::Command;

/// Run `omx-bench <args>` in a fresh scratch directory and return the
/// bytes of `results/<artifact>` it wrote there.
fn run_in_scratch(tag: &str, args: &[&str], artifact: &str) -> Vec<u8> {
    let dir = std::env::temp_dir().join(format!("omx_parallel_det_{}_{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    let bin = PathBuf::from(env!("CARGO_BIN_EXE_omx-bench"));
    let output = Command::new(&bin)
        .args(args)
        .current_dir(&dir)
        .output()
        .expect("spawn omx-bench");
    assert!(
        output.status.success(),
        "omx-bench {args:?} failed (status {:?}):\n{}",
        output.status,
        String::from_utf8_lossy(&output.stderr)
    );
    let bytes = std::fs::read(dir.join("results").join(artifact))
        .unwrap_or_else(|e| panic!("read {artifact} after omx-bench {args:?}: {e}"));
    let _ = std::fs::remove_dir_all(&dir);
    assert!(!bytes.is_empty(), "{artifact} is empty");
    bytes
}

/// `results/faults.json` regenerates byte-identical at --jobs 1, 2, and 8.
#[test]
fn faults_quick_json_is_byte_identical_across_jobs() {
    let serial = run_in_scratch(
        "faults_j1",
        &["faults", "--quick", "--jobs", "1"],
        "faults.json",
    );
    for jobs in ["2", "8"] {
        let parallel = run_in_scratch(
            &format!("faults_j{jobs}"),
            &["faults", "--quick", "--jobs", jobs],
            "faults.json",
        );
        assert!(
            serial == parallel,
            "faults.json differs between --jobs 1 and --jobs {jobs}"
        );
    }
}

/// `results/scale.json` regenerates byte-identical at --jobs 1, 2, and 8
/// (with --slo on, so the optional per-cell summaries are covered too).
#[test]
fn scale_quick_json_is_byte_identical_across_jobs() {
    let args = |jobs| vec!["scale", "--quick", "--slo", "--jobs", jobs];
    let serial = run_in_scratch("scale_j1", &args("1"), "scale.json");
    for jobs in ["2", "8"] {
        let parallel = run_in_scratch(&format!("scale_j{jobs}"), &args(jobs), "scale.json");
        assert!(
            serial == parallel,
            "scale.json differs between --jobs 1 and --jobs {jobs}"
        );
    }
}

/// The full-resolution Table I campaign (12 cells, full message counts —
/// the experiment has no quick mode) reproduces the committed golden
/// byte-for-byte through the pooled path, and the serial path agrees.
#[test]
fn full_table1_golden_is_jobs_invariant() {
    use omx_bench::experiments::table1;
    use omx_sim::json::ToJson;
    let golden = include_str!("golden/table1.json");
    let pooled = pool::with_jobs(8, || table1::run().to_json().render_pretty());
    assert!(
        pooled == golden,
        "pooled table1 diverged from the committed golden"
    );
    let serial = pool::with_jobs(1, || table1::run().to_json().render_pretty());
    assert!(
        serial == pooled,
        "serial and pooled table1 renderings differ"
    );
}

/// The pinned scale campaign cell reproduces its committed golden through
/// the pooled path.
#[test]
fn scale_golden_cell_is_jobs_invariant() {
    use omx_bench::experiments::scale;
    use omx_sim::json::ToJson;
    let golden = include_str!("golden/scale_cell.json");
    let pooled = pool::with_jobs(8, || scale::golden_cell().to_json().render_pretty());
    assert!(
        pooled == golden,
        "pooled golden cell diverged from the committed golden"
    );
}
