//! Cross-process determinism of the conservative parallel DES core
//! (PR 8, extended by PR 10's global stop vote).
//!
//! The engine contract (DESIGN §12) mirrors the campaign executor's
//! (DESIGN §11): **parallelism may reorder execution, but never observable
//! output**. The epoch-synchronized engine partitions one simulation's
//! nodes across workers and merges cross-partition frames in serial
//! dispatch order, so every artifact — campaign tables, telemetry
//! timelines, goldens — must regenerate *byte-identical* at any
//! `--sim-jobs` value. Since PR 10 that includes **stop-predicate runs**
//! (fig4/fig5/Table I: the global stop vote must end the run at the exact
//! serial stop ordinal), not just drained campaigns. These tests spawn
//! the real `omx-bench` binary — separate processes, separate working
//! directories — at `--sim-jobs 1` (the serial engine), `--sim-jobs 2`,
//! and `--sim-jobs 8` (more workers than this machine has cores, so
//! barrier contention and oversubscription are both in play), and compare
//! artifact bytes.
//!
//! In-process companions pin the committed goldens through the parallel
//! engine, and the CLI-validation tests cover the loud-failure satellites:
//! a malformed `--jobs`/`--sim-jobs` must fail with a non-zero exit, a
//! malformed `OMX_SIM_JOBS` must warn on stderr and fall back to the
//! serial engine instead of silently parsing as something else, and an
//! ineligible run shape under `--sim-jobs` must warn exactly once per
//! process — never a silent serial fallback, never log spam.

use omx_sim::pool;
use std::path::PathBuf;
use std::process::Command;

/// Run `omx-bench <args>` in a fresh scratch directory and return the
/// bytes of `results/<artifact>` it wrote there. Every run shape spawned
/// by these tests is parallel-engine-eligible, so the serial-fallback
/// warning (PR 10's no-silent-fallback satellite) must never appear.
fn run_in_scratch(tag: &str, args: &[&str], artifact: &str) -> Vec<u8> {
    let dir = std::env::temp_dir().join(format!("omx_engine_det_{}_{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    let bin = PathBuf::from(env!("CARGO_BIN_EXE_omx-bench"));
    let output = Command::new(&bin)
        .args(args)
        .current_dir(&dir)
        .output()
        .expect("spawn omx-bench");
    assert!(
        output.status.success(),
        "omx-bench {args:?} failed (status {:?}):\n{}",
        output.status,
        String::from_utf8_lossy(&output.stderr)
    );
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert!(
        !stderr.contains("uses the serial engine"),
        "eligible shape fell back to the serial engine under {args:?}:\n{stderr}"
    );
    let bytes = std::fs::read(dir.join("results").join(artifact))
        .unwrap_or_else(|e| panic!("read {artifact} after omx-bench {args:?}: {e}"));
    let _ = std::fs::remove_dir_all(&dir);
    assert!(!bytes.is_empty(), "{artifact} is empty");
    bytes
}

/// `results/scale.json` regenerates byte-identical at --sim-jobs 1, 2,
/// and 8 (with --slo on, so the per-cell latency summaries — histograms
/// fed by the merged event order — are covered too).
#[test]
fn scale_quick_json_is_byte_identical_across_sim_jobs() {
    let args = |jobs| vec!["scale", "--quick", "--slo", "--sim-jobs", jobs];
    let serial = run_in_scratch("scale_sj1", &args("1"), "scale.json");
    for jobs in ["2", "8"] {
        let parallel = run_in_scratch(&format!("scale_sj{jobs}"), &args(jobs), "scale.json");
        assert!(
            serial == parallel,
            "scale.json differs between --sim-jobs 1 and --sim-jobs {jobs}"
        );
    }
}

/// The windowed-telemetry timeline — the most order-sensitive artifact,
/// since every 100 µs window samples counters mid-run — regenerates
/// byte-identical on the parallel engine.
#[test]
fn timeline_quick_jsonl_is_byte_identical_across_sim_jobs() {
    let args = |jobs| vec!["timeline", "scale", "--quick", "--sim-jobs", jobs];
    let serial = run_in_scratch("tl_sj1", &args("1"), "timeline_alltoall_8n.jsonl");
    let parallel = run_in_scratch("tl_sj2", &args("2"), "timeline_alltoall_8n.jsonl");
    assert!(
        serial == parallel,
        "timeline JSONL differs between --sim-jobs 1 and --sim-jobs 2"
    );
}

/// PR 10 tentpole: stop-predicate runs (the fig5 ping-pong sweep) are now
/// parallel-engine-eligible via the global stop vote, and regenerate
/// byte-identical — the run must end at the exact serial stop ordinal, or
/// half-RTT means and frame counts drift.
#[test]
fn fig5_pingpong_json_is_byte_identical_across_sim_jobs() {
    let args = |jobs| vec!["fig5", "--quick", "--sim-jobs", jobs];
    let serial = run_in_scratch("fig5_sj1", &args("1"), "fig5_pingpong.json");
    for jobs in ["2", "8"] {
        let parallel = run_in_scratch(&format!("fig5_sj{jobs}"), &args(jobs), "fig5_pingpong.json");
        assert!(
            serial == parallel,
            "fig5_pingpong.json differs between --sim-jobs 1 and --sim-jobs {jobs}"
        );
    }
}

/// Table I (windowed streams, receiver-voted stop) under the stop vote.
#[test]
fn table1_json_is_byte_identical_across_sim_jobs() {
    let args = |jobs| vec!["table1", "--quick", "--sim-jobs", jobs];
    let serial = run_in_scratch("t1_sj1", &args("1"), "table1_message_rate.json");
    for jobs in ["2", "8"] {
        let parallel = run_in_scratch(
            &format!("t1_sj{jobs}"),
            &args(jobs),
            "table1_message_rate.json",
        );
        assert!(
            serial == parallel,
            "table1_message_rate.json differs between --sim-jobs 1 and --sim-jobs {jobs}"
        );
    }
}

/// Fig. 4 (message rate vs coalescing delay — a stop-voted streaming
/// sweep across every strategy) under the stop vote.
#[test]
fn fig4_json_is_byte_identical_across_sim_jobs() {
    let args = |jobs| vec!["fig4", "--quick", "--sim-jobs", jobs];
    let serial = run_in_scratch("fig4_sj1", &args("1"), "fig4_message_rate.json");
    for jobs in ["2", "8"] {
        let parallel = run_in_scratch(
            &format!("fig4_sj{jobs}"),
            &args(jobs),
            "fig4_message_rate.json",
        );
        assert!(
            serial == parallel,
            "fig4_message_rate.json differs between --sim-jobs 1 and --sim-jobs {jobs}"
        );
    }
}

/// In-process companion for the stop-voted shapes: the fig5/fig4/Table I
/// sweeps rendered at sim_jobs 2 and 8 match the serial render exactly.
/// `with_jobs(1)` forces campaign cells inline on this thread so the
/// thread-local `with_sim_jobs` override actually reaches them.
#[test]
fn stop_voted_sweeps_are_sim_jobs_invariant_in_process() {
    use omx_bench::experiments::{fig4, pingpong, table1};
    use omx_sim::json::ToJson;
    let render = |sim_jobs: usize| {
        pool::with_sim_jobs(sim_jobs, || {
            pool::with_jobs(1, || {
                (
                    pingpong::run(false, 200).to_json().render_pretty(),
                    fig4::run(100).to_json().render_pretty(),
                    table1::run().to_json().render_pretty(),
                )
            })
        })
    };
    let serial = render(1);
    for jobs in [2, 8] {
        assert!(
            render(jobs) == serial,
            "stop-voted sweep output diverged from serial at sim_jobs={jobs}"
        );
    }
}

/// The pinned scale campaign cell reproduces its committed golden through
/// the parallel engine, including at a worker count that does not divide
/// the node count.
#[test]
fn scale_golden_cell_is_sim_jobs_invariant() {
    use omx_bench::experiments::scale;
    use omx_sim::json::ToJson;
    let golden = include_str!("golden/scale_cell.json");
    for jobs in [2, 3, 8] {
        let par = pool::with_sim_jobs(jobs, || scale::golden_cell().to_json().render_pretty());
        assert!(
            par == golden,
            "golden cell diverged from the committed golden at sim_jobs={jobs}"
        );
    }
}

/// The committed timeline golden reproduces through the parallel engine.
#[test]
fn timeline_golden_is_sim_jobs_invariant() {
    let golden = include_str!("golden/timeline_4n.jsonl");
    let par = pool::with_sim_jobs(2, || omx_bench::timeline::capture(4, 1));
    assert!(
        par.jsonl == golden,
        "parallel-engine timeline diverged from the committed golden"
    );
}

/// Satellite: a malformed `--sim-jobs` (and `--jobs`) value must exit
/// non-zero with a pointed message, not fall back to a default and run
/// the wrong configuration.
#[test]
fn malformed_jobs_flags_exit_nonzero() {
    let bin = PathBuf::from(env!("CARGO_BIN_EXE_omx-bench"));
    for flag in ["--sim-jobs", "--jobs"] {
        for value in ["abc", "0", "-2"] {
            let output = Command::new(&bin)
                .args(["scale", "--quick", flag, value])
                .output()
                .expect("spawn omx-bench");
            assert_eq!(
                output.status.code(),
                Some(2),
                "omx-bench {flag} {value} should exit 2"
            );
            let stderr = String::from_utf8_lossy(&output.stderr);
            assert!(
                stderr.contains("positive integer"),
                "missing diagnostic for {flag} {value}: {stderr}"
            );
        }
        // A trailing flag with no value at all is the same error class.
        let output = Command::new(&bin)
            .args(["scale", "--quick", flag])
            .output()
            .expect("spawn omx-bench");
        assert_eq!(output.status.code(), Some(2), "bare {flag} should exit 2");
    }
}

/// Probe body for [`serial_fallback_warning_is_one_shot_cross_process`]:
/// inert unless re-executed with `OMX_FALLBACK_PROBE=1`. Performs two
/// ineligible runs (single-node clusters — nothing to partition) with
/// `--sim-jobs 2` requested, so the parent can count warning lines on this
/// process's real stderr.
#[test]
fn serial_fallback_probe() {
    if std::env::var("OMX_FALLBACK_PROBE").is_err() {
        return;
    }
    use omx_core::prelude::*;
    pool::with_sim_jobs(2, || {
        for _ in 0..2 {
            let mut cluster = ClusterBuilder::new().nodes(1).build();
            cluster.run_drain(omx_sim::Time::from_nanos(1_000));
        }
    });
}

/// Satellite: the "requested --sim-jobs but running serial" warning is
/// emitted exactly once per process, on stderr, naming the reason — not
/// zero times (silent fallback) and not once per run (log spam). Spawns
/// this test binary again filtered to [`serial_fallback_probe`], which
/// does two ineligible runs in one process.
#[test]
fn serial_fallback_warning_is_one_shot_cross_process() {
    let exe = std::env::current_exe().expect("current test binary");
    let output = Command::new(exe)
        .args(["--exact", "serial_fallback_probe", "--nocapture"])
        .env("OMX_FALLBACK_PROBE", "1")
        .output()
        .expect("re-exec test binary");
    assert!(
        output.status.success(),
        "probe run failed:\n{}",
        String::from_utf8_lossy(&output.stderr)
    );
    let stderr = String::from_utf8_lossy(&output.stderr);
    let warnings = stderr
        .lines()
        .filter(|l| l.contains("--sim-jobs 2 requested but this run uses the serial engine"))
        .count();
    assert_eq!(
        warnings, 1,
        "expected exactly one fallback warning across two ineligible runs, got {warnings}:\n{stderr}"
    );
    assert!(
        stderr.contains("single node"),
        "warning must name the reason:\n{stderr}"
    );
}

/// Satellite: a malformed `OMX_SIM_JOBS` environment value warns once on
/// stderr and falls back to the serial engine — the run itself succeeds.
#[test]
fn malformed_sim_jobs_env_warns_and_runs_serial() {
    let dir = std::env::temp_dir().join(format!("omx_engine_det_{}_env", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    let bin = PathBuf::from(env!("CARGO_BIN_EXE_omx-bench"));
    let output = Command::new(&bin)
        .args(["timeline", "scale", "--quick"])
        .env("OMX_SIM_JOBS", "lots")
        .current_dir(&dir)
        .output()
        .expect("spawn omx-bench");
    assert!(
        output.status.success(),
        "invalid OMX_SIM_JOBS must fall back, not fail:\n{}",
        String::from_utf8_lossy(&output.stderr)
    );
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert!(
        stderr.contains("ignoring invalid OMX_SIM_JOBS"),
        "expected a fallback warning on stderr, got:\n{stderr}"
    );
    let _ = std::fs::remove_dir_all(&dir);
}
