//! Cross-process determinism of the conservative parallel DES core
//! (ISSUE 8).
//!
//! The engine contract (DESIGN §12) mirrors the campaign executor's
//! (DESIGN §11): **parallelism may reorder execution, but never observable
//! output**. The epoch-synchronized engine partitions one simulation's
//! nodes across workers and merges cross-partition frames in serial
//! dispatch order, so every artifact — campaign tables, telemetry
//! timelines, goldens — must regenerate *byte-identical* at any
//! `--sim-jobs` value. These tests spawn the real `omx-bench` binary —
//! separate processes, separate working directories — at `--sim-jobs 1`
//! (the serial engine), `--sim-jobs 2`, and `--sim-jobs 8` (more workers
//! than this machine has cores, so barrier contention and oversubscription
//! are both in play), and compare artifact bytes.
//!
//! In-process companions pin the committed goldens through the parallel
//! engine, and the CLI-validation tests cover the ISSUE 8 satellite: a
//! malformed `--jobs`/`--sim-jobs` must fail loudly with a non-zero exit,
//! and a malformed `OMX_SIM_JOBS` must warn on stderr and fall back to the
//! serial engine instead of silently parsing as something else.

use omx_sim::pool;
use std::path::PathBuf;
use std::process::Command;

/// Run `omx-bench <args>` in a fresh scratch directory and return the
/// bytes of `results/<artifact>` it wrote there.
fn run_in_scratch(tag: &str, args: &[&str], artifact: &str) -> Vec<u8> {
    let dir = std::env::temp_dir().join(format!("omx_engine_det_{}_{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    let bin = PathBuf::from(env!("CARGO_BIN_EXE_omx-bench"));
    let output = Command::new(&bin)
        .args(args)
        .current_dir(&dir)
        .output()
        .expect("spawn omx-bench");
    assert!(
        output.status.success(),
        "omx-bench {args:?} failed (status {:?}):\n{}",
        output.status,
        String::from_utf8_lossy(&output.stderr)
    );
    let bytes = std::fs::read(dir.join("results").join(artifact))
        .unwrap_or_else(|e| panic!("read {artifact} after omx-bench {args:?}: {e}"));
    let _ = std::fs::remove_dir_all(&dir);
    assert!(!bytes.is_empty(), "{artifact} is empty");
    bytes
}

/// `results/scale.json` regenerates byte-identical at --sim-jobs 1, 2,
/// and 8 (with --slo on, so the per-cell latency summaries — histograms
/// fed by the merged event order — are covered too).
#[test]
fn scale_quick_json_is_byte_identical_across_sim_jobs() {
    let args = |jobs| vec!["scale", "--quick", "--slo", "--sim-jobs", jobs];
    let serial = run_in_scratch("scale_sj1", &args("1"), "scale.json");
    for jobs in ["2", "8"] {
        let parallel = run_in_scratch(&format!("scale_sj{jobs}"), &args(jobs), "scale.json");
        assert!(
            serial == parallel,
            "scale.json differs between --sim-jobs 1 and --sim-jobs {jobs}"
        );
    }
}

/// The windowed-telemetry timeline — the most order-sensitive artifact,
/// since every 100 µs window samples counters mid-run — regenerates
/// byte-identical on the parallel engine.
#[test]
fn timeline_quick_jsonl_is_byte_identical_across_sim_jobs() {
    let args = |jobs| vec!["timeline", "scale", "--quick", "--sim-jobs", jobs];
    let serial = run_in_scratch("tl_sj1", &args("1"), "timeline_alltoall_8n.jsonl");
    let parallel = run_in_scratch("tl_sj2", &args("2"), "timeline_alltoall_8n.jsonl");
    assert!(
        serial == parallel,
        "timeline JSONL differs between --sim-jobs 1 and --sim-jobs 2"
    );
}

/// The pinned scale campaign cell reproduces its committed golden through
/// the parallel engine, including at a worker count that does not divide
/// the node count.
#[test]
fn scale_golden_cell_is_sim_jobs_invariant() {
    use omx_bench::experiments::scale;
    use omx_sim::json::ToJson;
    let golden = include_str!("golden/scale_cell.json");
    for jobs in [2, 3, 8] {
        let par = pool::with_sim_jobs(jobs, || scale::golden_cell().to_json().render_pretty());
        assert!(
            par == golden,
            "golden cell diverged from the committed golden at sim_jobs={jobs}"
        );
    }
}

/// The committed timeline golden reproduces through the parallel engine.
#[test]
fn timeline_golden_is_sim_jobs_invariant() {
    let golden = include_str!("golden/timeline_4n.jsonl");
    let par = pool::with_sim_jobs(2, || omx_bench::timeline::capture(4, 1));
    assert!(
        par.jsonl == golden,
        "parallel-engine timeline diverged from the committed golden"
    );
}

/// Satellite: a malformed `--sim-jobs` (and `--jobs`) value must exit
/// non-zero with a pointed message, not fall back to a default and run
/// the wrong configuration.
#[test]
fn malformed_jobs_flags_exit_nonzero() {
    let bin = PathBuf::from(env!("CARGO_BIN_EXE_omx-bench"));
    for flag in ["--sim-jobs", "--jobs"] {
        for value in ["abc", "0", "-2"] {
            let output = Command::new(&bin)
                .args(["scale", "--quick", flag, value])
                .output()
                .expect("spawn omx-bench");
            assert_eq!(
                output.status.code(),
                Some(2),
                "omx-bench {flag} {value} should exit 2"
            );
            let stderr = String::from_utf8_lossy(&output.stderr);
            assert!(
                stderr.contains("positive integer"),
                "missing diagnostic for {flag} {value}: {stderr}"
            );
        }
        // A trailing flag with no value at all is the same error class.
        let output = Command::new(&bin)
            .args(["scale", "--quick", flag])
            .output()
            .expect("spawn omx-bench");
        assert_eq!(output.status.code(), Some(2), "bare {flag} should exit 2");
    }
}

/// Satellite: a malformed `OMX_SIM_JOBS` environment value warns once on
/// stderr and falls back to the serial engine — the run itself succeeds.
#[test]
fn malformed_sim_jobs_env_warns_and_runs_serial() {
    let dir = std::env::temp_dir().join(format!("omx_engine_det_{}_env", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    let bin = PathBuf::from(env!("CARGO_BIN_EXE_omx-bench"));
    let output = Command::new(&bin)
        .args(["timeline", "scale", "--quick"])
        .env("OMX_SIM_JOBS", "lots")
        .current_dir(&dir)
        .output()
        .expect("spawn omx-bench");
    assert!(
        output.status.success(),
        "invalid OMX_SIM_JOBS must fall back, not fail:\n{}",
        String::from_utf8_lossy(&output.stderr)
    );
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert!(
        stderr.contains("ignoring invalid OMX_SIM_JOBS"),
        "expected a fallback warning on stderr, got:\n{stderr}"
    );
    let _ = std::fs::remove_dir_all(&dir);
}
