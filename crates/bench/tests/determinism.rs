//! Golden determinism test for the simulation substrate.
//!
//! The paper reproduction stands on one property: a fixed configuration
//! produces *exactly* the same results on every run, on every machine, with
//! any internally-equivalent event-queue implementation. This test pins the
//! full Table I experiment (12 cells: 3 message sizes × 4 coalescing
//! strategies, two-node clusters, thousands of messages each) against a
//! golden JSON rendering captured from the pre-timer-wheel binary-heap
//! queue. It fails if *anything* perturbs dispatch order: a queue that
//! reorders same-`(time, seq)` events, a model that iterates a
//! randomized-seed `HashMap`, or a change to the experiment itself.
//!
//! If the experiment is changed intentionally, regenerate the golden with:
//! `cargo run --release -p omx-bench -- table1 && cp
//! results/table1_message_rate.json crates/bench/tests/golden/table1.json`.

use omx_bench::experiments::table1;
use omx_sim::json::ToJson;

const GOLDEN: &str = include_str!("golden/table1.json");

#[test]
fn table1_results_are_byte_identical_to_golden() {
    let result = table1::run();
    let rendered = result.to_json().render_pretty();
    assert!(
        rendered == GOLDEN,
        "table1 results diverged from the golden file.\n\
         If this change is an intentional behavioural change, regenerate\n\
         crates/bench/tests/golden/table1.json (see module docs). Otherwise\n\
         the event-dispatch order is no longer deterministic.\n\
         --- golden ---\n{GOLDEN}\n--- got ---\n{rendered}"
    );
}

// ---------------------------------------------------------------------------
// Scale campaign determinism
// ---------------------------------------------------------------------------

use omx_bench::experiments::scale;

const SCALE_GOLDEN: &str = include_str!("golden/scale_cell.json");

/// One representative scale cell (16-node 64 KiB allreduce, default
/// strategy) pinned byte-for-byte. Regenerate after intentional changes:
/// `cargo run --release -p omx-bench --example` is not needed — the test
/// prints the new rendering on mismatch; paste it into
/// `crates/bench/tests/golden/scale_cell.json`.
#[test]
fn scale_cell_is_byte_identical_to_golden() {
    let rendered = scale::golden_cell().to_json().render_pretty();
    assert!(
        rendered == SCALE_GOLDEN,
        "the golden scale cell diverged.\n\
         If this change is intentional, update\n\
         crates/bench/tests/golden/scale_cell.json. Otherwise the scale-out\n\
         path is no longer deterministic.\n\
         --- golden ---\n{SCALE_GOLDEN}\n--- got ---\n{rendered}"
    );
}

/// The full quick campaign renders byte-identically across two in-process
/// runs — the same property `omx-bench scale` relies on for its
/// `results/scale.json` artifact.
#[test]
fn scale_quick_report_is_byte_identical_across_runs() {
    let a = scale::run(true, false).to_json().render_pretty();
    let b = scale::run(true, false).to_json().render_pretty();
    assert!(a == b, "scale quick report differs between two runs");
}

// ---------------------------------------------------------------------------
// Offload campaign determinism
// ---------------------------------------------------------------------------

use omx_bench::experiments::offload;

const OFFLOAD_GOLDEN: &str = include_str!("golden/offload_cell.json");

/// One representative offload cell (16-node 8 B allreduce in `nic-offload`
/// mode) pinned byte-for-byte — covering the NIC-resident schedule, the
/// completion-IRQ accounting, and the SLO harvest. On an intentional
/// change, paste the rendering this test prints into
/// `crates/bench/tests/golden/offload_cell.json`.
#[test]
fn offload_cell_is_byte_identical_to_golden() {
    let rendered = offload::golden_cell().to_json().render_pretty();
    assert!(
        rendered == OFFLOAD_GOLDEN,
        "the golden offload cell diverged.\n\
         If this change is intentional, update\n\
         crates/bench/tests/golden/offload_cell.json. Otherwise the\n\
         NIC-offload path is no longer deterministic.\n\
         --- golden ---\n{OFFLOAD_GOLDEN}\n--- got ---\n{rendered}"
    );
}

/// The full quick campaign renders byte-identically across two in-process
/// runs — the property `omx-bench offload` relies on for its
/// `results/offload.json` artifact.
#[test]
fn offload_quick_report_is_byte_identical_across_runs() {
    let a = offload::run(true).to_json().render_pretty();
    let b = offload::run(true).to_json().render_pretty();
    assert!(a == b, "offload quick report differs between two runs");
}
