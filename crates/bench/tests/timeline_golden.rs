//! Golden byte-identity test for the telemetry timeline (ISSUE 6,
//! satellite 3).
//!
//! The timeline subcommand's whole value is that a fixed seed reproduces
//! the same windowed counter series everywhere — otherwise two engineers
//! comparing Perfetto screenshots are debugging their machines, not the
//! protocol. This pins a small fixed-seed capture (4-node 16 KiB
//! alltoall, the same scenario `omx-bench timeline scale` scales up to 64
//! nodes) byte-for-byte against a committed JSONL golden, and checks two
//! in-process captures render identically (JSONL *and* the Perfetto
//! counter export).
//!
//! Regenerate after intentional telemetry-schema changes with:
//! `OMX_BLESS=1 cargo test -p omx-bench --test timeline_golden`.

use omx_bench::timeline;

const GOLDEN: &str = concat!(
    env!("CARGO_MANIFEST_DIR"),
    "/tests/golden/timeline_4n.jsonl"
);

#[test]
fn timeline_jsonl_is_byte_identical_to_golden() {
    let data = timeline::capture(4, 1);
    // `to_jsonl` already ends each line (including the last) with '\n',
    // so the golden is exactly the artifact `omx-bench timeline` writes.
    let rendered = data.jsonl;
    if std::env::var_os("OMX_BLESS").is_some() {
        std::fs::write(GOLDEN, &rendered).expect("write golden");
        return;
    }
    let golden = std::fs::read_to_string(GOLDEN).expect(
        "golden missing; bless with OMX_BLESS=1 cargo test -p omx-bench --test timeline_golden",
    );
    assert!(
        rendered == golden,
        "the fixed-seed timeline diverged from the golden JSONL.\n\
         If the telemetry schema or sampling changed intentionally,\n\
         regenerate crates/bench/tests/golden/timeline_4n.jsonl (see module\n\
         docs). Otherwise windowed sampling is no longer deterministic.\n\
         --- golden ---\n{golden}\n--- got ---\n{rendered}"
    );
}

#[test]
fn timeline_artifacts_are_byte_identical_across_runs() {
    let a = timeline::capture(4, 1);
    let b = timeline::capture(4, 1);
    assert!(a.jsonl == b.jsonl, "JSONL differs between two captures");
    assert!(
        a.chrome == b.chrome,
        "Perfetto counter export differs between two captures"
    );
    assert_eq!(a.elapsed_ns, b.elapsed_ns);
    assert_eq!(a.windows, b.windows);
}
