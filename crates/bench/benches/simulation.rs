//! End-to-end benchmarks: how fast the simulator reproduces each class of
//! paper experiment (wall-clock per simulated workload). One bench per
//! experiment family keeps the harness cost visible in CI.

use omx_bench::timing::bench;
use omx_core::prelude::*;

fn pingpong_sim() {
    bench("simulate", "pingpong_128B_50iters_openmx", 1, 10, || {
        ClusterBuilder::new()
            .nodes(2)
            .strategy(CoalescingStrategy::OpenMx { delay_us: 75 })
            .build()
            .run_pingpong(PingPongSpec {
                msg_len: 128,
                iterations: 50,
                warmup: 5,
            })
    });
    bench("simulate", "stream_128B_1000msgs_disabled", 1, 10, || {
        ClusterBuilder::new()
            .nodes(2)
            .strategy(CoalescingStrategy::Disabled)
            .build()
            .run_stream(StreamSpec {
                msg_len: 128,
                messages: 1_000,
                window: 32,
            })
    });
    bench("simulate", "transfer_234KiB_10x_timeout75", 1, 10, || {
        ClusterBuilder::new()
            .nodes(2)
            .strategy(CoalescingStrategy::Timeout { delay_us: 75 })
            .build()
            .run_transfer(omx_core::workloads::transfer::TransferSpec {
                msg_len: 234 * 1024,
                repeats: 10,
                gap_ns: 400_000,
            })
    });
}

fn nas_sim() {
    bench("simulate_nas", "nas_is_mini_default", 1, 10, || {
        let spec = omx_nas::NasSpec {
            benchmark: omx_nas::NasBenchmark::Is,
            class: omx_nas::NasClass::Mini,
        };
        omx_nas::run_nas(spec, omx_core::system::ClusterConfig::default()).expect("runnable")
    });
}

fn main() {
    pingpong_sim();
    nas_sim();
}
