//! Criterion end-to-end benchmarks: how fast the simulator reproduces each
//! class of paper experiment (wall-clock per simulated workload). One bench
//! per experiment family keeps the harness cost visible in CI.

use criterion::{criterion_group, criterion_main, Criterion};
use omx_core::prelude::*;

fn pingpong_sim(c: &mut Criterion) {
    let mut group = c.benchmark_group("simulate");
    group.sample_size(10);
    group.bench_function("pingpong_128B_50iters_openmx", |b| {
        b.iter(|| {
            ClusterBuilder::new()
                .nodes(2)
                .strategy(CoalescingStrategy::OpenMx { delay_us: 75 })
                .build()
                .run_pingpong(PingPongSpec {
                    msg_len: 128,
                    iterations: 50,
                    warmup: 5,
                })
        })
    });
    group.bench_function("stream_128B_1000msgs_disabled", |b| {
        b.iter(|| {
            ClusterBuilder::new()
                .nodes(2)
                .strategy(CoalescingStrategy::Disabled)
                .build()
                .run_stream(StreamSpec {
                    msg_len: 128,
                    messages: 1_000,
                    window: 32,
                })
        })
    });
    group.bench_function("transfer_234KiB_10x_timeout75", |b| {
        b.iter(|| {
            ClusterBuilder::new()
                .nodes(2)
                .strategy(CoalescingStrategy::Timeout { delay_us: 75 })
                .build()
                .run_transfer(omx_core::workloads::transfer::TransferSpec {
                    msg_len: 234 * 1024,
                    repeats: 10,
                    gap_ns: 400_000,
                })
        })
    });
    group.finish();
}

fn nas_sim(c: &mut Criterion) {
    let mut group = c.benchmark_group("simulate_nas");
    group.sample_size(10);
    group.bench_function("nas_is_mini_default", |b| {
        b.iter(|| {
            let spec = omx_nas::NasSpec {
                benchmark: omx_nas::NasBenchmark::Is,
                class: omx_nas::NasClass::Mini,
            };
            omx_nas::run_nas(spec, omx_core::system::ClusterConfig::default()).expect("runnable")
        })
    });
    group.finish();
}

criterion_group!(benches, pingpong_sim, nas_sim);
criterion_main!(benches);
