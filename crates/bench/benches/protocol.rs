//! Criterion micro-benchmarks of the Open-MX protocol hot paths: wire
//! encode/decode, the match engine, and the coalescing decision hooks.

use criterion::{black_box, criterion_group, criterion_main, BatchSize, Criterion, Throughput};
use omx_core::matching::{MatchEngine, PostedRecv, UnexpectedMsg};
use omx_core::wire::{EndpointAddr, MsgId, OmxHeader, Packet, PacketKind};
use omx_nic::{Coalescer, PacketMeta, StreamCoalescing, TimeoutCoalescing};
use omx_sim::Time;

fn sample_packet() -> Packet {
    Packet {
        hdr: OmxHeader {
            src: EndpointAddr::new(0, 1),
            dst: EndpointAddr::new(1, 2),
            latency_sensitive: true,
            seq: 42,
            ack: 41,
        },
        kind: PacketKind::MediumFrag {
            msg: MsgId(7),
            match_info: 0xDEAD_BEEF,
            frag: 11,
            frag_count: 23,
            frag_len: 1468,
            total_len: 32 * 1024,
        },
    }
}

fn wire_codec(c: &mut Criterion) {
    let mut group = c.benchmark_group("wire");
    group.throughput(Throughput::Elements(1));
    let pkt = sample_packet();
    group.bench_function("encode", |b| b.iter(|| pkt.encode()));
    let bytes = pkt.encode();
    group.bench_function("decode", |b| {
        b.iter(|| Packet::decode(bytes.clone()).expect("valid"))
    });
    group.finish();
}

fn matching(c: &mut Criterion) {
    let mut group = c.benchmark_group("matching");
    group.throughput(Throughput::Elements(1_000));
    group.bench_function("post_and_match_1k_exact", |b| {
        b.iter_batched(
            MatchEngine::new,
            |mut m| {
                for i in 0..1_000u64 {
                    m.post_recv(PostedRecv {
                        handle: i,
                        match_value: i,
                        match_mask: !0,
                    });
                }
                for i in 0..1_000u64 {
                    let hit = m.incoming(UnexpectedMsg {
                        src: EndpointAddr::new(0, 0),
                        msg: MsgId(i),
                        match_info: i,
                        len: 64,
                    });
                    assert!(hit.is_some());
                }
                m
            },
            BatchSize::SmallInput,
        )
    });
    group.finish();
}

fn coalescer_hooks(c: &mut Criterion) {
    let mut group = c.benchmark_group("coalescer");
    group.throughput(Throughput::Elements(10_000));
    let meta = PacketMeta::omx(1500, true);

    group.bench_function("timeout_10k_packets", |b| {
        b.iter_batched(
            || TimeoutCoalescing::new(75),
            |mut s| {
                let mut raises = 0u64;
                for i in 0..10_000u64 {
                    let t = Time::from_nanos(i * 1_200);
                    let a = s.on_packet_arrival(t, &meta);
                    let b = s.on_dma_complete(t, false, 0, 1);
                    raises += u64::from(a.raise) + u64::from(b.raise);
                }
                black_box(raises);
                s
            },
            BatchSize::SmallInput,
        )
    });

    group.bench_function("stream_10k_packets", |b| {
        b.iter_batched(
            || StreamCoalescing::new(75),
            |mut s| {
                for i in 0..10_000u64 {
                    let t = Time::from_nanos(i * 1_200);
                    s.on_packet_arrival(t, &meta);
                    let d = s.on_dma_complete(t, true, (i % 3) as usize, 1);
                    if d.raise {
                        s.on_interrupt(t);
                    }
                }
                s
            },
            BatchSize::SmallInput,
        )
    });
    group.finish();
}

criterion_group!(benches, wire_codec, matching, coalescer_hooks);
criterion_main!(benches);
