//! Micro-benchmarks of the Open-MX protocol hot paths: wire encode/decode,
//! the match engine, and the coalescing decision hooks.

use std::hint::black_box;

use omx_bench::timing::bench;
use omx_core::matching::{MatchEngine, PostedRecv, UnexpectedMsg};
use omx_core::wire::{EndpointAddr, MsgId, OmxHeader, Packet, PacketKind};
use omx_nic::{Coalescer, PacketMeta, StreamCoalescing, TimeoutCoalescing};
use omx_sim::Time;

fn sample_packet() -> Packet {
    Packet {
        hdr: OmxHeader {
            src: EndpointAddr::new(0, 1),
            dst: EndpointAddr::new(1, 2),
            latency_sensitive: true,
            seq: 42,
            ack: 41,
        },
        kind: PacketKind::MediumFrag {
            msg: MsgId(7),
            match_info: 0xDEAD_BEEF,
            frag: 11,
            frag_count: 23,
            frag_len: 1468,
            total_len: 32 * 1024,
        },
    }
}

fn wire_codec() {
    let pkt = sample_packet();
    bench("wire", "encode", 100, 10_000, || pkt.encode());
    let bytes = pkt.encode();
    bench("wire", "decode", 100, 10_000, || {
        Packet::decode(bytes.clone()).expect("valid")
    });
}

fn matching() {
    bench("matching", "post_and_match_1k_exact", 3, 50, || {
        let mut m = MatchEngine::new();
        for i in 0..1_000u64 {
            m.post_recv(PostedRecv {
                handle: i,
                match_value: i,
                match_mask: !0,
            });
        }
        for i in 0..1_000u64 {
            let hit = m.incoming(UnexpectedMsg {
                src: EndpointAddr::new(0, 0),
                msg: MsgId(i),
                match_info: i,
                len: 64,
            });
            assert!(hit.is_some());
        }
        m
    });
}

fn coalescer_hooks() {
    let meta = PacketMeta::omx(1500, true);

    bench("coalescer", "timeout_10k_packets", 3, 50, || {
        let mut s = TimeoutCoalescing::new(75);
        let mut raises = 0u64;
        for i in 0..10_000u64 {
            let t = Time::from_nanos(i * 1_200);
            let a = s.on_packet_arrival(t, &meta);
            let b = s.on_dma_complete(t, false, 0, 1);
            raises += u64::from(a.raise) + u64::from(b.raise);
        }
        black_box(raises);
        s
    });

    bench("coalescer", "stream_10k_packets", 3, 50, || {
        let mut s = StreamCoalescing::new(75);
        for i in 0..10_000u64 {
            let t = Time::from_nanos(i * 1_200);
            s.on_packet_arrival(t, &meta);
            let d = s.on_dma_complete(t, true, (i % 3) as usize, 1);
            if d.raise {
                s.on_interrupt(t);
            }
        }
        s
    });
}

fn main() {
    wire_codec();
    matching();
    coalescer_hooks();
}
