//! Criterion micro-benchmarks of the simulation engine itself — the
//! substrate's event throughput bounds how big an experiment the harness
//! can run, so regressions here matter.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};
use omx_sim::{Engine, EventQueue, Model, Scheduler, Time};

fn event_queue(c: &mut Criterion) {
    let mut group = c.benchmark_group("event_queue");
    group.throughput(Throughput::Elements(10_000));

    group.bench_function("push_pop_10k_fifo", |b| {
        b.iter_batched(
            EventQueue::<u64>::new,
            |mut q| {
                for i in 0..10_000u64 {
                    q.push(Time::from_nanos(i), i);
                }
                while q.pop().is_some() {}
                q
            },
            BatchSize::SmallInput,
        )
    });

    group.bench_function("push_cancel_pop_10k", |b| {
        b.iter_batched(
            EventQueue::<u64>::new,
            |mut q| {
                let tokens: Vec<_> = (0..10_000u64)
                    .map(|i| q.push(Time::from_nanos(i % 512), i))
                    .collect();
                for t in tokens.iter().step_by(2) {
                    q.cancel(*t);
                }
                while q.pop().is_some() {}
                q
            },
            BatchSize::SmallInput,
        )
    });
    group.finish();
}

struct Chain {
    remaining: u64,
}

impl Model for Chain {
    type Event = ();
    fn handle(&mut self, _now: Time, _ev: (), sched: &mut Scheduler<()>) {
        if self.remaining > 0 {
            self.remaining -= 1;
            sched.schedule_in(10, ());
        }
    }
}

fn engine_dispatch(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine");
    group.throughput(Throughput::Elements(100_000));
    group.bench_function("dispatch_100k_chained_events", |b| {
        b.iter(|| {
            let mut eng = Engine::new(Chain { remaining: 100_000 });
            eng.prime(Time::ZERO, ());
            eng.run(Time::MAX, u64::MAX);
            eng.events_processed()
        })
    });
    group.finish();
}

criterion_group!(benches, event_queue, engine_dispatch);
criterion_main!(benches);
