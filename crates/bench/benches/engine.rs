//! Micro-benchmarks of the simulation engine itself — the substrate's event
//! throughput bounds how big an experiment the harness can run, so
//! regressions here matter.

use omx_bench::timing::bench;
use omx_sim::{Engine, EventQueue, Model, Scheduler, Time};

fn event_queue() {
    bench("event_queue", "push_pop_10k_fifo", 3, 20, || {
        let mut q = EventQueue::<u64>::new();
        for i in 0..10_000u64 {
            q.push(Time::from_nanos(i), i);
        }
        while q.pop().is_some() {}
        q
    });

    bench("event_queue", "push_cancel_pop_10k", 3, 20, || {
        let mut q = EventQueue::<u64>::new();
        let tokens: Vec<_> = (0..10_000u64)
            .map(|i| q.push(Time::from_nanos(i % 512), i))
            .collect();
        for t in tokens.iter().step_by(2) {
            q.cancel(*t);
        }
        while q.pop().is_some() {}
        q
    });

    // The NIC coalescing pattern: a short-horizon timer cancelled and
    // re-armed once per packet behind an earlier backstop event — the timer
    // wheel's O(1) fast path.
    bench("event_queue", "timer_rearm_100k", 3, 20, || {
        let mut q = EventQueue::<u64>::new();
        q.push(Time::ZERO, 0);
        let mut tok = q.push(Time::from_nanos(60_000), 1);
        for i in 0..100_000u64 {
            q.cancel(tok);
            tok = q.push(Time::from_nanos(60_000 + (i % 1_000)), 1);
        }
        q
    });
}

struct Chain {
    remaining: u64,
}

impl Model for Chain {
    type Event = ();
    fn handle(&mut self, _now: Time, _ev: (), sched: &mut Scheduler<()>) {
        if self.remaining > 0 {
            self.remaining -= 1;
            sched.schedule_in(10, ());
        }
    }
}

fn engine_dispatch() {
    bench("engine", "dispatch_100k_chained_events", 1, 10, || {
        let mut eng = Engine::new(Chain { remaining: 100_000 });
        eng.prime(Time::ZERO, ());
        eng.run(Time::MAX, u64::MAX);
        eng.events_processed()
    });
}

fn main() {
    event_queue();
    engine_dispatch();
}
