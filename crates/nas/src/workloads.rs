//! Benchmark skeleton definitions.
//!
//! Sources for the communication patterns: the NPB 2.4 MPI reference codes
//! and their problem-class tables. For 16 ranks:
//!
//! * **IS** — 10 ranking iterations; each does a 1 KiB-scale allreduce of
//!   bucket counts, a tiny alltoall of send counts, then an alltoallv
//!   redistributing all `N` keys (4 B each): `N/P²` bytes per rank pair
//!   (B: 512 KiB, C: 2 MiB). Large-message intensive — the benchmark the
//!   paper's strategies move the most.
//! * **FT** — 20 iterations; each transposes the grid with an alltoall of
//!   `grid·16 B / P²` per pair (B: 2 MiB). Class C needs more memory than
//!   the paper's nodes had ("Not enough memory") and is reported as such.
//! * **CG** — 75 outer × 25 inner conjugate-gradient steps; each inner step
//!   exchanges the `w` vector with the row partner (na/4 doubles: B 150 KiB,
//!   C 300 KiB) twice (reduce stage + transpose) and allreduces two scalars.
//! * **EP** — embarrassingly parallel: one long compute phase and a few
//!   tiny allreduces.
//! * **LU** — 250 SSOR iterations; wavefront exchanges of ~20 KiB faces
//!   with the north/south and east/west neighbours.
//! * **MG** — 20 V-cycles over 6 grid levels; per level one face exchange
//!   with a neighbour (sizes halving from 512 KiB down to 512 B) plus a
//!   scalar allreduce per cycle.
//! * **BT / SP** — 200 / 400 ADI iterations; per iteration six face
//!   exchanges (two per dimension) of ~240 / ~120 KiB.
//!
//! Compute phases are calibrated so the *default-coalescing* run approaches
//! the paper's Table IV baseline; see `CALIBRATION` below. Neighbour
//! relations use XOR partners so that, under the paper's block rank
//! placement, low bits stay intra-node (shared memory) and bit 3 crosses
//! nodes — matching the NPB topology's mix.

use omx_mpi::ops::{Op, ProgramBuilder};

/// The eight NPB kernels the paper runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum NasBenchmark {
    /// Block-tridiagonal solver.
    Bt,
    /// Conjugate gradient.
    Cg,
    /// Embarrassingly parallel.
    Ep,
    /// 3-D FFT.
    Ft,
    /// Integer sort.
    Is,
    /// LU decomposition (SSOR).
    Lu,
    /// Multigrid.
    Mg,
    /// Scalar-pentadiagonal solver.
    Sp,
}

impl NasBenchmark {
    /// All kernels in the paper's table order.
    pub const ALL: [NasBenchmark; 8] = [
        NasBenchmark::Bt,
        NasBenchmark::Cg,
        NasBenchmark::Ep,
        NasBenchmark::Ft,
        NasBenchmark::Is,
        NasBenchmark::Lu,
        NasBenchmark::Mg,
        NasBenchmark::Sp,
    ];

    /// Lower-case name, as in `is.C.16`.
    pub fn name(&self) -> &'static str {
        match self {
            NasBenchmark::Bt => "bt",
            NasBenchmark::Cg => "cg",
            NasBenchmark::Ep => "ep",
            NasBenchmark::Ft => "ft",
            NasBenchmark::Is => "is",
            NasBenchmark::Lu => "lu",
            NasBenchmark::Mg => "mg",
            NasBenchmark::Sp => "sp",
        }
    }
}

/// Problem class.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum NasClass {
    /// Class B.
    B,
    /// Class C.
    C,
    /// Tiny class for fast tests (not an NPB class).
    Mini,
}

impl NasClass {
    /// Upper-case letter, as in `is.C.16`.
    pub fn name(&self) -> &'static str {
        match self {
            NasClass::B => "B",
            NasClass::C => "C",
            NasClass::Mini => "mini",
        }
    }
}

/// One benchmark × class combination.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct NasSpec {
    /// Kernel.
    pub benchmark: NasBenchmark,
    /// Problem class.
    pub class: NasClass,
}

impl NasSpec {
    /// `false` for `ft.C`, which the paper's nodes could not fit in memory.
    pub fn is_runnable(&self) -> bool {
        !(self.benchmark == NasBenchmark::Ft && self.class == NasClass::C)
    }

    /// Display name, e.g. `is.C.16`.
    pub fn name(&self) -> String {
        format!("{}.{}.16", self.benchmark.name(), self.class.name())
    }
}

/// Per-iteration compute time (ns) calibrated against Table IV's default
/// column, and the structural parameters of each skeleton.
struct Shape {
    iters: usize,
    compute_ns: u64,
    /// Message size parameter (meaning depends on the kernel).
    bytes: u32,
}

fn shape(spec: NasSpec) -> Shape {
    use NasBenchmark::*;
    use NasClass::*;
    match (spec.benchmark, spec.class) {
        // bt.C.16: 271.2 s over 200 iterations, ~2 % communication.
        (Bt, C) => Shape {
            iters: 200,
            compute_ns: 1_345_000_000,
            bytes: 240 * 1024,
        },
        (Bt, B) => Shape {
            iters: 200,
            compute_ns: 540_000_000,
            bytes: 120 * 1024,
        },
        // cg.C.16: 90.04 s over 75×25 inner steps.
        (Cg, C) => Shape {
            iters: 1_875,
            compute_ns: 45_200_000,
            bytes: 300 * 1024,
        },
        (Cg, B) => Shape {
            iters: 1_875,
            compute_ns: 20_000_000,
            bytes: 150 * 1024,
        },
        // ep.C.16: 31.30 s, one long compute.
        (Ep, C) => Shape {
            iters: 1,
            compute_ns: 31_250_000_000,
            bytes: 64,
        },
        (Ep, B) => Shape {
            iters: 1,
            compute_ns: 7_800_000_000,
            bytes: 64,
        },
        // ft.B.16: 24.24 s over 20 transposes.
        (Ft, B) => Shape {
            iters: 20,
            compute_ns: 810_000_000,
            bytes: 2 * 1024 * 1024,
        },
        (Ft, C) => Shape {
            iters: 20,
            compute_ns: 4_000_000_000,
            bytes: 8 * 1024 * 1024,
        },
        // is.C.16: 32.75 s over 10 rankings; is.B.16: 21.98 s.
        (Is, C) => Shape {
            iters: 10,
            compute_ns: 2_890_000_000,
            bytes: 2 * 1024 * 1024,
        },
        (Is, B) => Shape {
            iters: 10,
            compute_ns: 2_060_000_000,
            bytes: 512 * 1024,
        },
        // lu.C.16: 203.8 s over 250 SSOR iterations.
        (Lu, C) => Shape {
            iters: 250,
            compute_ns: 805_000_000,
            bytes: 20 * 1024,
        },
        (Lu, B) => Shape {
            iters: 250,
            compute_ns: 330_000_000,
            bytes: 10 * 1024,
        },
        // mg.C.16: 43.91 s over 20 V-cycles.
        (Mg, C) => Shape {
            iters: 20,
            compute_ns: 2_140_000_000,
            bytes: 512 * 1024,
        },
        (Mg, B) => Shape {
            iters: 20,
            compute_ns: 950_000_000,
            bytes: 128 * 1024,
        },
        // sp.C.16: 549.1 s over 400 iterations.
        (Sp, C) => Shape {
            iters: 400,
            compute_ns: 1_362_000_000,
            bytes: 120 * 1024,
        },
        (Sp, B) => Shape {
            iters: 400,
            compute_ns: 550_000_000,
            bytes: 60 * 1024,
        },
        // Mini: fast smoke-test shape.
        (_, Mini) => Shape {
            iters: 2,
            compute_ns: 100_000,
            bytes: 4 * 1024,
        },
    }
}

/// Build the rank program for one benchmark run.
pub fn nas_program(spec: NasSpec, rank: usize, ranks: usize) -> Vec<Op> {
    let s = shape(spec);
    let mut p = ProgramBuilder::new().op(Op::Barrier);
    let block: Vec<Op> = per_iteration_ops(spec.benchmark, &s, rank, ranks);
    p = p.repeat(s.iters, &block);
    p = p.op(Op::Barrier);
    p.build()
}

fn per_iteration_ops(benchmark: NasBenchmark, s: &Shape, rank: usize, ranks: usize) -> Vec<Op> {
    // XOR partners: ^1/^2/^4 are intra-node under block placement, ^8 is
    // the cross-node partner.
    let x = |bit: usize| rank ^ bit.min(ranks - 1);
    match benchmark {
        NasBenchmark::Is => {
            let mut sizes = vec![s.bytes; ranks];
            sizes[rank] = 0;
            vec![
                Op::Compute(s.compute_ns),
                Op::Allreduce { bytes: 4_096 },
                Op::Alltoall { bytes: 64 },
                Op::Alltoallv { bytes: sizes },
            ]
        }
        NasBenchmark::Ft => vec![Op::Compute(s.compute_ns), Op::Alltoall { bytes: s.bytes }],
        NasBenchmark::Cg => vec![
            Op::Compute(s.compute_ns),
            // Reduce stage with the row partner (intra-node under block
            // placement), transpose with the cross-node partner (the 4x4
            // process grid keeps ~60 % of CG volume inside a node, so the
            // cross-node leg carries a reduced share).
            Op::SendRecv {
                peer: x(4),
                bytes: s.bytes,
                tag: 1,
            },
            Op::SendRecv {
                peer: x(8),
                bytes: s.bytes * 2 / 5,
                tag: 2,
            },
            Op::Allreduce { bytes: 16 },
            Op::Allreduce { bytes: 16 },
        ],
        NasBenchmark::Ep => vec![
            Op::Compute(s.compute_ns),
            Op::Allreduce { bytes: s.bytes },
            Op::Allreduce { bytes: s.bytes },
            Op::Allreduce { bytes: s.bytes },
            Op::Barrier,
        ],
        NasBenchmark::Lu => vec![
            Op::Compute(s.compute_ns),
            Op::SendRecv {
                peer: x(1),
                bytes: s.bytes,
                tag: 1,
            },
            Op::SendRecv {
                peer: x(4),
                bytes: s.bytes,
                tag: 2,
            },
            Op::SendRecv {
                peer: x(8),
                bytes: s.bytes,
                tag: 3,
            },
            Op::SendRecv {
                peer: x(1),
                bytes: s.bytes,
                tag: 4,
            },
        ],
        NasBenchmark::Mg => {
            let mut ops = vec![Op::Compute(s.compute_ns)];
            // Six levels; neighbour alternates through the dimensions.
            let mut bytes = s.bytes;
            for (level, bit) in [8usize, 1, 2, 8, 1, 2].into_iter().enumerate() {
                ops.push(Op::SendRecv {
                    peer: x(bit),
                    bytes: bytes.max(64),
                    tag: 10 + level as u32,
                });
                bytes /= 4;
            }
            ops.push(Op::Allreduce { bytes: 8 });
            ops
        }
        NasBenchmark::Bt | NasBenchmark::Sp => vec![
            Op::Compute(s.compute_ns),
            Op::SendRecv {
                peer: x(1),
                bytes: s.bytes,
                tag: 1,
            },
            Op::SendRecv {
                peer: x(1),
                bytes: s.bytes,
                tag: 2,
            },
            Op::SendRecv {
                peer: x(4),
                bytes: s.bytes,
                tag: 3,
            },
            Op::SendRecv {
                peer: x(4),
                bytes: s.bytes,
                tag: 4,
            },
            Op::SendRecv {
                peer: x(8),
                bytes: s.bytes,
                tag: 5,
            },
            Op::SendRecv {
                peer: x(8),
                bytes: s.bytes,
                tag: 6,
            },
        ],
    }
}

/// The paper's Table IV row set, in order.
pub fn paper_table_rows() -> Vec<NasSpec> {
    use NasBenchmark::*;
    use NasClass::*;
    vec![
        NasSpec {
            benchmark: Bt,
            class: C,
        },
        NasSpec {
            benchmark: Cg,
            class: C,
        },
        NasSpec {
            benchmark: Ep,
            class: C,
        },
        NasSpec {
            benchmark: Ft,
            class: C,
        }, // reported "not enough memory"
        NasSpec {
            benchmark: Ft,
            class: B,
        },
        NasSpec {
            benchmark: Is,
            class: C,
        },
        NasSpec {
            benchmark: Is,
            class: B,
        },
        NasSpec {
            benchmark: Lu,
            class: C,
        },
        NasSpec {
            benchmark: Mg,
            class: C,
        },
        NasSpec {
            benchmark: Sp,
            class: C,
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_match_paper_notation() {
        let spec = NasSpec {
            benchmark: NasBenchmark::Is,
            class: NasClass::C,
        };
        assert_eq!(spec.name(), "is.C.16");
    }

    #[test]
    fn ft_c_flagged_unrunnable() {
        assert!(!NasSpec {
            benchmark: NasBenchmark::Ft,
            class: NasClass::C
        }
        .is_runnable());
        assert!(NasSpec {
            benchmark: NasBenchmark::Ft,
            class: NasClass::B
        }
        .is_runnable());
    }

    #[test]
    fn programs_are_spmd_consistent() {
        // Every rank's program must have the same length and op kinds at
        // each index (collective lockstep requirement).
        for benchmark in NasBenchmark::ALL {
            let spec = NasSpec {
                benchmark,
                class: NasClass::Mini,
            };
            let progs: Vec<Vec<Op>> = (0..16).map(|r| nas_program(spec, r, 16)).collect();
            let len = progs[0].len();
            for (r, p) in progs.iter().enumerate() {
                assert_eq!(p.len(), len, "{benchmark:?} rank {r} length differs");
                for (i, op) in p.iter().enumerate() {
                    assert_eq!(
                        std::mem::discriminant(op),
                        std::mem::discriminant(&progs[0][i]),
                        "{benchmark:?} rank {r} op {i} kind differs"
                    );
                }
            }
        }
    }

    #[test]
    fn sendrecv_partners_are_symmetric() {
        for benchmark in NasBenchmark::ALL {
            let spec = NasSpec {
                benchmark,
                class: NasClass::Mini,
            };
            let progs: Vec<Vec<Op>> = (0..16).map(|r| nas_program(spec, r, 16)).collect();
            for (r, p) in progs.iter().enumerate() {
                for (i, op) in p.iter().enumerate() {
                    if let Op::SendRecv { peer, bytes, tag } = op {
                        let Op::SendRecv {
                            peer: back,
                            bytes: b2,
                            tag: t2,
                        } = &progs[*peer][i]
                        else {
                            panic!("{benchmark:?}: partner op mismatch");
                        };
                        assert_eq!(*back, r, "{benchmark:?} op {i}");
                        assert_eq!(bytes, b2);
                        assert_eq!(tag, t2);
                    }
                }
            }
        }
    }

    #[test]
    fn paper_rows_cover_the_table() {
        let rows = paper_table_rows();
        assert_eq!(rows.len(), 10);
        assert_eq!(rows.iter().filter(|r| !r.is_runnable()).count(), 1);
    }

    #[test]
    fn traffic_ordering_matches_paper_narrative() {
        // §IV-D: IS, FT and CG have the highest network traffic. Compare
        // skeleton per-run inter-node byte estimates.
        let bytes_of = |benchmark| {
            let spec = NasSpec {
                benchmark,
                class: NasClass::C,
            };
            if !spec.is_runnable() {
                return 0;
            }
            let prog = nas_program(spec, 0, 16);
            prog.iter().map(|op| op.bytes_sent(16)).sum::<u64>()
        };
        let is = bytes_of(NasBenchmark::Is);
        let cg = bytes_of(NasBenchmark::Cg);
        let ep = bytes_of(NasBenchmark::Ep);
        let lu = bytes_of(NasBenchmark::Lu);
        assert!(is > lu, "IS ({is}) must out-traffic LU ({lu})");
        assert!(cg > lu);
        assert!(ep < lu / 10, "EP is nearly communication-free");
    }
}
