//! # omx-nas — NAS Parallel Benchmark communication skeletons
//!
//! The paper's application evaluation (Tables IV and V) runs the NPB 2.x
//! MPI benchmarks — BT, CG, EP, FT, IS, LU, MG, SP — with 16 ranks on two
//! 8-core nodes. We reproduce them as *communication skeletons*: each
//! benchmark contributes its documented per-iteration communication pattern
//! (operation types, message sizes, partners, iteration counts derived from
//! the NPB specifications) plus a compute phase calibrated so that the run
//! time under the **default coalescing strategy** lands near the paper's
//! Table IV baseline. The *differences* between strategies then emerge from
//! the simulated stack rather than being dialled in.
//!
//! Approximations are documented per benchmark in [`workloads`]; `ft.C` is
//! reported as out-of-memory exactly as in the paper.

#![warn(missing_docs)]

pub mod workloads;

pub use workloads::{nas_program, NasBenchmark, NasClass, NasSpec};

use omx_core::system::ClusterConfig;
use omx_mpi::{MpiRunReport, MpiWorld, WorldSpec};

/// Run one NAS benchmark on the paper's 16-rank / 2-node world with the
/// given cluster configuration. Returns `None` for combinations the paper
/// could not run (`ft.C`: not enough memory).
pub fn run_nas(spec: NasSpec, cfg: ClusterConfig) -> Option<MpiRunReport> {
    if !spec.is_runnable() {
        return None;
    }
    let world = WorldSpec::paper_16x2();
    Some(MpiWorld::new(world, cfg).run(|rank| nas_program(spec, rank, world.ranks)))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ft_class_c_is_out_of_memory_like_the_paper() {
        let spec = NasSpec {
            benchmark: NasBenchmark::Ft,
            class: NasClass::C,
        };
        assert!(!spec.is_runnable());
        assert!(run_nas(spec, ClusterConfig::default()).is_none());
    }

    #[test]
    fn mini_is_runs_end_to_end() {
        let spec = NasSpec {
            benchmark: NasBenchmark::Is,
            class: NasClass::Mini,
        };
        let report = run_nas(spec, ClusterConfig::default()).expect("runnable");
        assert_eq!(report.per_rank_finish_ns.len(), 16);
        assert!(
            report.metrics.frames_carried > 0,
            "IS moves data on the wire"
        );
    }

    #[test]
    fn mini_all_benchmarks_complete() {
        for benchmark in NasBenchmark::ALL {
            let spec = NasSpec {
                benchmark,
                class: NasClass::Mini,
            };
            let report = run_nas(spec, ClusterConfig::default())
                .unwrap_or_else(|| panic!("{benchmark:?} mini must run"));
            assert!(
                report.elapsed_ns > 0,
                "{benchmark:?} produced no elapsed time"
            );
        }
    }
}
