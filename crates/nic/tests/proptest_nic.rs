//! Property tests for the NIC state machine: liveness (no packet ever
//! strands without an interrupt) and conservation (every accepted packet is
//! claimed exactly once) for every strategy under arbitrary traffic.
//!
//! Randomised with the simulator's deterministic [`SimRng`] (fixed seeds, so
//! failures reproduce exactly) instead of an external property-test harness.

use omx_nic::{CoalescingStrategy, DescId, Nic, NicConfig, NicOutcome, PacketMeta};
use omx_sim::rng::SimRng;
use omx_sim::Time;
use std::collections::BTreeMap;

#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
enum Ev {
    Dma(u64),   // DescId
    Timer(u64), // epoch
    Enable,
}

/// Step-simulate one NIC against an arbitrary arrival schedule; the host
/// services every interrupt after `service_ns`. Returns packets claimed.
fn drive(
    strategy: CoalescingStrategy,
    arrivals: &[(u64, u32, bool)], // (gap_ns, len, marked)
    service_ns: u64,
) -> (u64, u64, u64) {
    struct Sim {
        nic: Nic,
        queue: BTreeMap<(u64, u64), Ev>,
        seq: u64,
        service_ns: u64,
        claimed: u64,
        irqs: u64,
    }

    impl Sim {
        fn push(&mut self, t: u64, ev: Ev) {
            self.queue.insert((t, self.seq), ev);
            self.seq += 1;
        }

        fn apply(&mut self, out: NicOutcome, now: u64) {
            if let Some((desc, at)) = out.dma {
                self.push(at.as_nanos(), Ev::Dma(desc.0));
            }
            if let Some((at, epoch)) = out.arm_timer {
                self.push(at.as_nanos().max(now), Ev::Timer(epoch));
            }
            if out.interrupt {
                self.irqs += 1;
                self.claimed += self.nic.drain_ready().len() as u64;
                self.push(now + self.service_ns, Ev::Enable);
            }
        }

        fn step_due(&mut self, horizon: u64) {
            while let Some((&(t, s), _)) = self.queue.first_key_value() {
                if t > horizon {
                    break;
                }
                let ev = self.queue.remove(&(t, s)).expect("exists");
                let out = match ev {
                    Ev::Dma(d) => self.nic.on_dma_complete(Time::from_nanos(t), DescId(d)),
                    Ev::Timer(e) => self.nic.on_timer(Time::from_nanos(t), e),
                    Ev::Enable => self.nic.enable_irq(Time::from_nanos(t)),
                };
                self.apply(out, t);
            }
        }
    }

    let mut sim = Sim {
        nic: Nic::new(NicConfig {
            rx_ring_slots: 4096,
            strategy,
            ..NicConfig::default()
        }),
        queue: BTreeMap::new(),
        seq: 0,
        service_ns,
        claimed: 0,
        irqs: 0,
    };
    let mut now = 0u64;
    let mut accepted = 0u64;
    for &(gap, len, marked) in arrivals {
        now += gap;
        sim.step_due(now);
        let out = sim
            .nic
            .on_frame(Time::from_nanos(now), PacketMeta::omx(len.max(1), marked));
        if !out.dropped {
            accepted += 1;
        }
        sim.apply(out, now);
    }
    sim.step_due(u64::MAX);
    (accepted, sim.claimed, sim.irqs)
}

fn strategies() -> Vec<CoalescingStrategy> {
    vec![
        CoalescingStrategy::Disabled,
        CoalescingStrategy::Timeout { delay_us: 75 },
        CoalescingStrategy::OpenMx { delay_us: 75 },
        CoalescingStrategy::Stream { delay_us: 75 },
        CoalescingStrategy::Adaptive {
            min_delay_us: 0,
            max_delay_us: 75,
        },
    ]
}

fn random_arrivals(
    rng: &mut SimRng,
    count_lo: u64,
    count_hi: u64,
    gap_lo: u64,
    gap_hi: u64,
) -> Vec<(u64, u32, bool)> {
    let n = rng.range_u64(count_lo, count_hi) as usize;
    (0..n)
        .map(|_| {
            (
                rng.range_u64(gap_lo, gap_hi),
                rng.range_u64(1, 1500) as u32,
                rng.chance(0.5),
            )
        })
        .collect()
}

/// Liveness + conservation: every accepted packet is eventually claimed
/// by exactly one interrupt, for any strategy, any arrival pattern, any
/// marking, any host service time.
#[test]
fn every_packet_is_claimed_exactly_once() {
    let mut rng = SimRng::new(0x5EED_1001);
    for _case in 0..48 {
        let arrivals = random_arrivals(&mut rng, 1, 200, 0, 200_000);
        let service_ns = rng.range_u64(100, 20_000);
        for strategy in strategies() {
            let (accepted, claimed, irqs) = drive(strategy, &arrivals, service_ns);
            assert_eq!(
                accepted, claimed,
                "{strategy:?}: {accepted} accepted vs {claimed} claimed"
            );
            assert!(irqs >= 1);
        }
    }
}

/// Disabled coalescing raises at least one interrupt per packet batch
/// boundary and never fewer interrupts than any coalescing strategy.
#[test]
fn disabled_raises_the_most_interrupts() {
    let mut rng = SimRng::new(0x5EED_1002);
    for _case in 0..48 {
        let arrivals = random_arrivals(&mut rng, 5, 100, 100, 10_000);
        let (_, _, disabled) = drive(CoalescingStrategy::Disabled, &arrivals, 1_000);
        let (_, _, timeout) = drive(
            CoalescingStrategy::Timeout { delay_us: 75 },
            &arrivals,
            1_000,
        );
        let (_, _, stream) = drive(
            CoalescingStrategy::Stream { delay_us: 75 },
            &arrivals,
            1_000,
        );
        assert!(
            disabled >= timeout,
            "disabled {disabled} < timeout {timeout}"
        );
        assert!(disabled >= stream, "disabled {disabled} < stream {stream}");
    }
}
