//! The composite NIC state machine.
//!
//! [`Nic`] glues RX ring accounting, the [`DmaEngine`] and a [`Coalescer`]
//! into the passive component the cluster orchestrator drives. The split of
//! responsibilities follows the hardware:
//!
//! * the **strategy** (firmware logic) decides *when it wants* an interrupt,
//! * the **Nic** (hardware) enforces the physical gates — interrupts are
//!   auto-masked while one is being serviced (MSI + NAPI semantics), a raise
//!   with nothing to report is latched until a packet is ready, and the
//!   single coalescing timer is validated by epoch so stale timer events
//!   from a superseded arming are ignored.
//!
//! All methods return a [`NicOutcome`] describing the events the caller must
//! schedule (DMA completion, timer expiry) or act on (interrupt delivery).

use crate::coalesce::{ActiveCoalescer, Coalescer, CoalescingStrategy, Decision, TimerAction};
use crate::dma::{DmaConfig, DmaEngine};
use crate::packet::{DescId, PacketClass, PacketMeta};
use omx_sim::stats::{Counter, Histogram};
use omx_sim::Time;

/// Static NIC configuration.
#[derive(Debug, Clone)]
pub struct NicConfig {
    /// RX ring capacity in descriptors (in-flight DMAs + ready packets).
    pub rx_ring_slots: u32,
    /// DMA engine parameters.
    pub dma: DmaConfig,
    /// Coalescing strategy.
    pub strategy: CoalescingStrategy,
}

impl Default for NicConfig {
    fn default() -> Self {
        NicConfig {
            rx_ring_slots: 512,
            dma: DmaConfig::default(),
            strategy: CoalescingStrategy::myri10g_default(),
        }
    }
}

/// A packet sitting in host memory, ready for the host receive handler.
#[derive(Debug, Clone, Copy)]
pub struct ReadyPacket {
    /// Descriptor id.
    pub desc: DescId,
    /// Frame metadata.
    pub meta: PacketMeta,
    /// When its DMA completed (host-visible time).
    pub completed_at: Time,
}

/// Events the caller must schedule / act on after driving the NIC.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct NicOutcome {
    /// Schedule a DMA-completion event for this descriptor at this time.
    pub dma: Option<(DescId, Time)>,
    /// An interrupt was raised right now (already counted by the NIC);
    /// deliver it to a host core.
    pub interrupt: bool,
    /// (Re-)arm the coalescing timer: schedule a timer event at this time
    /// carrying this epoch. Any previously scheduled timer is superseded.
    pub arm_timer: Option<(Time, u64)>,
    /// The frame was dropped because the RX ring was full.
    pub dropped: bool,
}

/// Monotonic NIC counters (mirrors `ethtool -S` style statistics).
#[derive(Debug, Default, Clone)]
pub struct NicCounters {
    /// Interrupts actually delivered to the host.
    pub interrupts: Counter,
    /// Frames accepted off the wire.
    pub packets: Counter,
    /// Frames carrying the Open-MX latency-sensitive marker.
    pub marked_packets: Counter,
    /// Frames dropped for lack of ring space.
    pub ring_drops: Counter,
    /// Open-MX frames accepted.
    pub omx_packets: Counter,
    /// IP frames accepted.
    pub ip_packets: Counter,
    /// Packets claimed by the host per interrupt.
    pub batch_sizes: Histogram,
    /// Time each packet sat ready (DMA done) before its interrupt fired,
    /// nanoseconds — the coalescing deferral the paper trades against
    /// interrupt rate.
    pub coalesce_hold_ns: Histogram,
}

omx_sim::impl_to_json!(NicCounters {
    interrupts,
    packets,
    marked_packets,
    ring_drops,
    omx_packets,
    ip_packets,
    batch_sizes,
    coalesce_hold_ns,
});
omx_sim::impl_from_json!(NicCounters {
    interrupts,
    packets,
    marked_packets,
    ring_drops,
    omx_packets,
    ip_packets,
    batch_sizes,
    coalesce_hold_ns,
});

/// The simulated NIC.
pub struct Nic {
    cfg: NicConfig,
    strategy: ActiveCoalescer,
    dma: DmaEngine,
    /// Metadata of descriptors whose DMA is in flight, FIFO order.
    inflight_meta: std::collections::VecDeque<(DescId, PacketMeta)>,
    /// Packets in host memory awaiting an interrupt to claim them.
    ready: Vec<ReadyPacket>,
    /// Packets claimed by the in-flight interrupt (snapshot taken when the
    /// interrupt was raised — the handler processes exactly these).
    claimed: Vec<ReadyPacket>,
    /// Raise requests that arrived while an interrupt was in flight: each
    /// carries its own packet snapshot and is delivered as its own interrupt
    /// when the host re-enables (per-packet interrupts persist under load,
    /// as Table V of the paper measures for disabled coalescing).
    pending_claims: std::collections::VecDeque<Vec<ReadyPacket>>,
    next_desc: u64,
    /// Interrupts are auto-masked from raise until the host re-enables them.
    irq_enabled: bool,
    /// A raise was requested while masked (or with nothing ready): deliver
    /// as soon as both gates open.
    irq_latched: bool,
    /// Epoch of the currently armed timer; events with older epochs are stale.
    timer_epoch: u64,
    timer_armed: bool,
    /// Recycled claim vectors: every snapshot taken by `try_raise` comes
    /// from here and returns via `deliver`, so steady-state claim/drain
    /// cycles allocate nothing.
    spare_claims: Vec<Vec<ReadyPacket>>,
    counters: NicCounters,
}

impl Nic {
    /// Build a NIC from its configuration.
    pub fn new(cfg: NicConfig) -> Self {
        let strategy = cfg.strategy.build_active();
        Nic {
            cfg,
            strategy,
            dma: DmaEngine::new(DmaConfig::default()),
            inflight_meta: std::collections::VecDeque::new(),
            ready: Vec::new(),
            claimed: Vec::new(),
            pending_claims: std::collections::VecDeque::new(),
            next_desc: 0,
            irq_enabled: true,
            irq_latched: false,
            timer_epoch: 0,
            timer_armed: false,
            spare_claims: Vec::new(),
            counters: NicCounters::default(),
        }
        .with_dma_cfg()
    }

    fn with_dma_cfg(mut self) -> Self {
        self.dma = DmaEngine::new(self.cfg.dma);
        self
    }

    /// Replace the coalescing strategy (for custom [`Coalescer`] impls that
    /// are not expressible as a [`CoalescingStrategy`]). Built-in strategies
    /// installed through [`NicConfig`] use static dispatch; a strategy set
    /// here runs behind the trait object it arrived in.
    pub fn set_strategy(&mut self, strategy: Box<dyn Coalescer>) {
        self.strategy = ActiveCoalescer::Custom(strategy);
    }

    /// The active strategy's name.
    pub fn strategy_name(&self) -> &'static str {
        self.strategy.name()
    }

    /// Account one completion interrupt raised by the collective-offload
    /// engine ([`crate::offload`]). Offloaded collectives bypass the RX
    /// ring, DMA engine and coalescer entirely — this is a dedicated
    /// MSI-X completion vector — but the interrupt still lands on the
    /// host, so it is folded into the same counter telemetry and the
    /// host-load experiments read.
    pub fn note_offload_interrupt(&mut self) {
        self.counters.interrupts.incr();
    }

    /// Counters snapshot.
    pub fn counters(&self) -> &NicCounters {
        &self.counters
    }

    /// Packets ready for the host but not yet claimed.
    pub fn ready_packets(&self) -> usize {
        self.ready.len()
    }

    /// DMA transfers currently in flight.
    pub fn pending_dmas(&self) -> usize {
        self.dma.pending()
    }

    /// Whether host interrupts are currently enabled (unmasked).
    pub fn irq_enabled(&self) -> bool {
        self.irq_enabled
    }

    /// Total packets the NIC still owes the host: DMAs in flight, ready
    /// packets awaiting an interrupt, and claim snapshots not yet serviced.
    /// Non-zero at quiescence means an interrupt-liveness violation — a
    /// coalescer held packets forever without raising.
    pub fn pending_work(&self) -> usize {
        self.dma.pending()
            + self.ready.len()
            + self.claimed.len()
            + self.pending_claims.iter().map(Vec::len).sum::<usize>()
    }

    /// RX-ring slots currently occupied, as counted against
    /// `rx_ring_slots` by the admission check in [`Nic::on_frame`]. This is
    /// the instantaneous ring-pressure gauge the telemetry sampler reads.
    pub fn rx_ring_occupancy(&self) -> usize {
        self.pending_work()
    }

    // -- event entry points -------------------------------------------------

    /// A frame arrived off the wire at `now`.
    pub fn on_frame(&mut self, now: Time, meta: PacketMeta) -> NicOutcome {
        let mut out = NicOutcome::default();
        let occupancy = self.dma.pending() as u32
            + self.ready.len() as u32
            + self.claimed.len() as u32
            + self
                .pending_claims
                .iter()
                .map(|c| c.len() as u32)
                .sum::<u32>();
        if occupancy >= self.cfg.rx_ring_slots {
            self.counters.ring_drops.incr();
            out.dropped = true;
            return out;
        }
        self.counters.packets.incr();
        match meta.class {
            PacketClass::OpenMx => self.counters.omx_packets.incr(),
            PacketClass::Ip => self.counters.ip_packets.incr(),
            PacketClass::Other => {}
        }
        if meta.marked {
            self.counters.marked_packets.incr();
        }

        let desc = DescId(self.next_desc);
        self.next_desc += 1;
        self.inflight_meta.push_back((desc, meta));
        let completes_at = self.dma.submit(now, desc, meta.len_bytes);
        out.dma = Some((desc, completes_at));

        let decision = self.strategy.on_packet_arrival(now, &meta);
        self.apply(now, decision, &mut out);
        out
    }

    /// The DMA for `desc` completed at `now`.
    pub fn on_dma_complete(&mut self, now: Time, desc: DescId) -> NicOutcome {
        let mut out = NicOutcome::default();
        let pending = self.dma.complete(desc);
        let (head_desc, meta) = self
            .inflight_meta
            .pop_front()
            .expect("completion without in-flight descriptor");
        debug_assert_eq!(head_desc, desc);
        self.ready.push(ReadyPacket {
            desc,
            meta,
            completed_at: now,
        });
        let decision =
            self.strategy
                .on_dma_complete(now, meta.marked, pending, self.ready.len() as u32);
        self.apply(now, decision, &mut out);
        // A raise latched earlier (e.g. timer fired before any DMA finished)
        // can be delivered now that a packet is ready.
        self.flush_latched(now, &mut out);
        self.safety_rearm(now, &mut out);
        out
    }

    /// The coalescing timer scheduled with `epoch` fired at `now`.
    pub fn on_timer(&mut self, now: Time, epoch: u64) -> NicOutcome {
        let mut out = NicOutcome::default();
        if !self.timer_armed || epoch != self.timer_epoch {
            return out; // superseded arming: stale event
        }
        self.timer_armed = false;
        let decision = self.strategy.on_timer(now);
        self.apply(now, decision, &mut out);
        out
    }

    /// The host finished servicing the interrupt and re-enables IRQs. If
    /// further raise requests queued while masked, the next one is delivered
    /// immediately as its own interrupt.
    pub fn enable_irq(&mut self, now: Time) -> NicOutcome {
        let mut out = NicOutcome::default();
        self.irq_enabled = true;
        if let Some(claim) = self.pending_claims.pop_front() {
            self.deliver(now, claim, &mut out);
        } else {
            self.flush_latched(now, &mut out);
        }
        self.safety_rearm(now, &mut out);
        out
    }

    /// Safety re-arm: packets sit in host memory but nothing will ever
    /// interrupt for them (no timer armed, no claim pending, no raise just
    /// issued) — re-arm the fallback timer so they cannot strand until a
    /// retransmission rescues them. Real firmware schedules its timeout per
    /// unclaimed event; this is the equivalent backstop. Checked after every
    /// DMA completion and after every interrupt re-enable (a packet may
    /// complete while an earlier claim is still queued).
    fn safety_rearm(&mut self, now: Time, out: &mut NicOutcome) {
        if !self.ready.is_empty()
            && !self.timer_armed
            && !out.interrupt
            && self.pending_claims.is_empty()
            && out.arm_timer.is_none()
        {
            if let Some(delay) = self.strategy.fallback_delay() {
                self.timer_epoch += 1;
                self.timer_armed = true;
                out.arm_timer = Some((now + delay, self.timer_epoch));
            }
        }
    }

    /// Flow id of the in-flight interrupt's first claimed packet (multiqueue
    /// steering input; 0 when nothing is claimed).
    pub fn claimed_flow(&self) -> u64 {
        self.claimed.first().map(|p| p.meta.flow).unwrap_or(0)
    }

    /// The host receive handler takes the packets the in-flight interrupt
    /// claimed when it was raised. Packets whose DMA completed afterwards
    /// wait for the next interrupt — the hardware interrupt carries a
    /// snapshot of the event ring, it does not grow retroactively.
    pub fn drain_ready(&mut self) -> Vec<ReadyPacket> {
        std::mem::take(&mut self.claimed)
    }

    /// Allocation-free variant of [`Nic::drain_ready`]: append the claimed
    /// packets to `out` (which the caller reuses across interrupts) and
    /// keep the claim vector's capacity for the next snapshot.
    pub fn drain_ready_into(&mut self, out: &mut Vec<ReadyPacket>) {
        out.extend_from_slice(&self.claimed);
        self.claimed.clear();
    }

    // -- internals -----------------------------------------------------------

    fn apply(&mut self, now: Time, decision: Decision, out: &mut NicOutcome) {
        match decision.timer {
            TimerAction::Keep => {}
            TimerAction::ArmAt(at) => {
                self.timer_epoch += 1;
                self.timer_armed = true;
                out.arm_timer = Some((at, self.timer_epoch));
            }
            TimerAction::Disarm => {
                self.timer_epoch += 1;
                self.timer_armed = false;
            }
        }
        if decision.raise {
            self.try_raise(now, out);
        }
    }

    fn try_raise(&mut self, now: Time, out: &mut NicOutcome) {
        if self.ready.is_empty() {
            // Nothing in host memory yet: latch until a DMA completes.
            self.irq_latched = true;
            return;
        }
        self.irq_latched = false;
        // Snapshot: this raise reports exactly the packets ready now. The
        // replacement vector comes from the recycle pool, so the swap does
        // not allocate in steady state.
        let fresh = self.spare_claims.pop().unwrap_or_default();
        let claim = std::mem::replace(&mut self.ready, fresh);
        self.strategy.on_interrupt(now);
        // The strategy considers its timer reset after an interrupt;
        // invalidate any physically scheduled expiry to match.
        self.timer_epoch += 1;
        self.timer_armed = false;
        if self.irq_enabled {
            self.deliver(now, claim, out);
        } else {
            // Masked: queue; delivered as its own interrupt on re-enable.
            self.pending_claims.push_back(claim);
        }
    }

    fn deliver(&mut self, now: Time, claim: Vec<ReadyPacket>, out: &mut NicOutcome) {
        debug_assert!(self.irq_enabled);
        debug_assert!(self.claimed.is_empty(), "previous claim not drained");
        debug_assert!(!claim.is_empty());
        self.irq_enabled = false;
        self.counters.interrupts.incr();
        self.counters.batch_sizes.record(claim.len() as u64);
        for pkt in &claim {
            let hold = now.as_nanos().saturating_sub(pkt.completed_at.as_nanos());
            self.counters.coalesce_hold_ns.record(hold);
        }
        let drained = std::mem::replace(&mut self.claimed, claim);
        self.spare_claims.push(drained);
        out.interrupt = true;
    }

    fn flush_latched(&mut self, now: Time, out: &mut NicOutcome) {
        if self.irq_latched && !self.ready.is_empty() && !out.interrupt {
            self.try_raise(now, out);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn nic(strategy: CoalescingStrategy) -> Nic {
        Nic::new(NicConfig {
            rx_ring_slots: 8,
            dma: DmaConfig {
                setup_ns: 100,
                bytes_per_us: 1000,
            },
            strategy,
        })
    }

    fn t(ns: u64) -> Time {
        Time::from_nanos(ns)
    }

    #[test]
    fn disabled_strategy_full_cycle() {
        let mut n = nic(CoalescingStrategy::Disabled);
        let out = n.on_frame(t(0), PacketMeta::omx(100, false));
        let (desc, at) = out.dma.expect("dma scheduled");
        assert!(!out.interrupt);
        assert_eq!(at, t(200));

        let out = n.on_dma_complete(at, desc);
        assert!(out.interrupt, "disabled coalescing raises per packet");
        assert_eq!(n.counters().interrupts.get(), 1);

        let batch = n.drain_ready();
        assert_eq!(batch.len(), 1);
        assert_eq!(batch[0].meta.len_bytes, 100);

        // While masked, a further completion latches instead of raising.
        let out = n.on_frame(t(300), PacketMeta::omx(100, false));
        let (desc2, at2) = out.dma.unwrap();
        let out = n.on_dma_complete(at2, desc2);
        assert!(!out.interrupt, "IRQ masked until host re-enables");
        let out = n.enable_irq(t(1000));
        assert!(out.interrupt, "latched IRQ fires on re-enable");
    }

    #[test]
    fn timeout_strategy_timer_cycle() {
        let mut n = nic(CoalescingStrategy::Timeout { delay_us: 75 });
        let out = n.on_frame(t(0), PacketMeta::omx(100, false));
        let (timer_at, epoch) = out.arm_timer.expect("timer armed on first packet");
        assert_eq!(timer_at, Time::from_micros(75));
        let (desc, at) = out.dma.unwrap();
        let out = n.on_dma_complete(at, desc);
        assert!(!out.interrupt);

        let out = n.on_timer(timer_at, epoch);
        assert!(out.interrupt, "timer expiry raises");
        assert_eq!(n.counters().interrupts.get(), 1);
    }

    #[test]
    fn stale_timer_epoch_is_ignored() {
        let mut n = nic(CoalescingStrategy::Timeout { delay_us: 75 });
        let out = n.on_frame(t(0), PacketMeta::omx(100, false));
        let (timer_at, epoch) = out.arm_timer.unwrap();
        let (desc, at) = out.dma.unwrap();
        n.on_dma_complete(at, desc);
        // Interrupt raised by another path (simulate via timer), then ensure
        // the stale epoch cannot raise a second interrupt.
        let out = n.on_timer(timer_at, epoch);
        assert!(out.interrupt);
        n.drain_ready();
        n.enable_irq(t(80_000));
        let out = n.on_timer(timer_at, epoch);
        assert_eq!(out, NicOutcome::default(), "stale epoch is a no-op");
    }

    #[test]
    fn timer_raise_before_any_ready_packet_is_latched() {
        // Arm timer at arrival; fire it before the DMA completes: the raise
        // must wait for the packet to be host-visible.
        let mut n = nic(CoalescingStrategy::Timeout { delay_us: 0 });
        let out = n.on_frame(t(0), PacketMeta::omx(1000, false));
        let (timer_at, epoch) = out.arm_timer.unwrap();
        assert_eq!(timer_at, t(0));
        let (desc, dma_at) = out.dma.unwrap();
        let out = n.on_timer(timer_at, epoch);
        assert!(!out.interrupt, "nothing ready yet");
        let out = n.on_dma_complete(dma_at, desc);
        assert!(out.interrupt, "latched raise fires at completion");
    }

    #[test]
    fn openmx_marked_packet_raises_at_dma_completion() {
        let mut n = nic(CoalescingStrategy::OpenMx { delay_us: 75 });
        let out = n.on_frame(t(0), PacketMeta::omx(128, true));
        let (desc, at) = out.dma.unwrap();
        assert!(!out.interrupt, "not before the DMA");
        let out = n.on_dma_complete(at, desc);
        assert!(out.interrupt, "marked packet raises at DMA completion");
        assert_eq!(n.counters().marked_packets.get(), 1);
    }

    #[test]
    fn openmx_unmarked_waits_for_timer() {
        let mut n = nic(CoalescingStrategy::OpenMx { delay_us: 75 });
        let out = n.on_frame(t(0), PacketMeta::omx(1500, false));
        let (timer_at, epoch) = out.arm_timer.unwrap();
        let (desc, at) = out.dma.unwrap();
        let out = n.on_dma_complete(at, desc);
        assert!(!out.interrupt);
        assert!(n.on_timer(timer_at, epoch).interrupt);
    }

    #[test]
    fn stream_defers_across_pending_dmas() {
        let mut n = nic(CoalescingStrategy::Stream { delay_us: 75 });
        // Two marked frames back-to-back: their DMAs overlap in the queue.
        let o1 = n.on_frame(t(0), PacketMeta::omx(128, true));
        let o2 = n.on_frame(t(10), PacketMeta::omx(128, true));
        let (d1, a1) = o1.dma.unwrap();
        let (d2, a2) = o2.dma.unwrap();
        assert!(a2 > a1);
        let out = n.on_dma_complete(a1, d1);
        assert!(!out.interrupt, "deferred: second DMA still pending");
        let out = n.on_dma_complete(a2, d2);
        assert!(out.interrupt, "raised when the queue drains");
        assert_eq!(n.counters().interrupts.get(), 1);
        assert_eq!(n.drain_ready().len(), 2, "both packets in one batch");
    }

    #[test]
    fn ring_overflow_drops_frames() {
        let mut n = nic(CoalescingStrategy::Timeout { delay_us: 75 });
        let mut accepted = 0;
        for i in 0..10 {
            let out = n.on_frame(t(i), PacketMeta::omx(1500, false));
            if !out.dropped {
                accepted += 1;
            }
        }
        assert_eq!(accepted, 8, "ring holds 8 slots");
        assert_eq!(n.counters().ring_drops.get(), 2);
    }

    #[test]
    fn batch_size_histogram_records_claims() {
        let mut n = nic(CoalescingStrategy::Disabled);
        let out = n.on_frame(t(0), PacketMeta::omx(64, false));
        let (d, a) = out.dma.unwrap();
        n.on_dma_complete(a, d);
        assert_eq!(n.counters().batch_sizes.count(), 1);
    }

    #[test]
    fn packet_completing_behind_a_queued_claim_is_not_stranded() {
        // Regression: a timer raise while IRQs are masked queues a claim;
        // a packet whose DMA completes during that window found the
        // safety re-arm blocked by the pending claim, and after the claim
        // drained nothing ever interrupted for it (it waited for a protocol
        // retransmission). Sequence distilled from the jumbo-frame pull
        // experiment.
        let mut n = nic(CoalescingStrategy::Timeout { delay_us: 75 });

        // Packet A arrives and completes; its timer fires and delivers.
        let oa = n.on_frame(t(0), PacketMeta::omx(100, false));
        let (timer_at, epoch) = oa.arm_timer.unwrap();
        let (da, a_at) = oa.dma.unwrap();
        n.on_dma_complete(a_at, da);
        assert!(n.on_timer(timer_at, epoch).interrupt);
        assert_eq!(n.drain_ready().len(), 1, "host takes batch A");
        // Host services it (IRQs masked). Packet B arrives; its timer
        // arming is fresh (epoch bumped by the interrupt).
        let ob = n.on_frame(t(80_000), PacketMeta::omx(100, false));
        let (timer_b, epoch_b) = ob.arm_timer.unwrap();
        let (db, b_at) = ob.dma.unwrap();
        n.on_dma_complete(b_at, db);
        // Packet C arrives while B's timer is still armed (no new arming)…
        let oc = n.on_frame(t(154_900), PacketMeta::omx(100_000, false));
        assert!(oc.arm_timer.is_none(), "timer already armed by B");
        let (dc, c_at) = oc.dma.unwrap();
        // … then B's timer fires while still masked: claim of B queued
        // (C's DMA has not completed yet).
        let out = n.on_timer(timer_b, epoch_b);
        assert!(!out.interrupt, "masked: claim must queue");
        // C's DMA completes while B's claim is queued.
        assert!(c_at > timer_b, "C must complete after the timer fired");
        let out_c = n.on_dma_complete(c_at, dc);
        // Host finishes batch A: enable pops B's claim as its own interrupt.
        let out = n.enable_irq(t(157_000));
        assert!(out.interrupt, "queued claim delivers");
        assert_eq!(n.drain_ready().len(), 1);
        // Host finishes batch B: enable with nothing pending. C must have a
        // live timer from one of the two hook points — otherwise it strands.
        let out2 = n.enable_irq(t(158_000));
        let armed = out_c.arm_timer.or(out.arm_timer).or(out2.arm_timer);
        let (at, ep) = armed.expect("safety timer must be armed for packet C");
        let out = n.on_timer(at, ep);
        assert!(out.interrupt, "packet C claimed via the safety timer");
        assert_eq!(n.drain_ready().len(), 1);
    }

    #[test]
    fn custom_strategy_runs_behind_the_trait_object() {
        struct AlwaysRaise;
        impl Coalescer for AlwaysRaise {
            fn name(&self) -> &'static str {
                "always-raise"
            }
            fn on_packet_arrival(&mut self, _: Time, _: &PacketMeta) -> Decision {
                Decision::NONE
            }
            fn on_dma_complete(&mut self, _: Time, _: bool, _: usize, _: u32) -> Decision {
                Decision::RAISE
            }
            fn on_timer(&mut self, _: Time) -> Decision {
                Decision::NONE
            }
            fn on_interrupt(&mut self, _: Time) {}
        }
        let mut n = nic(CoalescingStrategy::Timeout { delay_us: 75 });
        n.set_strategy(Box::new(AlwaysRaise));
        assert_eq!(n.strategy_name(), "always-raise");
        let out = n.on_frame(t(0), PacketMeta::omx(100, false));
        let (d, a) = out.dma.unwrap();
        let out = n.on_dma_complete(a, d);
        assert!(out.interrupt, "custom strategy raises per completion");
    }

    #[test]
    fn class_counters() {
        let mut n = nic(CoalescingStrategy::Timeout { delay_us: 75 });
        n.on_frame(t(0), PacketMeta::omx(64, false));
        n.on_frame(t(1), PacketMeta::ip(1500));
        assert_eq!(n.counters().omx_packets.get(), 1);
        assert_eq!(n.counters().ip_packets.get(), 1);
        assert_eq!(n.counters().packets.get(), 2);
    }
}
