//! Packet metadata as seen by the NIC firmware.
//!
//! The firmware never parses message semantics; the paper's whole point is
//! that it only needs to check a single header flag — the *latency-sensitive
//! marker* — that the Open-MX sender driver sets. Everything the coalescing
//! heuristics may legitimately look at is collected in [`PacketMeta`].

/// Identifier of an RX descriptor inside one NIC (monotonically increasing).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct DescId(pub u64);

/// Coarse traffic class, used only for per-class counters (the paper checks
/// that non-Open-MX traffic is unaffected by the firmware change).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PacketClass {
    /// An Open-MX protocol packet.
    OpenMx,
    /// Plain IP / TCP traffic sharing the NIC.
    Ip,
    /// Anything else (ARP, management, …).
    Other,
}

/// What the firmware can see about one received frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PacketMeta {
    /// Frame length in bytes (drives the DMA transfer time).
    pub len_bytes: u32,
    /// The Open-MX latency-sensitive marker flag from the packet header.
    pub marked: bool,
    /// Traffic class for accounting.
    pub class: PacketClass,
    /// Flow identifier the NIC may hash for multiqueue steering (RSS-style;
    /// derived from the packet's communication channel).
    pub flow: u64,
}

impl PacketMeta {
    /// An Open-MX packet of `len_bytes`, optionally marked.
    pub fn omx(len_bytes: u32, marked: bool) -> Self {
        PacketMeta {
            len_bytes,
            marked,
            class: PacketClass::OpenMx,
            flow: 0,
        }
    }

    /// A plain IP packet (never marked).
    pub fn ip(len_bytes: u32) -> Self {
        PacketMeta {
            len_bytes,
            marked: false,
            class: PacketClass::Ip,
            flow: 0,
        }
    }

    /// Attach a flow identifier (multiqueue steering input).
    pub fn with_flow(mut self, flow: u64) -> Self {
        self.flow = flow;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_set_class_and_mark() {
        let p = PacketMeta::omx(128, true);
        assert_eq!(p.class, PacketClass::OpenMx);
        assert!(p.marked);
        let q = PacketMeta::ip(1500);
        assert_eq!(q.class, PacketClass::Ip);
        assert!(!q.marked);
    }

    #[test]
    fn desc_ids_order() {
        assert!(DescId(1) < DescId(2));
    }
}
