//! Interrupt coalescing strategies — the paper's contribution.
//!
//! The [`Coalescer`] trait exposes exactly the firmware hook points the
//! paper patches in myri10ge (§III-B: "less than 20 lines of code (in the
//! main incoming packet processing routine and in the write DMA completion
//! routine)"):
//!
//! * [`Coalescer::on_packet_arrival`] — a frame was received off the wire
//!   and its descriptor created (the strategy may inspect the marker flag),
//! * [`Coalescer::on_dma_complete`] — the frame now sits in host memory and
//!   *could* be processed if the host were interrupted,
//! * [`Coalescer::on_timer`] — the classic coalescing timeout expired,
//! * [`Coalescer::on_interrupt`] — an interrupt was actually raised (fold
//!   state back to idle).
//!
//! Each hook returns a [`Decision`]: whether to raise an interrupt now and
//! what to do with the NIC's single coalescing timer. The surrounding
//! [`crate::Nic`] enforces the parts that are *hardware*, not strategy:
//! interrupts are only delivered when the host has them enabled, and only
//! when there is at least one ready packet to report.

use crate::packet::PacketMeta;
use omx_sim::{Time, TimeDelta};

/// What to do with the NIC's coalescing timer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TimerAction {
    /// Leave the timer as it is.
    Keep,
    /// (Re-)arm the timer to fire at this absolute time.
    ArmAt(Time),
    /// Cancel the timer.
    Disarm,
}

/// Outcome of one strategy hook.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Decision {
    /// Raise an interrupt now (subject to the hardware gates in [`crate::Nic`]).
    pub raise: bool,
    /// Timer manipulation.
    pub timer: TimerAction,
}

impl Decision {
    /// Do nothing.
    pub const NONE: Decision = Decision {
        raise: false,
        timer: TimerAction::Keep,
    };

    /// Raise an interrupt, leaving the timer alone.
    pub const RAISE: Decision = Decision {
        raise: true,
        timer: TimerAction::Keep,
    };

    fn arm(at: Time) -> Decision {
        Decision {
            raise: false,
            timer: TimerAction::ArmAt(at),
        }
    }
}

/// A NIC interrupt coalescing strategy (the firmware's decision logic).
///
/// Implement this trait to experiment with your own firmware logic; the
/// built-in strategies cover the paper. A minimal "raise every other
/// packet" strategy:
///
/// ```
/// use omx_nic::{Coalescer, Decision, PacketMeta};
/// use omx_sim::Time;
///
/// struct EveryOther(bool);
///
/// impl Coalescer for EveryOther {
///     fn name(&self) -> &'static str { "every-other" }
///     fn on_packet_arrival(&mut self, _: Time, _: &PacketMeta) -> Decision {
///         Decision::NONE
///     }
///     fn on_dma_complete(&mut self, _: Time, _: bool, _: usize, _: u32) -> Decision {
///         self.0 = !self.0;
///         if self.0 { Decision::RAISE } else { Decision::NONE }
///     }
///     fn on_timer(&mut self, _: Time) -> Decision { Decision::NONE }
///     fn on_interrupt(&mut self, _: Time) {}
/// }
///
/// let mut s = EveryOther(false);
/// assert!(s.on_dma_complete(Time::ZERO, false, 0, 1).raise);
/// assert!(!s.on_dma_complete(Time::ZERO, false, 0, 2).raise);
/// ```
pub trait Coalescer: Send {
    /// Short human-readable name used in result tables.
    fn name(&self) -> &'static str;

    /// Hook: a frame arrived off the wire; its descriptor was just created.
    /// `meta.marked` is the Open-MX latency-sensitive flag.
    fn on_packet_arrival(&mut self, now: Time, meta: &PacketMeta) -> Decision;

    /// Hook: the write DMA for a descriptor completed. `marked` is the
    /// descriptor's stored marker; `pending_dmas` counts transfers still in
    /// flight behind this one; `ready_packets` counts packets already in host
    /// memory but not yet claimed by the host.
    fn on_dma_complete(
        &mut self,
        now: Time,
        marked: bool,
        pending_dmas: usize,
        ready_packets: u32,
    ) -> Decision;

    /// Hook: the coalescing timer fired.
    fn on_timer(&mut self, now: Time) -> Decision;

    /// Notification: an interrupt was raised (by any path).
    fn on_interrupt(&mut self, now: Time);

    /// The fallback coalescing delay, if the strategy has one. The NIC uses
    /// it as a safety re-arm: whenever packets sit in host memory unclaimed
    /// and no timer is pending, an interrupt must still happen within this
    /// delay (real firmware re-arms its timer per unclaimed event).
    fn fallback_delay(&self) -> Option<TimeDelta> {
        None
    }
}

// ---------------------------------------------------------------------------
// Disabled
// ---------------------------------------------------------------------------

/// Coalescing disabled (ethtool `rx-usecs 0`): every completed packet raises
/// an interrupt immediately. Best small-message latency, worst host load.
#[derive(Debug, Default)]
pub struct DisabledCoalescing;

impl Coalescer for DisabledCoalescing {
    fn name(&self) -> &'static str {
        "disabled"
    }

    fn on_packet_arrival(&mut self, _now: Time, _meta: &PacketMeta) -> Decision {
        Decision::NONE
    }

    fn on_dma_complete(
        &mut self,
        _now: Time,
        _marked: bool,
        _pending: usize,
        _ready: u32,
    ) -> Decision {
        Decision::RAISE
    }

    fn on_timer(&mut self, _now: Time) -> Decision {
        Decision::NONE
    }

    fn on_interrupt(&mut self, _now: Time) {}
}

// ---------------------------------------------------------------------------
// Timeout (classic)
// ---------------------------------------------------------------------------

/// Classic timeout-based coalescing: the interrupt is delayed until `delay`
/// after the first packet since the last interrupt, or until `max_frames`
/// packets are ready, whichever comes first. This is the only knob generic
/// Ethernet hardware exposes (§II-C).
#[derive(Debug)]
pub struct TimeoutCoalescing {
    delay: TimeDelta,
    max_frames: Option<u32>,
    timer_armed: bool,
}

impl TimeoutCoalescing {
    /// Standard configuration with only a delay (Myri-10G default: 75 µs).
    pub fn new(delay_us: u64) -> Self {
        TimeoutCoalescing {
            delay: TimeDelta::from_micros(delay_us as i64),
            max_frames: None,
            timer_armed: false,
        }
    }

    /// Configuration with both a delay and a packet-count bound.
    pub fn with_max_frames(delay_us: u64, max_frames: u32) -> Self {
        TimeoutCoalescing {
            delay: TimeDelta::from_micros(delay_us as i64),
            max_frames: Some(max_frames),
            timer_armed: false,
        }
    }
}

impl Coalescer for TimeoutCoalescing {
    fn name(&self) -> &'static str {
        "timeout"
    }

    fn on_packet_arrival(&mut self, now: Time, _meta: &PacketMeta) -> Decision {
        if self.timer_armed {
            Decision::NONE
        } else {
            self.timer_armed = true;
            Decision::arm(now + self.delay)
        }
    }

    fn on_dma_complete(
        &mut self,
        _now: Time,
        _marked: bool,
        _pending: usize,
        ready: u32,
    ) -> Decision {
        match self.max_frames {
            Some(max) if ready >= max => Decision::RAISE,
            _ => Decision::NONE,
        }
    }

    fn on_timer(&mut self, _now: Time) -> Decision {
        self.timer_armed = false;
        Decision {
            raise: true,
            timer: TimerAction::Disarm,
        }
    }

    fn on_interrupt(&mut self, _now: Time) {
        self.timer_armed = false;
    }

    fn fallback_delay(&self) -> Option<TimeDelta> {
        Some(self.delay)
    }
}

// ---------------------------------------------------------------------------
// Open-MX coalescing (Algorithm 1)
// ---------------------------------------------------------------------------

/// The paper's Algorithm 1. On packet arrival the descriptor inherits the
/// Open-MX latency-sensitive marker; when the *DMA of a marked descriptor
/// completes*, the interrupt is raised immediately. Unmarked traffic (IP,
/// acks, non-final fragments) keeps the classic timeout behaviour, so TCP
/// flows are unaffected.
#[derive(Debug)]
pub struct OpenMxCoalescing {
    fallback: TimeoutCoalescing,
}

impl OpenMxCoalescing {
    /// Create with the fallback timeout used for unmarked packets.
    pub fn new(delay_us: u64) -> Self {
        OpenMxCoalescing {
            fallback: TimeoutCoalescing::new(delay_us),
        }
    }
}

impl Coalescer for OpenMxCoalescing {
    fn name(&self) -> &'static str {
        "open-mx"
    }

    fn on_packet_arrival(&mut self, now: Time, meta: &PacketMeta) -> Decision {
        // Algorithm 1: "Create packet Descriptor; if Packet is Marked then
        // Mark packet Descriptor" — the descriptor marking is done by the
        // Nic; the timer behaviour is the fallback's.
        self.fallback.on_packet_arrival(now, meta)
    }

    fn on_dma_complete(&mut self, now: Time, marked: bool, pending: usize, ready: u32) -> Decision {
        // Algorithm 1: "if Descriptor is Marked then Raise Interrupt".
        if marked {
            Decision::RAISE
        } else {
            self.fallback.on_dma_complete(now, marked, pending, ready)
        }
    }

    fn on_timer(&mut self, now: Time) -> Decision {
        self.fallback.on_timer(now)
    }

    fn on_interrupt(&mut self, now: Time) {
        self.fallback.on_interrupt(now);
    }

    fn fallback_delay(&self) -> Option<TimeDelta> {
        self.fallback.fallback_delay()
    }
}

// ---------------------------------------------------------------------------
// Stream coalescing (Algorithm 2)
// ---------------------------------------------------------------------------

/// The paper's Algorithm 2. Like [`OpenMxCoalescing`], but when a marked
/// descriptor's DMA completes while *other DMAs are still pending* the
/// interrupt is **deferred**: the firmware waits for the DMA queue to drain
/// so a burst of small messages is reported with a single interrupt. The
/// classic timeout still bounds the deferral for very long streams.
#[derive(Debug)]
pub struct StreamCoalescing {
    fallback: TimeoutCoalescing,
    deferred: bool,
}

impl StreamCoalescing {
    /// Create with the fallback timeout used for unmarked packets.
    pub fn new(delay_us: u64) -> Self {
        StreamCoalescing {
            fallback: TimeoutCoalescing::new(delay_us),
            deferred: false,
        }
    }

    /// Whether an interrupt is currently deferred (visible for tests and
    /// instrumentation).
    pub fn is_deferred(&self) -> bool {
        self.deferred
    }
}

impl Coalescer for StreamCoalescing {
    fn name(&self) -> &'static str {
        "stream"
    }

    fn on_packet_arrival(&mut self, now: Time, meta: &PacketMeta) -> Decision {
        self.fallback.on_packet_arrival(now, meta)
    }

    fn on_dma_complete(&mut self, now: Time, marked: bool, pending: usize, ready: u32) -> Decision {
        // Algorithm 2, transcribed:
        //   if no other DMA is pending then
        //       if Descriptor is Marked or DeferredInterrupt is set then
        //           Raise Interrupt; Clear DeferredInterrupt
        //   else if Descriptor is Marked then
        //       Set DeferredInterrupt
        if pending == 0 {
            if marked || self.deferred {
                self.deferred = false;
                return Decision::RAISE;
            }
            self.fallback.on_dma_complete(now, marked, pending, ready)
        } else {
            if marked {
                self.deferred = true;
            }
            self.fallback.on_dma_complete(now, marked, pending, ready)
        }
    }

    fn on_timer(&mut self, now: Time) -> Decision {
        // Algorithm 2: "Raise Interrupt; Clear DeferredInterrupt; Reset
        // coalescing timeout".
        self.deferred = false;
        self.fallback.on_timer(now)
    }

    fn on_interrupt(&mut self, now: Time) {
        self.deferred = false;
        self.fallback.on_interrupt(now);
    }

    fn fallback_delay(&self) -> Option<TimeDelta> {
        self.fallback.fallback_delay()
    }
}

// ---------------------------------------------------------------------------
// Adaptive coalescing (the paper's future-work §VI)
// ---------------------------------------------------------------------------

/// Adaptive coalescing: the delay is tuned from the recent packet rate, the
/// way Linux dynamic interrupt moderation works. Low traffic behaves like
/// disabled coalescing (good latency); high traffic converges to the maximum
/// delay (good host load). The paper's early tests found this "helps
/// microbenchmarks but cannot help real applications as well as our firmware
/// modifications do" — the bench harness reproduces that comparison.
#[derive(Debug)]
pub struct AdaptiveCoalescing {
    /// Delay applied when the rate is at or below `low_pps`.
    min_delay: TimeDelta,
    /// Delay applied when the rate is at or above `high_pps`.
    max_delay: TimeDelta,
    low_pps: f64,
    high_pps: f64,
    /// Rate-sampling window length.
    window: TimeDelta,
    window_start: Time,
    window_packets: u32,
    /// Delay currently in force (recomputed each window).
    current_delay: TimeDelta,
    timer_armed: bool,
}

impl AdaptiveCoalescing {
    /// Create with the given delay range (µs) and rate thresholds (packets/s).
    pub fn new(min_delay_us: u64, max_delay_us: u64, low_pps: f64, high_pps: f64) -> Self {
        assert!(high_pps > low_pps, "rate thresholds must be ordered");
        AdaptiveCoalescing {
            min_delay: TimeDelta::from_micros(min_delay_us as i64),
            max_delay: TimeDelta::from_micros(max_delay_us as i64),
            low_pps,
            high_pps,
            window: TimeDelta::from_micros(500),
            window_start: Time::ZERO,
            window_packets: 0,
            current_delay: TimeDelta::from_micros(min_delay_us as i64),
            timer_armed: false,
        }
    }

    /// Delay currently in force (for instrumentation).
    pub fn current_delay(&self) -> TimeDelta {
        self.current_delay
    }

    fn roll_window(&mut self, now: Time) {
        let elapsed = now.saturating_since(self.window_start);
        if elapsed < self.window {
            return;
        }
        let secs = elapsed.as_secs_f64();
        let rate = if secs > 0.0 {
            self.window_packets as f64 / secs
        } else {
            0.0
        };
        let frac = ((rate - self.low_pps) / (self.high_pps - self.low_pps)).clamp(0.0, 1.0);
        let min = self.min_delay.as_nanos() as f64;
        let max = self.max_delay.as_nanos() as f64;
        self.current_delay = TimeDelta::from_nanos((min + frac * (max - min)) as i64);
        self.window_start = now;
        self.window_packets = 0;
    }
}

impl Coalescer for AdaptiveCoalescing {
    fn name(&self) -> &'static str {
        "adaptive"
    }

    fn on_packet_arrival(&mut self, now: Time, _meta: &PacketMeta) -> Decision {
        self.window_packets += 1;
        self.roll_window(now);
        if self.timer_armed {
            Decision::NONE
        } else {
            self.timer_armed = true;
            Decision::arm(now + self.current_delay)
        }
    }

    fn on_dma_complete(
        &mut self,
        _now: Time,
        _marked: bool,
        _pending: usize,
        _ready: u32,
    ) -> Decision {
        // With a near-zero current delay the timer path raises promptly; the
        // completion hook itself stays passive, like the timeout strategy.
        Decision::NONE
    }

    fn on_timer(&mut self, _now: Time) -> Decision {
        self.timer_armed = false;
        Decision {
            raise: true,
            timer: TimerAction::Disarm,
        }
    }

    fn on_interrupt(&mut self, _now: Time) {
        self.timer_armed = false;
    }

    fn fallback_delay(&self) -> Option<TimeDelta> {
        Some(self.current_delay)
    }
}

// ---------------------------------------------------------------------------
// Strategy selector (plain-data config)
// ---------------------------------------------------------------------------

/// Declarative strategy configuration, used by experiment configs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum CoalescingStrategy {
    /// Interrupt per packet.
    Disabled,
    /// Classic timeout (µs).
    Timeout {
        /// Coalescing delay in microseconds.
        delay_us: u64,
    },
    /// Paper Algorithm 1 with this fallback delay (µs).
    OpenMx {
        /// Fallback coalescing delay for unmarked packets, in microseconds.
        delay_us: u64,
    },
    /// Paper Algorithm 2 with this fallback delay (µs).
    Stream {
        /// Fallback coalescing delay for unmarked packets, in microseconds.
        delay_us: u64,
    },
    /// Future-work adaptive strategy.
    Adaptive {
        /// Delay at/below the low rate threshold (µs).
        min_delay_us: u64,
        /// Delay at/above the high rate threshold (µs).
        max_delay_us: u64,
    },
}

impl CoalescingStrategy {
    /// The Myri-10G factory default (75 µs timeout), per §IV-B1.
    pub fn myri10g_default() -> Self {
        CoalescingStrategy::Timeout { delay_us: 75 }
    }

    /// Instantiate the strategy.
    pub fn build(self) -> Box<dyn Coalescer> {
        match self {
            CoalescingStrategy::Disabled => Box::new(DisabledCoalescing),
            CoalescingStrategy::Timeout { delay_us } => Box::new(TimeoutCoalescing::new(delay_us)),
            CoalescingStrategy::OpenMx { delay_us } => Box::new(OpenMxCoalescing::new(delay_us)),
            CoalescingStrategy::Stream { delay_us } => Box::new(StreamCoalescing::new(delay_us)),
            CoalescingStrategy::Adaptive {
                min_delay_us,
                max_delay_us,
            } => Box::new(AdaptiveCoalescing::new(
                min_delay_us,
                max_delay_us,
                25_000.0,
                250_000.0,
            )),
        }
    }

    /// Stable label for result tables.
    pub fn label(&self) -> &'static str {
        match self {
            CoalescingStrategy::Disabled => "disabled",
            CoalescingStrategy::Timeout { .. } => "timeout",
            CoalescingStrategy::OpenMx { .. } => "open-mx",
            CoalescingStrategy::Stream { .. } => "stream",
            CoalescingStrategy::Adaptive { .. } => "adaptive",
        }
    }

    /// Instantiate the strategy with static dispatch (what the NIC stores).
    pub fn build_active(self) -> ActiveCoalescer {
        match self {
            CoalescingStrategy::Disabled => ActiveCoalescer::Disabled(DisabledCoalescing),
            CoalescingStrategy::Timeout { delay_us } => {
                ActiveCoalescer::Timeout(TimeoutCoalescing::new(delay_us))
            }
            CoalescingStrategy::OpenMx { delay_us } => {
                ActiveCoalescer::OpenMx(OpenMxCoalescing::new(delay_us))
            }
            CoalescingStrategy::Stream { delay_us } => {
                ActiveCoalescer::Stream(StreamCoalescing::new(delay_us))
            }
            CoalescingStrategy::Adaptive {
                min_delay_us,
                max_delay_us,
            } => ActiveCoalescer::Adaptive(AdaptiveCoalescing::new(
                min_delay_us,
                max_delay_us,
                25_000.0,
                250_000.0,
            )),
        }
    }
}

// ---------------------------------------------------------------------------
// Static dispatch
// ---------------------------------------------------------------------------

/// The coalescer the NIC actually drives. The five built-in strategies are
/// enum variants, so the per-frame hooks (`on_packet_arrival` /
/// `on_dma_complete` run once per frame) compile to a jump table over
/// inlined bodies instead of a `Box<dyn Coalescer>` virtual call through a
/// heap pointer. User-supplied [`Coalescer`] implementations (via
/// `Nic::set_strategy`) keep working through the [`ActiveCoalescer::Custom`]
/// escape hatch, which preserves the old dynamic dispatch for exactly the
/// code that needs it.
pub enum ActiveCoalescer {
    /// [`DisabledCoalescing`].
    Disabled(DisabledCoalescing),
    /// [`TimeoutCoalescing`].
    Timeout(TimeoutCoalescing),
    /// [`OpenMxCoalescing`].
    OpenMx(OpenMxCoalescing),
    /// [`StreamCoalescing`].
    Stream(StreamCoalescing),
    /// [`AdaptiveCoalescing`].
    Adaptive(AdaptiveCoalescing),
    /// A user-supplied strategy behind the original trait object.
    Custom(Box<dyn Coalescer>),
}

impl ActiveCoalescer {
    /// See [`Coalescer::name`].
    pub fn name(&self) -> &'static str {
        match self {
            ActiveCoalescer::Disabled(c) => c.name(),
            ActiveCoalescer::Timeout(c) => c.name(),
            ActiveCoalescer::OpenMx(c) => c.name(),
            ActiveCoalescer::Stream(c) => c.name(),
            ActiveCoalescer::Adaptive(c) => c.name(),
            ActiveCoalescer::Custom(c) => c.name(),
        }
    }

    /// See [`Coalescer::on_packet_arrival`].
    pub fn on_packet_arrival(&mut self, now: Time, meta: &PacketMeta) -> Decision {
        match self {
            ActiveCoalescer::Disabled(c) => c.on_packet_arrival(now, meta),
            ActiveCoalescer::Timeout(c) => c.on_packet_arrival(now, meta),
            ActiveCoalescer::OpenMx(c) => c.on_packet_arrival(now, meta),
            ActiveCoalescer::Stream(c) => c.on_packet_arrival(now, meta),
            ActiveCoalescer::Adaptive(c) => c.on_packet_arrival(now, meta),
            ActiveCoalescer::Custom(c) => c.on_packet_arrival(now, meta),
        }
    }

    /// See [`Coalescer::on_dma_complete`].
    pub fn on_dma_complete(
        &mut self,
        now: Time,
        marked: bool,
        pending_dmas: usize,
        ready_packets: u32,
    ) -> Decision {
        match self {
            ActiveCoalescer::Disabled(c) => {
                c.on_dma_complete(now, marked, pending_dmas, ready_packets)
            }
            ActiveCoalescer::Timeout(c) => {
                c.on_dma_complete(now, marked, pending_dmas, ready_packets)
            }
            ActiveCoalescer::OpenMx(c) => {
                c.on_dma_complete(now, marked, pending_dmas, ready_packets)
            }
            ActiveCoalescer::Stream(c) => {
                c.on_dma_complete(now, marked, pending_dmas, ready_packets)
            }
            ActiveCoalescer::Adaptive(c) => {
                c.on_dma_complete(now, marked, pending_dmas, ready_packets)
            }
            ActiveCoalescer::Custom(c) => {
                c.on_dma_complete(now, marked, pending_dmas, ready_packets)
            }
        }
    }

    /// See [`Coalescer::on_timer`].
    pub fn on_timer(&mut self, now: Time) -> Decision {
        match self {
            ActiveCoalescer::Disabled(c) => c.on_timer(now),
            ActiveCoalescer::Timeout(c) => c.on_timer(now),
            ActiveCoalescer::OpenMx(c) => c.on_timer(now),
            ActiveCoalescer::Stream(c) => c.on_timer(now),
            ActiveCoalescer::Adaptive(c) => c.on_timer(now),
            ActiveCoalescer::Custom(c) => c.on_timer(now),
        }
    }

    /// See [`Coalescer::on_interrupt`].
    pub fn on_interrupt(&mut self, now: Time) {
        match self {
            ActiveCoalescer::Disabled(c) => c.on_interrupt(now),
            ActiveCoalescer::Timeout(c) => c.on_interrupt(now),
            ActiveCoalescer::OpenMx(c) => c.on_interrupt(now),
            ActiveCoalescer::Stream(c) => c.on_interrupt(now),
            ActiveCoalescer::Adaptive(c) => c.on_interrupt(now),
            ActiveCoalescer::Custom(c) => c.on_interrupt(now),
        }
    }

    /// See [`Coalescer::fallback_delay`].
    pub fn fallback_delay(&self) -> Option<TimeDelta> {
        match self {
            ActiveCoalescer::Disabled(c) => c.fallback_delay(),
            ActiveCoalescer::Timeout(c) => c.fallback_delay(),
            ActiveCoalescer::OpenMx(c) => c.fallback_delay(),
            ActiveCoalescer::Stream(c) => c.fallback_delay(),
            ActiveCoalescer::Adaptive(c) => c.fallback_delay(),
            ActiveCoalescer::Custom(c) => c.fallback_delay(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(us: u64) -> Time {
        Time::from_micros(us)
    }

    fn omx_marked() -> PacketMeta {
        PacketMeta::omx(128, true)
    }

    fn omx_plain() -> PacketMeta {
        PacketMeta::omx(1500, false)
    }

    #[test]
    fn disabled_raises_on_every_completion() {
        let mut c = DisabledCoalescing;
        assert_eq!(c.on_packet_arrival(t(0), &omx_plain()), Decision::NONE);
        assert!(c.on_dma_complete(t(1), false, 3, 1).raise);
        assert!(c.on_dma_complete(t(2), true, 0, 1).raise);
    }

    #[test]
    fn timeout_arms_once_and_raises_on_timer() {
        let mut c = TimeoutCoalescing::new(75);
        let d = c.on_packet_arrival(t(0), &omx_plain());
        assert_eq!(d.timer, TimerAction::ArmAt(t(75)));
        // Second packet does not re-arm.
        assert_eq!(c.on_packet_arrival(t(1), &omx_plain()), Decision::NONE);
        // Completion does not raise (no max_frames).
        assert!(!c.on_dma_complete(t(2), false, 0, 2).raise);
        // Timer fires: raise and disarm.
        let d = c.on_timer(t(75));
        assert!(d.raise);
        assert_eq!(d.timer, TimerAction::Disarm);
        // Next packet re-arms.
        let d = c.on_packet_arrival(t(80), &omx_plain());
        assert_eq!(d.timer, TimerAction::ArmAt(t(155)));
    }

    #[test]
    fn timeout_interrupt_resets_arming() {
        let mut c = TimeoutCoalescing::new(75);
        c.on_packet_arrival(t(0), &omx_plain());
        c.on_interrupt(t(10)); // e.g. raised by the max_frames path
        let d = c.on_packet_arrival(t(20), &omx_plain());
        assert_eq!(d.timer, TimerAction::ArmAt(t(95)));
    }

    #[test]
    fn timeout_max_frames_bound() {
        let mut c = TimeoutCoalescing::with_max_frames(75, 3);
        c.on_packet_arrival(t(0), &omx_plain());
        assert!(!c.on_dma_complete(t(1), false, 0, 1).raise);
        assert!(!c.on_dma_complete(t(2), false, 0, 2).raise);
        assert!(c.on_dma_complete(t(3), false, 0, 3).raise);
    }

    #[test]
    fn openmx_marked_completion_raises_immediately() {
        let mut c = OpenMxCoalescing::new(75);
        c.on_packet_arrival(t(0), &omx_marked());
        let d = c.on_dma_complete(t(1), true, 5, 1);
        assert!(
            d.raise,
            "marked descriptor raises regardless of pending DMAs"
        );
    }

    #[test]
    fn openmx_unmarked_falls_back_to_timeout() {
        let mut c = OpenMxCoalescing::new(75);
        let d = c.on_packet_arrival(t(0), &omx_plain());
        assert_eq!(d.timer, TimerAction::ArmAt(t(75)));
        assert!(!c.on_dma_complete(t(1), false, 0, 1).raise);
        assert!(c.on_timer(t(75)).raise);
    }

    #[test]
    fn openmx_ip_traffic_is_unaffected() {
        // §IV: "IP connections and Open-MX management packets are unaffected".
        let mut c = OpenMxCoalescing::new(75);
        c.on_packet_arrival(t(0), &PacketMeta::ip(1500));
        let d = c.on_dma_complete(t(1), false, 0, 1);
        assert!(!d.raise);
    }

    #[test]
    fn stream_raises_when_queue_empty_and_marked() {
        let mut c = StreamCoalescing::new(75);
        c.on_packet_arrival(t(0), &omx_marked());
        let d = c.on_dma_complete(t(1), true, 0, 1);
        assert!(d.raise);
        assert!(!c.is_deferred());
    }

    #[test]
    fn stream_defers_marked_completion_while_dmas_pending() {
        let mut c = StreamCoalescing::new(75);
        c.on_packet_arrival(t(0), &omx_marked());
        c.on_packet_arrival(t(0), &omx_plain());
        // Marked completes while another DMA is pending: defer.
        let d = c.on_dma_complete(t(1), true, 1, 1);
        assert!(!d.raise);
        assert!(c.is_deferred());
        // The trailing unmarked completion drains the queue: deferred fires.
        let d = c.on_dma_complete(t(2), false, 0, 2);
        assert!(d.raise);
        assert!(!c.is_deferred());
    }

    #[test]
    fn stream_defer_chains_across_burst() {
        // A stream of N marked small messages, all DMAs overlapping: only the
        // last completion raises.
        let mut c = StreamCoalescing::new(75);
        for _ in 0..5 {
            c.on_packet_arrival(t(0), &omx_marked());
        }
        for pending in (1..5).rev() {
            assert!(!c.on_dma_complete(t(1), true, pending, 1).raise);
        }
        assert!(c.on_dma_complete(t(2), true, 0, 5).raise);
    }

    #[test]
    fn stream_unmarked_drain_without_defer_stays_quiet() {
        let mut c = StreamCoalescing::new(75);
        c.on_packet_arrival(t(0), &omx_plain());
        let d = c.on_dma_complete(t(1), false, 0, 1);
        assert!(!d.raise, "unmarked, not deferred: timeout path governs");
    }

    #[test]
    fn stream_timer_clears_deferred() {
        let mut c = StreamCoalescing::new(75);
        c.on_packet_arrival(t(0), &omx_marked());
        c.on_packet_arrival(t(0), &omx_plain());
        c.on_dma_complete(t(1), true, 1, 1);
        assert!(c.is_deferred());
        let d = c.on_timer(t(75));
        assert!(d.raise);
        assert!(!c.is_deferred());
    }

    #[test]
    fn stream_interrupt_notification_clears_deferred() {
        let mut c = StreamCoalescing::new(75);
        c.on_packet_arrival(t(0), &omx_marked());
        c.on_packet_arrival(t(0), &omx_plain());
        c.on_dma_complete(t(1), true, 1, 1);
        c.on_interrupt(t(2));
        assert!(!c.is_deferred());
    }

    #[test]
    fn adaptive_low_rate_uses_min_delay() {
        let mut c = AdaptiveCoalescing::new(0, 75, 1_000.0, 100_000.0);
        // Sparse packets: rate stays low, delay stays at min (0 µs) so the
        // timer fires immediately.
        let d = c.on_packet_arrival(t(10_000), &omx_plain());
        assert_eq!(d.timer, TimerAction::ArmAt(t(10_000)));
    }

    #[test]
    fn adaptive_high_rate_converges_to_max_delay() {
        let mut c = AdaptiveCoalescing::new(0, 75, 1_000.0, 100_000.0);
        // Feed a dense packet train: 1 packet/µs for 2 ms >> high_pps.
        for i in 0..2_000u64 {
            let now = Time::from_micros(i);
            c.on_packet_arrival(now, &omx_plain());
            c.on_interrupt(now); // keep the timer logic out of the way
        }
        assert_eq!(c.current_delay(), TimeDelta::from_micros(75));
    }

    #[test]
    fn adaptive_rate_between_thresholds_interpolates() {
        let mut c = AdaptiveCoalescing::new(0, 100, 0.0, 1_000_000.0);
        // 500k pps = halfway: expect ~50 µs.
        for i in 0..1_000u64 {
            let now = Time::from_nanos(i * 2_000);
            c.on_packet_arrival(now, &omx_plain());
            c.on_interrupt(now);
        }
        let d = c.current_delay().as_nanos();
        assert!((45_000..=55_000).contains(&d), "expected ~50us, got {d}ns");
    }

    #[test]
    fn strategy_enum_builds_and_labels() {
        for (strategy, label) in [
            (CoalescingStrategy::Disabled, "disabled"),
            (CoalescingStrategy::Timeout { delay_us: 75 }, "timeout"),
            (CoalescingStrategy::OpenMx { delay_us: 75 }, "open-mx"),
            (CoalescingStrategy::Stream { delay_us: 75 }, "stream"),
            (
                CoalescingStrategy::Adaptive {
                    min_delay_us: 0,
                    max_delay_us: 75,
                },
                "adaptive",
            ),
        ] {
            assert_eq!(strategy.label(), label);
            assert_eq!(strategy.build().name(), label);
        }
        assert_eq!(
            CoalescingStrategy::myri10g_default(),
            CoalescingStrategy::Timeout { delay_us: 75 }
        );
    }
}
