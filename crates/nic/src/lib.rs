//! # omx-nic — simulated Ethernet NIC with message-aware interrupt coalescing
//!
//! This crate is the reproduction's analogue of the myri10ge firmware the
//! paper modifies. It models the receive data path of a commodity Ethernet
//! NIC:
//!
//! ```text
//!  wire ──► RX ring ──► DMA engine ──► host memory
//!                │            │
//!                ▼            ▼
//!          coalescing heuristics ──► interrupt (MSI) to a host core
//! ```
//!
//! The scientific payload lives in [`coalesce`]: the [`Coalescer`] trait
//! captures exactly the three firmware hook points the paper patches
//! (packet arrival, write-DMA completion, coalescing timer), and the five
//! provided strategies are:
//!
//! * [`coalesce::DisabledCoalescing`] — an interrupt per received packet,
//! * [`coalesce::TimeoutCoalescing`] — classic delay/packet-count coalescing
//!   (the Myri-10G default is 75 µs),
//! * [`coalesce::OpenMxCoalescing`] — the paper's Algorithm 1: raise as soon
//!   as the DMA of a *latency-sensitive-marked* packet completes,
//! * [`coalesce::StreamCoalescing`] — the paper's Algorithm 2: additionally
//!   defer the interrupt while other DMAs are pending, so a stream of small
//!   messages costs a single interrupt,
//! * [`coalesce::AdaptiveCoalescing`] — the future-work strategy: adjust the
//!   delay from the recent packet rate (Linux-DIM-style).
//!
//! [`Nic`] composes ring, DMA engine and strategy into one passive state
//! machine driven by the cluster orchestrator.
//!
//! [`offload`] adds the counterpoint to coalescing: NIC-resident
//! barrier/bcast/small-allreduce ([`OffloadEngine`]) that run the whole
//! collective schedule in firmware and raise exactly one completion
//! interrupt per operation per rank — bypassing the RX ring, the DMA
//! engine and the coalescer entirely.

#![warn(missing_docs)]

pub mod coalesce;
pub mod dma;
pub mod nic;
pub mod offload;
pub mod packet;

pub use coalesce::{
    ActiveCoalescer, AdaptiveCoalescing, Coalescer, CoalescingStrategy, Decision,
    DisabledCoalescing, OpenMxCoalescing, StreamCoalescing, TimeoutCoalescing, TimerAction,
};
pub use dma::{DmaConfig, DmaEngine};
pub use nic::{Nic, NicConfig, NicCounters, NicOutcome, ReadyPacket};
pub use offload::{
    CollFrame, CollFrameKind, CollOp, OffloadCollDesc, OffloadConfig, OffloadCounters, OffloadEmit,
    OffloadEngine,
};
pub use packet::{DescId, PacketClass, PacketMeta};
