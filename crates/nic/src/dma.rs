//! Write-DMA engine model.
//!
//! Received frames are deposited into host memory by DMA before the host can
//! look at them — this transfer time is the window the paper's Stream
//! strategy exploits ("look at the future incoming traffic during the DMA
//! processing time", §III-C). We model a single DMA channel that processes
//! descriptors in FIFO order at PCIe-ish bandwidth with a fixed per-transfer
//! setup cost; concurrent submissions therefore queue, which is exactly what
//! lets a burst of arrivals keep `pending > 0` at completion time.

use crate::packet::DescId;
use omx_sim::{Time, TimeDelta};
use std::collections::VecDeque;

/// DMA engine parameters.
#[derive(Debug, Clone, Copy)]
pub struct DmaConfig {
    /// Fixed per-descriptor setup cost in nanoseconds (doorbell, descriptor
    /// fetch, completion write).
    pub setup_ns: u64,
    /// Effective copy bandwidth in bytes per microsecond (PCIe x8 Gen1 on
    /// the paper's testbed moves roughly 1.5–2 GB/s of write traffic).
    pub bytes_per_us: u64,
}

impl Default for DmaConfig {
    fn default() -> Self {
        DmaConfig {
            setup_ns: 250,
            bytes_per_us: 1800,
        }
    }
}

impl DmaConfig {
    /// Pure transfer time for `len` bytes (setup + copy).
    pub fn transfer_time(&self, len: u32) -> TimeDelta {
        let copy_ns = (len as u64 * 1_000).div_ceil(self.bytes_per_us);
        TimeDelta::from_nanos((self.setup_ns + copy_ns) as i64)
    }
}

/// One outstanding DMA.
#[derive(Debug, Clone, Copy)]
struct Inflight {
    desc: DescId,
}

/// FIFO write-DMA engine.
#[derive(Debug, Default)]
pub struct DmaEngine {
    cfg: DmaConfig,
    inflight: VecDeque<Inflight>,
    /// Completion time of the most recently queued transfer.
    tail_time: Time,
    submitted: u64,
    completed: u64,
}

impl DmaEngine {
    /// New idle engine.
    pub fn new(cfg: DmaConfig) -> Self {
        DmaEngine {
            cfg,
            inflight: VecDeque::new(),
            tail_time: Time::ZERO,
            submitted: 0,
            completed: 0,
        }
    }

    /// Submit a transfer for descriptor `desc` of `len` bytes at time `now`.
    /// Returns the absolute completion time (FIFO after earlier transfers).
    pub fn submit(&mut self, now: Time, desc: DescId, len: u32) -> Time {
        let start = if self.tail_time > now {
            self.tail_time
        } else {
            now
        };
        let completes_at = start + self.cfg.transfer_time(len);
        self.tail_time = completes_at;
        self.inflight.push_back(Inflight { desc });
        self.submitted += 1;
        completes_at
    }

    /// Record completion of the oldest transfer; must match `desc`.
    ///
    /// Returns the number of transfers still pending afterwards — the
    /// quantity Algorithm 2 branches on.
    pub fn complete(&mut self, desc: DescId) -> usize {
        let head = self
            .inflight
            .pop_front()
            .expect("DMA completion with no inflight transfer");
        assert_eq!(head.desc, desc, "DMA completions must be FIFO");
        self.completed += 1;
        self.inflight.len()
    }

    /// Transfers submitted but not yet completed.
    pub fn pending(&self) -> usize {
        self.inflight.len()
    }

    /// Completion time of the last queued transfer (engine idle time).
    pub fn drain_time(&self) -> Time {
        self.tail_time
    }

    /// Total transfers submitted.
    pub fn submitted(&self) -> u64 {
        self.submitted
    }

    /// Total transfers completed.
    pub fn completed(&self) -> u64 {
        self.completed
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn engine() -> DmaEngine {
        DmaEngine::new(DmaConfig {
            setup_ns: 100,
            bytes_per_us: 1000, // 1 byte per ns: easy arithmetic
        })
    }

    #[test]
    fn transfer_time_is_setup_plus_copy() {
        let cfg = DmaConfig {
            setup_ns: 100,
            bytes_per_us: 1000,
        };
        assert_eq!(cfg.transfer_time(500).as_nanos(), 600);
        assert_eq!(cfg.transfer_time(0).as_nanos(), 100);
    }

    #[test]
    fn sparse_submissions_complete_independently() {
        let mut e = engine();
        let c1 = e.submit(Time::from_nanos(0), DescId(0), 100);
        assert_eq!(c1, Time::from_nanos(200));
        let c2 = e.submit(Time::from_nanos(10_000), DescId(1), 100);
        assert_eq!(c2, Time::from_nanos(10_200));
    }

    #[test]
    fn burst_submissions_queue_fifo() {
        let mut e = engine();
        let c1 = e.submit(Time::ZERO, DescId(0), 100);
        let c2 = e.submit(Time::ZERO, DescId(1), 100);
        let c3 = e.submit(Time::ZERO, DescId(2), 100);
        assert_eq!(c1, Time::from_nanos(200));
        assert_eq!(c2, Time::from_nanos(400));
        assert_eq!(c3, Time::from_nanos(600));
        assert_eq!(e.pending(), 3);
        assert_eq!(e.complete(DescId(0)), 2);
        assert_eq!(e.complete(DescId(1)), 1);
        assert_eq!(e.complete(DescId(2)), 0);
        assert_eq!(e.completed(), 3);
    }

    #[test]
    #[should_panic(expected = "FIFO")]
    fn out_of_order_completion_panics() {
        let mut e = engine();
        e.submit(Time::ZERO, DescId(0), 10);
        e.submit(Time::ZERO, DescId(1), 10);
        e.complete(DescId(1));
    }

    #[test]
    #[should_panic(expected = "no inflight")]
    fn completion_without_submission_panics() {
        let mut e = engine();
        e.complete(DescId(0));
    }

    #[test]
    fn drain_time_tracks_tail() {
        let mut e = engine();
        assert_eq!(e.drain_time(), Time::ZERO);
        e.submit(Time::from_nanos(50), DescId(0), 100);
        assert_eq!(e.drain_time(), Time::from_nanos(250));
    }
}
