//! NIC-resident collectives: barrier, broadcast and small-message
//! allreduce executed in (simulated) NIC firmware.
//!
//! The source paper's core tension — host interrupt load vs. MPI latency —
//! presumes collectives are *host-driven*: every hop of a software
//! dissemination barrier lands a frame in the RX ring, DMAs it, and raises
//! (or coalesces) an interrupt so the host can forward the next hop. Yu et
//! al. ("NIC-based barrier over Quadrics/Myrinet", PAPERS.md) showed the
//! tension dissolves when the *NIC* walks the collective schedule itself:
//! forwarding and combining decisions happen in firmware, intermediate hops
//! never cross the PCI bus, and the host hears exactly **one completion
//! interrupt per operation per rank** — independent of the ⌈log₂ P⌉ hop
//! count.
//!
//! [`OffloadEngine`] is that firmware, one instance per simulated NIC. The
//! host posts an [`OffloadCollDesc`] (a command-queue write plus doorbell);
//! from then on the engine exchanges [`CollFrame`]s peer-to-peer with other
//! NICs, holding all schedule state — current round, outstanding receive
//! obligations, un-acked transmissions, early-arrival buffers — in NIC
//! memory. Offloaded frames bypass the RX ring, the DMA engine and the
//! coalescer entirely; the completion interrupt is modeled as a separate
//! MSI-X vector that is **not** subject to the coalescing strategy.
//!
//! # Schedules
//!
//! * **Barrier** — dissemination: in round *r*, rank *i*'s NIC sends a
//!   zero-payload token to rank *(i + 2^r) mod P* and waits for the token
//!   from *(i − 2^r) mod P*; ⌈log₂ P⌉ rounds complete the barrier for any
//!   world size (non-powers-of-two included).
//! * **Broadcast** — binomial tree rooted at the caller-specified root
//!   (ranks are rotated so the root is virtual rank 0): each NIC receives
//!   the payload once from its tree parent and forwards it to its children
//!   without host involvement.
//! * **Allreduce** — binomial reduce toward rank 0 with in-NIC combining
//!   (each contribution arriving from a tree child is folded into the
//!   slot's accumulator — counted in [`OffloadCounters::combines`]),
//!   followed by a binomial broadcast of the result back down the same
//!   tree.
//!
//! # Ordering contract
//!
//! Sequence numbers provide exactly-once identity: every rank's slot
//! assigns `seq` 0, 1, 2, … to the offloaded collectives it posts, and —
//! as in real NIC-collective hardware — all ranks must post the *same*
//! sequence of offloaded collectives, so `seq` k on one rank matches
//! `seq` k everywhere. Frames for a future `seq` (a peer running ahead)
//! are buffered in NIC memory; frames for a completed `seq` are
//! re-acknowledged and dropped as duplicates.
//!
//! # Reliability
//!
//! Every data frame is acknowledged NIC-to-NIC ([`CollFrameKind::Ack`]).
//! The sender keeps an un-acked frame in a retransmission table and
//! re-sends it each [`OffloadConfig::rto_ns`] until the ack arrives;
//! receivers accept a frame at most once (duplicates are re-acked but not
//! re-delivered), so lossy fabrics cannot strand an operation or violate
//! byte conservation. An operation completes — and raises its single
//! completion IRQ — only when all receive obligations are met **and** all
//! of its transmissions are acked.
//!
//! # Determinism
//!
//! The engine is a passive, allocation-light state machine: entry points
//! ([`OffloadEngine::post`], [`OffloadEngine::on_frame`],
//! [`OffloadEngine::on_timer`]) mutate node-local state and push
//! [`OffloadEmit`]s into an internal queue; the cluster orchestrator drains
//! and applies them through the same `SimCtx` indirection the NIC/driver
//! layers use. All internal maps are `BTreeMap`/`BTreeSet` (deterministic
//! iteration), so serial and `--sim-jobs` parallel engines replay the same
//! emit order byte-for-byte.

use std::collections::{BTreeMap, BTreeSet};

use omx_sim::{Time, TimeDelta};

/// Wire overhead of one collective frame: Ethernet framing (14 B) plus the
/// Open-MX-style header (32 B) — identical to the host path's
/// `ETH_HEADER_BYTES + OMX_HEADER_BYTES`, so offloaded hops occupy the
/// fabric exactly like host-driven ones.
pub const COLL_HEADER_BYTES: u32 = 46;

/// Which collective the NIC should run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CollOp {
    /// Dissemination barrier: ⌈log₂ P⌉ rounds, one zero-payload token per
    /// rank per round.
    Barrier,
    /// Binomial-tree broadcast from `root`.
    Bcast {
        /// Rank the payload originates from.
        root: u32,
    },
    /// Small-message allreduce: binomial reduce to rank 0 with in-NIC
    /// combining, then binomial broadcast of the result.
    Allreduce,
}

/// One collective operation handed to the NIC by the host (the contents of
/// the command-queue entry the doorbell write publishes).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OffloadCollDesc {
    /// Collective to run.
    pub op: CollOp,
    /// Global rank of the posting endpoint.
    pub rank: u32,
    /// World size.
    pub ranks: u32,
    /// Ranks packed per node; rank *r* lives on node *r / ranks_per_node*.
    pub ranks_per_node: u32,
    /// Payload bytes carried by each data frame (0 for barrier tokens).
    pub payload: u32,
}

/// NIC collective-offload engine configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OffloadConfig {
    /// Firmware processing time per hop, ns: schedule lookup, header build
    /// and TX-queue insertion between deciding to forward and the frame
    /// leaving the NIC.
    pub hop_ns: u64,
    /// Retransmission timeout for un-acked collective frames, ns.
    pub rto_ns: u64,
    /// Largest payload (bytes) the NIC accepts for offloaded
    /// bcast/allreduce; larger collectives stay on the host path.
    pub max_payload: u32,
}

impl Default for OffloadConfig {
    fn default() -> Self {
        OffloadConfig {
            hop_ns: 500,
            rto_ns: 200_000,
            max_payload: 1024,
        }
    }
}

/// A collective frame on the wire. `Copy` and all-scalar: it rides inside
/// the cluster's wire-frame enum and the parallel engine's effect log by
/// value.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CollFrame {
    /// Source node (fabric ingress port).
    pub src_node: u16,
    /// Destination node (fabric egress port).
    pub dst_node: u16,
    /// What the frame carries.
    pub kind: CollFrameKind,
}

/// Payload of a [`CollFrame`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CollFrameKind {
    /// A schedule hop: a payload (or zero-byte barrier token) from one
    /// rank's NIC to another's.
    Data {
        /// Sending rank.
        src_rank: u32,
        /// Receiving rank.
        dst_rank: u32,
        /// Operation sequence number (exactly-once identity).
        seq: u32,
        /// Schedule round within the operation.
        round: u16,
        /// Payload bytes.
        payload: u32,
    },
    /// NIC-to-NIC acknowledgment of a data frame.
    Ack {
        /// Rank that sent the acknowledged data frame.
        data_src: u32,
        /// Rank that received (and now acknowledges) it.
        data_dst: u32,
        /// Sequence of the acknowledged frame.
        seq: u32,
        /// Round of the acknowledged frame.
        round: u16,
    },
}

impl CollFrame {
    /// Total bytes this frame occupies on the wire.
    pub fn wire_len(&self) -> u32 {
        match self.kind {
            CollFrameKind::Data { payload, .. } => COLL_HEADER_BYTES + payload,
            CollFrameKind::Ack { .. } => COLL_HEADER_BYTES,
        }
    }
}

/// Synthetic message id for one collective data frame, used for sanitizer
/// delivery accounting and duplicate detection.
///
/// Collective ids live in a namespace disjoint from protocol message ids:
/// bit 63 is always set. The id is unique per *fresh* frame because
/// `(seq, round, src_rank, dst_rank)` is: a schedule never sends two frames
/// with the same round between the same rank pair within one operation.
pub fn coll_msg_id(seq: u32, round: u16, src_rank: u32, dst_rank: u32) -> u64 {
    (1u64 << 63)
        | (u64::from(seq & 0x00ff_ffff) << 39)
        | (u64::from(round & 0xff) << 31)
        | (u64::from(src_rank & 0x7fff) << 16)
        | u64::from(dst_rank & 0xffff)
}

/// Aggregate firmware counters, one instance per NIC.
///
/// These are deliberately kept in a struct separate from the NIC's RX-path
/// counters: the offload path never touches the ring/DMA/coalescer, and the
/// existing per-NIC counter JSON shape is golden-pinned. Only the
/// completion IRQ is accounted into the shared interrupt counter (by the
/// orchestrator), so interrupt-rate telemetry sees offloaded traffic.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct OffloadCounters {
    /// Collective operations posted by the host to this NIC.
    pub ops_posted: u64,
    /// Operations completed; exactly one completion IRQ each.
    pub ops_completed: u64,
    /// Data frames transmitted (first attempts only).
    pub data_tx: u64,
    /// Data frames received and accepted (first copies only).
    pub data_rx: u64,
    /// Acks transmitted (every data arrival is acked, duplicates included).
    pub acks_tx: u64,
    /// Acks received that matched a pending transmission.
    pub acks_rx: u64,
    /// Data frames retransmitted after an RTO expiry.
    pub retransmits: u64,
    /// Duplicate data frames or acks discarded (data dups are re-acked).
    pub duplicates: u64,
    /// In-NIC combine steps performed for allreduce.
    pub combines: u64,
}

omx_sim::impl_to_json!(OffloadCounters {
    ops_posted,
    ops_completed,
    data_tx,
    data_rx,
    acks_tx,
    acks_rx,
    retransmits,
    duplicates,
    combines
});

impl OffloadCounters {
    /// Fold another NIC's counters into this one (campaign aggregation).
    pub fn merge(&mut self, other: &OffloadCounters) {
        self.ops_posted += other.ops_posted;
        self.ops_completed += other.ops_completed;
        self.data_tx += other.data_tx;
        self.data_rx += other.data_rx;
        self.acks_tx += other.acks_tx;
        self.acks_rx += other.acks_rx;
        self.retransmits += other.retransmits;
        self.duplicates += other.duplicates;
        self.combines += other.combines;
    }
}

/// An effect the engine asks the orchestrator to perform.
///
/// The engine never touches the event queue, fabric, sanitizer or host
/// directly: every entry point pushes emits into an internal queue that the
/// orchestrator drains ([`OffloadEngine::drain_emits`]) and applies through
/// the cluster's scheduling context — the indirection that keeps the
/// `--sim-jobs` parallel engine's replay byte-identical.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OffloadEmit {
    /// Put `frame` on the wire at time `at`.
    Wire {
        /// Departure time: the triggering event plus the firmware hop cost.
        at: Time,
        /// The frame to transmit.
        frame: CollFrame,
        /// True only for the first transmission of a data frame — the
        /// sanitizer's "posted" edge. Acks and retransmissions are `false`.
        fresh: bool,
    },
    /// A data frame was accepted for the first time: the sanitizer's
    /// "delivered" edge on the receiving node.
    Delivered {
        /// Node the frame came from.
        src_node: u16,
        /// Synthetic message id (see [`coll_msg_id`]).
        msg_id: u64,
        /// Payload bytes delivered.
        len: u32,
    },
    /// An ack matched a pending transmission: the sanitizer's "completed"
    /// edge on the sending node.
    AckCompleted,
    /// An operation finished on this NIC: raise exactly one completion IRQ
    /// and notify endpoint `ep`.
    Complete {
        /// Host endpoint that posted the operation.
        ep: u8,
        /// Sequence number of the completed operation.
        seq: u32,
        /// Rank the operation completed for.
        rank: u32,
    },
    /// (Re-)arm the per-node retransmission timer. The orchestrator keeps
    /// one timer per node and only re-schedules when `at` is earlier than
    /// the currently armed deadline.
    ArmTimer {
        /// Earliest pending retransmission deadline.
        at: Time,
    },
}

/// Key into the retransmission table: `(src_rank, seq, round, dst_rank)` —
/// exactly the tuple an [`CollFrameKind::Ack`] carries back.
type PendingKey = (u32, u32, u16, u32);

#[derive(Debug)]
struct Retx {
    frame: CollFrame,
    next_at: Time,
}

/// Per-rank schedule state held in NIC memory.
#[derive(Debug)]
struct Slot {
    ep: u8,
    next_seq: u32,
    active: Option<ActiveOp>,
    /// Early arrivals: frames for a future `seq`, or rounds the active
    /// operation cannot consume yet. Keyed `(seq, round, src_rank)`.
    buf: BTreeMap<(u32, u16, u32), u32>,
}

impl Slot {
    fn new() -> Self {
        Slot {
            ep: 0,
            next_seq: 0,
            active: None,
            buf: BTreeMap::new(),
        }
    }
}

#[derive(Debug)]
struct ActiveOp {
    seq: u32,
    op: CollOp,
    rank: u32,
    ranks: u32,
    rpn: u32,
    payload: u32,
    /// Barrier: next round whose token we await. Allreduce: 0 = reduce
    /// phase, 1 = broadcast phase.
    round: u16,
    /// Outstanding receive obligations in the current phase (allreduce).
    recv_left: u32,
    /// Data frames sent for this op and not yet acked.
    acks_left: u32,
    /// All receive obligations met (sends may still await acks).
    recvs_done: bool,
    /// `(round, src_rank)` pairs already applied — duplicate detection for
    /// the active sequence.
    consumed: BTreeSet<(u16, u32)>,
}

impl ActiveOp {
    fn new(seq: u32, desc: &OffloadCollDesc) -> Self {
        ActiveOp {
            seq,
            op: desc.op,
            rank: desc.rank,
            ranks: desc.ranks,
            rpn: desc.ranks_per_node,
            payload: desc.payload,
            round: 0,
            recv_left: 0,
            acks_left: 0,
            recvs_done: false,
            consumed: BTreeSet::new(),
        }
    }
}

/// ⌈log₂ p⌉ (0 for p = 1).
fn ceil_log2(p: u32) -> u32 {
    debug_assert!(p >= 1);
    32 - (p - 1).leading_zeros()
}

/// Binomial-tree parent of `vrank` (tree rooted at virtual rank 0): clear
/// the lowest set bit. `None` for the root.
fn tree_parent(vrank: u32) -> Option<u32> {
    if vrank == 0 {
        None
    } else {
        Some(vrank & (vrank - 1))
    }
}

/// Binomial-tree children of `vrank` in a `p`-rank tree rooted at virtual
/// rank 0: `vrank + m` for every power of two `m` below `vrank`'s lowest
/// set bit (all powers below `p` for the root), clipped to the world.
fn tree_children(vrank: u32, p: u32) -> Vec<u32> {
    let limit = if vrank == 0 {
        p.next_power_of_two()
    } else {
        vrank & vrank.wrapping_neg()
    };
    let mut out = Vec::new();
    let mut m = 1u32;
    while m < limit {
        if vrank + m < p {
            out.push(vrank + m);
        }
        m <<= 1;
    }
    out
}

fn to_vrank(rank: u32, root: u32, p: u32) -> u32 {
    (rank + p - root % p) % p
}

fn from_vrank(vrank: u32, root: u32, p: u32) -> u32 {
    (vrank + root) % p
}

/// Per-node NIC collective engine. See the [module docs](self) for the
/// architecture; one instance lives inside each simulated node's NIC.
#[derive(Debug)]
pub struct OffloadEngine {
    node: u16,
    cfg: OffloadConfig,
    slots: BTreeMap<u32, Slot>,
    pending: BTreeMap<PendingKey, Retx>,
    emits: Vec<OffloadEmit>,
    counters: OffloadCounters,
}

impl OffloadEngine {
    /// New engine for `node` (its fabric port) with the given firmware
    /// parameters.
    pub fn new(node: u16, cfg: OffloadConfig) -> Self {
        OffloadEngine {
            node,
            cfg,
            slots: BTreeMap::new(),
            pending: BTreeMap::new(),
            emits: Vec::new(),
            counters: OffloadCounters::default(),
        }
    }

    /// Firmware counters.
    pub fn counters(&self) -> &OffloadCounters {
        &self.counters
    }

    /// Host posts a collective (command-queue write + doorbell). `ep` is
    /// the local endpoint to notify on completion. Panics if the rank
    /// already has an offloaded collective in flight — the host-side
    /// executor blocks on completion, so overlap is a wiring bug.
    pub fn post(&mut self, now: Time, ep: u8, desc: &OffloadCollDesc) {
        assert!(
            desc.ranks >= 1 && desc.rank < desc.ranks && desc.ranks_per_node >= 1,
            "offload: malformed descriptor {desc:?}"
        );
        let mut slot = self.slots.remove(&desc.rank).unwrap_or_else(Slot::new);
        slot.ep = ep;
        assert!(
            slot.active.is_none(),
            "offload: rank {} posted a collective with seq {} still in flight",
            desc.rank,
            slot.next_seq - 1
        );
        let seq = slot.next_seq;
        slot.next_seq += 1;
        self.counters.ops_posted += 1;
        let mut op = ActiveOp::new(seq, desc);
        match desc.op {
            CollOp::Barrier => {
                let rounds = ceil_log2(desc.ranks);
                if rounds > 0 {
                    let to = (desc.rank + 1) % desc.ranks;
                    self.send_data(now, desc.rank, to, seq, 0, 0, desc.ranks_per_node);
                    op.acks_left += 1;
                }
                op.recvs_done = rounds == 0;
            }
            CollOp::Bcast { root } => {
                let v = to_vrank(desc.rank, root, desc.ranks);
                if v == 0 {
                    for c in tree_children(v, desc.ranks) {
                        let to = from_vrank(c, root, desc.ranks);
                        self.send_data(
                            now,
                            desc.rank,
                            to,
                            seq,
                            0,
                            desc.payload,
                            desc.ranks_per_node,
                        );
                        op.acks_left += 1;
                    }
                    op.recvs_done = true;
                }
            }
            CollOp::Allreduce => {
                op.recv_left = tree_children(desc.rank, desc.ranks).len() as u32;
            }
        }
        slot.active = Some(op);
        self.slots.insert(desc.rank, slot);
        self.pump(now, desc.rank);
        self.arm_emit();
    }

    /// A collective frame arrived from the wire for a rank on this node.
    pub fn on_frame(&mut self, now: Time, frame: CollFrame) {
        debug_assert_eq!(frame.dst_node, self.node, "offload frame misrouted");
        match frame.kind {
            CollFrameKind::Data {
                src_rank,
                dst_rank,
                seq,
                round,
                payload,
            } => {
                // Hardware ack, unconditionally: the receive contract is
                // idempotent, so even duplicates are (re-)acked.
                let ack = CollFrame {
                    src_node: frame.dst_node,
                    dst_node: frame.src_node,
                    kind: CollFrameKind::Ack {
                        data_src: src_rank,
                        data_dst: dst_rank,
                        seq,
                        round,
                    },
                };
                self.counters.acks_tx += 1;
                self.emits.push(OffloadEmit::Wire {
                    at: now + TimeDelta::from_nanos(self.cfg.hop_ns as i64),
                    frame: ack,
                    fresh: false,
                });
                let slot = self.slots.entry(dst_rank).or_insert_with(Slot::new);
                let stale = seq < slot.next_seq && slot.active.as_ref().map(|a| a.seq) != Some(seq);
                let dup = stale
                    || slot.buf.contains_key(&(seq, round, src_rank))
                    || slot
                        .active
                        .as_ref()
                        .is_some_and(|a| a.seq == seq && a.consumed.contains(&(round, src_rank)));
                if dup {
                    self.counters.duplicates += 1;
                } else {
                    self.counters.data_rx += 1;
                    self.emits.push(OffloadEmit::Delivered {
                        src_node: frame.src_node,
                        msg_id: coll_msg_id(seq, round, src_rank, dst_rank),
                        len: payload,
                    });
                    slot.buf.insert((seq, round, src_rank), payload);
                    self.pump(now, dst_rank);
                }
            }
            CollFrameKind::Ack {
                data_src,
                data_dst,
                seq,
                round,
            } => {
                if self
                    .pending
                    .remove(&(data_src, seq, round, data_dst))
                    .is_some()
                {
                    self.counters.acks_rx += 1;
                    self.emits.push(OffloadEmit::AckCompleted);
                    if let Some(slot) = self.slots.get_mut(&data_src) {
                        if let Some(op) = slot.active.as_mut() {
                            if op.seq == seq {
                                op.acks_left -= 1;
                            }
                        }
                    }
                    self.pump(now, data_src);
                } else {
                    self.counters.duplicates += 1;
                }
            }
        }
        self.arm_emit();
    }

    /// The per-node retransmission timer fired: re-send every frame whose
    /// RTO deadline has passed.
    pub fn on_timer(&mut self, now: Time) {
        let hop = TimeDelta::from_nanos(self.cfg.hop_ns as i64);
        let rto = TimeDelta::from_nanos(self.cfg.rto_ns as i64);
        let due: Vec<PendingKey> = self
            .pending
            .iter()
            .filter(|(_, r)| r.next_at <= now)
            .map(|(k, _)| *k)
            .collect();
        for key in due {
            let r = self.pending.get_mut(&key).expect("due key vanished");
            let at = now + hop;
            r.next_at = at + rto;
            self.counters.retransmits += 1;
            let frame = r.frame;
            self.emits.push(OffloadEmit::Wire {
                at,
                frame,
                fresh: false,
            });
        }
        self.arm_emit();
    }

    /// Earliest pending retransmission deadline, if any frame is un-acked.
    pub fn next_deadline(&self) -> Option<Time> {
        self.pending.values().map(|r| r.next_at).min()
    }

    /// Move the queued emits into `out` (the orchestrator's scratch
    /// buffer), leaving the internal queue empty.
    pub fn drain_emits(&mut self, out: &mut Vec<OffloadEmit>) {
        out.append(&mut self.emits);
    }

    /// Append one violation line per piece of live state — incomplete
    /// operations, un-acked frames, stranded early-arrival buffers. At
    /// quiescence all of these are liveness bugs; mid-run they are normal.
    pub fn pending_report(&self, out: &mut Vec<String>) {
        let node = self.node;
        for (rank, slot) in &self.slots {
            if let Some(op) = &slot.active {
                out.push(format!(
                    "offload: node {node} rank {rank} {:?} seq {} incomplete \
                     (round {}, {} recvs left, {} acks left)",
                    op.op, op.seq, op.round, op.recv_left, op.acks_left
                ));
            }
            for (seq, round, from) in slot.buf.keys() {
                out.push(format!(
                    "offload: node {node} rank {rank} stranded buffered frame \
                     seq {seq} round {round} from rank {from}"
                ));
            }
        }
        for (src, seq, round, dst) in self.pending.keys() {
            out.push(format!(
                "offload: node {node} rank {src} un-acked frame seq {seq} \
                 round {round} -> rank {dst}"
            ));
        }
    }

    /// First transmission of a data frame: queue the wire emit, register
    /// the retransmission entry.
    #[allow(clippy::too_many_arguments)]
    fn send_data(
        &mut self,
        now: Time,
        src_rank: u32,
        dst_rank: u32,
        seq: u32,
        round: u16,
        payload: u32,
        rpn: u32,
    ) {
        let frame = CollFrame {
            src_node: (src_rank / rpn) as u16,
            dst_node: (dst_rank / rpn) as u16,
            kind: CollFrameKind::Data {
                src_rank,
                dst_rank,
                seq,
                round,
                payload,
            },
        };
        let at = now + TimeDelta::from_nanos(self.cfg.hop_ns as i64);
        self.counters.data_tx += 1;
        self.emits.push(OffloadEmit::Wire {
            at,
            frame,
            fresh: true,
        });
        let next_at = at + TimeDelta::from_nanos(self.cfg.rto_ns as i64);
        let prev = self
            .pending
            .insert((src_rank, seq, round, dst_rank), Retx { frame, next_at });
        debug_assert!(prev.is_none(), "offload: duplicate schedule send");
    }

    /// Consume whatever the rank's active operation can from its
    /// early-arrival buffer, advance the schedule, and complete the
    /// operation once every obligation is met.
    fn pump(&mut self, now: Time, rank: u32) {
        let mut slot = match self.slots.remove(&rank) {
            Some(s) => s,
            None => return,
        };
        if let Some(op) = slot.active.as_mut() {
            let seq = op.seq;
            match op.op {
                CollOp::Barrier => {
                    let rounds = ceil_log2(op.ranks) as u16;
                    while op.round < rounds {
                        let dist = 1u32 << op.round;
                        let from = (op.rank + op.ranks - dist) % op.ranks;
                        if slot.buf.remove(&(seq, op.round, from)).is_none() {
                            break;
                        }
                        op.consumed.insert((op.round, from));
                        op.round += 1;
                        if op.round < rounds {
                            let to = (op.rank + (1u32 << op.round)) % op.ranks;
                            self.send_data(now, op.rank, to, seq, op.round, 0, op.rpn);
                            op.acks_left += 1;
                        }
                    }
                    op.recvs_done = op.round >= rounds;
                }
                CollOp::Bcast { root } => {
                    if !op.recvs_done {
                        let v = to_vrank(op.rank, root, op.ranks);
                        let parent = tree_parent(v).expect("non-root bcast rank has a parent");
                        let from = from_vrank(parent, root, op.ranks);
                        if slot.buf.remove(&(seq, 0, from)).is_some() {
                            op.consumed.insert((0, from));
                            for c in tree_children(v, op.ranks) {
                                let to = from_vrank(c, root, op.ranks);
                                self.send_data(now, op.rank, to, seq, 0, op.payload, op.rpn);
                                op.acks_left += 1;
                            }
                            op.recvs_done = true;
                        }
                    }
                }
                CollOp::Allreduce => {
                    if op.round == 0 {
                        for c in tree_children(op.rank, op.ranks) {
                            if !op.consumed.contains(&(0, c))
                                && slot.buf.remove(&(seq, 0, c)).is_some()
                            {
                                op.consumed.insert((0, c));
                                op.recv_left -= 1;
                                self.counters.combines += 1;
                            }
                        }
                        if op.recv_left == 0 {
                            op.round = 1;
                            match tree_parent(op.rank) {
                                None => {
                                    // Root: reduce done, fan the result out.
                                    for c in tree_children(op.rank, op.ranks) {
                                        self.send_data(now, op.rank, c, seq, 1, op.payload, op.rpn);
                                        op.acks_left += 1;
                                    }
                                    op.recvs_done = true;
                                }
                                Some(parent) => {
                                    self.send_data(
                                        now, op.rank, parent, seq, 0, op.payload, op.rpn,
                                    );
                                    op.acks_left += 1;
                                    op.recv_left = 1;
                                }
                            }
                        }
                    }
                    if op.round == 1 && !op.recvs_done {
                        let parent =
                            tree_parent(op.rank).expect("non-root allreduce rank has a parent");
                        if slot.buf.remove(&(seq, 1, parent)).is_some() {
                            op.consumed.insert((1, parent));
                            op.recv_left = 0;
                            for c in tree_children(op.rank, op.ranks) {
                                self.send_data(now, op.rank, c, seq, 1, op.payload, op.rpn);
                                op.acks_left += 1;
                            }
                            op.recvs_done = true;
                        }
                    }
                }
            }
            if op.recvs_done && op.acks_left == 0 {
                self.counters.ops_completed += 1;
                self.emits.push(OffloadEmit::Complete {
                    ep: slot.ep,
                    seq,
                    rank,
                });
                slot.active = None;
            }
        }
        self.slots.insert(rank, slot);
    }

    /// Queue an [`OffloadEmit::ArmTimer`] for the earliest outstanding RTO
    /// deadline, if any. The orchestrator dedups against its armed timer.
    fn arm_emit(&mut self) {
        if let Some(at) = self.next_deadline() {
            self.emits.push(OffloadEmit::ArmTimer { at });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Minimal in-crate harness: one engine per node (one rank per node),
    /// a sorted frame queue, and per-node RTO timers. Loss is injected by
    /// dropping the first transmission of selected data frames; the RTO
    /// path must recover.
    struct Harness {
        engines: Vec<OffloadEngine>,
        /// (deliver_at, insertion_seq) -> frame. The insertion seq breaks
        /// ties deterministically.
        wire: BTreeMap<(u64, u64), CollFrame>,
        timers: Vec<Option<Time>>,
        next_ins: u64,
        completions: Vec<(u32, u8, u32)>,
        /// Data-frame keys whose *first* transmission is dropped.
        drop_once: BTreeSet<PendingKey>,
        scratch: Vec<OffloadEmit>,
    }

    impl Harness {
        fn new(ranks: u32) -> Self {
            let cfg = OffloadConfig::default();
            Harness {
                engines: (0..ranks)
                    .map(|n| OffloadEngine::new(n as u16, cfg))
                    .collect(),
                wire: BTreeMap::new(),
                timers: vec![None; ranks as usize],
                next_ins: 0,
                completions: Vec::new(),
                drop_once: BTreeSet::new(),
                scratch: Vec::new(),
            }
        }

        fn apply_emits(&mut self, node: usize) {
            let mut emits = std::mem::take(&mut self.scratch);
            self.engines[node].drain_emits(&mut emits);
            for e in emits.drain(..) {
                match e {
                    OffloadEmit::Wire { at, frame, fresh } => {
                        if fresh {
                            if let CollFrameKind::Data {
                                src_rank,
                                dst_rank,
                                seq,
                                round,
                                ..
                            } = frame.kind
                            {
                                if self.drop_once.remove(&(src_rank, seq, round, dst_rank)) {
                                    continue;
                                }
                            }
                        }
                        self.wire.insert((at.as_nanos(), self.next_ins), frame);
                        self.next_ins += 1;
                    }
                    OffloadEmit::Complete { ep, seq, rank } => {
                        self.completions.push((rank, ep, seq));
                    }
                    OffloadEmit::ArmTimer { at } => {
                        let slot = &mut self.timers[node];
                        if !slot.is_some_and(|t| t <= at) {
                            *slot = Some(at);
                        }
                    }
                    OffloadEmit::Delivered { .. } | OffloadEmit::AckCompleted => {}
                }
            }
            self.scratch = emits;
        }

        fn post_all(&mut self, op: CollOp, ranks: u32, payload: u32) {
            for r in 0..ranks {
                let desc = OffloadCollDesc {
                    op,
                    rank: r,
                    ranks,
                    ranks_per_node: 1,
                    payload,
                };
                self.engines[r as usize].post(Time::ZERO, 0, &desc);
                self.apply_emits(r as usize);
            }
        }

        /// Run until the wire is empty and no timer has pending work.
        fn run(&mut self) {
            for _ in 0..1_000_000u32 {
                if let Some((&(at_ns, ins), &frame)) = self.wire.iter().next() {
                    self.wire.remove(&(at_ns, ins));
                    let dst = frame.dst_node as usize;
                    self.engines[dst].on_frame(Time::from_nanos(at_ns), frame);
                    self.apply_emits(dst);
                    continue;
                }
                // Wire idle: fire the earliest armed timer, if it is due
                // against outstanding work.
                let next = (0..self.engines.len())
                    .filter_map(|n| self.timers[n].map(|t| (t, n)))
                    .min();
                match next {
                    Some((t, n)) => {
                        self.timers[n] = None;
                        if self.engines[n].next_deadline().is_some() {
                            self.engines[n].on_timer(t);
                            self.apply_emits(n);
                        }
                    }
                    None => return,
                }
            }
            panic!("offload harness did not quiesce");
        }

        fn assert_all_complete_once(&self, ranks: u32, ops: u32) {
            let mut per_rank = vec![0u32; ranks as usize];
            for &(rank, _, _) in &self.completions {
                per_rank[rank as usize] += 1;
            }
            for (r, &n) in per_rank.iter().enumerate() {
                assert_eq!(n, ops, "rank {r} completed {n} ops, expected {ops}");
            }
            for e in &self.engines {
                let mut v = Vec::new();
                e.pending_report(&mut v);
                assert!(v.is_empty(), "live state at quiescence: {v:?}");
            }
        }
    }

    #[test]
    fn barrier_completes_exactly_once_at_every_world_size() {
        for ranks in 1..=17u32 {
            let mut h = Harness::new(ranks);
            h.post_all(CollOp::Barrier, ranks, 0);
            h.run();
            h.assert_all_complete_once(ranks, 1);
        }
    }

    #[test]
    fn bcast_and_allreduce_complete_at_odd_world_sizes() {
        for ranks in [2u32, 3, 5, 7, 12, 16] {
            for op in [CollOp::Bcast { root: ranks - 1 }, CollOp::Allreduce] {
                let mut h = Harness::new(ranks);
                h.post_all(op, ranks, 64);
                h.run();
                h.assert_all_complete_once(ranks, 1);
            }
        }
    }

    #[test]
    fn lost_frames_are_retransmitted_to_completion() {
        let ranks = 8u32;
        let mut h = Harness::new(ranks);
        // Drop the first copy of rank 0's round-0 barrier token and of
        // rank 3's round-1 token.
        h.drop_once.insert((0, 0, 0, 1));
        h.drop_once.insert((3, 0, 1, 5));
        h.post_all(CollOp::Barrier, ranks, 0);
        h.run();
        h.assert_all_complete_once(ranks, 1);
        let retx: u64 = h.engines.iter().map(|e| e.counters().retransmits).sum();
        assert!(retx >= 2, "expected retransmissions, saw {retx}");
    }

    #[test]
    fn duplicate_data_frames_are_reacked_not_redelivered() {
        let mut h = Harness::new(2);
        h.post_all(CollOp::Barrier, 2, 0);
        h.run();
        h.assert_all_complete_once(2, 1);
        // Replay rank 0's token at rank 1: must re-ack, not re-deliver.
        let dup = CollFrame {
            src_node: 0,
            dst_node: 1,
            kind: CollFrameKind::Data {
                src_rank: 0,
                dst_rank: 1,
                seq: 0,
                round: 0,
                payload: 0,
            },
        };
        let before = h.engines[1].counters().data_rx;
        h.engines[1].on_frame(Time::from_nanos(1_000_000), dup);
        let mut emits = Vec::new();
        h.engines[1].drain_emits(&mut emits);
        assert_eq!(h.engines[1].counters().data_rx, before, "no re-delivery");
        assert_eq!(h.engines[1].counters().duplicates, 1);
        assert!(
            matches!(
                emits.as_slice(),
                [OffloadEmit::Wire {
                    frame: CollFrame {
                        kind: CollFrameKind::Ack { .. },
                        ..
                    },
                    fresh: false,
                    ..
                }]
            ),
            "dup must produce exactly a re-ack: {emits:?}"
        );
    }

    #[test]
    fn sequences_keep_back_to_back_ops_apart() {
        let ranks = 5u32;
        let mut h = Harness::new(ranks);
        for _ in 0..3 {
            h.post_all(CollOp::Allreduce, ranks, 8);
            h.run();
        }
        h.assert_all_complete_once(ranks, 3);
        // Seqs must be 0,1,2 in order on every rank.
        for r in 0..ranks {
            let seqs: Vec<u32> = h
                .completions
                .iter()
                .filter(|(rank, _, _)| *rank == r)
                .map(|&(_, _, s)| s)
                .collect();
            assert_eq!(seqs, vec![0, 1, 2]);
        }
    }

    #[test]
    fn tree_helpers_cover_every_rank() {
        for p in 1..=64u32 {
            let mut seen = vec![false; p as usize];
            seen[0] = true;
            for v in 0..p {
                for c in tree_children(v, p) {
                    assert!(!seen[c as usize], "rank {c} has two parents (p={p})");
                    assert_eq!(tree_parent(c), Some(v));
                    seen[c as usize] = true;
                }
            }
            assert!(seen.iter().all(|&s| s), "orphan ranks at p={p}");
        }
    }

    #[test]
    fn msg_ids_are_disjoint_from_protocol_ids_and_unique() {
        let a = coll_msg_id(0, 0, 0, 1);
        assert!(a & (1 << 63) != 0);
        let mut ids = BTreeSet::new();
        for seq in 0..4u32 {
            for round in 0..4u16 {
                for src in 0..8u32 {
                    for dst in 0..8u32 {
                        assert!(ids.insert(coll_msg_id(seq, round, src, dst)));
                    }
                }
            }
        }
    }
}
