//! Multi-core host model.
//!
//! Each node of the testbed is a [`Host`]: a set of cores that service
//! interrupts (serialised per core), may be occupied by application ranks,
//! and drop into a C1E-like sleep state when idle. The model deliberately
//! separates *interrupt* busy-time from *application* busy-time: interrupt
//! handlers preempt applications, so application phases observe stolen time
//! through [`Host::irq_busy_total_ns`] rather than blocking the handler.

use crate::cache::CacheTracker;
use crate::costs::CostModel;
use crate::routing::IrqRouting;
use omx_sim::stats::{Counter, Histogram};
use omx_sim::{Time, TimeDelta};

/// Index of a core within one host.
pub type CoreId = usize;

/// Static host configuration.
#[derive(Debug, Clone, Copy)]
pub struct HostConfig {
    /// Number of cores (the paper's nodes have 2 × quad-core = 8).
    pub cores: usize,
    /// Whether idle cores may enter the C1E sleep state.
    pub sleep_enabled: bool,
    /// Interrupt steering policy.
    pub routing: IrqRouting,
    /// Timing constants.
    pub costs: CostModel,
}

impl Default for HostConfig {
    fn default() -> Self {
        HostConfig {
            cores: 8,
            sleep_enabled: true,
            routing: IrqRouting::RoundRobin,
            costs: CostModel::default(),
        }
    }
}

#[derive(Debug, Clone, Copy)]
struct CoreState {
    /// Interrupt work on this core is serialised up to this time.
    irq_busy_until: Time,
    /// Cumulative interrupt busy nanoseconds (stolen-time source).
    irq_busy_total_ns: u64,
    /// An application rank is actively running/polling on this core.
    app_active: bool,
    /// Last instant the core did anything (ends of IRQ service or app marks).
    last_activity: Time,
}

impl CoreState {
    fn new() -> Self {
        CoreState {
            irq_busy_until: Time::ZERO,
            irq_busy_total_ns: 0,
            app_active: false,
            last_activity: Time::ZERO,
        }
    }
}

/// Where and when an interrupt gets serviced.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IrqService {
    /// Target core.
    pub core: CoreId,
    /// Instant the handler starts executing (after queueing and wakeup).
    pub start: Time,
    /// The target core had to be woken from C1E.
    pub was_sleeping: bool,
    /// An application was running on the target core (the handler preempts
    /// it and pays the context-disturbance cost).
    pub preempts_app: bool,
}

/// Monotonic host counters.
#[derive(Debug, Default, Clone)]
pub struct HostCounters {
    /// Interrupts serviced by this host.
    pub irqs: Counter,
    /// Interrupts that hit a sleeping core.
    pub wakeups: Counter,
    /// Total interrupt busy time, all cores, nanoseconds.
    pub irq_busy_ns: Counter,
    /// Cache-line bounce count (from the tracker, mirrored for convenience).
    pub cache_bounces: Counter,
    /// Per-interrupt handler occupancy, nanoseconds (distribution of the
    /// same time `irq_busy_ns` accumulates).
    pub irq_service_ns: Histogram,
}

omx_sim::impl_to_json!(HostCounters {
    irqs,
    wakeups,
    irq_busy_ns,
    cache_bounces,
    irq_service_ns,
});
omx_sim::impl_from_json!(HostCounters {
    irqs,
    wakeups,
    irq_busy_ns,
    cache_bounces,
    irq_service_ns,
});

/// One simulated node.
pub struct Host {
    cfg: HostConfig,
    cores: Vec<CoreState>,
    rr_cursor: usize,
    cache: CacheTracker,
    counters: HostCounters,
}

impl Host {
    /// Build a host.
    pub fn new(cfg: HostConfig) -> Self {
        assert!(cfg.cores > 0, "a host needs at least one core");
        Host {
            cores: vec![CoreState::new(); cfg.cores],
            rr_cursor: 0,
            cache: CacheTracker::new(),
            counters: HostCounters::default(),
            cfg,
        }
    }

    /// Host configuration.
    pub fn config(&self) -> &HostConfig {
        &self.cfg
    }

    /// The cost model in force.
    pub fn costs(&self) -> &CostModel {
        &self.cfg.costs
    }

    /// Counters snapshot.
    pub fn counters(&self) -> &HostCounters {
        &self.counters
    }

    /// Whether `core` would be asleep at `now` (idle long enough, sleeping
    /// allowed, no active application).
    pub fn is_sleeping(&self, core: CoreId, now: Time) -> bool {
        if !self.cfg.sleep_enabled {
            return false;
        }
        let c = &self.cores[core];
        if c.app_active || c.irq_busy_until > now {
            return false;
        }
        let idle_since = c.last_activity.max(c.irq_busy_until);
        now.saturating_since(idle_since)
            > TimeDelta::from_nanos(self.cfg.costs.idle_sleep_threshold_ns as i64)
    }

    /// Route and account one interrupt arriving at `now` for flow `flow`.
    ///
    /// Returns the chosen core and the time the handler starts (queued
    /// behind earlier interrupt work on that core, plus the C1E exit
    /// latency when the core was asleep).
    pub fn deliver_irq(&mut self, now: Time, flow: u64) -> IrqService {
        let core = self
            .cfg
            .routing
            .pick(&mut self.rr_cursor, flow, self.cfg.cores);
        let was_sleeping = self.is_sleeping(core, now);
        self.counters.irqs.incr();
        let start = now.max(self.cores[core].irq_busy_until);
        if was_sleeping {
            // The C1E exit overlaps with the in-flight claim's processing
            // (the MSI reaches the target core while the previous handler
            // still runs), so it is counted but does not push `start`.
            self.counters.wakeups.incr();
        }
        IrqService {
            core,
            start,
            was_sleeping,
            preempts_app: self.cores[core].app_active,
        }
    }

    /// Occupy `core` with interrupt work for `dur_ns` starting at `start`.
    /// Returns the completion time.
    pub fn occupy_irq(&mut self, core: CoreId, start: Time, dur_ns: u64) -> Time {
        let end = start + TimeDelta::from_nanos(dur_ns as i64);
        let c = &mut self.cores[core];
        c.irq_busy_until = c.irq_busy_until.max(end);
        c.irq_busy_total_ns += dur_ns;
        c.last_activity = c.last_activity.max(end);
        self.counters.irq_busy_ns.add(dur_ns);
        self.counters.irq_service_ns.record(dur_ns);
        end
    }

    /// Mark whether an application rank is actively running on `core`.
    pub fn set_app_active(&mut self, core: CoreId, active: bool, now: Time) {
        let c = &mut self.cores[core];
        c.app_active = active;
        c.last_activity = c.last_activity.max(now);
    }

    /// Whether an application rank is active on `core`.
    pub fn app_active(&self, core: CoreId) -> bool {
        self.cores[core].app_active
    }

    /// Record application activity on `core` at `now` (keeps it awake).
    pub fn touch(&mut self, core: CoreId, now: Time) {
        let c = &mut self.cores[core];
        c.last_activity = c.last_activity.max(now);
    }

    /// Cumulative interrupt busy time on `core`, nanoseconds — application
    /// phases use the difference across their window as stolen time.
    pub fn irq_busy_total_ns(&self, core: CoreId) -> u64 {
        self.cores[core].irq_busy_total_ns
    }

    /// Record an access to shared line group `group` from `core`; returns
    /// true (and counts) when the access bounced from another core.
    pub fn cache_access(&mut self, group: u64, core: CoreId) -> bool {
        let bounced = self.cache.access(group, core);
        if bounced {
            self.counters.cache_bounces.incr();
        }
        bounced
    }

    /// The cache tracker (read-only).
    pub fn cache(&self) -> &CacheTracker {
        &self.cache
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn host(sleep: bool, routing: IrqRouting) -> Host {
        Host::new(HostConfig {
            cores: 4,
            sleep_enabled: sleep,
            routing,
            costs: CostModel::default(),
        })
    }

    fn t(us: u64) -> Time {
        Time::from_micros(us)
    }

    #[test]
    fn round_robin_scatters_interrupts() {
        let mut h = host(false, IrqRouting::RoundRobin);
        let cores: Vec<usize> = (0..8).map(|i| h.deliver_irq(t(i), 0).core).collect();
        assert_eq!(cores, vec![0, 1, 2, 3, 0, 1, 2, 3]);
    }

    #[test]
    fn sleeping_core_wakeup_is_counted_not_serialized() {
        let mut h = host(true, IrqRouting::Fixed(1));
        // Long idle: core 1 is asleep. The C1E exit is accounted (wakeups
        // counter) but overlaps with the in-flight claim's processing, so
        // the service start is not pushed back.
        let s = h.deliver_irq(t(100), 0);
        assert!(s.was_sleeping);
        assert_eq!(s.start, t(100));
        assert_eq!(h.counters().wakeups.get(), 1);
    }

    #[test]
    fn recently_active_core_does_not_sleep() {
        let mut h = host(true, IrqRouting::Fixed(0));
        let s1 = h.deliver_irq(t(100), 0);
        let end = h.occupy_irq(0, s1.start, 1_000);
        // 1 µs later (< 2 µs threshold): still awake.
        let s2 = h.deliver_irq(end + TimeDelta::from_micros(1), 0);
        assert!(!s2.was_sleeping);
        assert_eq!(h.counters().wakeups.get(), 1, "only the cold start slept");
    }

    #[test]
    fn sleep_disabled_never_wakes() {
        let mut h = host(false, IrqRouting::Fixed(0));
        let s = h.deliver_irq(t(10_000), 0);
        assert!(!s.was_sleeping);
        assert_eq!(s.start, t(10_000));
    }

    #[test]
    fn app_active_core_never_sleeps() {
        let mut h = host(true, IrqRouting::Fixed(2));
        h.set_app_active(2, true, Time::ZERO);
        let s = h.deliver_irq(t(50_000), 0);
        assert!(!s.was_sleeping);
    }

    #[test]
    fn irq_work_serialises_per_core() {
        let mut h = host(false, IrqRouting::Fixed(0));
        let s1 = h.deliver_irq(t(10), 0);
        let end1 = h.occupy_irq(0, s1.start, 5_000);
        let s2 = h.deliver_irq(t(11), 0);
        assert_eq!(s2.start, end1, "second IRQ queues behind the first");
    }

    #[test]
    fn different_cores_service_in_parallel() {
        let mut h = host(false, IrqRouting::RoundRobin);
        let s1 = h.deliver_irq(t(10), 0);
        h.occupy_irq(s1.core, s1.start, 5_000);
        let s2 = h.deliver_irq(t(10), 0);
        assert_ne!(s1.core, s2.core);
        assert_eq!(s2.start, t(10), "no queueing across cores");
    }

    #[test]
    fn stolen_time_accumulates() {
        let mut h = host(false, IrqRouting::Fixed(3));
        assert_eq!(h.irq_busy_total_ns(3), 0);
        let s = h.deliver_irq(t(0), 0);
        h.occupy_irq(3, s.start, 2_500);
        let s = h.deliver_irq(t(100), 0);
        h.occupy_irq(3, s.start, 1_500);
        assert_eq!(h.irq_busy_total_ns(3), 4_000);
        assert_eq!(h.counters().irq_busy_ns.get(), 4_000);
    }

    #[test]
    fn cache_access_counts_bounces() {
        let mut h = host(false, IrqRouting::RoundRobin);
        assert!(!h.cache_access(7, 0));
        assert!(h.cache_access(7, 1));
        assert_eq!(h.counters().cache_bounces.get(), 1);
        assert_eq!(h.cache().bounces(), 1);
    }

    #[test]
    #[should_panic(expected = "at least one core")]
    fn zero_core_host_rejected() {
        let _ = Host::new(HostConfig {
            cores: 0,
            ..HostConfig::default()
        });
    }
}
