//! # omx-host — simulated host receive side
//!
//! Models everything that happens *after* the NIC raises an interrupt:
//!
//! * [`HostConfig`] / [`Host`] — a multi-core node. Interrupts are routed
//!   round-robin across cores (the chipset default the paper describes) or
//!   bound to a single core; idle cores drop into a C1E-like sleep state and
//!   pay a wakeup latency when an interrupt lands on them (§IV-B1).
//! * [`cache`] — a directory-style tracker for the shared Open-MX driver
//!   structures: processing related packets on different cores causes
//!   cache-line bounces with a per-access penalty (§III-B, §IV-B2).
//! * [`costs`] — the [`costs::CostModel`]: every nanosecond constant of the
//!   receive path in one plain-data struct, calibrated against the
//!   paper's measured anchors (965 → 774 ns per-packet overhead, ~10 µs
//!   small-message latency, 490k msg/s peak rate).
//!
//! Like the NIC, the host is a passive state machine: the cluster
//! orchestrator (in `omx-core`) asks it to account interrupt deliveries and
//! busy windows and reads the counters back at the end of a run.

#![warn(missing_docs)]

pub mod cache;
pub mod core;
pub mod costs;
pub mod routing;

pub use cache::CacheTracker;
pub use core::{CoreId, Host, HostConfig, HostCounters, IrqService};
pub use costs::CostModel;
pub use routing::IrqRouting;
