//! Cache-line bounce tracking.
//!
//! Processing incoming packets touches shared Open-MX driver structures
//! (communication channel descriptors, pull state, the low-level driver
//! ring). When consecutive interrupts land on different cores those lines
//! migrate between L2 caches — the paper measures ~40 ns per packet for the
//! low-level structures alone and argues the effect is much larger once the
//! Open-MX handler is involved (§III-B, §IV-B2).
//!
//! [`CacheTracker`] keeps, per logical *line group* (a set of cache lines
//! that move together, e.g. one channel descriptor), the core that last
//! touched it, and reports whether an access bounced.

use std::collections::HashMap;

/// Tracks which core last touched each shared line group.
#[derive(Debug, Default)]
pub struct CacheTracker {
    owner: HashMap<u64, usize>,
    accesses: u64,
    bounces: u64,
}

impl CacheTracker {
    /// New tracker with no owned lines.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record an access to `group` from `core`.
    ///
    /// Returns `true` when the group was previously owned by a *different*
    /// core (a bounce). First-ever accesses are cold misses, not bounces.
    pub fn access(&mut self, group: u64, core: usize) -> bool {
        self.accesses += 1;
        match self.owner.insert(group, core) {
            Some(prev) if prev != core => {
                self.bounces += 1;
                true
            }
            _ => false,
        }
    }

    /// Core that last touched `group`, if any.
    pub fn owner(&self, group: u64) -> Option<usize> {
        self.owner.get(&group).copied()
    }

    /// Total accesses recorded.
    pub fn accesses(&self) -> u64 {
        self.accesses
    }

    /// Total bounces recorded.
    pub fn bounces(&self) -> u64 {
        self.bounces
    }

    /// Bounce ratio in `[0, 1]` (0 when no accesses).
    pub fn bounce_ratio(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.bounces as f64 / self.accesses as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_access_is_cold_not_bounce() {
        let mut c = CacheTracker::new();
        assert!(!c.access(1, 0));
        assert_eq!(c.bounces(), 0);
        assert_eq!(c.accesses(), 1);
    }

    #[test]
    fn same_core_reaccess_is_hit() {
        let mut c = CacheTracker::new();
        c.access(1, 3);
        assert!(!c.access(1, 3));
        assert_eq!(c.bounces(), 0);
    }

    #[test]
    fn cross_core_access_bounces() {
        let mut c = CacheTracker::new();
        c.access(1, 0);
        assert!(c.access(1, 1));
        assert!(c.access(1, 0));
        assert_eq!(c.bounces(), 2);
        assert_eq!(c.owner(1), Some(0));
    }

    #[test]
    fn groups_are_independent() {
        let mut c = CacheTracker::new();
        c.access(1, 0);
        assert!(!c.access(2, 1), "different group: no bounce");
    }

    #[test]
    fn ratio() {
        let mut c = CacheTracker::new();
        assert_eq!(c.bounce_ratio(), 0.0);
        c.access(1, 0);
        c.access(1, 1);
        assert!((c.bounce_ratio() - 0.5).abs() < 1e-12);
    }
}
