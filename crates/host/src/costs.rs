//! The calibrated cost model.
//!
//! All host-side nanosecond constants live here so that every experiment is
//! reproducible from one serialisable config and so the calibration section
//! of DESIGN.md has a single place to point at.
//!
//! Calibration anchors from the paper (§IV, Xeon E5345 2.33 GHz testbed):
//!
//! * per-packet receive overhead with an interrupt per packet: **965 ns**;
//!   with 75 µs coalescing: **774 ns**; binding interrupts to one core
//!   saves another **~40 ns** (§IV-B2) — this pins `lowlevel_rx_ns`,
//!   `irq_dispatch_ns` and `lowlevel_bounce_ns`,
//! * small-message ping-pong latency ~**10 µs** one-way with coalescing
//!   disabled (§IV-B3) — pins the sum of the send path, wire, DMA and
//!   receive path constants,
//! * peak small-message rate ~**490k msg/s** with default coalescing and
//!   ~**252k** with it disabled (Table I) — pins the per-message costs and
//!   the sleep/wakeup penalty,
//! * C1E exit takes "several microseconds" (§IV-B1) — `wakeup_ns`.

/// Every host-side timing constant of the simulation, in nanoseconds unless
/// stated otherwise.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostModel {
    // -- interrupt path ------------------------------------------------------
    /// Hardware + software interrupt dispatch (vector, context save/restore,
    /// NAPI scheduling), paid once per interrupt.
    pub irq_dispatch_ns: u64,
    /// C1E exit latency in the interrupt path, paid when the target core
    /// was asleep (hardware exit only — the expensive part of waking a
    /// *blocked process* is `proc_wakeup_ns`).
    pub wakeup_ns: u64,
    /// A core with no activity for this long is considered asleep
    /// (when sleeping is enabled).
    pub idle_sleep_threshold_ns: u64,

    // -- per-packet receive path ----------------------------------------------
    /// Low-level Ethernet receive cost per packet (driver + netif stack up to
    /// the Open-MX handler hand-off).
    pub lowlevel_rx_ns: u64,
    /// Extra low-level cost per packet when this batch runs on a different
    /// core than the previous one (cold driver structures).
    pub lowlevel_bounce_ns: u64,
    /// Open-MX receive handler cost per packet: demultiplex, match, event
    /// bookkeeping (excludes the payload copy).
    pub omx_handler_ns: u64,
    /// Extra per-batch cost when the Open-MX channel descriptors were last
    /// touched by a different core (cache-line bounces of shared state).
    pub omx_channel_bounce_ns: u64,
    /// Payload copy bandwidth into the user-space event ring / receive
    /// buffers, bytes per microsecond.
    pub copy_bytes_per_us: u64,
    /// Cost of posting one event into the user-visible ring.
    pub event_ring_ns: u64,

    // -- send path -------------------------------------------------------------
    /// User-space + driver send cost per message (ioctl-less MX-style post).
    pub send_post_ns: u64,
    /// Per-fragment driver send cost (fragmentation loop, skb setup).
    pub send_frag_ns: u64,
    /// Payload copy bandwidth on the send side, bytes per microsecond.
    pub send_copy_bytes_per_us: u64,
    /// NIC TX doorbell-to-wire fixed latency.
    pub tx_doorbell_ns: u64,

    // -- application ------------------------------------------------------------
    /// User-space cost to consume one completion event while polling.
    pub app_event_ns: u64,
    /// Scheduler latency to wake a process blocked in `mx_wait` when a
    /// completion arrives after an idle period and the core had entered C1E
    /// (§IV-B1: "several microseconds may be needed before the interrupt is
    /// actually processed" when "the MPI process running on this core is
    /// waiting for an I/O to complete"). The Fig. 4 "sleeping disabled"
    /// configuration replaces this with `proc_wakeup_nosleep_ns`.
    pub proc_wakeup_ns: u64,
    /// Process wakeup latency with sleep states disabled (`idle=poll`):
    /// just the scheduler hand-off, no C1E exit in the path.
    pub proc_wakeup_nosleep_ns: u64,
    /// An application idle for longer than this is considered blocked in
    /// `mx_wait` and pays `proc_wakeup_ns` on the next completion.
    pub proc_idle_gap_ns: u64,
    /// Extra cost of an interrupt that preempts a *running application* on
    /// its core: context save/restore plus the user process's cache and TLB
    /// pollution (§II-A: interrupts cost "several microseconds" when they
    /// displace an execution context). Idle cores don't pay it, which is why
    /// the drop-only overhead microbenchmark (§IV-B2) sees only the bare
    /// dispatch cost.
    pub irq_preempt_ns: u64,
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel {
            irq_dispatch_ns: 190,
            wakeup_ns: 600,
            idle_sleep_threshold_ns: 5_000,
            lowlevel_rx_ns: 700,
            lowlevel_bounce_ns: 40,
            omx_handler_ns: 300,
            omx_channel_bounce_ns: 260,
            copy_bytes_per_us: 700,
            event_ring_ns: 80,
            send_post_ns: 1_750,
            send_frag_ns: 260,
            send_copy_bytes_per_us: 3_200,
            tx_doorbell_ns: 900,
            app_event_ns: 210,
            proc_wakeup_ns: 2_400,
            proc_wakeup_nosleep_ns: 1_000,
            proc_idle_gap_ns: 1_200,
            irq_preempt_ns: 1_300,
        }
    }
}

impl CostModel {
    /// Copy time for `bytes` on the receive side.
    pub fn rx_copy_ns(&self, bytes: u32) -> u64 {
        (bytes as u64 * 1_000).div_ceil(self.copy_bytes_per_us)
    }

    /// Copy time for `bytes` on the send side.
    pub fn tx_copy_ns(&self, bytes: u32) -> u64 {
        (bytes as u64 * 1_000).div_ceil(self.send_copy_bytes_per_us)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_model_matches_overhead_anchor() {
        // §IV-B2: with an interrupt per packet the per-packet receive
        // overhead is ~965 ns; with heavy coalescing it drops to ~774 ns
        // (packets dropped before the Open-MX handler, so only the low-level
        // path counts). Keep the defaults within a few percent of those.
        let m = CostModel::default();
        let coalesced = m.lowlevel_rx_ns + m.lowlevel_bounce_ns;
        let disabled = coalesced + m.irq_dispatch_ns;
        // The paper measured 774 / 965 ns; the calibrated model sits within
        // ±8 % of both anchors (the residual went into the full-path copy
        // costs pinned by Tables I and II).
        assert!(
            (712..=836).contains(&coalesced),
            "coalesced per-packet {coalesced} outside anchor"
        );
        assert!(
            (888..=1042).contains(&disabled),
            "disabled per-packet {disabled} outside anchor"
        );
    }

    #[test]
    fn copy_times_scale() {
        let m = CostModel::default();
        assert_eq!(m.rx_copy_ns(0), 0);
        assert!(m.rx_copy_ns(3_200) >= 1_000);
        assert!(m.tx_copy_ns(32_000) >= 10_000);
    }

    #[test]
    fn rounding_is_ceil() {
        let m = CostModel {
            copy_bytes_per_us: 1000,
            ..CostModel::default()
        };
        assert_eq!(m.rx_copy_ns(1), 1, "sub-nanosecond copies round up");
    }
}
