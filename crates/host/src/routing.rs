//! Interrupt routing policies.
//!
//! The paper contrasts the chipset default — interrupts scattered across all
//! cores in a round-robin manner — with binding all interrupts to a single
//! core (Fig. 4 and §IV-B2). The future-work multiqueue idea (§VI) hashes a
//! flow identifier to a fixed core per communication channel.

/// How MSI interrupts are steered to cores.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IrqRouting {
    /// Scatter across all cores in round-robin order (chipset default).
    RoundRobin,
    /// Deliver every interrupt to this core (`echo ... > smp_affinity`).
    Fixed(usize),
    /// Hash the flow id to a core (multiqueue, §VI future work).
    Multiqueue,
}

impl IrqRouting {
    /// Pick the target core for the next interrupt.
    ///
    /// `rr_state` is the router's mutable round-robin cursor; `flow` is a
    /// stable identifier of the packet flow (used by `Multiqueue`);
    /// `n_cores` is the core count of the node.
    pub fn pick(&self, rr_state: &mut usize, flow: u64, n_cores: usize) -> usize {
        debug_assert!(n_cores > 0);
        match self {
            IrqRouting::RoundRobin => {
                let core = *rr_state % n_cores;
                *rr_state = (*rr_state + 1) % n_cores;
                core
            }
            IrqRouting::Fixed(core) => {
                debug_assert!(*core < n_cores, "bound core out of range");
                *core
            }
            // Channel-to-core attachment: endpoint channels map directly to
            // the core their consumer is pinned on (endpoint i -> core
            // i % cores in the cluster layout); other flows hash.
            IrqRouting::Multiqueue => (flow % n_cores as u64) as usize,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_robin_cycles_all_cores() {
        let r = IrqRouting::RoundRobin;
        let mut cursor = 0;
        let picks: Vec<usize> = (0..8).map(|_| r.pick(&mut cursor, 0, 4)).collect();
        assert_eq!(picks, vec![0, 1, 2, 3, 0, 1, 2, 3]);
    }

    #[test]
    fn fixed_always_same_core() {
        let r = IrqRouting::Fixed(2);
        let mut cursor = 0;
        for flow in 0..16 {
            assert_eq!(r.pick(&mut cursor, flow, 8), 2);
        }
    }

    #[test]
    fn multiqueue_is_stable_per_flow_and_spreads() {
        let r = IrqRouting::Multiqueue;
        let mut cursor = 0;
        let a1 = r.pick(&mut cursor, 42, 8);
        let a2 = r.pick(&mut cursor, 42, 8);
        assert_eq!(a1, a2, "same flow maps to same core");
        assert_eq!(r.pick(&mut cursor, 3, 8), 3, "channel i lands on core i");
        let distinct: std::collections::HashSet<usize> =
            (0..64).map(|f| r.pick(&mut cursor, f, 8)).collect();
        assert!(distinct.len() >= 4, "flows spread over cores: {distinct:?}");
    }
}
