//! Re-export of the cluster configuration.
//!
//! The full config type lives next to the orchestrator in
//! [`crate::system`]; this module exists so downstream code can import it
//! from a stable, discoverable path (`omx_core::config::ClusterConfig`).

pub use crate::system::{ClusterBuilder, ClusterConfig};
