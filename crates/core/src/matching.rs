//! MX-style tag matching.
//!
//! MX (and therefore Open-MX) matches a 64-bit *match info* against posted
//! receives that carry a match value and a mask: a message matches a posted
//! receive when `(msg.match_info & recv.mask) == (recv.match_value & mask)`.
//! Receives match in post order; messages that arrive before a matching
//! receive is posted land in the *unexpected queue* and are claimed by the
//! next matching post.

use crate::wire::{EndpointAddr, MsgId};
use std::collections::VecDeque;

/// A posted receive awaiting a message.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PostedRecv {
    /// Caller-chosen identifier returned on completion.
    pub handle: u64,
    /// Match value.
    pub match_value: u64,
    /// Match mask (`!0` = exact match, `0` = wildcard).
    pub match_mask: u64,
}

impl PostedRecv {
    fn matches(&self, match_info: u64) -> bool {
        (match_info & self.match_mask) == (self.match_value & self.match_mask)
    }
}

/// A message that arrived before its receive was posted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct UnexpectedMsg {
    /// Originating endpoint.
    pub src: EndpointAddr,
    /// Message id.
    pub msg: MsgId,
    /// Match info carried by the message.
    pub match_info: u64,
    /// Total message length.
    pub len: u32,
}

/// The match engine of one endpoint.
#[derive(Debug, Default)]
pub struct MatchEngine {
    posted: VecDeque<PostedRecv>,
    unexpected: VecDeque<UnexpectedMsg>,
}

impl MatchEngine {
    /// New empty engine.
    pub fn new() -> Self {
        Self::default()
    }

    /// Post a receive. If an unexpected message already matches, it is
    /// claimed immediately and returned; otherwise the receive queues.
    pub fn post_recv(&mut self, recv: PostedRecv) -> Option<UnexpectedMsg> {
        if let Some(pos) = self
            .unexpected
            .iter()
            .position(|m| recv.matches(m.match_info))
        {
            return self.unexpected.remove(pos);
        }
        self.posted.push_back(recv);
        None
    }

    /// An incoming message looks for a posted receive (in post order);
    /// unmatched messages are queued as unexpected.
    pub fn incoming(&mut self, msg: UnexpectedMsg) -> Option<PostedRecv> {
        if let Some(pos) = self.posted.iter().position(|r| r.matches(msg.match_info)) {
            return self.posted.remove(pos);
        }
        self.unexpected.push_back(msg);
        None
    }

    /// Number of receives waiting for a message.
    pub fn posted_len(&self) -> usize {
        self.posted.len()
    }

    /// Number of unexpected messages waiting for a receive.
    pub fn unexpected_len(&self) -> usize {
        self.unexpected.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn msg(match_info: u64) -> UnexpectedMsg {
        UnexpectedMsg {
            src: EndpointAddr::new(0, 0),
            msg: MsgId(1),
            match_info,
            len: 64,
        }
    }

    fn recv(handle: u64, value: u64, mask: u64) -> PostedRecv {
        PostedRecv {
            handle,
            match_value: value,
            match_mask: mask,
        }
    }

    #[test]
    fn exact_match() {
        let mut m = MatchEngine::new();
        assert!(m.post_recv(recv(1, 42, !0)).is_none());
        let r = m.incoming(msg(42)).expect("matches");
        assert_eq!(r.handle, 1);
        assert_eq!(m.posted_len(), 0);
    }

    #[test]
    fn mismatch_goes_unexpected() {
        let mut m = MatchEngine::new();
        m.post_recv(recv(1, 42, !0));
        assert!(m.incoming(msg(43)).is_none());
        assert_eq!(m.unexpected_len(), 1);
        assert_eq!(m.posted_len(), 1);
    }

    #[test]
    fn wildcard_mask_matches_anything() {
        let mut m = MatchEngine::new();
        m.post_recv(recv(9, 0xFFFF, 0));
        assert_eq!(m.incoming(msg(0x1234)).unwrap().handle, 9);
    }

    #[test]
    fn partial_mask_matches_prefix() {
        let mut m = MatchEngine::new();
        // Match on the high 32 bits only.
        m.post_recv(recv(3, 0xAAAA_0000_0000_0000, 0xFFFF_FFFF_0000_0000));
        assert!(m.incoming(msg(0xAAAA_0000_DEAD_BEEF)).is_some());
        m.post_recv(recv(4, 0xAAAA_0000_0000_0000, 0xFFFF_FFFF_0000_0000));
        assert!(m.incoming(msg(0xBBBB_0000_DEAD_BEEF)).is_none());
    }

    #[test]
    fn late_post_claims_unexpected_fifo() {
        let mut m = MatchEngine::new();
        assert!(m.incoming(msg(7)).is_none());
        let mut second = msg(7);
        second.msg = MsgId(2);
        assert!(m.incoming(second).is_none());
        let claimed = m.post_recv(recv(1, 7, !0)).expect("claims unexpected");
        assert_eq!(claimed.msg, MsgId(1), "oldest unexpected first");
        assert_eq!(m.unexpected_len(), 1);
    }

    #[test]
    fn receives_match_in_post_order() {
        let mut m = MatchEngine::new();
        m.post_recv(recv(1, 5, !0));
        m.post_recv(recv(2, 5, !0));
        assert_eq!(m.incoming(msg(5)).unwrap().handle, 1);
        assert_eq!(m.incoming(msg(5)).unwrap().handle, 2);
    }
}
