//! The cluster orchestrator.
//!
//! [`Cluster`] wires every substrate into one simulated testbed:
//!
//! ```text
//!   actor (application rank, pinned to a core)
//!     │ post_send / post_recv             ▲ completions (event ring poll)
//!     ▼                                   │
//!   NodeDriver (kernel)  ◄── receive handler runs in IRQ context
//!     │ Transmit                          ▲ batch of ready packets
//!     ▼                                   │
//!   Nic (DMA, coalescing) ── interrupt ─► Host (core, sleep, cache)
//!     │                                   ▲
//!     ▼ frames                            │ frames
//!   EthernetFabric (links, switch, disturbance)
//! ```
//!
//! The whole cluster is a single [`omx_sim::Model`]; every hardware and
//! software latency is charged through the [`omx_host::CostModel`], so the
//! paper's experiments are a matter of configuring strategy/routing/sleep
//! knobs and reading [`crate::metrics::ClusterMetrics`] back.
//!
//! Intra-node messages use the Open-MX shared-memory path (no NIC, no
//! interrupts), matching the paper's NAS runs where 8 of every 16 ranks are
//! co-located.

use crate::metrics::{ClusterMetrics, NodeMetrics};
use crate::proto::{DriverAction, NodeDriver, ProtoConfig};
use crate::sanitizer::{Sanitizer, SanitizerReport};
use crate::telemetry::{NodeTap, PortTap, Telemetry, TelemetryConfig};
use crate::trace::{TraceData, TraceKind, Tracer};
use crate::wire::{EndpointAddr, MsgId, NodeId, Packet, ETH_HEADER_BYTES, OMX_HEADER_BYTES};
use omx_fabric::{EthernetFabric, FabricConfig, PortId, TransmitOutcome};
use omx_host::{CoreId, Host, HostConfig};
use omx_nic::offload::{
    CollFrame, CollFrameKind, OffloadCollDesc, OffloadConfig, OffloadCounters, OffloadEmit,
    OffloadEngine,
};
use omx_nic::{CoalescingStrategy, DescId, Nic, NicConfig, NicOutcome, PacketMeta, ReadyPacket};
use omx_sim::rng::SimRng;
use omx_sim::stats::TimeWeighted;
use omx_sim::{Engine, EventToken, Model, Scheduler, StopCondition, Time, TimeDelta};
use std::any::Any;
use std::collections::HashMap;

// ---------------------------------------------------------------------------
// Configuration
// ---------------------------------------------------------------------------

/// Complete, serialisable experiment configuration.
#[derive(Debug, Clone)]
pub struct ClusterConfig {
    /// Number of nodes.
    pub nodes: usize,
    /// Endpoints (application attach points) per node; endpoint `i` is
    /// pinned to core `i % cores`.
    pub endpoints_per_node: usize,
    /// Host model (cores, sleep, routing, costs).
    pub host: HostConfig,
    /// NIC model (ring, DMA, coalescing strategy).
    pub nic: NicConfig,
    /// Fabric model (links, switch, disturbance).
    pub fabric: FabricConfig,
    /// Protocol tunables (MTU, acks, window, marking).
    pub proto: ProtoConfig,
    /// NIC collective-offload engine (firmware hop cost, RTO, payload cap).
    /// Passive — costs nothing — unless an actor posts an offloaded
    /// collective via [`ActorCtx::post_offload_collective`].
    pub offload: OffloadConfig,
    /// Intra-node shared-memory path: one-way base latency.
    pub shm_latency_ns: u64,
    /// Intra-node shared-memory copy bandwidth, bytes per microsecond.
    pub shm_bytes_per_us: u64,
    /// Experiment seed.
    pub seed: u64,
}

impl Default for ClusterConfig {
    fn default() -> Self {
        let fabric = FabricConfig::default();
        let proto = ProtoConfig {
            mtu: fabric.mtu,
            ..ProtoConfig::default()
        };
        ClusterConfig {
            nodes: 2,
            endpoints_per_node: 1,
            host: HostConfig::default(),
            nic: NicConfig::default(),
            fabric,
            proto,
            offload: OffloadConfig::default(),
            shm_latency_ns: 900,
            shm_bytes_per_us: 2_500,
            seed: 0xC0A1E5CE,
        }
    }
}

/// Fluent builder for the common experiment shapes.
#[derive(Debug, Clone)]
pub struct ClusterBuilder {
    cfg: ClusterConfig,
}

impl Default for ClusterBuilder {
    fn default() -> Self {
        Self::new()
    }
}

impl ClusterBuilder {
    /// Start from the calibrated defaults (two 8-core nodes, Myri-10G-like
    /// NIC with the 75 µs timeout, MTU-1500 fabric).
    pub fn new() -> Self {
        ClusterBuilder {
            cfg: ClusterConfig::default(),
        }
    }

    /// Set the number of nodes.
    pub fn nodes(mut self, n: usize) -> Self {
        self.cfg.nodes = n;
        self
    }

    /// Set endpoints per node.
    pub fn endpoints_per_node(mut self, n: usize) -> Self {
        self.cfg.endpoints_per_node = n;
        self
    }

    /// Select the NIC coalescing strategy.
    pub fn strategy(mut self, s: CoalescingStrategy) -> Self {
        self.cfg.nic.strategy = s;
        self
    }

    /// Select the interrupt routing policy.
    pub fn routing(mut self, r: omx_host::IrqRouting) -> Self {
        self.cfg.host.routing = r;
        self
    }

    /// Allow or forbid core sleep states.
    pub fn sleep(mut self, enabled: bool) -> Self {
        self.cfg.host.sleep_enabled = enabled;
        self
    }

    /// Set the marking policy (ablations, mis-ordering).
    pub fn marking(mut self, m: crate::marking::MarkingPolicy) -> Self {
        self.cfg.proto.marking = m;
        self
    }

    /// Set fabric disturbance (jitter / loss / delay injection).
    pub fn disturbance(mut self, d: omx_fabric::DisturbanceConfig) -> Self {
        self.cfg.fabric.disturbance = d;
        self
    }

    /// Bound each switch egress buffer to `frames` (tail-drop on overflow).
    /// The default is effectively unbounded; see
    /// [`omx_fabric::FabricConfig::switch_buffer_frames`].
    pub fn switch_buffer_frames(mut self, frames: u32) -> Self {
        self.cfg.fabric.switch_buffer_frames = frames;
        self
    }

    /// Set the fabric MTU (fragmentation follows; §IV-A notes jumbo frames
    /// exhibit the same behaviour at proportionally larger sizes).
    pub fn mtu(mut self, mtu: u32) -> Self {
        self.cfg.fabric.mtu = mtu;
        self.cfg.proto.mtu = mtu;
        self
    }

    /// Set the experiment seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.cfg.seed = seed;
        self
    }

    /// Override the whole config (escape hatch).
    pub fn config(mut self, cfg: ClusterConfig) -> Self {
        self.cfg = cfg;
        self
    }

    /// Access the config being built.
    pub fn config_mut(&mut self) -> &mut ClusterConfig {
        &mut self.cfg
    }

    /// Build the cluster.
    pub fn build(self) -> Cluster {
        Cluster::new(self.cfg)
    }
}

// ---------------------------------------------------------------------------
// Actor interface
// ---------------------------------------------------------------------------

/// A completed receive, as seen by the application.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecvCompletion {
    /// Handle from the posted receive.
    pub handle: u64,
    /// Sender endpoint.
    pub src: EndpointAddr,
    /// Message id (links the completion to its wire packets in traces).
    pub msg: MsgId,
    /// Match info of the message.
    pub match_info: u64,
    /// Message length in bytes.
    pub len: u32,
}

/// Application logic bound to one endpoint (one MPI rank, one benchmark
/// process). Callbacks run in simulated time; all interaction goes through
/// [`ActorCtx`].
///
/// `Send` because the conservative parallel engine moves each node's
/// actors (with the rest of the node's state) onto a worker thread for the
/// duration of a run; actors never run concurrently with each other's
/// observable effects, so no `Sync` is required.
pub trait Actor: Any + Send {
    /// Called once at simulation start.
    fn on_start(&mut self, ctx: &mut ActorCtx);
    /// A send posted with `handle` completed.
    fn on_send_complete(&mut self, ctx: &mut ActorCtx, handle: u64) {
        let _ = (ctx, handle);
    }
    /// A receive completed.
    fn on_recv_complete(&mut self, ctx: &mut ActorCtx, completion: RecvCompletion) {
        let _ = (ctx, completion);
    }
    /// A timer set via [`ActorCtx::set_timer`] fired.
    fn on_timer(&mut self, ctx: &mut ActorCtx, token: u64) {
        let _ = (ctx, token);
    }
    /// A NIC-offloaded collective posted via
    /// [`ActorCtx::post_offload_collective`] completed (`seq` is the
    /// engine-assigned operation sequence number, in posting order).
    fn on_offload_complete(&mut self, ctx: &mut ActorCtx, seq: u32) {
        let _ = (ctx, seq);
    }
    /// Whether this rank blocks in `mx_wait` between events (pays the
    /// scheduler wakeup latency per delivery burst) instead of polling.
    /// MPI microbenchmarks poll; background daemons and blocking apps don't.
    fn blocking_waits(&self) -> bool {
        false
    }
    /// Whether this actor can ever call [`ActorCtx::stop`] during this run.
    ///
    /// The parallel engine uses this to schedule the global stop vote: an
    /// epoch that dispatches only actors with `may_stop() == false` can run
    /// its partitions concurrently, while epochs touching a stop-capable
    /// actor are dispatched in exact serial order so the run ends at the
    /// same stop ordinal the serial engine would pick. The default is the
    /// conservative `true`; pure responders (echoers, sinks, sources that
    /// run to quiescence) should override to `false` to stay eligible for
    /// parallel dispatch. Must be constant over the actor's lifetime — the
    /// engine samples it once at partition time — and an actor returning
    /// `false` here must never call `stop()` (the engine panics if one
    /// does).
    fn may_stop(&self) -> bool {
        true
    }
    /// Upcast for report extraction after the run.
    fn as_any(&self) -> &dyn Any;
}

/// Commands an actor may issue during a callback.
enum ActorCmd {
    Send {
        dst: EndpointAddr,
        len: u32,
        match_info: u64,
        handle: u64,
    },
    Recv {
        match_value: u64,
        match_mask: u64,
        handle: u64,
    },
    Timer {
        at: Time,
        token: u64,
    },
    RawEthernet {
        dst: NodeId,
        payload_len: u32,
    },
    OffloadColl {
        desc: OffloadCollDesc,
    },
    Stop,
}

/// The interface handed to actor callbacks.
pub struct ActorCtx<'a> {
    now: Time,
    node: u16,
    ep: u8,
    /// Core this endpoint is pinned to.
    core: usize,
    /// Cumulative interrupt busy time on that core (stolen-time source for
    /// compute phases).
    core_irq_busy_ns: u64,
    cmds: &'a mut Vec<ActorCmd>,
}

impl ActorCtx<'_> {
    /// Current simulated time (start of this callback).
    pub fn now(&self) -> Time {
        self.now
    }

    /// This actor's endpoint address.
    pub fn me(&self) -> EndpointAddr {
        EndpointAddr::new(self.node, self.ep)
    }

    /// The core this rank is pinned to.
    pub fn core(&self) -> usize {
        self.core
    }

    /// Cumulative interrupt busy time on this rank's core, in nanoseconds.
    /// Compute phases diff this across their window to account for CPU time
    /// stolen by interrupt handlers (the effect behind Table IV's IS
    /// slowdowns).
    pub fn core_irq_busy_ns(&self) -> u64 {
        self.core_irq_busy_ns
    }

    /// Post a message send. CPU cost is charged on this rank's core; the
    /// completion arrives via [`Actor::on_send_complete`].
    pub fn post_send(&mut self, dst: EndpointAddr, len: u32, match_info: u64, handle: u64) {
        self.cmds.push(ActorCmd::Send {
            dst,
            len,
            match_info,
            handle,
        });
    }

    /// Post a receive with MX match semantics.
    pub fn post_recv(&mut self, match_value: u64, match_mask: u64, handle: u64) {
        self.cmds.push(ActorCmd::Recv {
            match_value,
            match_mask,
            handle,
        });
    }

    /// Request a timer callback at absolute time `at`.
    pub fn set_timer(&mut self, at: Time, token: u64) {
        self.cmds.push(ActorCmd::Timer { at, token });
    }

    /// Inject one raw (non-Open-MX) Ethernet frame toward `dst` — used by
    /// the interrupt-overhead microbenchmark and TCP background traffic.
    pub fn send_raw_ethernet(&mut self, dst: NodeId, payload_len: u32) {
        self.cmds.push(ActorCmd::RawEthernet { dst, payload_len });
    }

    /// Post a collective to the NIC offload engine (a command-queue write
    /// plus doorbell). The whole schedule then runs in NIC firmware — no
    /// per-hop host interrupts — and completion arrives via
    /// [`Actor::on_offload_complete`] after the single completion IRQ.
    pub fn post_offload_collective(&mut self, desc: OffloadCollDesc) {
        self.cmds.push(ActorCmd::OffloadColl { desc });
    }

    /// Stop the whole simulation after this callback.
    pub fn stop(&mut self) {
        self.cmds.push(ActorCmd::Stop);
    }
}

// ---------------------------------------------------------------------------
// Events
// ---------------------------------------------------------------------------

#[derive(Debug)]
pub(crate) enum Ev {
    /// A frame arrived at a node's NIC from the wire.
    FrameArrival { node: u16, pkt: WireFrame },
    /// A NIC DMA transfer completed.
    DmaComplete { node: u16, desc: DescId },
    /// The NIC coalescing timer fired.
    CoalesceTimer { node: u16, epoch: u64 },
    /// An interrupt handler starts executing on `core`.
    IrqService { node: u16, core: CoreId },
    /// The receive batch finished processing; run the driver on it.
    BatchDone {
        node: u16,
        core: CoreId,
        batch: Vec<Packet>,
    },
    /// The driver's retransmit / delayed-ack timer.
    DriverTimer { node: u16 },
    /// Deliver a completion to an actor (event-ring poll).
    AppRecv {
        node: u16,
        ep: u8,
        c: RecvCompletion,
    },
    /// Deliver a send completion to an actor.
    AppSend { node: u16, ep: u8, handle: u64 },
    /// An actor timer fired.
    AppTimer { node: u16, ep: u8, token: u64 },
    /// Kick an actor's `on_start`.
    AppStart { node: u16, ep: u8 },
    /// Intra-node shared-memory delivery.
    ShmDeliver { node: u16, pkt: Packet },
    /// The NIC offload engine's retransmission timer.
    OffloadTimer { node: u16 },
    /// Deliver a NIC-offloaded collective completion to an actor (after
    /// the completion IRQ handler and event-ring poll).
    OffloadDone { node: u16, ep: u8, seq: u32 },
}

/// What travels on the fabric: an Open-MX packet, a raw frame, or a
/// NIC-resident collective frame.
#[derive(Debug, Clone, Copy)]
pub(crate) enum WireFrame {
    Omx(Packet),
    Raw {
        payload_len: u32,
    },
    /// NIC-to-NIC collective traffic: consumed by the offload engine on
    /// arrival, never enters the RX ring / DMA / coalescing path.
    Coll(CollFrame),
}

impl WireFrame {
    pub(crate) fn wire_len(&self) -> u32 {
        match self {
            WireFrame::Omx(p) => p.wire_len(),
            WireFrame::Raw { payload_len } => ETH_HEADER_BYTES + payload_len,
            WireFrame::Coll(f) => f.wire_len(),
        }
    }

    fn meta(&self) -> PacketMeta {
        match self {
            WireFrame::Omx(p) => PacketMeta::omx(self.wire_len(), p.hdr.latency_sensitive)
                // Multiqueue steering attaches each communication channel to
                // a core (§VI): hash on the destination endpoint.
                .with_flow(u64::from(p.hdr.dst.endpoint)),
            WireFrame::Raw { .. } => PacketMeta::ip(self.wire_len()),
            WireFrame::Coll(_) => {
                unreachable!("offload frames are consumed before RX-ring classification")
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Node runtime
// ---------------------------------------------------------------------------

struct NodeRt {
    driver: NodeDriver,
    nic: Nic,
    host: Host,
    /// Frames whose DMA is in flight or that sit ready in host memory.
    in_dma: HashMap<DescId, WireFrame>,
    /// Time-weighted depth of `in_dma` — outstanding receive work.
    pending_dma: TimeWeighted,
    /// Armed driver-timer deadline (dedup of DriverTimer events).
    driver_timer: Option<Time>,
    /// Token of the pending coalescing-timer event, if any. Re-arming the
    /// NIC timer cancels the superseded event instead of leaving it to
    /// fire as an epoch-mismatch no-op — O(1) in the timer wheel, and it
    /// keeps the queue from accumulating one dead entry per re-arm.
    coalesce_timer_tok: Option<EventToken>,
    /// NIC-resident collective engine (firmware state in NIC memory).
    offload: OffloadEngine,
    /// Armed offload-RTO deadline (dedup of OffloadTimer events, same
    /// scheme as `driver_timer`).
    offload_timer: Option<Time>,
}

impl NodeRt {
    fn dma_insert(&mut self, now: Time, desc: DescId, pkt: WireFrame) {
        self.in_dma.insert(desc, pkt);
        self.pending_dma.set(now, self.in_dma.len() as f64);
    }

    fn dma_remove(&mut self, now: Time, desc: DescId) -> WireFrame {
        let frame = self
            .in_dma
            .remove(&desc)
            .expect("ready packet has a stored frame");
        self.pending_dma.set(now, self.in_dma.len() as f64);
        frame
    }
}

// ---------------------------------------------------------------------------
// The system model
// ---------------------------------------------------------------------------

/// The side-effect interface a [`Shard`] dispatch reaches the rest of the
/// world through: event scheduling, the (shared) fabric, tracing, and the
/// sanitizer.
///
/// Two implementations exist. The serial engine's [`SerialCtx`] applies
/// every effect immediately — scheduling goes to the engine's
/// [`Scheduler`], transmits hit the fabric inline. The parallel engine's
/// worker context (`par_run::ParCtx`) applies *node-local* effects to the
/// shard's own queue immediately and logs the rest (transmit intents,
/// trace and sanitizer records) for the coordinator to replay at the epoch
/// barrier in exact serial dispatch order — which is what keeps output
/// byte-identical (DESIGN §12).
pub(crate) trait SimCtx {
    /// Schedule a node-local event. Every event a dispatch schedules must
    /// target the same node the dispatch ran on — cross-node effects only
    /// travel through the fabric.
    fn schedule_at(&mut self, at: Time, ev: Ev) -> EventToken;
    /// Cancel a previously scheduled (node-local) event.
    fn cancel(&mut self, tok: EventToken);
    /// Hand an Open-MX packet to the fabric at `t` (doorbell already paid).
    fn transmit_omx_wire(&mut self, t: Time, pkt: Packet);
    /// Hand a raw Ethernet frame to the fabric at `t`.
    fn transmit_raw_wire(&mut self, t: Time, src: u16, dst: NodeId, payload_len: u32);
    /// Hand a NIC-resident collective frame to the fabric at `t` (the
    /// firmware hop cost is already folded into `t`).
    fn transmit_coll_wire(&mut self, t: Time, frame: CollFrame);
    /// Record a trace event. The payload is built lazily: when tracing is
    /// disabled the closure never runs, so tracing costs one branch.
    fn trace(&mut self, at: Time, node: u16, kind: TraceKind, data: impl FnOnce() -> TraceData);
    /// Sanitizer taps (order-sensitive; the parallel path replays them in
    /// serial dispatch order).
    fn san_send_posted(&mut self, src: u16, dst: u16, len: u32);
    fn san_send_completed(&mut self);
    fn san_delivered(&mut self, src: u16, dst: u16, msg: u64, len: u32);
}

/// The serial context: effects apply immediately, exactly as the
/// pre-refactor monolithic model did.
pub(crate) struct SerialCtx<'a> {
    sched: &'a mut Scheduler<Ev>,
    fabric: &'a mut EthernetFabric,
    tracer: &'a mut Option<Tracer>,
    sanitizer: &'a mut Sanitizer,
}

impl SimCtx for SerialCtx<'_> {
    fn schedule_at(&mut self, at: Time, ev: Ev) -> EventToken {
        self.sched.schedule_at(at, ev)
    }

    fn cancel(&mut self, tok: EventToken) {
        self.sched.cancel(tok);
    }

    fn transmit_omx_wire(&mut self, t: Time, pkt: Packet) {
        let src = pkt.hdr.src.node.0;
        let dst = pkt.hdr.dst.node.0;
        match self.fabric.transmit(
            t,
            PortId(src as usize),
            PortId(dst as usize),
            pkt.wire_len(),
        ) {
            TransmitOutcome::Arrives(at) => {
                self.sched.schedule_at(
                    at,
                    Ev::FrameArrival {
                        node: dst,
                        pkt: WireFrame::Omx(pkt),
                    },
                );
            }
            TransmitOutcome::Lost | TransmitOutcome::SwitchDropped => {
                // Wire loss or switch-egress tail drop: the retransmission
                // machinery recovers; nothing to schedule.
            }
        }
    }

    fn transmit_raw_wire(&mut self, t: Time, src: u16, dst: NodeId, payload_len: u32) {
        let frame = WireFrame::Raw { payload_len };
        match self.fabric.transmit(
            t,
            PortId(src as usize),
            PortId(dst.0 as usize),
            frame.wire_len(),
        ) {
            TransmitOutcome::Arrives(at) => {
                self.sched.schedule_at(
                    at,
                    Ev::FrameArrival {
                        node: dst.0,
                        pkt: frame,
                    },
                );
            }
            TransmitOutcome::Lost | TransmitOutcome::SwitchDropped => {}
        }
    }

    fn transmit_coll_wire(&mut self, t: Time, frame: CollFrame) {
        match self.fabric.transmit(
            t,
            PortId(frame.src_node as usize),
            PortId(frame.dst_node as usize),
            frame.wire_len(),
        ) {
            TransmitOutcome::Arrives(at) => {
                self.sched.schedule_at(
                    at,
                    Ev::FrameArrival {
                        node: frame.dst_node,
                        pkt: WireFrame::Coll(frame),
                    },
                );
            }
            TransmitOutcome::Lost | TransmitOutcome::SwitchDropped => {
                // The offload engine's NIC-side RTO retransmits.
            }
        }
    }

    fn trace(&mut self, at: Time, node: u16, kind: TraceKind, data: impl FnOnce() -> TraceData) {
        if let Some(t) = self.tracer.as_mut() {
            t.record(at, node, kind, data());
        }
    }

    fn san_send_posted(&mut self, src: u16, dst: u16, len: u32) {
        self.sanitizer.on_send_posted(src, dst, len);
    }

    fn san_send_completed(&mut self) {
        self.sanitizer.on_send_completed();
    }

    fn san_delivered(&mut self, src: u16, dst: u16, msg: u64, len: u32) {
        self.sanitizer.on_delivered(src, dst, msg, len);
    }
}

/// One partition of the cluster: a contiguous range of nodes with *all*
/// their mutable state — NIC/driver/host runtime, actors, per-endpoint CPU
/// cursors, scratch buffers. The serial engine owns exactly one shard
/// covering every node; the parallel engine splits the cluster into one
/// shard per worker and moves them onto threads for the duration of a run
/// (hence `Actor: Send`).
///
/// Every event handler is shard-local by construction: each [`Ev`] names
/// one node, handlers only touch that node's state, and every event they
/// schedule targets the same node. Cross-node interaction happens solely
/// through the [`SimCtx`] fabric methods.
pub(crate) struct Shard {
    /// First global node id of this shard (0 for the serial full-cluster
    /// shard); `nodes[i]` is global node `base + i`.
    pub(crate) base: u16,
    pub(crate) cfg: ClusterConfig,
    nodes: Vec<NodeRt>,
    actors: HashMap<(u16, u8), Box<dyn Actor>>,
    /// Per-endpoint application CPU cursor: an actor's callbacks and the
    /// work they issue are serialised on its core.
    app_busy: HashMap<(u16, u8), Time>,
    pub(crate) stop: bool,
    /// Scratch buffer for actor commands (reused across callbacks).
    cmd_buf: Vec<ActorCmd>,
    /// Scratch buffer for driver actions (reused across dispatches).
    action_buf: Vec<DriverAction>,
    /// Scratch for endpoints woken by one batch (see `batch_duration`).
    woken_scratch: Vec<(u16, u8)>,
    /// Scratch for the ready-descriptor snapshot of one IRQ service.
    ready_scratch: Vec<ReadyPacket>,
    /// Scratch for the DMA-completed frames of one IRQ service.
    frame_scratch: Vec<WireFrame>,
    /// Pool of batch vectors cycling through `Ev::BatchDone` events.
    batch_pool: Vec<Vec<Packet>>,
    /// Scratch for draining the offload engine's emit queue.
    offload_scratch: Vec<OffloadEmit>,
    /// Per-node cumulative application-payload bytes delivered — the
    /// goodput tap, indexed by `node - base`. Tracked here (not in
    /// `DriverCounters`) so the serialized counter shape stays stable.
    delivered_bytes: Vec<u64>,
}

pub(crate) struct SystemModel {
    pub(crate) shard: Shard,
    pub(crate) fabric: EthernetFabric,
    /// Optional packet-level event trace.
    pub(crate) tracer: Option<Tracer>,
    /// Optional windowed telemetry sampler (driven by the engine tick).
    pub(crate) telemetry: Option<Telemetry>,
    /// Invariant recorder (posted / delivered / completed accounting).
    pub(crate) sanitizer: Sanitizer,
}

impl SystemModel {
    /// Snapshot every node and switch-port tap into the telemetry window
    /// ending at `end`. Called from the engine tick at aligned window
    /// boundaries and from the drain path to close the partial final
    /// window; `Telemetry::begin_window` rejects non-advancing boundaries,
    /// so the drain-path call is idempotent. Pure reads of layer state —
    /// nothing here touches the event queue.
    pub(crate) fn sample_telemetry(&mut self, end: Time) {
        let Some(tel) = self.telemetry.as_mut() else {
            return;
        };
        if !tel.begin_window(end) {
            return;
        }
        self.shard.sample_nodes(tel);
        for p in 0..self.fabric.ports() {
            tel.sample_port(
                p,
                PortTap {
                    queue_len: self.fabric.switch_queue_len_at(PortId(p), end) as u64,
                    drops: self.fabric.switch_drops_at(PortId(p)),
                },
            );
        }
    }
}

impl Shard {
    /// This shard's runtime state for global node id `node`.
    #[inline]
    fn rt(&mut self, node: u16) -> &mut NodeRt {
        &mut self.nodes[(node - self.base) as usize]
    }

    /// Snapshot this shard's node taps into an already-open telemetry
    /// window (global node indices). The caller opens the window and
    /// samples the fabric ports.
    pub(crate) fn sample_nodes(&self, tel: &mut Telemetry) {
        for (i, n) in self.nodes.iter().enumerate() {
            let nc = n.nic.counters();
            let dc = n.driver.counters();
            tel.sample_node(
                self.base as usize + i,
                NodeTap {
                    interrupts: nc.interrupts.get(),
                    hold_sum_ns: nc.coalesce_hold_ns.sum(),
                    hold_count: nc.coalesce_hold_ns.count(),
                    rx_ring: n.nic.rx_ring_occupancy() as u64,
                    pending_dma: n.in_dma.len() as u64,
                    retransmits: dc.eager_retransmits.get(),
                    rerequests: dc.pull_rerequests.get(),
                    reorder_depth: n.driver.reorder_depth(),
                    delivered_bytes: self.delivered_bytes[i],
                },
            );
        }
    }

    /// Keys of every attached actor, in the global priming order (the
    /// serial `run` primes `AppStart` events in sorted key order, and the
    /// parallel runner must reproduce exactly that order).
    pub(crate) fn actor_keys_sorted(&self) -> Vec<(u16, u8)> {
        let mut keys: Vec<(u16, u8)> = self.actors.keys().copied().collect();
        keys.sort_unstable();
        keys
    }

    /// Whether any actor in this shard may call [`ActorCtx::stop`]
    /// (see [`Actor::may_stop`]). Sampled once per run, right after the
    /// split, to classify each partition for the parallel engine's global
    /// stop vote.
    pub(crate) fn may_stop(&self) -> bool {
        self.actors.values().any(|a| a.may_stop())
    }

    /// Split this shard into `parts` contiguous sub-shards, moving all node
    /// state out (this shard keeps its `base`/`cfg` but owns zero nodes
    /// until [`Shard::absorb`] reassembles it). Nodes are balanced so any
    /// two parts differ by at most one node.
    pub(crate) fn split(&mut self, parts: usize) -> Vec<Shard> {
        let n = self.nodes.len();
        assert!(self.base == 0, "only the full-cluster shard splits");
        assert!((1..=n).contains(&parts), "bad split: {parts} of {n} nodes");
        let mut nodes = std::mem::take(&mut self.nodes);
        let mut delivered = std::mem::take(&mut self.delivered_bytes);
        let mut shards: Vec<Shard> = Vec::with_capacity(parts);
        for p in (0..parts).rev() {
            let start = p * n / parts;
            shards.push(Shard {
                base: start as u16,
                cfg: self.cfg.clone(),
                nodes: nodes.split_off(start),
                actors: HashMap::new(),
                app_busy: HashMap::new(),
                stop: false,
                cmd_buf: Vec::new(),
                action_buf: Vec::new(),
                woken_scratch: Vec::new(),
                ready_scratch: Vec::new(),
                frame_scratch: Vec::new(),
                batch_pool: Vec::new(),
                offload_scratch: Vec::new(),
                delivered_bytes: delivered.split_off(start),
            });
        }
        shards.reverse();
        let bases: Vec<u16> = shards.iter().map(|s| s.base).collect();
        let owner = |node: u16| {
            bases
                .partition_point(|b| *b <= node)
                .checked_sub(1)
                .expect("node below first shard base")
        };
        for ((node, ep), a) in self.actors.drain() {
            shards[owner(node)].actors.insert((node, ep), a);
        }
        for ((node, ep), t) in self.app_busy.drain() {
            shards[owner(node)].app_busy.insert((node, ep), t);
        }
        shards
    }

    /// Reassemble a sub-shard produced by [`Shard::split`]. Must be called
    /// in ascending `base` order.
    pub(crate) fn absorb(&mut self, mut w: Shard) {
        debug_assert_eq!(
            self.base as usize + self.nodes.len(),
            w.base as usize,
            "shards must be absorbed in base order"
        );
        self.nodes.append(&mut w.nodes);
        self.delivered_bytes.append(&mut w.delivered_bytes);
        self.actors.extend(w.actors.drain());
        self.app_busy.extend(w.app_busy.drain());
        self.stop |= w.stop;
    }

    fn tx_cost_ns(&self, pkt: &Packet) -> u64 {
        let costs = &self.cfg.host.costs;
        costs.send_frag_ns + costs.tx_copy_ns(pkt.payload_len())
    }

    /// Charge receive-path processing for one batch; returns duration.
    fn batch_duration(&mut self, node: u16, core: CoreId, batch: &[WireFrame]) -> u64 {
        let costs = *self.rt(node).host.costs();
        // Waking processes blocked in `mx_wait` is handler work
        // (try_to_wake_up + rescheduling IPI, plus the C1E exit of the
        // target core when sleep states are allowed): one wake per blocking
        // endpoint this batch delivers to (§IV-B1's "several microseconds").
        let mut woken = std::mem::take(&mut self.woken_scratch);
        woken.clear();
        let mut wake_ns = 0u64;
        for frame in batch {
            if let WireFrame::Omx(pkt) = frame {
                if !delivers_app_event(pkt) {
                    continue; // intermediate fragments wake nobody
                }
                let key = (pkt.hdr.dst.node.0, pkt.hdr.dst.endpoint);
                if !woken.contains(&key)
                    && self.actors.get(&key).is_some_and(|a| a.blocking_waits())
                {
                    woken.push(key);
                    wake_ns += if self.cfg.host.sleep_enabled {
                        costs.proc_wakeup_ns
                    } else {
                        costs.proc_wakeup_nosleep_ns
                    };
                }
            }
        }
        self.woken_scratch = woken;
        let host = &mut self.rt(node).host;
        let mut dur = costs.irq_dispatch_ns + wake_ns;
        // Preempting a running application costs the context switch and the
        // application's cache/TLB pollution on top of the bare dispatch.
        if host.app_active(core) {
            dur += costs.irq_preempt_ns;
        }
        // Low-level driver structures: one line group per node.
        let lowlevel_bounced = host.cache_access(node as u64, core);
        for frame in batch {
            dur += costs.lowlevel_rx_ns;
            if lowlevel_bounced {
                dur += costs.lowlevel_bounce_ns;
            }
            if let WireFrame::Omx(pkt) = frame {
                // Open-MX handler: demux + per-connection descriptor touch.
                dur += costs.omx_handler_ns;
                dur += costs.rx_copy_ns(pkt.payload_len());
                dur += costs.event_ring_ns;
                let group = channel_group(pkt);
                if host.cache_access(group, core) {
                    dur += costs.omx_channel_bounce_ns;
                }
            }
        }
        dur
    }

    /// Transmit one Open-MX packet: the intra-node shared-memory shortcut
    /// stays shard-local; the wire path goes through the context (inline
    /// fabric call in serial mode, replayed intent in parallel mode).
    fn transmit_omx(&mut self, now: Time, pkt: Packet, ctx: &mut impl SimCtx) {
        let src = pkt.hdr.src.node.0;
        let dst = pkt.hdr.dst.node.0;
        ctx.trace(now, src, TraceKind::Transmit, || TraceData::Packet {
            pkt,
            desc: None,
        });
        if src == dst {
            // Shared-memory path: no NIC, no interrupt.
            let bytes = pkt.payload_len() as u64;
            let delay =
                self.cfg.shm_latency_ns + (bytes * 1_000).div_ceil(self.cfg.shm_bytes_per_us);
            ctx.schedule_at(
                now + TimeDelta::from_nanos(delay as i64),
                Ev::ShmDeliver { node: dst, pkt },
            );
            return;
        }
        let doorbell = self.cfg.host.costs.tx_doorbell_ns;
        let t = now + TimeDelta::from_nanos(doorbell as i64);
        ctx.transmit_omx_wire(t, pkt);
    }

    fn apply_nic_outcome(&mut self, node: u16, now: Time, out: NicOutcome, ctx: &mut impl SimCtx) {
        if let Some((desc, at)) = out.dma {
            ctx.schedule_at(at, Ev::DmaComplete { node, desc });
        }
        if let Some((at, epoch)) = out.arm_timer {
            let rt = self.rt(node);
            if let Some(tok) = rt.coalesce_timer_tok.take() {
                ctx.cancel(tok);
            }
            self.rt(node).coalesce_timer_tok =
                Some(ctx.schedule_at(at.max(now), Ev::CoalesceTimer { node, epoch }));
        }
        if out.interrupt {
            let flow = self.rt(node).nic.claimed_flow();
            let svc = self.rt(node).host.deliver_irq(now, flow);
            ctx.trace(now, node, TraceKind::Interrupt, || TraceData::Irq {
                core: svc.core,
                start_ns: svc.start.as_nanos(),
                woken: svc.was_sleeping,
            });
            ctx.schedule_at(
                svc.start,
                Ev::IrqService {
                    node,
                    core: svc.core,
                },
            );
        }
    }

    /// Run driver actions, draining `actions` so the caller's buffer can be
    /// reused; `now` is when they become effective. `irq_core` is the core
    /// running the driver (None = application context).
    fn run_driver_actions(
        &mut self,
        node: u16,
        now: Time,
        actions: &mut Vec<DriverAction>,
        irq_core: Option<CoreId>,
        ctx: &mut impl SimCtx,
    ) {
        let mut cursor = now;
        for action in actions.drain(..) {
            match action {
                DriverAction::Transmit(pkt) => {
                    let cost = self.tx_cost_ns(&pkt);
                    if let Some(core) = irq_core {
                        cursor = self.rt(node).host.occupy_irq(core, cursor, cost);
                    } else {
                        cursor += TimeDelta::from_nanos(cost as i64);
                    }
                    self.transmit_omx(cursor, pkt, ctx);
                }
                DriverAction::RecvComplete {
                    ep,
                    handle,
                    src,
                    msg,
                    match_info,
                    len,
                } => {
                    let visible =
                        cursor + TimeDelta::from_nanos(self.cfg.host.costs.app_event_ns as i64);
                    ctx.schedule_at(
                        visible,
                        Ev::AppRecv {
                            node,
                            ep,
                            c: RecvCompletion {
                                handle,
                                src,
                                msg,
                                match_info,
                                len,
                            },
                        },
                    );
                }
                DriverAction::SendComplete { ep, handle } => {
                    let visible =
                        cursor + TimeDelta::from_nanos(self.cfg.host.costs.app_event_ns as i64);
                    ctx.schedule_at(visible, Ev::AppSend { node, ep, handle });
                }
                DriverAction::ArmTimer { at } => {
                    let rt = self.rt(node);
                    let need = match rt.driver_timer {
                        Some(armed) => at < armed,
                        None => true,
                    };
                    if need {
                        rt.driver_timer = Some(at);
                        ctx.schedule_at(at.max(now), Ev::DriverTimer { node });
                    }
                }
            }
        }
    }

    /// Drain and apply the offload engine's queued emits for `node`. The
    /// engine is a passive state machine; this is the single point where
    /// its decisions touch the wire, the sanitizer, the host IRQ path and
    /// the event queue — all through `ctx`, so serial and parallel engines
    /// replay identical effect sequences.
    fn run_offload_emits(&mut self, node: u16, now: Time, ctx: &mut impl SimCtx) {
        let mut emits = std::mem::take(&mut self.offload_scratch);
        self.rt(node).offload.drain_emits(&mut emits);
        for e in emits.drain(..) {
            match e {
                OffloadEmit::Wire { at, frame, fresh } => {
                    if fresh {
                        if let CollFrameKind::Data { payload, .. } = frame.kind {
                            ctx.san_send_posted(frame.src_node, frame.dst_node, payload);
                        }
                    }
                    ctx.trace(at, node, TraceKind::OffloadFrame, || {
                        coll_trace_data(&frame)
                    });
                    if frame.dst_node == node {
                        // NIC-internal loopback (co-located ranks): never
                        // touches the fabric, cannot be lost.
                        ctx.schedule_at(
                            at,
                            Ev::FrameArrival {
                                node,
                                pkt: WireFrame::Coll(frame),
                            },
                        );
                    } else {
                        ctx.transmit_coll_wire(at, frame);
                    }
                }
                OffloadEmit::Delivered {
                    src_node,
                    msg_id,
                    len,
                } => {
                    ctx.san_delivered(src_node, node, msg_id, len);
                }
                OffloadEmit::AckCompleted => ctx.san_send_completed(),
                OffloadEmit::Complete { ep, seq, rank } => {
                    // The one host-visible interrupt of the whole operation:
                    // a dedicated MSI-X completion vector, not subject to
                    // the coalescing strategy, but accounted into the same
                    // per-NIC interrupt counter the telemetry reads.
                    let costs = self.cfg.host.costs;
                    let rt = self.rt(node);
                    rt.nic.note_offload_interrupt();
                    let svc = rt.host.deliver_irq(now, u64::from(ep));
                    ctx.trace(now, node, TraceKind::Interrupt, || TraceData::Irq {
                        core: svc.core,
                        start_ns: svc.start.as_nanos(),
                        woken: svc.was_sleeping,
                    });
                    let dur = costs.irq_dispatch_ns + costs.omx_handler_ns + costs.event_ring_ns;
                    let end = self.rt(node).host.occupy_irq(svc.core, svc.start, dur);
                    let visible = end + TimeDelta::from_nanos(costs.app_event_ns as i64);
                    ctx.trace(now, node, TraceKind::OffloadComplete, || {
                        TraceData::CollDone { ep, seq, rank }
                    });
                    ctx.schedule_at(visible, Ev::OffloadDone { node, ep, seq });
                }
                OffloadEmit::ArmTimer { at } => {
                    let rt = self.rt(node);
                    let need = match rt.offload_timer {
                        Some(armed) => at < armed,
                        None => true,
                    };
                    if need {
                        rt.offload_timer = Some(at);
                        ctx.schedule_at(at.max(now), Ev::OffloadTimer { node });
                    }
                }
            }
        }
        self.offload_scratch = emits;
    }

    /// Run one actor callback and execute the commands it issued.
    fn with_actor(
        &mut self,
        node: u16,
        ep: u8,
        now: Time,
        ctx: &mut impl SimCtx,
        f: impl FnOnce(&mut dyn Actor, &mut ActorCtx),
    ) {
        let Some(mut actor) = self.actors.remove(&(node, ep)) else {
            return;
        };
        let blocking = actor.blocking_waits();
        let core = ep as usize % self.cfg.host.cores;
        let core_irq_busy_ns = self.rt(node).host.irq_busy_total_ns(core);
        let mut cmds = std::mem::take(&mut self.cmd_buf);
        cmds.clear();
        {
            let mut ctx = ActorCtx {
                now,
                node,
                ep,
                core,
                core_irq_busy_ns,
                cmds: &mut cmds,
            };
            f(actor.as_mut(), &mut ctx);
        }
        self.actors.insert((node, ep), actor);

        // Execute commands sequentially, charging application CPU cost.
        // The cursor starts after any still-running work of this endpoint so
        // one rank cannot overlap its own CPU. A rank that went idle is
        // blocked in `mx_wait`; waking it costs scheduler latency, which is
        // paid once per delivery burst — the very effect that makes
        // per-packet interrupts expensive (§IV-B1).
        let costs = self.cfg.host.costs;
        let busy = *self.app_busy.entry((node, ep)).or_insert(Time::ZERO);
        let _ = blocking; // the wakeup cost is charged in the IRQ handler
        let mut cursor = now.max(busy);
        for cmd in cmds.drain(..) {
            match cmd {
                ActorCmd::Send {
                    dst,
                    len,
                    match_info,
                    handle,
                } => {
                    ctx.san_send_posted(node, dst.node.0, len);
                    let eager_len = len.min(crate::wire::MEDIUM_MAX);
                    let frags = crate::wire::frag_count(eager_len, self.cfg.proto.mtu) as u64;
                    let cpu = costs.send_post_ns
                        + costs.send_frag_ns * frags.min(4)
                        + costs.tx_copy_ns(eager_len);
                    cursor += TimeDelta::from_nanos(cpu as i64);
                    let mut actions = std::mem::take(&mut self.action_buf);
                    self.rt(node).driver.post_send_into(
                        cursor,
                        ep,
                        dst,
                        len,
                        match_info,
                        handle,
                        &mut actions,
                    );
                    self.run_driver_actions(node, cursor, &mut actions, None, ctx);
                    self.action_buf = actions;
                }
                ActorCmd::Recv {
                    match_value,
                    match_mask,
                    handle,
                } => {
                    cursor += TimeDelta::from_nanos(150);
                    let mut actions = std::mem::take(&mut self.action_buf);
                    self.rt(node).driver.post_recv_into(
                        cursor,
                        ep,
                        match_value,
                        match_mask,
                        handle,
                        &mut actions,
                    );
                    self.run_driver_actions(node, cursor, &mut actions, None, ctx);
                    self.action_buf = actions;
                }
                ActorCmd::Timer { at, token } => {
                    ctx.schedule_at(at.max(cursor), Ev::AppTimer { node, ep, token });
                }
                ActorCmd::RawEthernet { dst, payload_len } => {
                    cursor += TimeDelta::from_nanos(costs.send_post_ns as i64);
                    ctx.transmit_raw_wire(cursor, node, dst, payload_len);
                }
                ActorCmd::OffloadColl { desc } => {
                    // Host cost is one command-queue write plus the
                    // doorbell; the schedule itself runs in firmware.
                    let cpu = costs.send_post_ns + costs.tx_doorbell_ns;
                    cursor += TimeDelta::from_nanos(cpu as i64);
                    self.rt(node).offload.post(cursor, ep, &desc);
                    self.run_offload_emits(node, cursor, ctx);
                }
                ActorCmd::Stop => {
                    self.stop = true;
                }
            }
        }
        self.app_busy.insert((node, ep), cursor);
        self.cmd_buf = cmds;
    }
}

/// Whether this packet can complete an application-visible event (only
/// those wake a process blocked in `mx_wait`).
fn delivers_app_event(pkt: &Packet) -> bool {
    use crate::wire::PacketKind;
    match pkt.kind {
        PacketKind::Small { .. } | PacketKind::Notify { .. } => true,
        PacketKind::MediumFrag {
            frag, frag_count, ..
        } => frag + 1 == frag_count,
        PacketKind::PullReply { last_of_block, .. } => last_of_block,
        PacketKind::Rendezvous { .. }
        | PacketKind::PullRequest { .. }
        | PacketKind::Ack { .. }
        | PacketKind::TcpSegment { .. } => false,
    }
}

/// Cache line group of the per-connection Open-MX descriptors a packet
/// touches in the receive handler.
fn channel_group(pkt: &Packet) -> u64 {
    // Mix source endpoint and destination endpoint; offset to avoid the
    // per-node low-level groups (small integers).
    let s = &pkt.hdr.src;
    let d = &pkt.hdr.dst;
    0x1000_0000
        + ((s.node.0 as u64) << 32)
        + ((s.endpoint as u64) << 24)
        + ((d.node.0 as u64) << 8)
        + d.endpoint as u64
}

impl Shard {
    /// Dispatch one event against this shard's node state. Every event is
    /// node-local by construction (cross-node traffic only exists as wire
    /// transmissions through the [`SimCtx`]), which is what lets the
    /// parallel engine hand disjoint node ranges to different workers.
    pub(crate) fn dispatch(&mut self, now: Time, event: Ev, ctx: &mut impl SimCtx) {
        match event {
            Ev::FrameArrival { node, pkt } => {
                if let WireFrame::Coll(frame) = pkt {
                    // NIC-resident collective: consumed by the offload
                    // engine in firmware — no RX ring, no DMA, no
                    // coalescer, no per-hop interrupt.
                    ctx.trace(now, node, TraceKind::FrameArrival, || {
                        coll_trace_data(&frame)
                    });
                    self.rt(node).offload.on_frame(now, frame);
                    self.run_offload_emits(node, now, ctx);
                    return;
                }
                let meta = pkt.meta();
                let out = self.rt(node).nic.on_frame(now, meta);
                let desc = if out.dropped {
                    None
                } else {
                    out.dma.map(|(d, _)| d)
                };
                ctx.trace(now, node, TraceKind::FrameArrival, || match pkt {
                    WireFrame::Omx(p) => TraceData::Packet {
                        pkt: p,
                        desc: desc.map(|d| d.0),
                    },
                    WireFrame::Raw { payload_len } => TraceData::RawFrame { len: payload_len },
                    WireFrame::Coll(_) => unreachable!("handled before RX-ring classification"),
                });
                if out.dropped {
                    ctx.trace(now, node, TraceKind::Drop, || TraceData::Text("ring full"));
                } else if let Some((desc, _)) = out.dma {
                    self.rt(node).dma_insert(now, desc, pkt);
                }
                self.apply_nic_outcome(node, now, out, ctx);
            }
            Ev::DmaComplete { node, desc } => {
                let out = self.rt(node).nic.on_dma_complete(now, desc);
                ctx.trace(now, node, TraceKind::DmaComplete, || TraceData::Desc {
                    desc: desc.0,
                });
                self.apply_nic_outcome(node, now, out, ctx);
            }
            Ev::CoalesceTimer { node, epoch } => {
                self.rt(node).coalesce_timer_tok = None;
                let out = self.rt(node).nic.on_timer(now, epoch);
                if out != NicOutcome::default() {
                    ctx.trace(now, node, TraceKind::CoalesceTimer, || TraceData::Epoch {
                        epoch,
                    });
                }
                self.apply_nic_outcome(node, now, out, ctx);
            }
            Ev::IrqService { node, core } => {
                // The handler reads the ring when it runs: claim everything
                // ready right now. Ready descriptors, frames, and the packet
                // batch all land in recycled buffers — steady-state dispatch
                // allocates nothing.
                let mut ready = std::mem::take(&mut self.ready_scratch);
                self.rt(node).nic.drain_ready_into(&mut ready);
                let mut frames = std::mem::take(&mut self.frame_scratch);
                for r in &ready {
                    frames.push(self.rt(node).dma_remove(now, r.desc));
                }
                ready.clear();
                self.ready_scratch = ready;
                let dur = self.batch_duration(node, core, &frames);
                let end = self.rt(node).host.occupy_irq(core, now, dur);
                let mut batch = self.batch_pool.pop().unwrap_or_default();
                batch.extend(frames.drain(..).filter_map(|f| match f {
                    WireFrame::Omx(p) => Some(p),
                    WireFrame::Raw { .. } => None, // dropped by the stack
                    WireFrame::Coll(_) => unreachable!("offload frames never enter the RX ring"),
                }));
                self.frame_scratch = frames;
                ctx.schedule_at(end, Ev::BatchDone { node, core, batch });
            }
            Ev::BatchDone {
                node,
                core,
                mut batch,
            } => {
                ctx.trace(now, node, TraceKind::BatchDone, || TraceData::Batch {
                    core,
                    packets: batch.len() as u32,
                });
                // Handler done: re-enable interrupts first (NAPI exit), then
                // hand the packets to the driver's protocol logic.
                let out = self.rt(node).nic.enable_irq(now);
                self.apply_nic_outcome(node, now, out, ctx);
                let mut actions = std::mem::take(&mut self.action_buf);
                for pkt in batch.drain(..) {
                    self.rt(node)
                        .driver
                        .handle_packet_into(now, pkt, &mut actions);
                    self.run_driver_actions(node, now, &mut actions, Some(core), ctx);
                }
                self.action_buf = actions;
                self.batch_pool.push(batch);
            }
            Ev::DriverTimer { node } => {
                let rt = self.rt(node);
                rt.driver_timer = None;
                let due = rt.driver.next_deadline().is_some_and(|d| d <= now);
                if due {
                    let mut actions = std::mem::take(&mut self.action_buf);
                    self.rt(node).driver.on_timer_into(now, &mut actions);
                    self.run_driver_actions(node, now, &mut actions, None, ctx);
                    self.action_buf = actions;
                } else if let Some(d) = self.rt(node).driver.next_deadline() {
                    let rt = self.rt(node);
                    rt.driver_timer = Some(d);
                    ctx.schedule_at(d, Ev::DriverTimer { node });
                }
            }
            Ev::ShmDeliver { node, pkt } => {
                let mut actions = std::mem::take(&mut self.action_buf);
                self.rt(node)
                    .driver
                    .handle_packet_into(now, pkt, &mut actions);
                self.run_driver_actions(node, now, &mut actions, None, ctx);
                self.action_buf = actions;
            }
            Ev::AppStart { node, ep } => {
                self.with_actor(node, ep, now, ctx, |a, actx| a.on_start(actx));
            }
            Ev::AppRecv { node, ep, c } => {
                ctx.san_delivered(c.src.node.0, node, c.msg.0, c.len);
                self.delivered_bytes[(node - self.base) as usize] += u64::from(c.len);
                ctx.trace(now, node, TraceKind::AppDelivery, || TraceData::Recv {
                    ep,
                    src: c.src.node.0,
                    msg: c.msg.0,
                    len: c.len,
                });
                self.with_actor(node, ep, now, ctx, |a, actx| a.on_recv_complete(actx, c));
            }
            Ev::AppSend { node, ep, handle } => {
                ctx.san_send_completed();
                self.with_actor(node, ep, now, ctx, |a, actx| {
                    a.on_send_complete(actx, handle)
                });
            }
            Ev::AppTimer { node, ep, token } => {
                self.with_actor(node, ep, now, ctx, |a, actx| a.on_timer(actx, token));
            }
            Ev::OffloadTimer { node } => {
                let rt = self.rt(node);
                rt.offload_timer = None;
                let due = rt.offload.next_deadline().is_some_and(|d| d <= now);
                if due {
                    self.rt(node).offload.on_timer(now);
                    self.run_offload_emits(node, now, ctx);
                } else if let Some(d) = self.rt(node).offload.next_deadline() {
                    let rt = self.rt(node);
                    rt.offload_timer = Some(d);
                    ctx.schedule_at(d, Ev::OffloadTimer { node });
                }
            }
            Ev::OffloadDone { node, ep, seq } => {
                self.with_actor(node, ep, now, ctx, |a, actx| {
                    a.on_offload_complete(actx, seq)
                });
            }
        }
    }
}

/// Trace payload for a collective frame (data or ack).
fn coll_trace_data(frame: &CollFrame) -> TraceData {
    match frame.kind {
        CollFrameKind::Data {
            src_rank,
            dst_rank,
            seq,
            round,
            payload,
        } => TraceData::Coll {
            src_rank,
            dst_rank,
            seq,
            round,
            len: payload,
            ack: false,
        },
        CollFrameKind::Ack {
            data_src,
            data_dst,
            seq,
            round,
        } => TraceData::Coll {
            src_rank: data_dst,
            dst_rank: data_src,
            seq,
            round,
            len: 0,
            ack: true,
        },
    }
}

impl Model for SystemModel {
    type Event = Ev;

    fn handle(&mut self, now: Time, event: Ev, sched: &mut Scheduler<Ev>) {
        let SystemModel {
            shard,
            fabric,
            tracer,
            sanitizer,
            ..
        } = self;
        let mut ctx = SerialCtx {
            sched,
            fabric,
            tracer,
            sanitizer,
        };
        shard.dispatch(now, event, &mut ctx);
    }

    fn tick(&mut self, now: Time) {
        self.sample_telemetry(now);
    }
}

// ---------------------------------------------------------------------------
// Public cluster handle
// ---------------------------------------------------------------------------

/// A runnable simulated cluster.
pub struct Cluster {
    pub(crate) engine: Engine<SystemModel>,
    pub(crate) started: bool,
}

impl Cluster {
    /// Build from a full config (see also [`ClusterBuilder`]).
    pub fn new(cfg: ClusterConfig) -> Self {
        assert!(cfg.nodes >= 1, "cluster needs at least one node");
        let mut rng = SimRng::new(cfg.seed);
        let fabric = EthernetFabric::new(
            cfg.nodes,
            FabricConfig {
                // The fabric carries full frames: MTU + Ethernet + Open-MX
                // headers.
                mtu: cfg.fabric.mtu + ETH_HEADER_BYTES + OMX_HEADER_BYTES,
                ..cfg.fabric
            },
            rng.fork(1),
        );
        let nodes = (0..cfg.nodes)
            .map(|i| NodeRt {
                driver: NodeDriver::new(i as u16, cfg.endpoints_per_node, cfg.proto),
                nic: Nic::new(cfg.nic.clone()),
                host: Host::new(cfg.host),
                in_dma: HashMap::new(),
                pending_dma: TimeWeighted::default(),
                driver_timer: None,
                coalesce_timer_tok: None,
                offload: OffloadEngine::new(i as u16, cfg.offload),
                offload_timer: None,
            })
            .collect();
        let model_nodes = cfg.nodes;
        let model = SystemModel {
            shard: Shard {
                base: 0,
                cfg,
                nodes,
                actors: HashMap::new(),
                app_busy: HashMap::new(),
                stop: false,
                cmd_buf: Vec::new(),
                action_buf: Vec::new(),
                woken_scratch: Vec::new(),
                ready_scratch: Vec::new(),
                frame_scratch: Vec::new(),
                batch_pool: Vec::new(),
                offload_scratch: Vec::new(),
                delivered_bytes: vec![0; model_nodes],
            },
            fabric,
            tracer: None,
            telemetry: None,
            sanitizer: Sanitizer::default(),
        };
        Cluster {
            engine: Engine::new(model),
            started: false,
        }
    }

    /// The configuration in force.
    pub fn config(&self) -> &ClusterConfig {
        &self.engine.model().shard.cfg
    }

    /// Enable packet-level event tracing, keeping the last `capacity`
    /// events. See [`crate::trace`].
    pub fn enable_tracing(&mut self, capacity: usize) {
        self.engine.model_mut().tracer = Some(Tracer::new(capacity));
    }

    /// The recorded trace, if tracing was enabled.
    pub fn tracer(&self) -> Option<&Tracer> {
        self.engine.model().tracer.as_ref()
    }

    /// Enable windowed telemetry sampling (see [`crate::telemetry`]). The
    /// engine fires a tick at every `cfg.window_ns` boundary of simulated
    /// time; ticks cannot schedule events, so enabling telemetry never
    /// changes event order, drain time, or simulation results.
    pub fn enable_telemetry(&mut self, cfg: TelemetryConfig) {
        let window_ns = cfg.window_ns;
        let model = self.engine.model_mut();
        let nodes = model.shard.cfg.nodes;
        // One egress port per node in this fabric.
        model.telemetry = Some(Telemetry::new(cfg, nodes, nodes));
        self.engine.set_tick_period(window_ns);
    }

    /// The collected telemetry, if enabled.
    pub fn telemetry(&self) -> Option<&Telemetry> {
        self.engine.model().telemetry.as_ref()
    }

    /// Detach and return the collected telemetry (e.g. before the cluster
    /// is consumed by a harvest path), leaving telemetry disabled.
    pub fn take_telemetry(&mut self) -> Option<Telemetry> {
        self.engine.model_mut().telemetry.take()
    }

    /// Replace one node's NIC coalescing strategy with a custom
    /// [`omx_nic::Coalescer`] implementation (downstream strategies that are
    /// not expressible as a [`CoalescingStrategy`]).
    pub fn set_node_strategy(&mut self, node: u16, strategy: Box<dyn omx_nic::Coalescer>) {
        assert!(!self.started, "strategies must be set before the first run");
        self.engine.model_mut().shard.nodes[node as usize]
            .nic
            .set_strategy(strategy);
    }

    /// Attach an actor to `(node, endpoint)`. The endpoint is pinned to core
    /// `endpoint % cores` and marked application-active (it polls).
    pub fn add_actor(&mut self, node: u16, ep: u8, actor: Box<dyn Actor>) {
        assert!(!self.started, "actors must be added before the first run");
        let model = self.engine.model_mut();
        assert!(
            (node as usize) < model.shard.cfg.nodes,
            "node {node} out of range"
        );
        assert!(
            (ep as usize) < model.shard.cfg.endpoints_per_node,
            "endpoint {ep} out of range"
        );
        // Polling ranks keep their core busy (interrupts preempt them);
        // ranks that block in `mx_wait` leave it idle.
        let core = ep as usize % model.shard.cfg.host.cores;
        let polls = !actor.blocking_waits();
        model.shard.nodes[node as usize]
            .host
            .set_app_active(core, polls, Time::ZERO);
        let prev = model.shard.actors.insert((node, ep), actor);
        assert!(
            prev.is_none(),
            "endpoint ({node}, {ep}) already has an actor"
        );
    }

    /// Parallel-engine eligibility for the next run: `Some(parts)` when
    /// [`omx_sim::pool::effective_sim_jobs`] exceeds 1 and this run shape
    /// can be partitioned, `None` for the serial engine. Requesting
    /// `--sim-jobs` on a shape that still forces serial emits a one-shot
    /// stderr warning naming the reason — a silent serial fallback would
    /// make every "--sim-jobs made no difference" report a debugging
    /// session.
    fn parallel_parts(&self) -> Option<usize> {
        let jobs = omx_sim::pool::effective_sim_jobs();
        if jobs <= 1 {
            return None;
        }
        let m = self.engine.model();
        let reason = if self.started {
            Some("the cluster already ran (mid-run state cannot be partitioned)")
        } else if m.shard.cfg.nodes < 2 {
            Some("the cluster has a single node (nothing to partition)")
        } else if m.fabric.config().lookahead_ns() == 0 {
            Some("the fabric lookahead is zero (disturbance jitter swallows the minimum transit time)")
        } else {
            None
        };
        match reason {
            None => Some(jobs.min(m.shard.cfg.nodes)),
            Some(reason) => {
                use std::sync::atomic::{AtomicBool, Ordering};
                static WARNED: AtomicBool = AtomicBool::new(false);
                if !WARNED.swap(true, Ordering::Relaxed) {
                    eprintln!(
                        "warning: --sim-jobs {jobs} requested but this run \
                         uses the serial engine: {reason}"
                    );
                }
                None
            }
        }
    }

    /// Shared run epilogue: close the open telemetry window and, at
    /// quiescence, assert the sanitizer invariants.
    fn finish_run(&mut self, stop: StopCondition) -> StopCondition {
        // Ticks only fire while events flow, so the tail of the run — from
        // the last aligned boundary to the final event — is still an open
        // window. Close it at the stop point (idempotent; skipped when the
        // horizon cut the run short, since the queue is still live then).
        if matches!(
            stop,
            StopCondition::QueueEmpty | StopCondition::PredicateSatisfied
        ) {
            let now = self.engine.now();
            self.engine.model_mut().sample_telemetry(now);
        }
        // Quiescence means every queued event drained: any protocol state
        // still mid-flight is stranded forever, and any packet the NIC
        // still owes the host will never raise an interrupt. Both are
        // always bugs (unlike byte conservation, which depends on the
        // workload posting matching receives), so check them automatically
        // in debug builds — i.e. always-on-in-tests.
        if stop == StopCondition::QueueEmpty && cfg!(debug_assertions) {
            let report = self.sanitize();
            assert!(
                report.violations.is_empty(),
                "sim sanitizer: liveness violations at quiescence:\n  {}",
                report.violations.join("\n  ")
            );
        }
        stop
    }

    /// Run until quiescence, the horizon, or an actor-requested stop.
    ///
    /// Eligible for the conservative parallel engine (DESIGN §12) when
    /// [`omx_sim::pool::effective_sim_jobs`] exceeds 1: the global stop
    /// vote dispatches stop-capable epochs in exact serial order, so the
    /// run ends at the same stop ordinal — and with byte-identical metrics,
    /// telemetry, trace and sanitizer output — as the serial engine, at
    /// any worker count. A horizon cut in parallel mode discards in-flight
    /// events past the horizon (the serial path keeps them queued for a
    /// follow-up `run`); no workload in this repo re-runs a cluster after
    /// a horizon cut.
    pub fn run(&mut self, horizon: Time) -> StopCondition {
        if let Some(parts) = self.parallel_parts() {
            self.started = true;
            let stop = crate::par_run::run_parallel(self, horizon, parts, true);
            return self.finish_run(stop);
        }
        if !self.started {
            self.started = true;
            let mut keys: Vec<(u16, u8)> =
                self.engine.model().shard.actors.keys().copied().collect();
            keys.sort_unstable();
            for (node, ep) in keys {
                self.engine.prime(Time::ZERO, Ev::AppStart { node, ep });
            }
        }
        let stop = self
            .engine
            .run_until(horizon, u64::MAX, |m: &SystemModel| m.shard.stop);
        self.finish_run(stop)
    }

    /// Run until quiescence or the horizon — [`Cluster::run`] with the
    /// promise that no actor calls `stop()` (the parallel engine panics if
    /// one does). Drain workloads take this path so every epoch stays
    /// eligible for concurrent dispatch regardless of
    /// [`Actor::may_stop`] declarations.
    pub fn run_drain(&mut self, horizon: Time) -> StopCondition {
        if let Some(parts) = self.parallel_parts() {
            self.started = true;
            let stop = crate::par_run::run_parallel(self, horizon, parts, false);
            return self.finish_run(stop);
        }
        self.run(horizon)
    }

    /// Check the sim-sanitizer invariants against the current state: the
    /// run-time delivery accounting plus, per node, stranded protocol state
    /// ([`NodeDriver::pending_report`]) and NIC interrupt liveness
    /// ([`Nic::pending_work`]). Only meaningful once a run has drained to
    /// [`StopCondition::QueueEmpty`] — mid-flight state is not a bug while
    /// events remain. See [`crate::sanitizer`] for the invariant split.
    pub fn sanitize(&self) -> SanitizerReport {
        let m = self.engine.model();
        let mut report = m.sanitizer.report();
        let mut pending = Vec::new();
        for rt in &m.shard.nodes {
            rt.driver.pending_report(&mut pending);
        }
        report.violations.extend(
            pending
                .drain(..)
                .map(|e| format!("stranded message [{}]: {}", e.phase, e.detail)),
        );
        for (i, rt) in m.shard.nodes.iter().enumerate() {
            let owed = rt.nic.pending_work();
            if owed > 0 {
                report.violations.push(format!(
                    "interrupt liveness: node {i} NIC still owes the host {owed} packet(s)"
                ));
            }
            if !rt.in_dma.is_empty() {
                report.violations.push(format!(
                    "interrupt liveness: node {i} has {} frame(s) stuck in DMA",
                    rt.in_dma.len()
                ));
            }
        }
        for rt in &m.shard.nodes {
            // Offload liveness: incomplete operations, un-acked frames and
            // stranded early-arrival buffers are bugs at quiescence.
            rt.offload.pending_report(&mut report.violations);
        }
        report
    }

    /// Current simulated time.
    pub fn now(&self) -> Time {
        self.engine.now()
    }

    /// Events processed so far (diagnostics).
    pub fn events_processed(&self) -> u64 {
        self.engine.events_processed()
    }

    /// Borrow an actor back (downcast to its concrete type).
    pub fn actor<T: Actor>(&self, node: u16, ep: u8) -> Option<&T> {
        self.engine
            .model()
            .shard
            .actors
            .get(&(node, ep))
            .and_then(|a| a.as_any().downcast_ref::<T>())
    }

    /// Harvest metrics from every layer.
    ///
    /// Time-weighted gauges (pending-DMA depth, switch egress queue depth)
    /// are finalized at the harvest instant: their weight only accumulates
    /// on `set` calls, so without folding in the tail a run that drains to
    /// quiescence long after the last event would over-weight the final
    /// busy period and report a too-high time-weighted mean.
    pub fn metrics(&self) -> ClusterMetrics {
        let m = self.engine.model();
        let now = self.engine.now();
        ClusterMetrics {
            sim_time_ns: now.as_nanos(),
            frames_carried: m.fabric.frames_carried(),
            frames_dropped: m.fabric.frames_dropped(),
            switch_drops: m.fabric.switch_drops(),
            switch_occupancy_peak: m.fabric.switch_occupancy_peak(),
            switch_queue_depth: (0..m.shard.cfg.nodes)
                .map(|p| m.fabric.switch_queue_depth_at(PortId(p)).finalized(now))
                .collect(),
            nodes: m
                .shard
                .nodes
                .iter()
                .map(|n| NodeMetrics {
                    nic: n.nic.counters().clone(),
                    host: n.host.counters().clone(),
                    driver: n.driver.counters().clone(),
                    pending_dma: n.pending_dma.finalized(now),
                })
                .collect(),
        }
    }

    /// Per-node NIC collective-offload counters, indexed by node id. All
    /// zeros unless actors posted offloaded collectives. Kept separate from
    /// [`Cluster::metrics`] so the golden-pinned metrics JSON shape is
    /// untouched; the completion IRQs themselves are folded into the
    /// regular per-NIC interrupt counters.
    pub fn offload_counters(&self) -> Vec<OffloadCounters> {
        self.engine
            .model()
            .shard
            .nodes
            .iter()
            .map(|n| n.offload.counters().clone())
            .collect()
    }

    /// Total interrupts raised across all nodes (the paper's headline
    /// host-load metric).
    pub fn total_interrupts(&self) -> u64 {
        self.engine
            .model()
            .shard
            .nodes
            .iter()
            .map(|n| n.nic.counters().interrupts.get())
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wire::SMALL_MAX;

    /// Send one message A→B and record the completion time on both sides.
    struct OneShotSender {
        dst: EndpointAddr,
        len: u32,
        send_done_at: Option<Time>,
    }

    impl Actor for OneShotSender {
        fn on_start(&mut self, ctx: &mut ActorCtx) {
            ctx.post_send(self.dst, self.len, 42, 1);
        }
        fn on_send_complete(&mut self, ctx: &mut ActorCtx, _handle: u64) {
            self.send_done_at = Some(ctx.now());
        }
        fn as_any(&self) -> &dyn Any {
            self
        }
    }

    struct OneShotReceiver {
        recv_done_at: Option<Time>,
        len_seen: u32,
    }

    impl Actor for OneShotReceiver {
        fn on_start(&mut self, ctx: &mut ActorCtx) {
            ctx.post_recv(42, !0, 7);
        }
        fn on_recv_complete(&mut self, ctx: &mut ActorCtx, c: RecvCompletion) {
            self.recv_done_at = Some(ctx.now());
            self.len_seen = c.len;
            ctx.stop();
        }
        fn as_any(&self) -> &dyn Any {
            self
        }
    }

    fn one_shot(len: u32, strategy: CoalescingStrategy) -> (Time, Cluster) {
        let mut cluster = ClusterBuilder::new().nodes(2).strategy(strategy).build();
        cluster.add_actor(
            0,
            0,
            Box::new(OneShotSender {
                dst: EndpointAddr::new(1, 0),
                len,
                send_done_at: None,
            }),
        );
        cluster.add_actor(
            1,
            0,
            Box::new(OneShotReceiver {
                recv_done_at: None,
                len_seen: 0,
            }),
        );
        let stop = cluster.run(Time::from_secs(5));
        assert_eq!(
            stop,
            StopCondition::PredicateSatisfied,
            "receiver stops the sim"
        );
        let recv = cluster
            .actor::<OneShotReceiver>(1, 0)
            .expect("receiver present");
        assert_eq!(recv.len_seen, len);
        (recv.recv_done_at.expect("completed"), cluster)
    }

    #[test]
    fn small_message_delivers_across_nodes() {
        let (at, cluster) = one_shot(64, CoalescingStrategy::Disabled);
        // One-way small-message latency: a handful of microseconds.
        let us = at.as_micros_f64();
        assert!(us > 2.0 && us < 30.0, "one-way latency {us}us out of range");
        assert!(cluster.total_interrupts() >= 1);
    }

    #[test]
    fn small_message_latency_suffers_under_timeout_coalescing() {
        let (fast, _) = one_shot(64, CoalescingStrategy::Disabled);
        let (slow, _) = one_shot(64, CoalescingStrategy::Timeout { delay_us: 75 });
        let delta = slow - fast;
        // §IV-B3: latency inflates by roughly the coalescing delay.
        assert!(
            delta.as_micros_f64() > 50.0,
            "coalescing only added {delta}"
        );
    }

    #[test]
    fn openmx_strategy_restores_small_latency() {
        let (disabled, _) = one_shot(64, CoalescingStrategy::Disabled);
        let (openmx, _) = one_shot(64, CoalescingStrategy::OpenMx { delay_us: 75 });
        let ratio = openmx.as_nanos() as f64 / disabled.as_nanos() as f64;
        assert!(
            ratio < 1.2,
            "Open-MX coalescing should track disabled latency, ratio {ratio}"
        );
    }

    #[test]
    fn medium_message_delivers() {
        let (_, cluster) = one_shot(32 * 1024, CoalescingStrategy::OpenMx { delay_us: 75 });
        let m = cluster.metrics();
        // 23 fragments crossed the fabric (plus possible acks).
        assert!(m.frames_carried >= 23);
    }

    #[test]
    fn large_message_delivers_via_pull() {
        let (_, cluster) = one_shot(234 * 1024, CoalescingStrategy::OpenMx { delay_us: 75 });
        let m = cluster.metrics();
        // 162 protocol packets (§IV-C3) plus acks.
        assert!(m.frames_carried >= 162, "carried {}", m.frames_carried);
    }

    #[test]
    fn intra_node_messages_skip_the_nic() {
        let mut cluster = ClusterBuilder::new().nodes(1).endpoints_per_node(2).build();
        cluster.add_actor(
            0,
            0,
            Box::new(OneShotSender {
                dst: EndpointAddr::new(0, 1),
                len: 4096,
                send_done_at: None,
            }),
        );
        cluster.add_actor(
            0,
            1,
            Box::new(OneShotReceiver {
                recv_done_at: None,
                len_seen: 0,
            }),
        );
        let stop = cluster.run(Time::from_secs(1));
        assert_eq!(stop, StopCondition::PredicateSatisfied);
        assert_eq!(cluster.total_interrupts(), 0, "shared memory path");
        assert_eq!(cluster.metrics().frames_carried, 0);
    }

    #[test]
    fn tracing_records_the_packet_lifecycle() {
        let mut cluster = ClusterBuilder::new()
            .nodes(2)
            .strategy(CoalescingStrategy::OpenMx { delay_us: 75 })
            .build();
        cluster.enable_tracing(256);
        cluster.add_actor(
            0,
            0,
            Box::new(OneShotSender {
                dst: EndpointAddr::new(1, 0),
                len: 64,
                send_done_at: None,
            }),
        );
        cluster.add_actor(
            1,
            0,
            Box::new(OneShotReceiver {
                recv_done_at: None,
                len_seen: 0,
            }),
        );
        cluster.run(Time::from_secs(1));
        let tracer = cluster.tracer().expect("tracing enabled");
        let rendered = tracer.render();
        assert!(rendered.contains("small*"), "marked small packet traced");
        assert!(rendered.contains("DmaComplete"));
        assert!(rendered.contains("Interrupt"));
        assert!(rendered.contains("BatchDone"));
        assert!(rendered.contains("AppDelivery"));
        // Lifecycle ordering for the first packet.
        let arrival = rendered.find("FrameArrival").unwrap();
        let irq = rendered.find("Interrupt").unwrap();
        let delivery = rendered.find("AppDelivery").unwrap();
        assert!(arrival < irq && irq < delivery);
    }

    #[test]
    fn determinism_same_seed_same_result() {
        let (a, ca) = one_shot(SMALL_MAX, CoalescingStrategy::Stream { delay_us: 75 });
        let (b, cb) = one_shot(SMALL_MAX, CoalescingStrategy::Stream { delay_us: 75 });
        assert_eq!(a, b);
        assert_eq!(ca.total_interrupts(), cb.total_interrupts());
        assert_eq!(ca.events_processed(), cb.events_processed());
    }

    #[test]
    fn stream_coalescing_batches_marked_burst() {
        // Many small messages sent back-to-back: Stream should need fewer
        // receiver-side interrupts than Open-MX.
        struct BurstSender {
            dst: EndpointAddr,
            remaining: u32,
        }
        impl Actor for BurstSender {
            fn on_start(&mut self, ctx: &mut ActorCtx) {
                for i in 0..self.remaining {
                    ctx.post_send(self.dst, 64, i as u64, i as u64);
                }
            }
            fn as_any(&self) -> &dyn Any {
                self
            }
        }
        struct CountingReceiver {
            expect: u32,
            got: u32,
        }
        impl Actor for CountingReceiver {
            fn on_start(&mut self, ctx: &mut ActorCtx) {
                for i in 0..self.expect {
                    ctx.post_recv(i as u64, !0, i as u64);
                }
            }
            fn on_recv_complete(&mut self, ctx: &mut ActorCtx, _c: RecvCompletion) {
                self.got += 1;
                if self.got == self.expect {
                    ctx.stop();
                }
            }
            fn as_any(&self) -> &dyn Any {
                self
            }
        }
        let count = 32;
        let run = |strategy| {
            let mut builder = ClusterBuilder::new().nodes(2).strategy(strategy);
            // A fast sender whose posts hit the wire back-to-back — the
            // overlapping-DMA situation Algorithm 2 targets.
            builder.config_mut().host.costs.send_post_ns = 10;
            builder.config_mut().host.costs.send_frag_ns = 10;
            builder.config_mut().host.costs.tx_doorbell_ns = 10;
            let mut cluster = builder.build();
            cluster.add_actor(
                0,
                0,
                Box::new(BurstSender {
                    dst: EndpointAddr::new(1, 0),
                    remaining: count,
                }),
            );
            cluster.add_actor(
                1,
                0,
                Box::new(CountingReceiver {
                    expect: count,
                    got: 0,
                }),
            );
            let stop = cluster.run(Time::from_secs(5));
            assert_eq!(stop, StopCondition::PredicateSatisfied);
            // Receiver-side interrupts only.
            cluster.metrics().nodes[1].nic.interrupts.get()
        };
        let openmx = run(CoalescingStrategy::OpenMx { delay_us: 75 });
        let stream = run(CoalescingStrategy::Stream { delay_us: 75 });
        assert!(
            stream * 2 <= openmx,
            "stream ({stream}) should halve interrupts vs open-mx ({openmx})"
        );
    }
}
