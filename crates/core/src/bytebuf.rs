//! Minimal byte-buffer types for the wire codec.
//!
//! [`BytesMut`] is an append-only big-endian encoder and [`Bytes`] a cheap
//! read cursor over the encoded bytes. They cover exactly the surface the
//! [`crate::wire`] codec needs (the subset of the `bytes` crate API the code
//! was originally written against), so the workspace stays dependency-free.

use std::sync::Arc;

/// Growable byte buffer with big-endian put methods.
#[derive(Debug, Default, Clone)]
pub struct BytesMut {
    buf: Vec<u8>,
}

impl BytesMut {
    /// New empty buffer.
    pub fn new() -> Self {
        BytesMut { buf: Vec::new() }
    }

    /// New empty buffer with reserved capacity.
    pub fn with_capacity(capacity: usize) -> Self {
        BytesMut {
            buf: Vec::with_capacity(capacity),
        }
    }

    /// Append one byte.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Append a big-endian `u16`.
    pub fn put_u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_be_bytes());
    }

    /// Append a big-endian `u32`.
    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_be_bytes());
    }

    /// Append a big-endian `u64`.
    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_be_bytes());
    }

    /// Append raw bytes.
    pub fn put_slice(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Number of bytes written.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Freeze into an immutable, cheaply cloneable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes {
            data: Arc::from(self.buf.into_boxed_slice()),
            start: 0,
            end: None,
            cursor: 0,
        }
    }
}

/// Immutable shared byte slice with a big-endian read cursor.
#[derive(Debug, Clone)]
pub struct Bytes {
    data: Arc<[u8]>,
    start: usize,
    /// Exclusive end bound (None = full length).
    end: Option<usize>,
    /// Read offset relative to `start`.
    cursor: usize,
}

impl Bytes {
    fn end(&self) -> usize {
        self.end.unwrap_or(self.data.len())
    }

    /// Total number of bytes in this view.
    pub fn len(&self) -> usize {
        self.end() - self.start
    }

    /// Whether the view is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Bytes left to read.
    pub fn remaining(&self) -> usize {
        self.len() - self.cursor
    }

    /// A sub-view of this slice (bounds relative to the view, not to the
    /// read cursor). The clone shares the underlying allocation.
    pub fn slice(&self, range: std::ops::Range<usize>) -> Bytes {
        assert!(range.start <= range.end && range.end <= self.len());
        Bytes {
            data: Arc::clone(&self.data),
            start: self.start + range.start,
            end: Some(self.start + range.end),
            cursor: 0,
        }
    }

    fn take(&mut self, n: usize) -> &[u8] {
        let at = self.start + self.cursor;
        assert!(
            self.remaining() >= n,
            "buffer underflow: {} < {n}",
            self.remaining()
        );
        self.cursor += n;
        &self.data[at..at + n]
    }

    /// Read one byte.
    pub fn get_u8(&mut self) -> u8 {
        self.take(1)[0]
    }

    /// Read a big-endian `u16`.
    pub fn get_u16(&mut self) -> u16 {
        u16::from_be_bytes(self.take(2).try_into().unwrap())
    }

    /// Read a big-endian `u32`.
    pub fn get_u32(&mut self) -> u32 {
        u32::from_be_bytes(self.take(4).try_into().unwrap())
    }

    /// Read a big-endian `u64`.
    pub fn get_u64(&mut self) -> u64 {
        u64::from_be_bytes(self.take(8).try_into().unwrap())
    }

    /// The unread bytes as a slice.
    pub fn as_slice(&self) -> &[u8] {
        &self.data[self.start + self.cursor..self.end()]
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(buf: Vec<u8>) -> Self {
        BytesMut { buf }.freeze()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_all_widths() {
        let mut b = BytesMut::with_capacity(16);
        b.put_u8(7);
        b.put_u16(0xA1B2);
        b.put_u32(0xDEAD_BEEF);
        b.put_u64(0x0123_4567_89AB_CDEF);
        b.put_slice(&[1, 2, 3]);
        assert_eq!(b.len(), 1 + 2 + 4 + 8 + 3);
        let mut r = b.freeze();
        assert_eq!(r.remaining(), 18);
        assert_eq!(r.get_u8(), 7);
        assert_eq!(r.get_u16(), 0xA1B2);
        assert_eq!(r.get_u32(), 0xDEAD_BEEF);
        assert_eq!(r.get_u64(), 0x0123_4567_89AB_CDEF);
        assert_eq!(r.as_slice(), &[1, 2, 3]);
        assert_eq!(r.remaining(), 3);
    }

    #[test]
    fn slice_is_independent() {
        let mut b = BytesMut::new();
        b.put_slice(&[10, 20, 30, 40]);
        let full = b.freeze();
        let mut cut = full.slice(1..3);
        assert_eq!(cut.len(), 2);
        assert_eq!(cut.get_u8(), 20);
        assert_eq!(cut.get_u8(), 30);
        assert_eq!(cut.remaining(), 0);
        // Original cursor untouched.
        assert_eq!(full.remaining(), 4);
    }

    #[test]
    #[should_panic(expected = "buffer underflow")]
    fn underflow_panics() {
        let mut r = Bytes::from(vec![1u8]);
        let _ = r.get_u16();
    }
}
