//! Latency-sensitive packet marking (§III-B).
//!
//! The sender driver — where user messages are split into fragments — marks
//! the packets whose early processing shortens the critical path:
//!
//! * every **small** message packet,
//! * the **last fragment** of a medium message,
//! * **rendezvous** packets,
//! * **pull requests**,
//! * the **last frame of each pull-reply block**,
//! * **notify** packets.
//!
//! Acks and TCP traffic are never marked, which is why up to ~20 % of a
//! small-message stream remains coalescible even under the Open-MX strategy
//! (§IV-C2).
//!
//! [`MarkingPolicy`] exposes one toggle per packet class so the harness can
//! regenerate the paper's marker ablation (§IV-C3), plus the
//! `medium_mark_displacement` knob that re-creates the mis-ordering
//! experiment of Table III exactly the way the authors did: "We simulated
//! packet mis-ordering by moving the packet mark from the last fragment to
//! an earlier one."

use crate::wire::{Packet, PacketKind};

/// Which packet classes the sender driver marks latency-sensitive.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MarkingPolicy {
    /// Mark small eager messages.
    pub small: bool,
    /// Mark the last fragment of medium messages.
    pub medium_last_frag: bool,
    /// Mark rendezvous packets.
    pub rendezvous: bool,
    /// Mark pull requests.
    pub pull_request: bool,
    /// Mark the last frame of each pull-reply block.
    pub pull_reply_last: bool,
    /// Mark notify packets.
    pub notify: bool,
    /// Mis-ordering emulation: mark medium fragment `count-1-displacement`
    /// instead of the last one (0 = correct order, the default).
    pub medium_mark_displacement: u32,
}

impl Default for MarkingPolicy {
    fn default() -> Self {
        Self::all()
    }
}

impl MarkingPolicy {
    /// The paper's full policy: every latency-sensitive class marked.
    pub fn all() -> Self {
        MarkingPolicy {
            small: true,
            medium_last_frag: true,
            rendezvous: true,
            pull_request: true,
            pull_reply_last: true,
            notify: true,
            medium_mark_displacement: 0,
        }
    }

    /// Nothing marked: the NIC behaves exactly like unmodified firmware.
    pub fn none() -> Self {
        MarkingPolicy {
            small: false,
            medium_last_frag: false,
            rendezvous: false,
            pull_request: false,
            pull_reply_last: false,
            notify: false,
            medium_mark_displacement: 0,
        }
    }

    /// Ablation helper: the full policy with one class disabled.
    pub fn all_except(class: MarkClass) -> Self {
        let mut p = Self::all();
        match class {
            MarkClass::Small => p.small = false,
            MarkClass::MediumLastFrag => p.medium_last_frag = false,
            MarkClass::Rendezvous => p.rendezvous = false,
            MarkClass::PullRequest => p.pull_request = false,
            MarkClass::PullReplyLast => p.pull_reply_last = false,
            MarkClass::Notify => p.notify = false,
        }
        p
    }

    /// Decide whether one outgoing packet is marked.
    ///
    /// For medium fragments, `frag`/`frag_count` come from the packet; the
    /// displacement knob moves the mark earlier in the stream.
    pub fn should_mark(&self, kind: &PacketKind) -> bool {
        match *kind {
            PacketKind::Small { .. } => self.small,
            PacketKind::MediumFrag {
                frag, frag_count, ..
            } => {
                if !self.medium_last_frag {
                    return false;
                }
                let target = frag_count
                    .saturating_sub(1)
                    .saturating_sub(self.medium_mark_displacement);
                frag == target
            }
            PacketKind::Rendezvous { .. } => self.rendezvous,
            PacketKind::PullRequest { .. } => self.pull_request,
            PacketKind::PullReply { last_of_block, .. } => self.pull_reply_last && last_of_block,
            PacketKind::Notify { .. } => self.notify,
            PacketKind::Ack { .. } | PacketKind::TcpSegment { .. } => false,
        }
    }

    /// Apply the policy to a packet (sets the header flag).
    pub fn apply(&self, packet: &mut Packet) {
        packet.hdr.latency_sensitive = self.should_mark(&packet.kind);
    }
}

/// One markable packet class (for the ablation experiment).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MarkClass {
    /// Small eager messages.
    Small,
    /// Last fragment of a medium message.
    MediumLastFrag,
    /// Rendezvous packets.
    Rendezvous,
    /// Pull requests.
    PullRequest,
    /// Last frame of each pull-reply block.
    PullReplyLast,
    /// Notify packets.
    Notify,
}

impl MarkClass {
    /// All classes, in the order the paper discusses them.
    pub const ALL: [MarkClass; 6] = [
        MarkClass::Small,
        MarkClass::MediumLastFrag,
        MarkClass::Rendezvous,
        MarkClass::PullRequest,
        MarkClass::PullReplyLast,
        MarkClass::Notify,
    ];

    /// Stable label for tables.
    pub fn label(&self) -> &'static str {
        match self {
            MarkClass::Small => "small",
            MarkClass::MediumLastFrag => "medium-last-frag",
            MarkClass::Rendezvous => "rendezvous",
            MarkClass::PullRequest => "pull-request",
            MarkClass::PullReplyLast => "pull-reply-last",
            MarkClass::Notify => "notify",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wire::MsgId;

    fn medium(frag: u32, frag_count: u32) -> PacketKind {
        PacketKind::MediumFrag {
            msg: MsgId(1),
            match_info: 0,
            frag,
            frag_count,
            frag_len: 1468,
            total_len: 32 * 1024,
        }
    }

    #[test]
    fn full_policy_marks_the_paper_classes() {
        let p = MarkingPolicy::all();
        assert!(p.should_mark(&PacketKind::Small {
            msg: MsgId(0),
            match_info: 0,
            len: 1
        }));
        assert!(p.should_mark(&PacketKind::Rendezvous {
            msg: MsgId(0),
            match_info: 0,
            total_len: 1 << 20
        }));
        assert!(p.should_mark(&PacketKind::PullRequest {
            msg: MsgId(0),
            block: 0,
            frame_count: 32
        }));
        assert!(p.should_mark(&PacketKind::Notify { msg: MsgId(0) }));
    }

    #[test]
    fn acks_and_tcp_never_marked() {
        let p = MarkingPolicy::all();
        assert!(!p.should_mark(&PacketKind::Ack { cumulative_seq: 1 }));
        assert!(!p.should_mark(&PacketKind::TcpSegment { len: 1460 }));
    }

    #[test]
    fn medium_marks_only_last_fragment() {
        let p = MarkingPolicy::all();
        for frag in 0..22 {
            assert!(!p.should_mark(&medium(frag, 23)), "frag {frag}");
        }
        assert!(p.should_mark(&medium(22, 23)));
    }

    #[test]
    fn displacement_moves_the_mark_earlier() {
        // Table III: mis-ordering degree X marks packet N-X instead of N.
        for degree in [1u32, 3] {
            let p = MarkingPolicy {
                medium_mark_displacement: degree,
                ..MarkingPolicy::all()
            };
            assert!(
                !p.should_mark(&medium(22, 23)),
                "degree {degree}: last unmarked"
            );
            assert!(p.should_mark(&medium(22 - degree, 23)));
        }
    }

    #[test]
    fn pull_reply_marks_only_block_last() {
        let p = MarkingPolicy::all();
        let mk = |last| PacketKind::PullReply {
            msg: MsgId(0),
            block: 2,
            frame: 31,
            frame_len: 1500,
            last_of_block: last,
        };
        assert!(p.should_mark(&mk(true)));
        assert!(!p.should_mark(&mk(false)));
    }

    #[test]
    fn none_policy_marks_nothing() {
        let p = MarkingPolicy::none();
        assert!(!p.should_mark(&medium(22, 23)));
        assert!(!p.should_mark(&PacketKind::Small {
            msg: MsgId(0),
            match_info: 0,
            len: 0
        }));
    }

    #[test]
    fn ablation_disables_exactly_one_class() {
        for class in MarkClass::ALL {
            let p = MarkingPolicy::all_except(class);
            let rendezvous = PacketKind::Rendezvous {
                msg: MsgId(0),
                match_info: 0,
                total_len: 1 << 20,
            };
            if class == MarkClass::Rendezvous {
                assert!(!p.should_mark(&rendezvous));
            } else {
                assert!(p.should_mark(&rendezvous));
            }
        }
    }

    #[test]
    fn apply_sets_header_flag() {
        let p = MarkingPolicy::all();
        let mut pkt = Packet {
            hdr: crate::wire::OmxHeader {
                src: crate::wire::EndpointAddr::new(0, 0),
                dst: crate::wire::EndpointAddr::new(1, 0),
                latency_sensitive: false,
                seq: 0,
                ack: 0,
            },
            kind: PacketKind::Small {
                msg: MsgId(0),
                match_info: 0,
                len: 8,
            },
        };
        p.apply(&mut pkt);
        assert!(pkt.hdr.latency_sensitive);
    }
}
