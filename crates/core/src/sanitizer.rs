//! Sim sanitizer: end-to-end invariant checking for fault-injected runs.
//!
//! The sanitizer is a lightweight recorder embedded in the cluster
//! orchestrator. It observes every posted send, every application delivery
//! and every send completion, and at quiescence (queue-empty) combines its
//! counters with the per-node driver and NIC state to check three
//! invariants (DESIGN §7):
//!
//! 1. **Byte conservation** — every byte posted by an application is
//!    delivered exactly once (the protocol retransmits until delivery, so
//!    under loss the *wire* sees duplicates but the application must not).
//! 2. **No stranded messages** — at quiescence no driver holds protocol
//!    state stuck mid-flight; a violation names the message's key and
//!    phase (see [`crate::proto::NodeDriver::pending_report`]).
//! 3. **Interrupt liveness** — at quiescence no NIC still owes the host
//!    packets (a coalescer that held packets forever without raising an
//!    interrupt would show up here).
//!
//! Checks 2 and 3 are *liveness* checks: any entry is a bug, so the
//! cluster asserts them automatically (debug builds) whenever a run drains
//! to `StopCondition::QueueEmpty`. Check 1 is only meaningful for
//! workloads that post a matching receive for every send — a receiver that
//! stops early or never posts legitimately strands bytes — so it is
//! opt-in via [`SanitizerReport::all_violations`].

use std::collections::HashSet;

/// Run-time recorder; one per cluster.
#[derive(Debug, Default)]
pub struct Sanitizer {
    msgs_posted: u64,
    msgs_delivered: u64,
    msgs_send_completed: u64,
    bytes_posted: u64,
    bytes_delivered: u64,
    /// `(src_node, msg_id)` of every delivered message — `MsgId` is a
    /// per-node monotone counter, so the pair is globally unique and a
    /// repeat means the dup-suppression path delivered a copy twice.
    seen: HashSet<(u16, u64)>,
    /// `(src, dst, msg_id)` of each duplicate delivery. Recorded raw so the
    /// per-delivery hook never formats; rendering happens in [`report`](Sanitizer::report).
    duplicate_deliveries: Vec<(u16, u16, u64)>,
}

impl Sanitizer {
    /// An application posted a send of `len` bytes from `src` to `dst`.
    pub fn on_send_posted(&mut self, _src: u16, _dst: u16, len: u32) {
        self.msgs_posted += 1;
        self.bytes_posted += u64::from(len);
    }

    /// A send completed back to the application.
    pub fn on_send_completed(&mut self) {
        self.msgs_send_completed += 1;
    }

    /// A message was delivered to an application on `dst`.
    pub fn on_delivered(&mut self, src: u16, dst: u16, msg_id: u64, len: u32) {
        self.msgs_delivered += 1;
        self.bytes_delivered += u64::from(len);
        if !self.seen.insert((src, msg_id)) {
            self.duplicate_deliveries.push((src, dst, msg_id));
        }
    }

    /// Snapshot the counters; liveness entries are appended by the cluster.
    pub fn report(&self) -> SanitizerReport {
        SanitizerReport {
            msgs_posted: self.msgs_posted,
            msgs_delivered: self.msgs_delivered,
            msgs_send_completed: self.msgs_send_completed,
            bytes_posted: self.bytes_posted,
            bytes_delivered: self.bytes_delivered,
            violations: self
                .duplicate_deliveries
                .iter()
                .map(|&(src, dst, msg_id)| {
                    format!(
                        "duplicate delivery: msg {msg_id} from node {src} delivered twice at node {dst}"
                    )
                })
                .collect(),
        }
    }
}

/// Invariant-check result for one run; see the module docs for the split
/// between always-wrong liveness violations and opt-in conservation.
#[derive(Debug, Clone)]
pub struct SanitizerReport {
    /// Messages posted by applications.
    pub msgs_posted: u64,
    /// Messages delivered to applications.
    pub msgs_delivered: u64,
    /// Send completions reported back to applications.
    pub msgs_send_completed: u64,
    /// Bytes posted by applications.
    pub bytes_posted: u64,
    /// Bytes delivered to applications.
    pub bytes_delivered: u64,
    /// Liveness violations: duplicate deliveries, stranded protocol state,
    /// NIC pending work at quiescence. Any entry is a bug.
    pub violations: Vec<String>,
}

impl SanitizerReport {
    /// Conservation violations — exact byte/message accounting. Only valid
    /// for workloads where every posted send has a matching posted receive
    /// and the run drained to queue-empty.
    pub fn conservation_violations(&self) -> Vec<String> {
        let mut out = Vec::new();
        if self.bytes_delivered != self.bytes_posted {
            out.push(format!(
                "byte conservation: {} bytes posted but {} delivered",
                self.bytes_posted, self.bytes_delivered
            ));
        }
        if self.msgs_delivered != self.msgs_posted {
            out.push(format!(
                "message conservation: {} messages posted but {} delivered",
                self.msgs_posted, self.msgs_delivered
            ));
        }
        if self.msgs_send_completed != self.msgs_posted {
            out.push(format!(
                "send completion: {} messages posted but {} completions",
                self.msgs_posted, self.msgs_send_completed
            ));
        }
        out
    }

    /// Liveness violations plus conservation violations, for fully-matched
    /// workloads (the fault campaign and the loss-sweep e2e tests).
    pub fn all_violations(&self) -> Vec<String> {
        let mut out = self.violations.clone();
        out.extend(self.conservation_violations());
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn balanced_run_is_clean() {
        let mut s = Sanitizer::default();
        s.on_send_posted(0, 1, 4096);
        s.on_delivered(0, 1, 7, 4096);
        s.on_send_completed();
        let r = s.report();
        assert!(r.violations.is_empty());
        assert!(r.conservation_violations().is_empty());
        assert!(r.all_violations().is_empty());
    }

    #[test]
    fn duplicate_delivery_is_flagged() {
        let mut s = Sanitizer::default();
        s.on_send_posted(0, 1, 64);
        s.on_delivered(0, 1, 3, 64);
        s.on_delivered(0, 1, 3, 64);
        let r = s.report();
        assert_eq!(r.violations.len(), 1, "{:?}", r.violations);
        assert!(r.violations[0].contains("msg 3"));
        // Same msg id from a *different* node is fine.
        let mut s2 = Sanitizer::default();
        s2.on_delivered(0, 1, 3, 64);
        s2.on_delivered(2, 1, 3, 64);
        assert!(s2.report().violations.is_empty());
    }

    #[test]
    fn lost_bytes_show_in_conservation() {
        let mut s = Sanitizer::default();
        s.on_send_posted(0, 1, 100);
        s.on_send_posted(0, 1, 100);
        s.on_delivered(0, 1, 1, 100);
        s.on_send_completed();
        let r = s.report();
        assert!(r.violations.is_empty());
        let cons = r.conservation_violations();
        assert_eq!(cons.len(), 3, "{cons:?}");
        assert!(cons[0].contains("200 bytes posted but 100 delivered"));
    }
}
