//! Per-message latency attribution.
//!
//! The paper's central tension is that interrupt coalescing trades *host
//! load* against *latency*: holding packets on the NIC costs exactly the
//! hold time on the critical path of a ping-pong (§IV-A, the 75 µs plateau
//! of Figure 5). This module makes that attribution mechanical: given a
//! structured trace (see [`crate::trace`]), [`analyze`] reassembles each
//! delivered message's lifecycle and splits its end-to-end latency into
//! named phases that provably sum to the total.
//!
//! The phases, in critical-path order:
//!
//! | phase           | from → to                                          |
//! |-----------------|----------------------------------------------------|
//! | `wire`          | driver TX hand-off → frame at receiving NIC        |
//! | `dma_wait`      | frame arrival → DMA into host memory complete      |
//! | `coalesce_hold` | DMA complete → interrupt raised (the coalescing delay) |
//! | `irq_wake`      | interrupt raised → handler starts (queueing + C1E exit) |
//! | `irq_service`   | handler start → receive batch done                 |
//! | `delivery`      | batch done → application sees the completion       |
//!
//! Multi-packet messages are attributed by their *last* constituent frame
//! before the delivering interrupt — the frame on the critical path.

use crate::trace::{TraceData, TraceEvent, TraceKind};
use omx_sim::json::Json;

/// One delivered message's latency, decomposed into phases.
///
/// Invariant (tested): the six phase durations sum exactly to
/// [`total_ns`](LatencyBreakdown::total_ns). Phase boundaries are clamped
/// to be monotone, so an out-of-order anchor (e.g. an interrupt raised
/// before the matched frame's DMA completed, possible when a *different*
/// packet triggered the interrupt) collapses a phase to zero rather than
/// going negative.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LatencyBreakdown {
    /// Message id.
    pub msg: u64,
    /// Sending node (if the transmit event was in the trace window).
    pub sender: Option<u16>,
    /// Receiving node.
    pub receiver: u16,
    /// First anchor: transmit time (or frame arrival when transmit was
    /// evicted from the trace window).
    pub start_ns: u64,
    /// Application delivery time.
    pub end_ns: u64,
    /// Time on the wire (TX hand-off → frame at the receiving NIC).
    pub wire_ns: u64,
    /// Frame arrival → DMA into host memory complete.
    pub dma_wait_ns: u64,
    /// DMA complete → interrupt raised: the coalescing hold.
    pub coalesce_hold_ns: u64,
    /// Interrupt raised → handler running (per-core queueing, C1E exit).
    pub irq_wake_ns: u64,
    /// Handler running → receive batch finished.
    pub irq_service_ns: u64,
    /// Batch finished → application-visible completion.
    pub delivery_ns: u64,
}

impl LatencyBreakdown {
    /// End-to-end latency, nanoseconds.
    pub fn total_ns(&self) -> u64 {
        self.end_ns - self.start_ns
    }

    /// Sum of the six phases — always equals [`total_ns`](Self::total_ns).
    pub fn phase_sum(&self) -> u64 {
        self.wire_ns
            + self.dma_wait_ns
            + self.coalesce_hold_ns
            + self.irq_wake_ns
            + self.irq_service_ns
            + self.delivery_ns
    }

    /// The phases as `(name, duration_ns)` pairs, critical-path order.
    pub fn phases(&self) -> [(&'static str, u64); 6] {
        [
            ("wire", self.wire_ns),
            ("dma_wait", self.dma_wait_ns),
            ("coalesce_hold", self.coalesce_hold_ns),
            ("irq_wake", self.irq_wake_ns),
            ("irq_service", self.irq_service_ns),
            ("delivery", self.delivery_ns),
        ]
    }

    /// The dominant phase: largest single contributor to the total.
    pub fn dominant_phase(&self) -> (&'static str, u64) {
        let mut best = ("wire", self.wire_ns);
        for p in self.phases() {
            if p.1 > best.1 {
                best = p;
            }
        }
        best
    }

    /// JSON object for reports.
    pub fn to_json(&self) -> Json {
        let mut fields = vec![
            ("msg", Json::U64(self.msg)),
            (
                "sender",
                match self.sender {
                    Some(n) => Json::U64(u64::from(n)),
                    None => Json::Null,
                },
            ),
            ("receiver", Json::U64(u64::from(self.receiver))),
            ("start_ns", Json::U64(self.start_ns)),
            ("end_ns", Json::U64(self.end_ns)),
            ("total_ns", Json::U64(self.total_ns())),
        ];
        for (name, dur) in self.phases() {
            fields.push((name, Json::U64(dur)));
        }
        Json::obj(
            fields
                .into_iter()
                .map(|(k, v)| (k.to_string(), v))
                .collect(),
        )
    }

    /// One-line human summary.
    pub fn render(&self) -> String {
        let mut line = format!("msg {:>4}  total {:>9} ns  =", self.msg, self.total_ns());
        for (name, dur) in self.phases() {
            line.push_str(&format!("  {name} {dur}"));
        }
        line
    }
}

/// Reassemble per-message lifecycles from a trace.
///
/// For every [`TraceKind::AppDelivery`] event, walks backwards through the
/// trace for the chain of anchors that produced it:
///
/// 1. the last [`TraceKind::BatchDone`] on the delivering node at or before
///    the delivery (gives the batch-completion time and the servicing core),
/// 2. the last [`TraceKind::Interrupt`] on that node and core whose handler
///    start is at or before the batch completion (gives raise and start
///    times),
/// 3. the last [`TraceKind::FrameArrival`] on that node carrying the
///    message at or before the handler start (gives arrival time and the
///    RX descriptor),
/// 4. the first [`TraceKind::DmaComplete`] for that descriptor at or after
///    the arrival,
/// 5. the first [`TraceKind::Transmit`] carrying the message (gives the
///    origin time and sender; optional — the trace ring may have evicted
///    it).
///
/// Messages whose chain cannot be assembled (events evicted from the ring,
/// shared-memory deliveries that never touched the NIC) are skipped.
/// Boundaries are clamped to a monotone sequence, so every returned
/// breakdown satisfies `phase_sum() == total_ns()`.
pub fn analyze(events: &[TraceEvent]) -> Vec<LatencyBreakdown> {
    let mut out = Vec::new();
    for (i, delivery) in events.iter().enumerate() {
        if delivery.kind != TraceKind::AppDelivery {
            continue;
        }
        let TraceData::Recv { src, msg, .. } = delivery.data else {
            continue;
        };
        let node = delivery.node;
        let t5 = delivery.at_ns;

        // 1. Batch that handed the completion to the driver.
        let Some(batch) = events[..i]
            .iter()
            .rev()
            .find(|e| e.kind == TraceKind::BatchDone && e.node == node && e.at_ns <= t5)
        else {
            continue;
        };
        let t4 = batch.at_ns;
        let TraceData::Batch { core, .. } = batch.data else {
            continue;
        };

        // 2. Interrupt that started that batch on the same core.
        let Some((raise_ns, start_ns)) = events[..i]
            .iter()
            .rev()
            .filter_map(|e| match e.data {
                TraceData::Irq {
                    core: c, start_ns, ..
                } if e.kind == TraceKind::Interrupt
                    && e.node == node
                    && c == core
                    && start_ns <= t4 =>
                {
                    Some((e.at_ns, start_ns))
                }
                _ => None,
            })
            .next()
        else {
            continue;
        };

        // 3. Last frame of this message to arrive before the handler ran.
        let Some((t1, desc)) = events[..i]
            .iter()
            .rev()
            .filter_map(|e| match e.data {
                TraceData::Packet { pkt, desc }
                    if e.kind == TraceKind::FrameArrival
                        && e.node == node
                        && e.at_ns <= start_ns
                        && pkt.hdr.src.node.0 == src
                        && pkt.msg_id().map(|m| m.0) == Some(msg) =>
                {
                    Some((e.at_ns, desc))
                }
                _ => None,
            })
            .next()
        else {
            continue;
        };

        // 4. That frame's DMA completion.
        let t2 = desc.and_then(|d| {
            events[..i].iter().find_map(|e| match e.data {
                TraceData::Desc { desc }
                    if e.kind == TraceKind::DmaComplete
                        && e.node == node
                        && desc == d
                        && e.at_ns >= t1 =>
                {
                    Some(e.at_ns)
                }
                _ => None,
            })
        });

        // 5. The transmit, if still in the window. Message ids are
        // per-connection, so the anchor must match the direction too.
        // A retransmission emits a second Transmit for the same id, so take
        // the *last* one at or before the matched arrival — that is the
        // copy that was actually delivered; anchoring on the first (lost)
        // copy would book the whole RTO wait as wire time.
        let transmit = events[..i].iter().rev().find(|e| match e.data {
            TraceData::Packet { pkt, .. } => {
                e.kind == TraceKind::Transmit
                    && e.at_ns <= t1
                    && pkt.hdr.src.node.0 == src
                    && pkt.hdr.dst.node.0 == node
                    && pkt.msg_id().map(|m| m.0) == Some(msg)
            }
            _ => false,
        });
        let (t0, sender) = match transmit {
            Some(e) => (e.at_ns, Some(e.node)),
            None => (t1, None),
        };

        // Clamp the boundary sequence to be monotone: each boundary is the
        // running max of the anchors, so phases telescope exactly to the
        // total and never go negative.
        let mut boundary = t0.min(t5);
        let mut next = |anchor: u64| {
            boundary = boundary.max(anchor).min(t5);
            boundary
        };
        let b1 = next(t1); // wire ends
        let b2 = next(t2.unwrap_or(t1)); // dma_wait ends
        let b3 = next(raise_ns); // coalesce_hold ends
        let b4 = next(start_ns); // irq_wake ends
        let b5 = next(t4); // irq_service ends

        out.push(LatencyBreakdown {
            msg,
            sender,
            receiver: node,
            start_ns: t0.min(t5),
            end_ns: t5,
            wire_ns: b1 - t0.min(t5),
            dma_wait_ns: b2 - b1,
            coalesce_hold_ns: b3 - b2,
            irq_wake_ns: b4 - b3,
            irq_service_ns: b5 - b4,
            delivery_ns: t5 - b5,
        });
    }
    out
}

/// Aggregate view over many breakdowns: mean per-phase contribution.
#[derive(Debug, Clone, Default)]
pub struct PhaseSummary {
    /// Breakdowns aggregated.
    pub count: u64,
    /// Sum of end-to-end latencies, ns.
    pub total_ns: u64,
    /// Per-phase sums, ns, in [`LatencyBreakdown::phases`] order.
    pub phase_totals: [u64; 6],
}

impl PhaseSummary {
    /// Fold a set of breakdowns into a summary.
    pub fn of(breakdowns: &[LatencyBreakdown]) -> Self {
        let mut s = PhaseSummary::default();
        for b in breakdowns {
            s.count += 1;
            s.total_ns += b.total_ns();
            for (slot, (_, dur)) in s.phase_totals.iter_mut().zip(b.phases()) {
                *slot += dur;
            }
        }
        s
    }

    /// Phase names matching [`phase_totals`](Self::phase_totals).
    pub const PHASE_NAMES: [&'static str; 6] = [
        "wire",
        "dma_wait",
        "coalesce_hold",
        "irq_wake",
        "irq_service",
        "delivery",
    ];

    /// Mean end-to-end latency, ns (0 when empty).
    pub fn mean_total_ns(&self) -> u64 {
        self.total_ns.checked_div(self.count).unwrap_or(0)
    }

    /// Mean duration of phase `idx`, ns (0 when empty).
    pub fn mean_phase_ns(&self, idx: usize) -> u64 {
        self.phase_totals[idx].checked_div(self.count).unwrap_or(0)
    }

    /// Multi-line human table.
    pub fn render(&self) -> String {
        let mut out = format!(
            "{} message(s), mean end-to-end {} ns\n",
            self.count,
            self.mean_total_ns()
        );
        for (idx, name) in Self::PHASE_NAMES.iter().enumerate() {
            let mean = self.mean_phase_ns(idx);
            let pct = if self.total_ns > 0 {
                100.0 * self.phase_totals[idx] as f64 / self.total_ns as f64
            } else {
                0.0
            };
            out.push_str(&format!("  {name:<14} {mean:>9} ns  ({pct:5.1}%)\n"));
        }
        out
    }

    /// JSON object for reports.
    pub fn to_json(&self) -> Json {
        let mut fields = vec![
            ("count".to_string(), Json::U64(self.count)),
            ("mean_total_ns".to_string(), Json::U64(self.mean_total_ns())),
        ];
        for (idx, name) in Self::PHASE_NAMES.iter().enumerate() {
            fields.push((
                format!("mean_{name}_ns"),
                Json::U64(self.mean_phase_ns(idx)),
            ));
        }
        Json::Obj(fields)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::{TraceData, Tracer};
    use crate::wire::{EndpointAddr, MsgId, OmxHeader, Packet, PacketKind};
    use omx_sim::Time;

    fn t(ns: u64) -> Time {
        Time::from_nanos(ns)
    }

    fn pkt(msg: u64) -> Packet {
        Packet {
            hdr: OmxHeader {
                src: EndpointAddr::new(0, 0),
                dst: EndpointAddr::new(1, 0),
                latency_sensitive: false,
                seq: 1,
                ack: 0,
            },
            kind: PacketKind::Small {
                msg: MsgId(msg),
                match_info: 0,
                len: 0,
            },
        }
    }

    /// Record one clean lifecycle and check each phase lands where staged.
    #[test]
    fn attributes_each_phase() {
        let mut tr = Tracer::new(64);
        tr.record(
            t(1_000),
            0,
            TraceKind::Transmit,
            TraceData::Packet {
                pkt: pkt(7),
                desc: None,
            },
        );
        tr.record(
            t(6_000),
            1,
            TraceKind::FrameArrival,
            TraceData::Packet {
                pkt: pkt(7),
                desc: Some(3),
            },
        );
        tr.record(
            t(7_000),
            1,
            TraceKind::DmaComplete,
            TraceData::Desc { desc: 3 },
        );
        // Coalescing holds the packet 75 µs after DMA completion.
        tr.record(
            t(82_000),
            1,
            TraceKind::Interrupt,
            TraceData::Irq {
                core: 2,
                start_ns: 84_000,
                woken: true,
            },
        );
        tr.record(
            t(89_000),
            1,
            TraceKind::BatchDone,
            TraceData::Batch {
                core: 2,
                packets: 1,
            },
        );
        tr.record(
            t(90_000),
            1,
            TraceKind::AppDelivery,
            TraceData::Recv {
                ep: 0,
                src: 0,
                msg: 7,
                len: 0,
            },
        );
        let events: Vec<TraceEvent> = tr.events().copied().collect();
        let breakdowns = analyze(&events);
        assert_eq!(breakdowns.len(), 1);
        let b = breakdowns[0];
        assert_eq!(b.msg, 7);
        assert_eq!(b.sender, Some(0));
        assert_eq!(b.receiver, 1);
        assert_eq!(b.wire_ns, 5_000);
        assert_eq!(b.dma_wait_ns, 1_000);
        assert_eq!(b.coalesce_hold_ns, 75_000);
        assert_eq!(b.irq_wake_ns, 2_000);
        assert_eq!(b.irq_service_ns, 5_000);
        assert_eq!(b.delivery_ns, 1_000);
        assert_eq!(b.total_ns(), 89_000);
        assert_eq!(b.phase_sum(), b.total_ns());
        assert_eq!(b.dominant_phase().0, "coalesce_hold");
    }

    /// A lost first copy retransmitted 49 µs later: attribution must anchor
    /// on the delivered (second) Transmit, not the first — otherwise the
    /// whole RTO wait is booked as wire time.
    #[test]
    fn retransmitted_message_anchors_on_delivered_copy() {
        let mut tr = Tracer::new(64);
        // First copy, lost on the wire.
        tr.record(
            t(1_000),
            0,
            TraceKind::Transmit,
            TraceData::Packet {
                pkt: pkt(7),
                desc: None,
            },
        );
        // Retransmission after the RTO fires.
        tr.record(
            t(50_000),
            0,
            TraceKind::Transmit,
            TraceData::Packet {
                pkt: pkt(7),
                desc: None,
            },
        );
        tr.record(
            t(55_000),
            1,
            TraceKind::FrameArrival,
            TraceData::Packet {
                pkt: pkt(7),
                desc: Some(3),
            },
        );
        tr.record(
            t(56_000),
            1,
            TraceKind::DmaComplete,
            TraceData::Desc { desc: 3 },
        );
        tr.record(
            t(57_000),
            1,
            TraceKind::Interrupt,
            TraceData::Irq {
                core: 0,
                start_ns: 58_000,
                woken: false,
            },
        );
        tr.record(
            t(59_000),
            1,
            TraceKind::BatchDone,
            TraceData::Batch {
                core: 0,
                packets: 1,
            },
        );
        tr.record(
            t(60_000),
            1,
            TraceKind::AppDelivery,
            TraceData::Recv {
                ep: 0,
                src: 0,
                msg: 7,
                len: 0,
            },
        );
        let events: Vec<TraceEvent> = tr.events().copied().collect();
        let breakdowns = analyze(&events);
        assert_eq!(breakdowns.len(), 1);
        let b = breakdowns[0];
        assert_eq!(b.start_ns, 50_000, "anchored on the retransmitted copy");
        assert_eq!(b.wire_ns, 5_000, "wire time is the delivered copy's flight");
        assert_eq!(b.dma_wait_ns, 1_000);
        assert_eq!(b.total_ns(), 10_000);
        assert_eq!(b.phase_sum(), b.total_ns());
    }

    #[test]
    fn missing_transmit_falls_back_to_arrival() {
        let mut tr = Tracer::new(64);
        tr.record(
            t(6_000),
            1,
            TraceKind::FrameArrival,
            TraceData::Packet {
                pkt: pkt(9),
                desc: Some(0),
            },
        );
        tr.record(
            t(6_500),
            1,
            TraceKind::DmaComplete,
            TraceData::Desc { desc: 0 },
        );
        tr.record(
            t(7_000),
            1,
            TraceKind::Interrupt,
            TraceData::Irq {
                core: 0,
                start_ns: 7_000,
                woken: false,
            },
        );
        tr.record(
            t(8_000),
            1,
            TraceKind::BatchDone,
            TraceData::Batch {
                core: 0,
                packets: 1,
            },
        );
        tr.record(
            t(8_200),
            1,
            TraceKind::AppDelivery,
            TraceData::Recv {
                ep: 0,
                src: 0,
                msg: 9,
                len: 0,
            },
        );
        let events: Vec<TraceEvent> = tr.events().copied().collect();
        let b = analyze(&events)[0];
        assert_eq!(b.sender, None);
        assert_eq!(b.start_ns, 6_000);
        assert_eq!(b.wire_ns, 0, "no transmit anchor: wire phase collapses");
        assert_eq!(b.phase_sum(), b.total_ns());
    }

    #[test]
    fn unlinkable_delivery_is_skipped() {
        let mut tr = Tracer::new(8);
        // A delivery with no preceding chain (e.g. ring evicted everything).
        tr.record(
            t(100),
            0,
            TraceKind::AppDelivery,
            TraceData::Recv {
                ep: 0,
                src: 0,
                msg: 1,
                len: 0,
            },
        );
        let events: Vec<TraceEvent> = tr.events().copied().collect();
        assert!(analyze(&events).is_empty());
    }

    #[test]
    fn summary_aggregates_means() {
        let b = LatencyBreakdown {
            msg: 1,
            sender: Some(0),
            receiver: 1,
            start_ns: 0,
            end_ns: 100,
            wire_ns: 10,
            dma_wait_ns: 20,
            coalesce_hold_ns: 30,
            irq_wake_ns: 15,
            irq_service_ns: 20,
            delivery_ns: 5,
        };
        let s = PhaseSummary::of(&[b, b]);
        assert_eq!(s.count, 2);
        assert_eq!(s.mean_total_ns(), 100);
        assert_eq!(s.mean_phase_ns(2), 30);
        assert!(s.render().contains("coalesce_hold"));
        let j = s.to_json().render();
        assert!(j.contains("\"mean_coalesce_hold_ns\":30"));
    }
}
