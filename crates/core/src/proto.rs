//! The per-node Open-MX driver: send/receive protocol engine.
//!
//! One [`NodeDriver`] lives in each node's kernel. It owns:
//!
//! * the endpoint table with MX tag matching ([`crate::matching`]),
//! * the **send path**: size classification (small / medium / large),
//!   fragmentation, latency-sensitive marking, per-connection sequence
//!   numbers and a packet window for flow control,
//! * the **receive path**: reassembly of medium fragments, the large-message
//!   **pull engine** (rendezvous → up to 4 pipelined block requests of ≤ 32
//!   frames → notify, per §III-A), duplicate suppression, and ack
//!   generation (piggybacked on reverse traffic; standalone after
//!   `ack_every` packets or a delayed-ack timeout — this is the unmarked
//!   ~20 % of traffic §IV-C2 mentions),
//! * **reliability**: go-back-to-missing retransmission of eager packets on
//!   timeout, and pull-block re-requests when replies stall.
//!
//! The driver is a *pure state machine*: every entry point takes `now` and
//! returns a list of [`DriverAction`]s for the orchestrator to execute
//! (packets to transmit, completions to deliver, a retransmit-timer
//! deadline to arm). This keeps the whole protocol unit-testable without a
//! simulator: the tests below run two drivers against each other by hand.

use crate::marking::MarkingPolicy;
use crate::matching::{MatchEngine, PostedRecv, UnexpectedMsg};
use crate::wire::{
    frag_count, medium_frag_payload, pull_frame_count, pull_frame_payload, EndpointAddr, MsgId,
    OmxHeader, Packet, PacketKind, MEDIUM_MAX, PULL_BLOCK_FRAMES, PULL_PIPELINE, SMALL_MAX,
};
use omx_sim::stats::Counter;
use omx_sim::{Slab, SlabToken, Time, TimeDelta};
use std::collections::{BTreeMap, BTreeSet, HashMap, VecDeque};

/// Protocol tunables.
#[derive(Debug, Clone, Copy)]
pub struct ProtoConfig {
    /// Fabric MTU (fragment sizing).
    pub mtu: u32,
    /// Send a standalone ack after this many unacked eager packets.
    pub ack_every: u32,
    /// Send a standalone ack this long after the first unacked packet if no
    /// reverse traffic piggybacked one (nanoseconds).
    pub delayed_ack_ns: u64,
    /// Retransmission timeout (nanoseconds).
    pub rto_ns: u64,
    /// On a retransmission timeout, resend at most this many packets from
    /// the head of the unacked queue (go-back-N with a paced burst).
    /// Resending the whole window at once can permanently livelock a small
    /// RX ring: the burst's leading duplicates occupy every free slot of
    /// each interrupt-service cycle while the head-of-line gap is dropped,
    /// and the alignment repeats identically every timeout.
    pub retx_burst: u32,
    /// Per-connection eager window, in packets.
    pub window_packets: u32,
    /// Marking policy applied by the send path.
    pub marking: MarkingPolicy,
}

impl Default for ProtoConfig {
    fn default() -> Self {
        ProtoConfig {
            mtu: 1500,
            ack_every: 5,
            delayed_ack_ns: 100_000,
            rto_ns: 20_000_000,
            retx_burst: 8,
            window_packets: 128,
            marking: MarkingPolicy::all(),
        }
    }
}

/// What the orchestrator must do after a driver call.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DriverAction {
    /// Hand a packet to the NIC TX path.
    Transmit(Packet),
    /// A receive completed on `ep`: deliver to the application.
    RecvComplete {
        /// Local endpoint index.
        ep: u8,
        /// Handle from the posted receive.
        handle: u64,
        /// Sender.
        src: EndpointAddr,
        /// Message id (links the completion to its wire packets in traces).
        msg: MsgId,
        /// Match info of the message.
        match_info: u64,
        /// Message length.
        len: u32,
    },
    /// A send completed on `ep` (eager: handed to the NIC; large: notify
    /// received).
    SendComplete {
        /// Local endpoint index.
        ep: u8,
        /// Handle from the send post.
        handle: u64,
    },
    /// Arm (or move) the driver's retransmit/delayed-ack timer.
    ArmTimer {
        /// Absolute deadline.
        at: Time,
    },
}

/// Driver statistics.
#[derive(Debug, Default, Clone)]
pub struct DriverCounters {
    /// Eager data packets sent (first transmissions).
    pub eager_sent: Counter,
    /// Eager packets retransmitted.
    pub eager_retransmits: Counter,
    /// Pull blocks re-requested after a stall.
    pub pull_rerequests: Counter,
    /// Standalone ack packets sent.
    pub acks_sent: Counter,
    /// Duplicate packets discarded.
    pub duplicates: Counter,
    /// Receive completions delivered.
    pub recv_completions: Counter,
    /// Send completions delivered.
    pub send_completions: Counter,
}

omx_sim::impl_to_json!(DriverCounters {
    eager_sent,
    eager_retransmits,
    pull_rerequests,
    acks_sent,
    duplicates,
    recv_completions,
    send_completions,
});
omx_sim::impl_from_json!(DriverCounters {
    eager_sent,
    eager_retransmits,
    pull_rerequests,
    acks_sent,
    duplicates,
    recv_completions,
    send_completions,
});

// ---------------------------------------------------------------------------
// Internal state
// ---------------------------------------------------------------------------

/// Key of the receiver-side per-message state (sender address + id).
type MsgKey = (EndpointAddr, MsgId);

/// One piece of protocol state that has not reached its terminal state:
/// which message (or connection) it belongs to and which phase it is stuck
/// in. At quiescence (empty event queue) every entry here is a liveness
/// violation — nothing will ever resolve it — which is exactly what the sim
/// sanitizer reports. Messages merely waiting for the *application* (an
/// unposted receive) are not listed; they are legitimate steady states.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PendingEntry {
    /// Protocol phase the entry is stuck in (`window-queued`,
    /// `awaiting-ack`, `awaiting-notify`, `medium-reassembly`, `pull`).
    pub phase: &'static str,
    /// Rendered message key / connection and progress detail.
    pub detail: String,
}

/// Convert a `u64` nanosecond config knob into a signed [`TimeDelta`],
/// panicking with a clear message on overflow instead of silently wrapping
/// negative (which would make every unacked packet retransmit on each timer
/// tick). Same policy as `omx_sim`'s checked `schedule_in`.
fn checked_delta(ns: u64, what: &str) -> TimeDelta {
    let signed = i64::try_from(ns).unwrap_or_else(|_| {
        panic!(
            "ProtoConfig::{what} = {ns} ns overflows the signed nanosecond \
             delta (max {} ns)",
            i64::MAX
        )
    });
    TimeDelta::from_nanos(signed)
}

#[derive(Debug)]
struct Endpoint {
    matcher: MatchEngine,
}

/// Per-connection state. A connection is (local endpoint, remote endpoint),
/// tracked symmetrically for both directions.
#[derive(Debug, Default)]
struct Conn {
    // -- send direction --
    /// Next eager sequence number to assign (starts at 1).
    next_seq: u64,
    /// Highest cumulative ack received from the peer.
    acked: u64,
    /// Sent, unacked eager packets (for retransmission), oldest first.
    unacked: VecDeque<(u64, Packet, Time)>,
    /// Messages waiting for window credits.
    queued: VecDeque<QueuedSend>,
    // -- receive direction --
    /// Highest sequence received contiguously.
    cum_recv: u64,
    /// Sequences received above the cumulative point (reorder buffer).
    recv_above: BTreeSet<u64>,
    /// Eager packets received since the last ack we sent.
    unacked_rx: u32,
    /// Deadline of the delayed-ack timer (None = not pending).
    ack_deadline: Option<Time>,
}

#[derive(Debug)]
struct QueuedSend {
    ep: u8,
    dst: EndpointAddr,
    len: u32,
    match_info: u64,
    handle: u64,
}

/// Sender-side state of one in-flight message.
#[derive(Debug)]
enum SendState {
    /// Large message: waiting for pull requests / notify.
    Large {
        ep: u8,
        handle: u64,
        dst: EndpointAddr,
        len: u32,
    },
}

/// Receiver-side medium reassembly.
#[derive(Debug)]
struct MediumRx {
    src: EndpointAddr,
    ep: u8,
    match_info: u64,
    total_len: u32,
    frag_count: u32,
    received: BTreeSet<u32>,
    /// Set once matched against a posted receive.
    handle: Option<u64>,
    done: bool,
}

/// Receiver-side pull engine state for one large message.
#[derive(Debug)]
struct PullRx {
    src: EndpointAddr,
    ep: u8,
    handle: u64,
    match_info: u64,
    total_len: u32,
    total_frames: u32,
    total_blocks: u32,
    /// Frames received per block.
    block_frames: Vec<u32>,
    /// Next block index to request.
    next_block: u32,
    /// Blocks fully received.
    blocks_done: u32,
    /// Last time any reply arrived (stall detection).
    last_progress: Time,
    done: bool,
}

impl PullRx {
    fn frames_in_block(&self, block: u32) -> u32 {
        let full = self.total_frames / PULL_BLOCK_FRAMES;
        if block < full {
            PULL_BLOCK_FRAMES
        } else {
            self.total_frames - full * PULL_BLOCK_FRAMES
        }
    }
}

/// Reusable per-call buffers for the timer and ack paths. Hoisting them
/// out of `on_timer_into` / `process_ack` / the pull request builders keeps
/// steady-state protocol dispatch allocation-free: each buffer is taken
/// (`mem::take`), filled, drained, and put back, so the capacity survives
/// across calls. None of the paths that fill a buffer re-enter another
/// user of the *same* buffer (asserted by the take/restore discipline —
/// a reentrant take would see an empty, capacity-less Vec, never aliasing).
#[derive(Debug, Default)]
struct Scratch {
    /// Conns with an expired delayed-ack deadline.
    due: Vec<(u8, EndpointAddr, SlabToken)>,
    /// Head-burst retransmissions collected from all conns.
    resends: Vec<Packet>,
    /// Pulls whose replies stalled past the RTO.
    stalled: Vec<(MsgKey, SlabToken)>,
    /// Packet build buffer (pull requests / replies / re-requests).
    pkts: Vec<Packet>,
    /// Window-released queued sends inside `process_ack`.
    released: Vec<QueuedSend>,
}

/// The per-node driver.
///
/// # Protocol state layout
///
/// All four state families (`conns`, `sends`, `mediums`, `pulls`) live in
/// generation-stamped [`Slab`]s; the maps hold only key→[`SlabToken`]
/// indexes and are touched once per message birth/death (or once per
/// packet to resolve the index), never repeatedly inside a packet's
/// handling. Ordered (`BTreeMap`) indexes are kept wherever the driver
/// *iterates* (timer scans over conns and pulls, the pending report):
/// iteration order feeds the emitted action order, and a randomized-seed
/// `HashMap` would make runs differ across processes. A stale token —
/// state removed while a handle is still live — panics in the slab rather
/// than silently reading a reused slot.
pub struct NodeDriver {
    local: u16,
    cfg: ProtoConfig,
    endpoints: Vec<Endpoint>,
    conns: Slab<Conn>,
    conn_index: BTreeMap<(u8, EndpointAddr), SlabToken>,
    sends: Slab<SendState>,
    send_index: HashMap<MsgId, SlabToken>,
    mediums: Slab<MediumRx>,
    medium_index: HashMap<MsgKey, SlabToken>,
    pulls: Slab<PullRx>,
    pull_index: BTreeMap<MsgKey, SlabToken>,
    /// Small messages that arrived before their receive was posted are fully
    /// described by the unexpected-match entry; mediums/larges need the maps
    /// above. Completed message keys (dup suppression after completion).
    finished: std::collections::HashSet<MsgKey>,
    next_msg: u64,
    counters: DriverCounters,
    scratch: Scratch,
}

impl NodeDriver {
    /// Create the driver of node `local` with `endpoints` attach points.
    pub fn new(local: u16, endpoints: usize, cfg: ProtoConfig) -> Self {
        NodeDriver {
            local,
            cfg,
            endpoints: (0..endpoints)
                .map(|_| Endpoint {
                    matcher: MatchEngine::new(),
                })
                .collect(),
            conns: Slab::new(),
            conn_index: BTreeMap::new(),
            sends: Slab::new(),
            send_index: HashMap::new(),
            mediums: Slab::new(),
            medium_index: HashMap::new(),
            pulls: Slab::new(),
            pull_index: BTreeMap::new(),
            finished: std::collections::HashSet::new(),
            next_msg: 0,
            counters: DriverCounters::default(),
            scratch: Scratch::default(),
        }
    }

    /// This node's id.
    pub fn node(&self) -> u16 {
        self.local
    }

    /// Statistics.
    pub fn counters(&self) -> &DriverCounters {
        &self.counters
    }

    /// Packets currently parked in reorder buffers, summed over all
    /// connections: sequence numbers received above the cumulative-ack
    /// point, waiting for the gap below them to fill. The telemetry
    /// sampler reads this as the per-node misordering-pressure gauge.
    pub fn reorder_depth(&self) -> u64 {
        self.conns.iter().map(|c| c.recv_above.len() as u64).sum()
    }

    /// Config in force.
    pub fn config(&self) -> &ProtoConfig {
        &self.cfg
    }

    fn addr(&self, ep: u8) -> EndpointAddr {
        EndpointAddr::new(self.local, ep)
    }

    /// Resolve (creating on first contact) the connection's slab handle.
    /// This is the *only* per-packet index lookup on the receive path;
    /// every subsequent access inside the packet's handling is an O(1)
    /// generation-checked slab dereference.
    fn conn_token(&mut self, ep: u8, remote: EndpointAddr) -> SlabToken {
        let conns = &mut self.conns;
        *self
            .conn_index
            .entry((ep, remote))
            .or_insert_with(|| conns.insert(Conn::default()))
    }

    // -- application entry points ---------------------------------------------

    /// Post a receive on endpoint `ep`.
    pub fn post_recv(
        &mut self,
        now: Time,
        ep: u8,
        match_value: u64,
        match_mask: u64,
        handle: u64,
    ) -> Vec<DriverAction> {
        let mut actions = Vec::new();
        self.post_recv_into(now, ep, match_value, match_mask, handle, &mut actions);
        actions
    }

    /// [`NodeDriver::post_recv`], appending actions to a caller-owned buffer
    /// instead of allocating a fresh `Vec` per call.
    pub fn post_recv_into(
        &mut self,
        now: Time,
        ep: u8,
        match_value: u64,
        match_mask: u64,
        handle: u64,
        actions: &mut Vec<DriverAction>,
    ) {
        let posted = PostedRecv {
            handle,
            match_value,
            match_mask,
        };
        if let Some(unexpected) = self.endpoints[ep as usize].matcher.post_recv(posted) {
            self.claim_unexpected(now, ep, handle, unexpected, actions);
            // Claiming a large message starts a pull whose requests can all
            // be lost; the stall re-request needs a live timer.
            self.arm_timer_action(actions);
        }
    }

    /// Post a send of `len` bytes from endpoint `ep` to `dst`.
    pub fn post_send(
        &mut self,
        now: Time,
        ep: u8,
        dst: EndpointAddr,
        len: u32,
        match_info: u64,
        handle: u64,
    ) -> Vec<DriverAction> {
        let mut actions = Vec::new();
        self.post_send_into(now, ep, dst, len, match_info, handle, &mut actions);
        actions
    }

    /// [`NodeDriver::post_send`], appending actions to a caller-owned buffer
    /// instead of allocating a fresh `Vec` per call.
    #[allow(clippy::too_many_arguments)]
    pub fn post_send_into(
        &mut self,
        now: Time,
        ep: u8,
        dst: EndpointAddr,
        len: u32,
        match_info: u64,
        handle: u64,
        actions: &mut Vec<DriverAction>,
    ) {
        self.start_send(
            now,
            QueuedSend {
                ep,
                dst,
                len,
                match_info,
                handle,
            },
            actions,
        );
        // The packets just emitted are unacked: without a live retransmit
        // timer a loss with no subsequent reverse traffic (e.g. the last
        // message of a run) would strand the message forever.
        self.arm_timer_action(actions);
    }

    /// A packet addressed to this node was delivered by the receive handler.
    pub fn handle_packet(&mut self, now: Time, pkt: Packet) -> Vec<DriverAction> {
        let mut actions = Vec::new();
        self.handle_packet_into(now, pkt, &mut actions);
        actions
    }

    /// [`NodeDriver::handle_packet`], appending actions to a caller-owned
    /// buffer. The hot receive path calls this once per packet per batch;
    /// reusing one buffer across the whole batch keeps steady-state dispatch
    /// allocation-free.
    pub fn handle_packet_into(&mut self, now: Time, pkt: Packet, actions: &mut Vec<DriverAction>) {
        debug_assert_eq!(pkt.hdr.dst.node.0, self.local, "misrouted packet");
        let local_ep = pkt.hdr.dst.endpoint;
        let remote = pkt.hdr.src;
        // One index lookup per packet; every helper below dereferences the
        // connection through this O(1) handle.
        let ct = self.conn_token(local_ep, remote);

        // Piggybacked ack always processes.
        self.process_ack(now, ct, pkt.hdr.ack, actions);

        // Eager sequencing and duplicate suppression.
        if pkt.hdr.seq != 0 && !self.accept_eager_seq(ct, pkt.hdr.seq) {
            self.counters.duplicates.incr();
            // Duplicates still refresh ack state so the peer stops resending.
            self.bump_rx_ack(now, local_ep, remote, ct, actions);
            return;
        }

        match pkt.kind {
            PacketKind::Small {
                msg,
                match_info,
                len,
            } => {
                self.rx_small(now, local_ep, remote, msg, match_info, len, actions);
                self.bump_rx_ack(now, local_ep, remote, ct, actions);
            }
            PacketKind::MediumFrag {
                msg,
                match_info,
                frag,
                frag_count,
                total_len,
                ..
            } => {
                self.rx_medium(
                    now, local_ep, remote, msg, match_info, frag, frag_count, total_len, actions,
                );
                self.bump_rx_ack(now, local_ep, remote, ct, actions);
            }
            PacketKind::Rendezvous {
                msg,
                match_info,
                total_len,
            } => {
                self.rx_rendezvous(now, local_ep, remote, msg, match_info, total_len, actions);
                self.bump_rx_ack(now, local_ep, remote, ct, actions);
            }
            PacketKind::PullRequest {
                msg,
                block,
                frame_count,
            } => {
                self.rx_pull_request(now, local_ep, remote, ct, msg, block, frame_count, actions);
            }
            PacketKind::PullReply {
                msg,
                block,
                frame,
                last_of_block,
                ..
            } => {
                self.rx_pull_reply(
                    now,
                    local_ep,
                    remote,
                    ct,
                    msg,
                    block,
                    frame,
                    last_of_block,
                    actions,
                );
            }
            PacketKind::Notify { msg } => {
                self.rx_notify(now, local_ep, remote, msg, actions);
                self.bump_rx_ack(now, local_ep, remote, ct, actions);
            }
            PacketKind::Ack { cumulative_seq } => {
                self.process_ack(now, ct, cumulative_seq, actions);
            }
            PacketKind::TcpSegment { .. } => {
                // Not Open-MX; nothing to do at this layer.
            }
        }
        self.arm_timer_action(actions);
    }

    /// The retransmit / delayed-ack timer fired.
    pub fn on_timer(&mut self, now: Time) -> Vec<DriverAction> {
        let mut actions = Vec::new();
        self.on_timer_into(now, &mut actions);
        actions
    }

    /// [`NodeDriver::on_timer`], appending actions to a caller-owned buffer
    /// instead of allocating a fresh `Vec` per call.
    pub fn on_timer_into(&mut self, now: Time, actions: &mut Vec<DriverAction>) {
        // Delayed acks. Iterate the ordered index — the scan order feeds
        // the emitted action order, which the goldens pin.
        let mut due = std::mem::take(&mut self.scratch.due);
        due.clear();
        due.extend(self.conn_index.iter().filter_map(|(&(ep, remote), &tok)| {
            self.conns
                .get(tok)
                .ack_deadline
                .is_some_and(|d| d <= now)
                .then_some((ep, remote, tok))
        }));
        for &(ep, remote, tok) in &due {
            self.send_standalone_ack(now, ep, remote, tok, actions);
        }
        due.clear();
        self.scratch.due = due;

        // Eager retransmissions: go-back-N, triggered by the queue head and
        // limited to a short head burst. Cumulative acks for the resent head
        // then clock out the next burst, so recovery is paced at roughly one
        // burst per round trip instead of one full window per RTO.
        let rto = checked_delta(self.cfg.rto_ns, "rto_ns");
        let burst = self.cfg.retx_burst.max(1) as usize;
        let mut resends = std::mem::take(&mut self.scratch.resends);
        resends.clear();
        for &tok in self.conn_index.values() {
            let c = self.conns.get_mut(tok);
            let head_overdue = c
                .unacked
                .front()
                .is_some_and(|(_, _, sent_at)| now.saturating_since(*sent_at) >= rto);
            if !head_overdue {
                continue;
            }
            for (_, pkt, sent_at) in c.unacked.iter_mut().take(burst) {
                *sent_at = now;
                resends.push(*pkt);
            }
        }
        for &pkt in &resends {
            self.counters.eager_retransmits.incr();
            actions.push(DriverAction::Transmit(pkt));
        }
        resends.clear();
        self.scratch.resends = resends;

        // Stalled pulls: re-request incomplete in-flight blocks, in key
        // order (ordered index) for deterministic action order.
        let mut stalled = std::mem::take(&mut self.scratch.stalled);
        stalled.clear();
        stalled.extend(self.pull_index.iter().filter_map(|(&key, &tok)| {
            let p = self.pulls.get(tok);
            (!p.done && now.saturating_since(p.last_progress) >= rto).then_some((key, tok))
        }));
        for &(key, tok) in &stalled {
            let mut reqs = std::mem::take(&mut self.scratch.pkts);
            reqs.clear();
            let src_ep = {
                let p = self.pulls.get_mut(tok);
                p.last_progress = now;
                for block in 0..p.next_block {
                    let expect = p.frames_in_block(block);
                    if p.block_frames[block as usize] < expect {
                        reqs.push(Packet {
                            hdr: OmxHeader {
                                src: EndpointAddr::new(0, 0), // filled below
                                dst: key.0,
                                latency_sensitive: false,
                                seq: 0,
                                ack: 0,
                            },
                            kind: PacketKind::PullRequest {
                                msg: key.1,
                                block,
                                frame_count: expect,
                            },
                        });
                    }
                }
                p.ep
            };
            let ct = self.conn_token(src_ep, key.0);
            let src = self.addr(src_ep);
            for mut pkt in reqs.drain(..) {
                self.counters.pull_rerequests.incr();
                pkt.hdr.src = src;
                self.finalize_and_push(now, src_ep, ct, pkt, actions);
            }
            self.scratch.pkts = reqs;
        }
        stalled.clear();
        self.scratch.stalled = stalled;

        self.arm_timer_action(actions);
    }

    /// Earliest pending deadline (retransmit or delayed ack), if any.
    pub fn next_deadline(&self) -> Option<Time> {
        let rto = checked_delta(self.cfg.rto_ns, "rto_ns");
        let mut next: Option<Time> = None;
        let mut consider = |t: Time| {
            next = Some(match next {
                Some(n) if n <= t => n,
                _ => t,
            });
        };
        // A min-fold is order-independent, so the slabs are scanned
        // directly (slot order) without touching the ordered indexes.
        for c in self.conns.iter() {
            if let Some(d) = c.ack_deadline {
                consider(d);
            }
            // Retransmission is triggered by the queue head alone, so the
            // head carries the only retransmit deadline. Entries behind a
            // refreshed head can hold *older* send times; deriving a
            // deadline from them would fire the timer before the head is
            // overdue, resend nothing, and re-arm at the same stale instant
            // forever.
            if let Some((_, _, sent_at)) = c.unacked.front() {
                consider(*sent_at + rto);
            }
        }
        for p in self.pulls.iter() {
            if !p.done {
                consider(p.last_progress + rto);
            }
        }
        next
    }

    // -- send path -------------------------------------------------------------

    fn start_send(&mut self, now: Time, send: QueuedSend, actions: &mut Vec<DriverAction>) {
        // Window check (eager classes only; large messages are self-paced by
        // the pull protocol, but their rendezvous/notify ride the window too
        // — treat them as a single-packet eager cost).
        let pkts_needed = if send.len <= SMALL_MAX {
            1
        } else if send.len <= MEDIUM_MAX {
            frag_count(send.len, self.cfg.mtu)
        } else {
            1 // the rendezvous
        };
        let ct = self.conn_token(send.ep, send.dst);
        {
            let window = self.cfg.window_packets;
            let conn = self.conns.get_mut(ct);
            let inflight = conn.unacked.len() as u32;
            if !conn.queued.is_empty() || inflight + pkts_needed > window {
                conn.queued.push_back(send);
                return;
            }
        }
        self.emit_send(now, send, ct, actions);
    }

    fn emit_send(
        &mut self,
        now: Time,
        send: QueuedSend,
        ct: SlabToken,
        actions: &mut Vec<DriverAction>,
    ) {
        let msg = MsgId(self.next_msg);
        self.next_msg += 1;
        let src = self.addr(send.ep);

        if send.len <= SMALL_MAX {
            let pkt = Packet {
                hdr: OmxHeader {
                    src,
                    dst: send.dst,
                    latency_sensitive: false,
                    seq: 0,
                    ack: 0,
                },
                kind: PacketKind::Small {
                    msg,
                    match_info: send.match_info,
                    len: send.len,
                },
            };
            self.counters.eager_sent.incr();
            self.finalize_eager_and_push(now, send.ep, ct, pkt, actions);
            self.counters.send_completions.incr();
            actions.push(DriverAction::SendComplete {
                ep: send.ep,
                handle: send.handle,
            });
        } else if send.len <= MEDIUM_MAX {
            let count = frag_count(send.len, self.cfg.mtu);
            let per = medium_frag_payload(self.cfg.mtu);
            for frag in 0..count {
                let frag_len = if frag + 1 == count {
                    send.len - per * (count - 1)
                } else {
                    per
                };
                let pkt = Packet {
                    hdr: OmxHeader {
                        src,
                        dst: send.dst,
                        latency_sensitive: false,
                        seq: 0,
                        ack: 0,
                    },
                    kind: PacketKind::MediumFrag {
                        msg,
                        match_info: send.match_info,
                        frag,
                        frag_count: count,
                        frag_len,
                        total_len: send.len,
                    },
                };
                self.counters.eager_sent.incr();
                self.finalize_eager_and_push(now, send.ep, ct, pkt, actions);
            }
            self.counters.send_completions.incr();
            actions.push(DriverAction::SendComplete {
                ep: send.ep,
                handle: send.handle,
            });
        } else {
            // Large: rendezvous now; completion on notify (message birth —
            // the only time the send index is written).
            let tok = self.sends.insert(SendState::Large {
                ep: send.ep,
                handle: send.handle,
                dst: send.dst,
                len: send.len,
            });
            self.send_index.insert(msg, tok);
            let pkt = Packet {
                hdr: OmxHeader {
                    src,
                    dst: send.dst,
                    latency_sensitive: false,
                    seq: 0,
                    ack: 0,
                },
                kind: PacketKind::Rendezvous {
                    msg,
                    match_info: send.match_info,
                    total_len: send.len,
                },
            };
            self.counters.eager_sent.incr();
            self.finalize_eager_and_push(now, send.ep, ct, pkt, actions);
        }
    }

    /// Assign a sequence number, apply marking + piggyback ack, record for
    /// retransmission, and emit.
    fn finalize_eager_and_push(
        &mut self,
        now: Time,
        ep: u8,
        ct: SlabToken,
        mut pkt: Packet,
        actions: &mut Vec<DriverAction>,
    ) {
        // Marking must be applied before the packet is stored for
        // retransmission so a resent packet keeps its marker.
        self.cfg.marking.apply(&mut pkt);
        let conn = self.conns.get_mut(ct);
        conn.next_seq += 1;
        pkt.hdr.seq = conn.next_seq;
        conn.unacked.push_back((pkt.hdr.seq, pkt, now));
        self.finalize_and_push(now, ep, ct, pkt, actions);
    }

    /// Apply marking + piggyback ack and emit (no sequencing — used for
    /// pull traffic, which has its own recovery). `ct` must be the handle
    /// of the (`ep`, `pkt.hdr.dst`) connection.
    fn finalize_and_push(
        &mut self,
        now: Time,
        ep: u8,
        ct: SlabToken,
        mut pkt: Packet,
        actions: &mut Vec<DriverAction>,
    ) {
        self.cfg.marking.apply(&mut pkt);
        let conn = self.conns.get_mut(ct);
        debug_assert_eq!(self.conn_index.get(&(ep, pkt.hdr.dst)), Some(&ct));
        // Piggyback the reverse-direction cumulative ack.
        pkt.hdr.ack = conn.cum_recv;
        conn.unacked_rx = 0;
        conn.ack_deadline = None;
        let _ = (now, ep);
        actions.push(DriverAction::Transmit(pkt));
    }

    // -- ack handling ------------------------------------------------------------

    fn process_ack(&mut self, now: Time, ct: SlabToken, ack: u64, actions: &mut Vec<DriverAction>) {
        let window = self.cfg.window_packets;
        let mtu = self.cfg.mtu;
        let mut released = std::mem::take(&mut self.scratch.released);
        released.clear();
        {
            let conn = self.conns.get_mut(ct);
            if ack > conn.acked {
                conn.acked = ack;
                while conn.unacked.front().is_some_and(|(seq, _, _)| *seq <= ack) {
                    conn.unacked.pop_front();
                }
                // Release queued sends that now fit the window.
                loop {
                    let inflight = conn.unacked.len() as u32
                        + released
                            .iter()
                            .map(|s| {
                                if s.len <= SMALL_MAX {
                                    1
                                } else if s.len <= MEDIUM_MAX {
                                    frag_count(s.len, mtu)
                                } else {
                                    1
                                }
                            })
                            .sum::<u32>();
                    let Some(front) = conn.queued.front() else {
                        break;
                    };
                    let need = if front.len <= SMALL_MAX {
                        1
                    } else if front.len <= MEDIUM_MAX {
                        frag_count(front.len, mtu)
                    } else {
                        1
                    };
                    if inflight + need > window {
                        break;
                    }
                    released.push(conn.queued.pop_front().expect("front exists"));
                }
            }
        }
        // Released sends were queued on this very connection, so `ct` is
        // the right handle for their sequencing.
        for send in released.drain(..) {
            self.emit_send(now, send, ct, actions);
        }
        self.scratch.released = released;
    }

    fn accept_eager_seq(&mut self, ct: SlabToken, seq: u64) -> bool {
        let conn = self.conns.get_mut(ct);
        if seq <= conn.cum_recv || conn.recv_above.contains(&seq) {
            return false;
        }
        conn.recv_above.insert(seq);
        while conn.recv_above.remove(&(conn.cum_recv + 1)) {
            conn.cum_recv += 1;
        }
        true
    }

    fn bump_rx_ack(
        &mut self,
        now: Time,
        ep: u8,
        remote: EndpointAddr,
        ct: SlabToken,
        actions: &mut Vec<DriverAction>,
    ) {
        let should_ack_now = {
            let delayed = checked_delta(self.cfg.delayed_ack_ns, "delayed_ack_ns");
            let ack_every = self.cfg.ack_every;
            let conn = self.conns.get_mut(ct);
            conn.unacked_rx += 1;
            if conn.unacked_rx >= ack_every {
                true
            } else {
                if conn.ack_deadline.is_none() {
                    conn.ack_deadline = Some(now + delayed);
                }
                false
            }
        };
        if should_ack_now {
            self.send_standalone_ack(now, ep, remote, ct, actions);
        }
    }

    fn send_standalone_ack(
        &mut self,
        _now: Time,
        ep: u8,
        remote: EndpointAddr,
        ct: SlabToken,
        actions: &mut Vec<DriverAction>,
    ) {
        let cum = {
            let conn = self.conns.get_mut(ct);
            conn.unacked_rx = 0;
            conn.ack_deadline = None;
            conn.cum_recv
        };
        let pkt = Packet {
            hdr: OmxHeader {
                src: self.addr(ep),
                dst: remote,
                latency_sensitive: false,
                seq: 0,
                ack: cum,
            },
            kind: PacketKind::Ack {
                cumulative_seq: cum,
            },
        };
        self.counters.acks_sent.incr();
        actions.push(DriverAction::Transmit(pkt));
    }

    // -- receive path ------------------------------------------------------------

    #[allow(clippy::too_many_arguments)]
    fn rx_small(
        &mut self,
        now: Time,
        ep: u8,
        src: EndpointAddr,
        msg: MsgId,
        match_info: u64,
        len: u32,
        actions: &mut Vec<DriverAction>,
    ) {
        let key = (src, msg);
        if self.finished.contains(&key) {
            self.counters.duplicates.incr();
            return;
        }
        let incoming = UnexpectedMsg {
            src,
            msg,
            match_info,
            len,
        };
        if let Some(recv) = self.endpoints[ep as usize].matcher.incoming(incoming) {
            self.finished.insert(key);
            self.counters.recv_completions.incr();
            actions.push(DriverAction::RecvComplete {
                ep,
                handle: recv.handle,
                src,
                msg,
                match_info,
                len,
            });
        }
        let _ = now;
    }

    #[allow(clippy::too_many_arguments)]
    fn rx_medium(
        &mut self,
        now: Time,
        ep: u8,
        src: EndpointAddr,
        msg: MsgId,
        match_info: u64,
        frag: u32,
        frag_count: u32,
        total_len: u32,
        actions: &mut Vec<DriverAction>,
    ) {
        let key = (src, msg);
        if self.finished.contains(&key) {
            self.counters.duplicates.incr();
            return;
        }
        // One index probe per fragment (message birth inserts the token);
        // the match and the completion check below go through the handle.
        let mediums = &mut self.mediums;
        let tok = *self.medium_index.entry(key).or_insert_with(|| {
            mediums.insert(MediumRx {
                src,
                ep,
                match_info,
                total_len,
                frag_count,
                received: BTreeSet::new(),
                handle: None,
                done: false,
            })
        });
        let entry = self.mediums.get_mut(tok);
        let fresh_msg = entry.received.is_empty();
        entry.received.insert(frag);

        if fresh_msg {
            // First fragment performs the match.
            let incoming = UnexpectedMsg {
                src,
                msg,
                match_info,
                len: total_len,
            };
            if let Some(recv) = self.endpoints[ep as usize].matcher.incoming(incoming) {
                self.mediums.get_mut(tok).handle = Some(recv.handle);
            }
        }
        self.try_complete_medium(now, key, tok, actions);
    }

    fn try_complete_medium(
        &mut self,
        _now: Time,
        key: MsgKey,
        tok: SlabToken,
        actions: &mut Vec<DriverAction>,
    ) {
        let m = self.mediums.get(tok);
        if m.done || m.handle.is_none() || (m.received.len() as u32) < m.frag_count {
            return;
        }
        // Message death: drop the index entry and free the slot (the
        // generation bump makes any stale handle to it panic).
        self.medium_index.remove(&key);
        let m = self.mediums.remove(tok);
        self.finished.insert(key);
        self.counters.recv_completions.incr();
        actions.push(DriverAction::RecvComplete {
            ep: m.ep,
            handle: m.handle.expect("matched"),
            src: m.src,
            msg: key.1,
            match_info: m.match_info,
            len: m.total_len,
        });
    }

    #[allow(clippy::too_many_arguments)]
    fn rx_rendezvous(
        &mut self,
        now: Time,
        ep: u8,
        src: EndpointAddr,
        msg: MsgId,
        match_info: u64,
        total_len: u32,
        actions: &mut Vec<DriverAction>,
    ) {
        let key = (src, msg);
        if self.finished.contains(&key) || self.pull_index.contains_key(&key) {
            self.counters.duplicates.incr();
            return;
        }
        let incoming = UnexpectedMsg {
            src,
            msg,
            match_info,
            len: total_len,
        };
        if let Some(recv) = self.endpoints[ep as usize].matcher.incoming(incoming) {
            self.begin_pull(
                now,
                ep,
                src,
                msg,
                match_info,
                total_len,
                recv.handle,
                actions,
            );
        }
        // Unmatched rendezvous sits in the unexpected queue; the pull starts
        // when a matching receive is posted (claim_unexpected).
    }

    #[allow(clippy::too_many_arguments)]
    fn begin_pull(
        &mut self,
        now: Time,
        ep: u8,
        src: EndpointAddr,
        msg: MsgId,
        match_info: u64,
        total_len: u32,
        handle: u64,
        actions: &mut Vec<DriverAction>,
    ) {
        let total_frames = pull_frame_count(total_len, self.cfg.mtu);
        let total_blocks = total_frames.div_ceil(PULL_BLOCK_FRAMES);
        let mut pull = PullRx {
            src,
            ep,
            handle,
            match_info,
            total_len,
            total_frames,
            total_blocks,
            block_frames: vec![0; total_blocks as usize],
            next_block: 0,
            blocks_done: 0,
            last_progress: now,
            done: false,
        };
        let first_wave = total_blocks.min(PULL_PIPELINE);
        let mut requests = std::mem::take(&mut self.scratch.pkts);
        requests.clear();
        for block in 0..first_wave {
            requests.push(Packet {
                hdr: OmxHeader {
                    src: self.addr(ep),
                    dst: src,
                    latency_sensitive: false,
                    seq: 0,
                    ack: 0,
                },
                kind: PacketKind::PullRequest {
                    msg,
                    block,
                    frame_count: pull.frames_in_block(block),
                },
            });
        }
        pull.next_block = first_wave;
        // Message birth: the pull index is written here and read again only
        // by the timer's stall scan and the per-reply resolution.
        let tok = self.pulls.insert(pull);
        self.pull_index.insert((src, msg), tok);
        let ct = self.conn_token(ep, src);
        for pkt in requests.drain(..) {
            self.finalize_and_push(now, ep, ct, pkt, actions);
        }
        self.scratch.pkts = requests;
    }

    #[allow(clippy::too_many_arguments)]
    fn rx_pull_request(
        &mut self,
        now: Time,
        ep: u8,
        src: EndpointAddr,
        ct: SlabToken,
        msg: MsgId,
        block: u32,
        frame_count: u32,
        actions: &mut Vec<DriverAction>,
    ) {
        // We are the *sender* of the large message; answer with data frames.
        let Some(&stok) = self.send_index.get(&msg) else {
            // Unknown (already completed): stale re-request; ignore.
            self.counters.duplicates.incr();
            return;
        };
        let SendState::Large { len, dst, .. } = self.sends.get(stok);
        debug_assert_eq!(*dst, src, "pull request from unexpected peer");
        let total_len = *len;
        let per = pull_frame_payload(self.cfg.mtu);
        let total_frames = pull_frame_count(total_len, self.cfg.mtu);
        let base_frame = block * PULL_BLOCK_FRAMES;
        let mut replies = std::mem::take(&mut self.scratch.pkts);
        replies.clear();
        for frame in 0..frame_count {
            let global = base_frame + frame;
            debug_assert!(global < total_frames);
            let frame_len = if global + 1 == total_frames {
                total_len - per * (total_frames - 1)
            } else {
                per
            };
            replies.push(Packet {
                hdr: OmxHeader {
                    src: self.addr(ep),
                    dst: src,
                    latency_sensitive: false,
                    seq: 0,
                    ack: 0,
                },
                kind: PacketKind::PullReply {
                    msg,
                    block,
                    frame,
                    frame_len,
                    last_of_block: frame + 1 == frame_count,
                },
            });
        }
        for pkt in replies.drain(..) {
            self.finalize_and_push(now, ep, ct, pkt, actions);
        }
        self.scratch.pkts = replies;
    }

    #[allow(clippy::too_many_arguments)]
    fn rx_pull_reply(
        &mut self,
        now: Time,
        ep: u8,
        src: EndpointAddr,
        ct: SlabToken,
        msg: MsgId,
        block: u32,
        _frame: u32,
        _last_of_block: bool,
        actions: &mut Vec<DriverAction>,
    ) {
        let key = (src, msg);
        let Some(&ptok) = self.pull_index.get(&key) else {
            self.counters.duplicates.incr();
            return;
        };
        let pull = self.pulls.get_mut(ptok);
        if pull.done {
            return;
        }
        pull.last_progress = now;
        let expect = pull.frames_in_block(block);
        let got = &mut pull.block_frames[block as usize];
        if *got >= expect {
            // Duplicate frame within a re-requested block; ignore.
            return;
        }
        *got += 1;
        let block_complete = *got == expect;
        if block_complete {
            pull.blocks_done += 1;
        }
        let all_done = pull.blocks_done == pull.total_blocks;
        let next_block = if block_complete && pull.next_block < pull.total_blocks {
            let b = pull.next_block;
            pull.next_block += 1;
            Some((b, pull.frames_in_block(b)))
        } else {
            None
        };
        if let Some((b, fc)) = next_block {
            let pkt = Packet {
                hdr: OmxHeader {
                    src: self.addr(ep),
                    dst: src,
                    latency_sensitive: false,
                    seq: 0,
                    ack: 0,
                },
                kind: PacketKind::PullRequest {
                    msg,
                    block: b,
                    frame_count: fc,
                },
            };
            self.finalize_and_push(now, ep, ct, pkt, actions);
        }
        if all_done {
            // Message death: free slot + index entry together.
            self.pull_index.remove(&key);
            let pull = self.pulls.remove(ptok);
            self.finished.insert(key);
            // Notify the sender, then complete the receive.
            let notify = Packet {
                hdr: OmxHeader {
                    src: self.addr(ep),
                    dst: src,
                    latency_sensitive: false,
                    seq: 0,
                    ack: 0,
                },
                kind: PacketKind::Notify { msg },
            };
            self.counters.eager_sent.incr();
            self.finalize_eager_and_push(now, ep, ct, notify, actions);
            self.counters.recv_completions.incr();
            actions.push(DriverAction::RecvComplete {
                ep: pull.ep,
                handle: pull.handle,
                src: pull.src,
                msg,
                match_info: pull.match_info,
                len: pull.total_len,
            });
        }
    }

    fn rx_notify(
        &mut self,
        _now: Time,
        _ep: u8,
        _src: EndpointAddr,
        msg: MsgId,
        actions: &mut Vec<DriverAction>,
    ) {
        // Message death for the sender-side large state.
        if let Some(tok) = self.send_index.remove(&msg) {
            let SendState::Large { ep, handle, .. } = self.sends.remove(tok);
            self.counters.send_completions.incr();
            actions.push(DriverAction::SendComplete { ep, handle });
        } else {
            self.counters.duplicates.incr();
        }
    }

    fn claim_unexpected(
        &mut self,
        now: Time,
        ep: u8,
        handle: u64,
        unexpected: UnexpectedMsg,
        actions: &mut Vec<DriverAction>,
    ) {
        let key = (unexpected.src, unexpected.msg);
        if unexpected.len <= SMALL_MAX {
            self.finished.insert(key);
            self.counters.recv_completions.incr();
            actions.push(DriverAction::RecvComplete {
                ep,
                handle,
                src: unexpected.src,
                msg: unexpected.msg,
                match_info: unexpected.match_info,
                len: unexpected.len,
            });
        } else if unexpected.len <= MEDIUM_MAX {
            if let Some(&tok) = self.medium_index.get(&key) {
                self.mediums.get_mut(tok).handle = Some(handle);
                self.try_complete_medium(now, key, tok, actions);
            }
        } else {
            self.begin_pull(
                now,
                ep,
                unexpected.src,
                unexpected.msg,
                unexpected.match_info,
                unexpected.len,
                handle,
                actions,
            );
        }
    }

    /// Enumerate protocol state that has not reached its terminal phase —
    /// the sim sanitizer's no-stranded-message watchdog. Every entry names
    /// the stuck message's key and phase. Messages waiting only on the
    /// application (a complete medium or an unexpected small/rendezvous
    /// with no posted receive) are *not* listed: the protocol has done its
    /// part and the driver holds them indefinitely by design.
    pub fn pending_report(&self, out: &mut Vec<PendingEntry>) {
        for (&(ep, remote), &tok) in &self.conn_index {
            let conn = self.conns.get(tok);
            for send in &conn.queued {
                out.push(PendingEntry {
                    phase: "window-queued",
                    detail: format!(
                        "node {} ep {ep} -> {:?}: handle {} len {} waiting for window credits",
                        self.local, remote, send.handle, send.len
                    ),
                });
            }
            if let Some((seq, _, sent_at)) = conn.unacked.front() {
                out.push(PendingEntry {
                    phase: "awaiting-ack",
                    detail: format!(
                        "node {} ep {ep} -> {:?}: {} unacked eager packet(s), oldest seq {} sent at {}",
                        self.local,
                        remote,
                        conn.unacked.len(),
                        seq,
                        sent_at
                    ),
                });
            }
        }
        let mut larges: Vec<(u64, String)> = self
            .send_index
            .iter()
            .map(|(msg, &tok)| {
                let SendState::Large { ep, dst, len, .. } = self.sends.get(tok);
                (
                    msg.0,
                    format!(
                        "node {} msg {} ep {ep} -> {dst:?}: large send of {len} B awaiting notify",
                        self.local, msg.0
                    ),
                )
            })
            .collect();
        larges.sort_unstable();
        out.extend(larges.into_iter().map(|(_, detail)| PendingEntry {
            phase: "awaiting-notify",
            detail,
        }));
        let mut mediums: Vec<(u64, String)> = self
            .medium_index
            .iter()
            .filter_map(|(&(src, msg), &tok)| {
                let m = self.mediums.get(tok);
                ((m.received.len() as u32) < m.frag_count).then(|| {
                    (
                        msg.0,
                        format!(
                            "node {} msg {} from {src:?}: medium reassembly stuck at {}/{} fragments",
                            self.local,
                            msg.0,
                            m.received.len(),
                            m.frag_count
                        ),
                    )
                })
            })
            .collect();
        mediums.sort_unstable();
        out.extend(mediums.into_iter().map(|(_, detail)| PendingEntry {
            phase: "medium-reassembly",
            detail,
        }));
        for (&(src, msg), &tok) in &self.pull_index {
            let p = self.pulls.get(tok);
            if p.done {
                continue;
            }
            out.push(PendingEntry {
                phase: "pull",
                detail: format!(
                    "node {} msg {} from {src:?}: pull stuck at {}/{} blocks ({} frames expected)",
                    self.local, msg.0, p.blocks_done, p.total_blocks, p.total_frames
                ),
            });
        }
    }

    fn arm_timer_action(&self, actions: &mut Vec<DriverAction>) {
        if let Some(at) = self.next_deadline() {
            actions.push(DriverAction::ArmTimer { at });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Drive two drivers against each other, instantly delivering packets.
    /// Returns all non-transmit actions seen on each side.
    fn pump(
        a: &mut NodeDriver,
        b: &mut NodeDriver,
        mut pending: Vec<(u16, Packet)>, // (destination node, packet)
        now: Time,
    ) -> (Vec<DriverAction>, Vec<DriverAction>) {
        let mut out_a = Vec::new();
        let mut out_b = Vec::new();
        let mut guard = 0;
        while let Some((dst, pkt)) = pending.pop() {
            guard += 1;
            assert!(guard < 100_000, "protocol livelock");
            let target = if dst == a.node() { &mut *a } else { &mut *b };
            let actions = target.handle_packet(now, pkt);
            let sink = if dst == a.node() {
                &mut out_a
            } else {
                &mut out_b
            };
            for act in actions {
                match act {
                    DriverAction::Transmit(p) => pending.push((p.hdr.dst.node.0, p)),
                    DriverAction::ArmTimer { .. } => {}
                    other => sink.push(other),
                }
            }
        }
        (out_a, out_b)
    }

    fn split_transmits(actions: Vec<DriverAction>) -> (Vec<Packet>, Vec<DriverAction>) {
        let mut pkts = Vec::new();
        let mut rest = Vec::new();
        for a in actions {
            match a {
                DriverAction::Transmit(p) => pkts.push(p),
                DriverAction::ArmTimer { .. } => {}
                other => rest.push(other),
            }
        }
        (pkts, rest)
    }

    fn pair() -> (NodeDriver, NodeDriver) {
        (
            NodeDriver::new(0, 1, ProtoConfig::default()),
            NodeDriver::new(1, 1, ProtoConfig::default()),
        )
    }

    fn t0() -> Time {
        Time::from_micros(1)
    }

    #[test]
    fn small_message_end_to_end() {
        let (mut a, mut b) = pair();
        b.post_recv(t0(), 0, 7, !0, 100);
        let actions = a.post_send(t0(), 0, EndpointAddr::new(1, 0), 64, 7, 200);
        let (pkts, rest) = split_transmits(actions);
        assert_eq!(pkts.len(), 1);
        assert!(pkts[0].hdr.latency_sensitive, "small messages are marked");
        assert_eq!(pkts[0].hdr.seq, 1);
        assert!(matches!(
            rest[0],
            DriverAction::SendComplete { handle: 200, .. }
        ));
        let (_, recv_side) = pump(&mut a, &mut b, vec![(1, pkts[0])], t0());
        assert!(matches!(
            recv_side[0],
            DriverAction::RecvComplete {
                handle: 100,
                len: 64,
                ..
            }
        ));
    }

    #[test]
    fn small_message_unexpected_then_posted() {
        let (mut a, mut b) = pair();
        let actions = a.post_send(t0(), 0, EndpointAddr::new(1, 0), 32, 9, 1);
        let (pkts, _) = split_transmits(actions);
        let (_, recv_side) = pump(&mut a, &mut b, vec![(1, pkts[0])], t0());
        assert!(recv_side.is_empty(), "no receive posted yet");
        let acts = b.post_recv(t0(), 0, 9, !0, 55);
        assert!(matches!(
            acts[0],
            DriverAction::RecvComplete { handle: 55, .. }
        ));
    }

    #[test]
    fn medium_message_fragments_and_completes() {
        let (mut a, mut b) = pair();
        b.post_recv(t0(), 0, 1, !0, 9);
        let actions = a.post_send(t0(), 0, EndpointAddr::new(1, 0), 32 * 1024, 1, 10);
        let (pkts, _) = split_transmits(actions);
        assert_eq!(pkts.len(), 23, "32 KiB at MTU 1500 = 23 fragments");
        // Only the last fragment is marked.
        let marks: Vec<bool> = pkts.iter().map(|p| p.hdr.latency_sensitive).collect();
        assert!(!marks[..22].iter().any(|&m| m));
        assert!(marks[22]);
        let deliveries: Vec<(u16, Packet)> = pkts.iter().map(|p| (1, *p)).collect();
        let (_, recv_side) = pump(&mut a, &mut b, deliveries, t0());
        assert_eq!(
            recv_side
                .iter()
                .filter(|a| matches!(a, DriverAction::RecvComplete { .. }))
                .count(),
            1
        );
    }

    #[test]
    fn medium_message_tolerates_reordered_fragments() {
        let (mut a, mut b) = pair();
        b.post_recv(t0(), 0, 1, !0, 9);
        let actions = a.post_send(t0(), 0, EndpointAddr::new(1, 0), 8 * 1024, 1, 10);
        let (mut pkts, _) = split_transmits(actions);
        pkts.reverse(); // worst-case mis-ordering
        let deliveries: Vec<(u16, Packet)> = pkts.iter().map(|p| (1, *p)).collect();
        let (_, recv_side) = pump(&mut a, &mut b, deliveries, t0());
        assert!(recv_side
            .iter()
            .any(|a| matches!(a, DriverAction::RecvComplete { len: 8192, .. })));
    }

    #[test]
    fn large_message_pull_protocol_end_to_end() {
        let (mut a, mut b) = pair();
        b.post_recv(t0(), 0, 3, !0, 77);
        let len = 234 * 1024;
        let actions = a.post_send(t0(), 0, EndpointAddr::new(1, 0), len, 3, 88);
        let (pkts, rest) = split_transmits(actions);
        assert_eq!(pkts.len(), 1, "only the rendezvous goes out first");
        assert!(matches!(pkts[0].kind, PacketKind::Rendezvous { .. }));
        assert!(pkts[0].hdr.latency_sensitive);
        assert!(rest.is_empty(), "large send completes only on notify");

        let (sender_side, recv_side) = pump(&mut a, &mut b, vec![(1, pkts[0])], t0());
        assert!(
            matches!(recv_side[0], DriverAction::RecvComplete { handle: 77, len: l, .. } if l == len)
        );
        assert!(matches!(
            sender_side[0],
            DriverAction::SendComplete { handle: 88, .. }
        ));
    }

    #[test]
    fn pull_request_counts_match_paper() {
        // 234 KiB: 5 blocks of 32 frames, 162 packets total (§IV-C3).
        let (mut a, mut b) = pair();
        b.post_recv(t0(), 0, 3, !0, 77);
        let actions = a.post_send(t0(), 0, EndpointAddr::new(1, 0), 234 * 1024, 3, 88);
        let (pkts, _) = split_transmits(actions);

        // Count every packet moved until quiescence.
        let mut pending: Vec<(u16, Packet)> = vec![(1, pkts[0])];
        let mut counts: HashMap<&'static str, u32> = HashMap::new();
        while let Some((dst, pkt)) = pending.pop() {
            let label = match pkt.kind {
                PacketKind::Rendezvous { .. } => "rendezvous",
                PacketKind::PullRequest { .. } => "request",
                PacketKind::PullReply { .. } => "reply",
                PacketKind::Notify { .. } => "notify",
                PacketKind::Ack { .. } => "ack",
                _ => "other",
            };
            *counts.entry(label).or_default() += 1;
            let target = if dst == 0 { &mut a } else { &mut b };
            for act in target.handle_packet(t0(), pkt) {
                if let DriverAction::Transmit(p) = act {
                    pending.push((p.hdr.dst.node.0, p));
                }
            }
        }
        assert_eq!(counts["rendezvous"], 1);
        assert_eq!(counts["request"], 5);
        assert_eq!(counts["reply"], 160);
        assert_eq!(counts["notify"], 1);
    }

    #[test]
    fn pull_reply_marking_last_of_each_block() {
        let (mut a, mut b) = pair();
        b.post_recv(t0(), 0, 3, !0, 77);
        let actions = a.post_send(t0(), 0, EndpointAddr::new(1, 0), 234 * 1024, 3, 88);
        let (pkts, _) = split_transmits(actions);
        let mut pending: Vec<(u16, Packet)> = vec![(1, pkts[0])];
        let mut marked_replies = 0;
        let mut replies = 0;
        while let Some((dst, pkt)) = pending.pop() {
            if matches!(pkt.kind, PacketKind::PullReply { .. }) {
                replies += 1;
                if pkt.hdr.latency_sensitive {
                    marked_replies += 1;
                }
            }
            let target = if dst == 0 { &mut a } else { &mut b };
            for act in target.handle_packet(t0(), pkt) {
                if let DriverAction::Transmit(p) = act {
                    pending.push((p.hdr.dst.node.0, p));
                }
            }
        }
        assert_eq!(replies, 160);
        assert_eq!(marked_replies, 5, "one marked reply per block");
    }

    #[test]
    fn window_queues_and_releases_on_ack() {
        let cfg = ProtoConfig {
            window_packets: 2,
            ack_every: 1, // receiver acks every packet
            ..ProtoConfig::default()
        };
        let mut a = NodeDriver::new(0, 1, cfg);
        let mut b = NodeDriver::new(1, 1, cfg);
        let dst = EndpointAddr::new(1, 0);
        // Three sends of one packet each against a window of two.
        let (p1, _) = split_transmits(a.post_send(t0(), 0, dst, 8, 1, 1));
        let (p2, _) = split_transmits(a.post_send(t0(), 0, dst, 8, 2, 2));
        let (p3, r3) = split_transmits(a.post_send(t0(), 0, dst, 8, 3, 3));
        assert_eq!(p1.len() + p2.len(), 2);
        assert!(p3.is_empty(), "third send is window-blocked");
        assert!(r3.is_empty(), "no premature completion");

        // Deliver the first packet; the ack releases the queued send.
        let acts = b.handle_packet(t0(), p1[0]);
        let (acks, _) = split_transmits(acts);
        assert_eq!(acks.len(), 1, "standalone ack");
        let release = a.handle_packet(t0(), acks[0]);
        let (released, comps) = split_transmits(release);
        assert_eq!(released.len(), 1, "queued send released");
        assert!(matches!(
            released[0].kind,
            PacketKind::Small { match_info: 3, .. }
        ));
        assert!(comps
            .iter()
            .any(|c| matches!(c, DriverAction::SendComplete { handle: 3, .. })));
    }

    #[test]
    fn duplicate_eager_packet_is_suppressed() {
        let (mut a, mut b) = pair();
        b.post_recv(t0(), 0, 7, !0, 100);
        let (pkts, _) = split_transmits(a.post_send(t0(), 0, EndpointAddr::new(1, 0), 16, 7, 1));
        let first = b.handle_packet(t0(), pkts[0]);
        assert!(first
            .iter()
            .any(|a| matches!(a, DriverAction::RecvComplete { .. })));
        let again = b.handle_packet(t0(), pkts[0]);
        assert!(
            !again
                .iter()
                .any(|a| matches!(a, DriverAction::RecvComplete { .. })),
            "duplicate must not complete twice"
        );
        assert!(b.counters().duplicates.get() >= 1);
    }

    #[test]
    fn retransmit_fires_after_rto() {
        let cfg = ProtoConfig {
            rto_ns: 1_000_000,
            ..ProtoConfig::default()
        };
        let mut a = NodeDriver::new(0, 1, cfg);
        let (pkts, _) = split_transmits(a.post_send(t0(), 0, EndpointAddr::new(1, 0), 16, 7, 1));
        assert_eq!(pkts.len(), 1);
        // No ack ever arrives; fire the timer after the RTO.
        let later = t0() + TimeDelta::from_millis(2);
        let acts = a.on_timer(later);
        let (resent, _) = split_transmits(acts);
        assert_eq!(resent.len(), 1);
        assert_eq!(resent[0].hdr.seq, pkts[0].hdr.seq);
        assert_eq!(a.counters().eager_retransmits.get(), 1);
    }

    #[test]
    fn delayed_ack_fires_on_timer() {
        let cfg = ProtoConfig {
            ack_every: 100, // force the delayed path
            delayed_ack_ns: 50_000,
            ..ProtoConfig::default()
        };
        let mut a = NodeDriver::new(0, 1, cfg);
        let mut b = NodeDriver::new(1, 1, cfg);
        b.post_recv(t0(), 0, 7, !0, 1);
        let (pkts, _) = split_transmits(a.post_send(t0(), 0, EndpointAddr::new(1, 0), 16, 7, 1));
        let acts = b.handle_packet(t0(), pkts[0]);
        let (tx, _) = split_transmits(acts.clone());
        assert!(tx.is_empty(), "ack is delayed");
        assert!(acts
            .iter()
            .any(|a| matches!(a, DriverAction::ArmTimer { .. })));
        let deadline = b.next_deadline().expect("delayed-ack deadline");
        let acts = b.on_timer(deadline);
        let (tx, _) = split_transmits(acts);
        assert_eq!(tx.len(), 1);
        assert!(matches!(tx[0].kind, PacketKind::Ack { cumulative_seq: 1 }));
    }

    #[test]
    fn acks_are_never_marked_and_carry_no_seq() {
        let cfg = ProtoConfig {
            ack_every: 1,
            ..ProtoConfig::default()
        };
        let mut a = NodeDriver::new(0, 1, cfg);
        let mut b = NodeDriver::new(1, 1, cfg);
        b.post_recv(t0(), 0, 7, !0, 1);
        let (pkts, _) = split_transmits(a.post_send(t0(), 0, EndpointAddr::new(1, 0), 16, 7, 1));
        let acts = b.handle_packet(t0(), pkts[0]);
        let (tx, _) = split_transmits(acts);
        assert_eq!(tx.len(), 1);
        assert!(!tx[0].hdr.latency_sensitive);
        assert_eq!(tx[0].hdr.seq, 0);
    }

    #[test]
    fn lost_pull_block_is_rerequested() {
        let cfg = ProtoConfig {
            rto_ns: 1_000_000,
            ..ProtoConfig::default()
        };
        let mut a = NodeDriver::new(0, 1, cfg);
        let mut b = NodeDriver::new(1, 1, cfg);
        b.post_recv(t0(), 0, 3, !0, 77);
        let (pkts, _) =
            split_transmits(a.post_send(t0(), 0, EndpointAddr::new(1, 0), 100 * 1024, 3, 88));
        // Deliver the rendezvous; capture the pull requests and DROP them all.
        let acts = b.handle_packet(t0(), pkts[0]);
        let (reqs, _) = split_transmits(acts);
        assert!(!reqs.is_empty());
        // Fire the receiver's timer after the RTO: blocks are re-requested.
        let later = t0() + TimeDelta::from_millis(2);
        let acts = b.on_timer(later);
        let (tx, _) = split_transmits(acts);
        // The same timer may also flush the delayed ack of the rendezvous;
        // count only the pull requests.
        let rereqs: Vec<Packet> = tx
            .into_iter()
            .filter(|p| matches!(p.kind, PacketKind::PullRequest { .. }))
            .collect();
        assert_eq!(
            rereqs.len(),
            reqs.len(),
            "all in-flight blocks re-requested"
        );
        assert!(b.counters().pull_rerequests.get() >= 1);
        // Deliver the re-requests: transfer completes normally.
        let deliveries: Vec<(u16, Packet)> = rereqs.iter().map(|p| (0, *p)).collect();
        let (sender_side, recv_side) = pump(&mut a, &mut b, deliveries, later);
        assert!(recv_side
            .iter()
            .any(|x| matches!(x, DriverAction::RecvComplete { .. })));
        assert!(sender_side
            .iter()
            .any(|x| matches!(x, DriverAction::SendComplete { .. })));
    }

    #[test]
    fn ack_share_of_small_stream_is_about_twenty_percent() {
        // §IV-C2: acks are "up to 20 % of the traffic" on a small stream.
        let cfg = ProtoConfig {
            ack_every: 5,
            ..ProtoConfig::default()
        };
        let mut a = NodeDriver::new(0, 1, cfg);
        let mut b = NodeDriver::new(1, 1, cfg);
        let mut data = 0u32;
        let mut acks = 0u32;
        for i in 0..200 {
            b.post_recv(t0(), 0, i, !0, i);
        }
        for i in 0..200 {
            let (pkts, _) =
                split_transmits(a.post_send(t0(), 0, EndpointAddr::new(1, 0), 64, i, i));
            for p in pkts {
                data += 1;
                let acts = b.handle_packet(t0(), p);
                let (tx, _) = split_transmits(acts);
                for t in tx {
                    if matches!(t.kind, PacketKind::Ack { .. }) {
                        acks += 1;
                        // Feed the ack back so the window never blocks.
                        a.handle_packet(t0(), t);
                    }
                }
            }
        }
        let share = acks as f64 / (acks + data) as f64;
        assert!(
            (0.14..=0.20).contains(&share),
            "ack share {share} not ~1/6 of total"
        );
    }

    /// A lone send whose only packet is lost must still be recoverable: the
    /// post itself has to arm the retransmit timer, because with no reverse
    /// traffic nothing else ever will.
    #[test]
    fn lone_post_send_arms_retransmit_timer() {
        let (mut a, _) = pair();
        let actions = a.post_send(t0(), 0, EndpointAddr::new(1, 0), 64, 7, 200);
        assert!(
            actions
                .iter()
                .any(|x| matches!(x, DriverAction::ArmTimer { .. })),
            "posting a send must arm the timer: {actions:?}"
        );
        let deadline = a.next_deadline().expect("unacked packet has a deadline");
        // Drop the packet on the floor; the timer must retransmit it.
        let acts = a.on_timer(deadline);
        let (pkts, _) = split_transmits(acts);
        assert_eq!(pkts.len(), 1, "retransmission of the lost packet");
        assert_eq!(a.counters().eager_retransmits.get(), 1);
    }

    /// A timeout resends only a bounded head burst (go-back-N pacing), not
    /// the whole unacked queue: blasting the full window into a small RX
    /// ring can livelock recovery (the burst's duplicate prefix claims every
    /// free slot each service cycle while the head-of-line gap is dropped).
    #[test]
    fn timeout_resends_only_the_head_burst() {
        let cfg = ProtoConfig {
            retx_burst: 4,
            ..ProtoConfig::default()
        };
        let mut a = NodeDriver::new(0, 1, cfg);
        let dst = EndpointAddr::new(1, 0);
        for i in 0..20 {
            a.post_send(t0(), 0, dst, 64, i, i);
        }
        let rto = TimeDelta::from_nanos(cfg.rto_ns as i64);
        let fire = t0() + rto;
        let (resent, _) = split_transmits(a.on_timer(fire));
        assert_eq!(resent.len(), 4, "burst capped at retx_burst");
        let seqs: Vec<u64> = resent.iter().map(|p| p.hdr.seq).collect();
        assert_eq!(seqs, vec![1, 2, 3, 4], "oldest-first from the queue head");
        assert_eq!(a.counters().eager_retransmits.get(), 4);
        // The head was just refreshed: the very next deadline is a full RTO
        // out, derived from the head — stale tail send times must not pull
        // it backwards (that would spin the timer without resending).
        assert_eq!(a.next_deadline(), Some(fire + rto));
        let (again, _) = split_transmits(a.on_timer(fire + TimeDelta::from_micros(1)));
        assert!(again.is_empty(), "head not overdue, nothing resent");
    }

    /// Once the resent head is cumulatively acked, the next (previously
    /// beyond-burst) packets become the head with their original stale send
    /// times, so the re-armed timer fires promptly and resends them: paced
    /// recovery makes progress burst by burst.
    #[test]
    fn acked_head_burst_clocks_out_the_next_burst() {
        let cfg = ProtoConfig {
            retx_burst: 4,
            ..ProtoConfig::default()
        };
        let mut a = NodeDriver::new(0, 1, cfg);
        let dst = EndpointAddr::new(1, 0);
        for i in 0..8 {
            a.post_send(t0(), 0, dst, 64, i, i);
        }
        let rto = TimeDelta::from_nanos(cfg.rto_ns as i64);
        let fire = t0() + rto;
        let (resent, _) = split_transmits(a.on_timer(fire));
        assert_eq!(resent.len(), 4);
        // Cumulative ack for the resent head (seqs 1-4).
        let ack = Packet {
            hdr: OmxHeader {
                src: dst,
                dst: EndpointAddr::new(0, 0),
                latency_sensitive: false,
                seq: 0,
                ack: 0,
            },
            kind: PacketKind::Ack { cumulative_seq: 4 },
        };
        a.handle_packet(fire + TimeDelta::from_micros(50), ack);
        // Seqs 5-8 are now the head, still carrying their t0 send times:
        // the deadline is already past, and the next tick resends them.
        let next = a.next_deadline().expect("unacked remain");
        assert_eq!(next, t0() + rto, "stale head fires promptly");
        let (resent, _) = split_transmits(a.on_timer(fire + TimeDelta::from_micros(51)));
        let seqs: Vec<u64> = resent.iter().map(|p| p.hdr.seq).collect();
        assert_eq!(seqs, vec![5, 6, 7, 8]);
    }

    #[test]
    #[should_panic(expected = "rto_ns")]
    fn oversized_rto_panics_with_clear_message() {
        let cfg = ProtoConfig {
            rto_ns: u64::MAX,
            ..ProtoConfig::default()
        };
        let mut a = NodeDriver::new(0, 1, cfg);
        a.post_send(t0(), 0, EndpointAddr::new(1, 0), 64, 7, 200);
        // Computing the deadline converts rto_ns; u64::MAX overflows i64.
        let _ = a.next_deadline();
    }

    #[test]
    fn pending_report_names_key_and_phase() {
        let (mut a, mut b) = pair();
        assert!(report_of(&a).is_empty(), "fresh driver has nothing pending");

        // Unacked eager packet: drop it on the floor.
        a.post_send(t0(), 0, EndpointAddr::new(1, 0), 64, 7, 200);
        let entries = report_of(&a);
        assert_eq!(entries.len(), 1, "{entries:?}");
        assert_eq!(entries[0].phase, "awaiting-ack");
        assert!(entries[0].detail.contains("seq 1"), "{}", entries[0].detail);

        // Large send: sender waits for the pull/notify handshake.
        let actions = a.post_send(t0(), 0, EndpointAddr::new(1, 0), 1 << 20, 8, 201);
        let (pkts, _) = split_transmits(actions);
        assert!(report_of(&a)
            .iter()
            .any(|e| e.phase == "awaiting-notify" && e.detail.contains("1048576 B")));

        // Deliver the rendezvous with no posted receive: the receiver holds
        // it as unexpected — that is app-waiting, not stranded.
        for p in pkts {
            b.handle_packet(t0(), p);
        }
        assert!(
            report_of(&b).is_empty(),
            "unexpected rendezvous is awaiting the app, not stranded: {:?}",
            report_of(&b)
        );

        // Posting the receive starts the pull; until replies arrive the
        // pull is pending on the receiver.
        b.post_recv(t0(), 0, 0, 0, 300);
        assert!(report_of(&b)
            .iter()
            .any(|e| e.phase == "pull" && e.detail.contains("0/")));
    }

    fn report_of(d: &NodeDriver) -> Vec<PendingEntry> {
        let mut out = Vec::new();
        d.pending_report(&mut out);
        out
    }
}
