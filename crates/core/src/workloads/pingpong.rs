//! Ping-pong latency benchmark (Figs. 5 & 6 of the paper).
//!
//! Rank 0 sends a message of `msg_len` bytes to rank 1, which bounces a
//! message of the same size back; one iteration is a full round trip. The
//! report carries the mean half round trip over the measured iterations —
//! the paper's "transfer time".

use crate::system::{Actor, ActorCtx, Cluster, RecvCompletion};
use crate::wire::EndpointAddr;
use omx_sim::stats::OnlineStats;
use omx_sim::{StopCondition, Time};
use std::any::Any;

/// Ping-pong parameters.
#[derive(Debug, Clone, Copy)]
pub struct PingPongSpec {
    /// Message length in bytes (both directions).
    pub msg_len: u32,
    /// Measured iterations.
    pub iterations: u32,
    /// Warm-up iterations excluded from the statistics.
    pub warmup: u32,
}

impl Default for PingPongSpec {
    fn default() -> Self {
        PingPongSpec {
            msg_len: 0,
            iterations: 100,
            warmup: 10,
        }
    }
}

/// Ping-pong results.
#[derive(Debug, Clone)]
pub struct PingPongReport {
    /// Mean half round-trip time in nanoseconds (the paper's transfer time).
    pub half_rtt_ns: u64,
    /// Minimum half round trip observed.
    pub min_half_rtt_ns: u64,
    /// Maximum half round trip observed.
    pub max_half_rtt_ns: u64,
    /// Total interrupts raised during the measured+warmup phase, both nodes.
    pub interrupts: u64,
    /// Interrupts per iteration (both sides), measured across the whole run.
    pub interrupts_per_iter: f64,
}

/// The initiating side: sends the ping, waits for the pong.
pub struct PingActor {
    peer: EndpointAddr,
    spec: PingPongSpec,
    iter: u32,
    iter_start: Time,
    stats: OnlineStats,
}

impl PingActor {
    /// Create the initiator aimed at `peer`.
    pub fn new(peer: EndpointAddr, spec: PingPongSpec) -> Self {
        PingActor {
            peer,
            spec,
            iter: 0,
            iter_start: Time::ZERO,
            stats: OnlineStats::new(),
        }
    }

    fn kick(&mut self, ctx: &mut ActorCtx) {
        self.iter_start = ctx.now();
        // Pre-post the pong receive, then send the ping (real benchmarks do
        // exactly this to avoid unexpected-queue traffic).
        ctx.post_recv(u64::from(self.iter) | PONG_BIT, !0, u64::from(self.iter));
        ctx.post_send(self.peer, self.spec.msg_len, u64::from(self.iter), 0);
    }

    /// Statistics of the measured iterations (half round trips, ns).
    pub fn stats(&self) -> &OnlineStats {
        &self.stats
    }
}

const PONG_BIT: u64 = 1 << 63;

impl Actor for PingActor {
    fn on_start(&mut self, ctx: &mut ActorCtx) {
        self.kick(ctx);
    }

    fn on_recv_complete(&mut self, ctx: &mut ActorCtx, _c: RecvCompletion) {
        let rtt = ctx.now() - self.iter_start;
        if self.iter >= self.spec.warmup {
            self.stats.record(rtt.as_nanos() as f64 / 2.0);
        }
        self.iter += 1;
        if self.iter >= self.spec.warmup + self.spec.iterations {
            ctx.stop();
        } else {
            self.kick(ctx);
        }
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
}

/// The echo side: receives a ping, sends the pong back.
pub struct PongActor {
    peer: EndpointAddr,
    msg_len: u32,
    iter: u32,
}

impl PongActor {
    /// Create the echo side facing `peer`.
    pub fn new(peer: EndpointAddr, msg_len: u32) -> Self {
        PongActor {
            peer,
            msg_len,
            iter: 0,
        }
    }
}

impl Actor for PongActor {
    /// Pure echo responder: never calls `stop()`, so a partition holding
    /// only pong endpoints stays eligible for concurrent dispatch.
    fn may_stop(&self) -> bool {
        false
    }

    fn on_start(&mut self, ctx: &mut ActorCtx) {
        ctx.post_recv(0, PONG_BIT, 0); // match any ping (bit 63 clear)
    }

    fn on_recv_complete(&mut self, ctx: &mut ActorCtx, c: RecvCompletion) {
        // Echo with the pong bit set, then pre-post the next ping receive.
        ctx.post_recv(0, PONG_BIT, 0);
        ctx.post_send(self.peer, self.msg_len, c.match_info | PONG_BIT, 0);
        self.iter += 1;
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
}

impl Cluster {
    /// Run a two-node ping-pong and report transfer times.
    ///
    /// # Panics
    /// Panics if the cluster does not have at least two nodes, or if
    /// endpoint 0 of nodes 0/1 already has an actor.
    pub fn run_pingpong(&mut self, spec: PingPongSpec) -> PingPongReport {
        assert!(self.config().nodes >= 2, "ping-pong needs two nodes");
        self.add_actor(
            0,
            0,
            Box::new(PingActor::new(EndpointAddr::new(1, 0), spec)),
        );
        self.add_actor(
            1,
            0,
            Box::new(PongActor::new(EndpointAddr::new(0, 0), spec.msg_len)),
        );
        let stop = self.run(Time::from_secs(3_600));
        assert_eq!(
            stop,
            StopCondition::PredicateSatisfied,
            "ping-pong must complete (stopped: {stop:?})"
        );
        let ping = self.actor::<PingActor>(0, 0).expect("ping actor present");
        let stats = ping.stats().clone();
        let interrupts = self.total_interrupts();
        let iters = (spec.iterations + spec.warmup) as f64;
        PingPongReport {
            half_rtt_ns: stats.mean() as u64,
            min_half_rtt_ns: stats.min().unwrap_or(0.0) as u64,
            max_half_rtt_ns: stats.max().unwrap_or(0.0) as u64,
            interrupts,
            interrupts_per_iter: interrupts as f64 / iters,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::system::ClusterBuilder;
    use omx_nic::CoalescingStrategy;

    fn pingpong(len: u32, strategy: CoalescingStrategy) -> PingPongReport {
        ClusterBuilder::new()
            .nodes(2)
            .strategy(strategy)
            .build()
            .run_pingpong(PingPongSpec {
                msg_len: len,
                iterations: 30,
                warmup: 5,
            })
    }

    #[test]
    fn small_latency_hierarchy_matches_paper() {
        // §IV-B3 + §IV-C1: disabled ≈ open-mx « timeout for small messages.
        let disabled = pingpong(8, CoalescingStrategy::Disabled);
        let timeout = pingpong(8, CoalescingStrategy::Timeout { delay_us: 75 });
        let openmx = pingpong(8, CoalescingStrategy::OpenMx { delay_us: 75 });
        assert!(
            timeout.half_rtt_ns > disabled.half_rtt_ns * 3,
            "timeout {} vs disabled {}",
            timeout.half_rtt_ns,
            disabled.half_rtt_ns
        );
        let ratio = openmx.half_rtt_ns as f64 / disabled.half_rtt_ns as f64;
        assert!(
            (0.8..1.2).contains(&ratio),
            "open-mx should track disabled: ratio {ratio}"
        );
    }

    #[test]
    fn small_latency_is_around_ten_microseconds() {
        // §IV-B3: "about 10 µs" with coalescing disabled.
        let report = pingpong(8, CoalescingStrategy::Disabled);
        let us = report.half_rtt_ns as f64 / 1_000.0;
        assert!(
            (5.0..20.0).contains(&us),
            "half RTT {us}us outside the calibration window"
        );
    }

    #[test]
    fn large_throughput_hierarchy_matches_paper() {
        // Fig. 5/6 at 1 MiB: disabled is slower than timeout; open-mx
        // matches timeout.
        let disabled = pingpong(1 << 20, CoalescingStrategy::Disabled);
        let timeout = pingpong(1 << 20, CoalescingStrategy::Timeout { delay_us: 75 });
        let openmx = pingpong(1 << 20, CoalescingStrategy::OpenMx { delay_us: 75 });
        assert!(
            disabled.half_rtt_ns > timeout.half_rtt_ns,
            "disabled {} should be slower than timeout {}",
            disabled.half_rtt_ns,
            timeout.half_rtt_ns
        );
        let ratio = openmx.half_rtt_ns as f64 / timeout.half_rtt_ns as f64;
        assert!(
            ratio < 1.1,
            "open-mx should at least match timeout at 1 MiB, ratio {ratio}"
        );
    }

    #[test]
    fn pong_actor_echoes_every_ping() {
        let mut cluster = ClusterBuilder::new().nodes(2).build();
        let report = cluster.run_pingpong(PingPongSpec {
            msg_len: 128,
            iterations: 10,
            warmup: 2,
        });
        assert!(report.half_rtt_ns > 0);
        assert!(report.min_half_rtt_ns <= report.half_rtt_ns);
        assert!(report.max_half_rtt_ns >= report.half_rtt_ns);
        let pong = cluster.actor::<PongActor>(1, 0).unwrap();
        assert_eq!(pong.iter, 12);
    }
}
