//! Per-packet interrupt overhead microbenchmark (§IV-B2).
//!
//! The paper measures the cost of the *low-level* receive stack alone by
//! streaming a million explicitly invalid 128-byte packets that the Open-MX
//! receive handler drops immediately. We reproduce that with raw Ethernet
//! frames (not Open-MX protocol packets): they traverse NIC, DMA, interrupt
//! and the low-level handler, then vanish — so receiver busy-time divided by
//! packet count is exactly the paper's per-packet overhead metric
//! (965 ns with an interrupt per packet, 774 ns coalesced, −40 ns when
//! interrupts are bound to one core).
//!
//! The stream is paced so the receiver keeps up (one interrupt per packet
//! when coalescing is disabled) — the same regime as the paper's
//! measurement, whose overhead metric is CPU time per packet, not latency.

use crate::system::{Actor, ActorCtx, Cluster};
use crate::wire::NodeId;
use omx_sim::{StopCondition, Time, TimeDelta};
use std::any::Any;

/// Overhead-benchmark parameters.
#[derive(Debug, Clone, Copy)]
pub struct OverheadSpec {
    /// Number of invalid frames to stream.
    pub packets: u32,
    /// Frame payload length.
    pub len: u32,
    /// Inter-departure gap at the source, nanoseconds.
    pub gap_ns: u64,
}

impl Default for OverheadSpec {
    fn default() -> Self {
        OverheadSpec {
            packets: 20_000,
            len: 128,
            gap_ns: 5_000,
        }
    }
}

/// Overhead-benchmark results.
#[derive(Debug, Clone)]
pub struct OverheadReport {
    /// Receiver host busy time divided by received packets, nanoseconds.
    pub per_packet_ns: f64,
    /// Interrupts raised on the receiver.
    pub interrupts: u64,
    /// Packets the receiver NIC accepted.
    pub packets: u64,
    /// C1E wakeups on the receiver.
    pub wakeups: u64,
}

/// Paced source of invalid frames.
pub struct OverheadSource {
    dst: NodeId,
    spec: OverheadSpec,
    sent: u32,
}

impl OverheadSource {
    /// Create a source aimed at node `dst`.
    pub fn new(dst: NodeId, spec: OverheadSpec) -> Self {
        OverheadSource { dst, spec, sent: 0 }
    }

    fn shoot(&mut self, ctx: &mut ActorCtx) {
        if self.sent >= self.spec.packets {
            ctx.stop();
            return;
        }
        ctx.send_raw_ethernet(self.dst, self.spec.len);
        self.sent += 1;
        let next = ctx.now() + TimeDelta::from_nanos(self.spec.gap_ns as i64);
        ctx.set_timer(next, 0);
    }
}

impl Actor for OverheadSource {
    fn on_start(&mut self, ctx: &mut ActorCtx) {
        self.shoot(ctx);
    }

    fn on_timer(&mut self, ctx: &mut ActorCtx, _token: u64) {
        self.shoot(ctx);
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
}

impl Cluster {
    /// Run the §IV-B2 overhead benchmark (node 0 → node 1) and report the
    /// receiver's per-packet processing cost.
    pub fn run_overhead(&mut self, spec: OverheadSpec) -> OverheadReport {
        assert!(self.config().nodes >= 2, "overhead bench needs two nodes");
        self.add_actor(0, 0, Box::new(OverheadSource::new(NodeId(1), spec)));
        let stop = self.run(Time::from_secs(3_600));
        assert_eq!(
            stop,
            StopCondition::PredicateSatisfied,
            "source stops the sim"
        );
        // Drain the trailing packets: run a little past the stop.
        let _ = stop;
        let m = self.metrics();
        let rx = &m.nodes[1];
        let pkts = rx.nic.packets.get().max(1);
        OverheadReport {
            per_packet_ns: rx.host.irq_busy_ns.get() as f64 / pkts as f64,
            interrupts: rx.nic.interrupts.get(),
            packets: pkts,
            wakeups: rx.host.wakeups.get(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::system::ClusterBuilder;
    use omx_host::IrqRouting;
    use omx_nic::CoalescingStrategy;

    fn overhead(strategy: CoalescingStrategy, routing: IrqRouting) -> OverheadReport {
        ClusterBuilder::new()
            .nodes(2)
            .strategy(strategy)
            .routing(routing)
            .build()
            .run_overhead(OverheadSpec {
                packets: 8_000,
                len: 128,
                gap_ns: 5_000,
            })
    }

    #[test]
    fn per_packet_overhead_matches_anchors() {
        // §IV-B2: ~965 ns per packet with an interrupt per packet, ~774 ns
        // with coalescing. Allow ±8 % around the anchors.
        let disabled = overhead(CoalescingStrategy::Disabled, IrqRouting::RoundRobin);
        let coalesced = overhead(
            CoalescingStrategy::Timeout { delay_us: 75 },
            IrqRouting::RoundRobin,
        );
        assert!(
            (890.0..1040.0).contains(&disabled.per_packet_ns),
            "disabled per-packet {} ns",
            disabled.per_packet_ns
        );
        assert!(
            (715.0..835.0).contains(&coalesced.per_packet_ns),
            "coalesced per-packet {} ns",
            coalesced.per_packet_ns
        );
        assert!(disabled.per_packet_ns > coalesced.per_packet_ns * 1.15);
    }

    #[test]
    fn binding_interrupts_saves_about_forty_ns() {
        let scattered = overhead(CoalescingStrategy::Disabled, IrqRouting::RoundRobin);
        let bound = overhead(CoalescingStrategy::Disabled, IrqRouting::Fixed(0));
        let saved = scattered.per_packet_ns - bound.per_packet_ns;
        assert!(
            (20.0..70.0).contains(&saved),
            "binding saved {saved} ns (expected ~40)"
        );
    }

    #[test]
    fn coalescing_cuts_interrupt_count_dramatically() {
        let disabled = overhead(CoalescingStrategy::Disabled, IrqRouting::RoundRobin);
        let coalesced = overhead(
            CoalescingStrategy::Timeout { delay_us: 75 },
            IrqRouting::RoundRobin,
        );
        assert!(disabled.interrupts > coalesced.interrupts * 10);
        assert_eq!(disabled.packets, coalesced.packets);
    }
}
