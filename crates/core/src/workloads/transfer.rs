//! Repeated single-message transfer benchmark (Tables II and III).
//!
//! One message of `msg_len` bytes travels node 0 → node 1 on an otherwise
//! idle cluster; the receiver echoes a zero-byte token so the sender starts
//! the next repetition only after full delivery, with an idle gap in
//! between (each transfer sees a quiet NIC, like the paper's
//! micro-measurements). Reported: mean transfer time (send post → receive
//! completion) and interrupts per transfer counted on both sides.

use crate::system::{Actor, ActorCtx, Cluster, RecvCompletion};
use crate::wire::EndpointAddr;
use omx_sim::{StopCondition, Time, TimeDelta};
use std::any::Any;

/// Transfer-benchmark parameters.
#[derive(Debug, Clone, Copy)]
pub struct TransferSpec {
    /// Message size in bytes.
    pub msg_len: u32,
    /// Measured repetitions.
    pub repeats: u32,
    /// Idle gap between repetitions (lets cores sleep and timers drain).
    pub gap_ns: u64,
}

impl Default for TransferSpec {
    fn default() -> Self {
        TransferSpec {
            msg_len: 234 * 1024,
            repeats: 30,
            gap_ns: 400_000,
        }
    }
}

/// Transfer-benchmark results.
#[derive(Debug, Clone)]
pub struct TransferReport {
    /// Mean transfer time (send post → receive completion), nanoseconds.
    pub transfer_ns: f64,
    /// Minimum observed transfer time.
    pub min_transfer_ns: u64,
    /// Interrupts per transfer, both nodes (the paper's Table II metric).
    pub interrupts_per_transfer: f64,
    /// Repetitions measured.
    pub repeats: u32,
}

const ECHO_MATCH: u64 = 1 << 62;

/// Sending side.
pub struct TransferSender {
    peer: EndpointAddr,
    spec: TransferSpec,
    iter: u32,
    post_times: Vec<Time>,
}

impl TransferSender {
    /// Create the sender.
    pub fn new(peer: EndpointAddr, spec: TransferSpec) -> Self {
        TransferSender {
            peer,
            spec,
            iter: 0,
            post_times: Vec::with_capacity(spec.repeats as usize),
        }
    }

    fn kick(&mut self, ctx: &mut ActorCtx) {
        ctx.post_recv(ECHO_MATCH | u64::from(self.iter), !0, 1);
        self.post_times.push(ctx.now());
        ctx.post_send(self.peer, self.spec.msg_len, u64::from(self.iter), 2);
    }

    /// Send-post timestamps.
    pub fn post_times(&self) -> &[Time] {
        &self.post_times
    }
}

impl Actor for TransferSender {
    fn blocking_waits(&self) -> bool {
        true // §IV-C3: "no process is actually using any single core"
    }

    fn on_start(&mut self, ctx: &mut ActorCtx) {
        self.kick(ctx);
    }

    fn on_recv_complete(&mut self, ctx: &mut ActorCtx, _c: RecvCompletion) {
        // Echo received: transfer fully delivered.
        self.iter += 1;
        if self.iter >= self.spec.repeats {
            ctx.stop();
        } else {
            ctx.set_timer(
                ctx.now() + TimeDelta::from_nanos(self.spec.gap_ns as i64),
                0,
            );
        }
    }

    fn on_timer(&mut self, ctx: &mut ActorCtx, _token: u64) {
        self.kick(ctx);
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
}

/// Receiving side.
pub struct TransferReceiver {
    peer: EndpointAddr,
    iter: u32,
    completion_times: Vec<Time>,
}

impl TransferReceiver {
    /// Create the receiver.
    pub fn new(peer: EndpointAddr) -> Self {
        TransferReceiver {
            peer,
            iter: 0,
            completion_times: Vec::new(),
        }
    }

    /// Receive-completion timestamps.
    pub fn completion_times(&self) -> &[Time] {
        &self.completion_times
    }
}

impl Actor for TransferReceiver {
    /// Echo-only endpoint: the sender owns the `stop()` call.
    fn may_stop(&self) -> bool {
        false
    }

    fn blocking_waits(&self) -> bool {
        true
    }

    fn on_start(&mut self, ctx: &mut ActorCtx) {
        ctx.post_recv(u64::from(self.iter), !0, 1);
    }

    fn on_recv_complete(&mut self, ctx: &mut ActorCtx, _c: RecvCompletion) {
        self.completion_times.push(ctx.now());
        // Echo back, then pre-post the next receive.
        ctx.post_send(self.peer, 0, ECHO_MATCH | u64::from(self.iter), 3);
        self.iter += 1;
        ctx.post_recv(u64::from(self.iter), !0, 1);
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
}

impl Cluster {
    /// Run the repeated-transfer benchmark (node 0 → node 1).
    pub fn run_transfer(&mut self, spec: TransferSpec) -> TransferReport {
        assert!(self.config().nodes >= 2, "transfer bench needs two nodes");
        self.add_actor(
            0,
            0,
            Box::new(TransferSender::new(EndpointAddr::new(1, 0), spec)),
        );
        self.add_actor(
            1,
            0,
            Box::new(TransferReceiver::new(EndpointAddr::new(0, 0))),
        );
        let stop = self.run(Time::from_secs(3_600));
        assert_eq!(
            stop,
            StopCondition::PredicateSatisfied,
            "transfer bench must complete: {stop:?}"
        );
        let sender = self.actor::<TransferSender>(0, 0).expect("sender");
        let receiver = self.actor::<TransferReceiver>(1, 0).expect("receiver");
        let times: Vec<u64> = sender
            .post_times()
            .iter()
            .zip(receiver.completion_times())
            .map(|(post, done)| (*done - *post).as_nanos().max(0) as u64)
            .collect();
        assert_eq!(times.len(), spec.repeats as usize);
        let mean = times.iter().sum::<u64>() as f64 / times.len() as f64;
        TransferReport {
            transfer_ns: mean,
            min_transfer_ns: times.iter().copied().min().unwrap_or(0),
            interrupts_per_transfer: self.total_interrupts() as f64 / spec.repeats as f64,
            repeats: spec.repeats,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::system::ClusterBuilder;
    use omx_nic::CoalescingStrategy;

    fn transfer(len: u32, strategy: CoalescingStrategy) -> TransferReport {
        ClusterBuilder::new()
            .nodes(2)
            .strategy(strategy)
            .build()
            .run_transfer(TransferSpec {
                msg_len: len,
                repeats: 12,
                gap_ns: 400_000,
            })
    }

    #[test]
    fn table2_shape_234kib() {
        // Table II: Disabled 705 us / ~92 irq, Timeout 762 us / ~14 irq,
        // Open-MX 708 us / ~14 irq.
        let disabled = transfer(234 * 1024, CoalescingStrategy::Disabled);
        let timeout = transfer(234 * 1024, CoalescingStrategy::Timeout { delay_us: 75 });
        let openmx = transfer(234 * 1024, CoalescingStrategy::OpenMx { delay_us: 75 });

        // Time ordering: disabled ≈ open-mx < timeout.
        assert!(
            timeout.transfer_ns > disabled.transfer_ns * 1.02,
            "timeout {} vs disabled {}",
            timeout.transfer_ns,
            disabled.transfer_ns
        );
        let ratio = openmx.transfer_ns / disabled.transfer_ns;
        assert!(
            ratio < 1.06,
            "open-mx must track disabled within a few %, got {ratio}"
        );

        // Interrupt ordering: disabled raises several times more than both
        // coalescing strategies; open-mx needs no more than timeout + small
        // margin.
        assert!(
            disabled.interrupts_per_transfer > timeout.interrupts_per_transfer * 4.0,
            "disabled {} vs timeout {}",
            disabled.interrupts_per_transfer,
            timeout.interrupts_per_transfer
        );
        assert!(
            openmx.interrupts_per_transfer < timeout.interrupts_per_transfer * 1.8,
            "open-mx {} vs timeout {}",
            openmx.interrupts_per_transfer,
            timeout.interrupts_per_transfer
        );
        // Magnitudes: transfer time within 2x of the paper's ~705 us.
        assert!(
            (350_000.0..1_400_000.0).contains(&disabled.transfer_ns),
            "{}",
            disabled.transfer_ns
        );
    }

    #[test]
    fn small_transfer_also_works() {
        let r = transfer(64, CoalescingStrategy::OpenMx { delay_us: 75 });
        assert!(r.transfer_ns > 0.0);
        assert_eq!(r.repeats, 12);
    }
}
