//! Unidirectional message-rate benchmark (Fig. 4 and Table I).
//!
//! A sender keeps `window` message posts outstanding toward a receiver that
//! consumes completions as fast as the receive stack delivers them. The
//! measured metric is the receiver-side completion rate — "the maximal rate
//! of a unidirectional stream of messages between two Open-MX processes"
//! (§IV-B1) — together with the receiver's interrupt and wakeup counts,
//! which explain *why* the rate moves.

use crate::system::{Actor, ActorCtx, Cluster, RecvCompletion};
use crate::wire::EndpointAddr;
use omx_sim::{StopCondition, Time};
use std::any::Any;

/// Stream parameters.
#[derive(Debug, Clone, Copy)]
pub struct StreamSpec {
    /// Message length in bytes (0 allowed: header-only messages).
    pub msg_len: u32,
    /// Messages to deliver (measured from first to last completion).
    pub messages: u32,
    /// Sender posts kept outstanding.
    pub window: u32,
}

impl Default for StreamSpec {
    fn default() -> Self {
        StreamSpec {
            msg_len: 128,
            messages: 2_000,
            window: 32,
        }
    }
}

/// Stream results.
#[derive(Debug, Clone)]
pub struct StreamReport {
    /// Receiver-side completion rate, messages per second.
    pub msgs_per_sec: f64,
    /// Interrupts raised on the receiving node during the run.
    pub rx_interrupts: u64,
    /// Interrupts per delivered message on the receiver.
    pub interrupts_per_msg: f64,
    /// C1E wakeups on the receiving node.
    pub rx_wakeups: u64,
    /// Cache-line bounces on the receiving node.
    pub rx_cache_bounces: u64,
    /// First-to-last completion span, nanoseconds.
    pub span_ns: u64,
}

/// The sending side.
pub struct StreamSender {
    peer: EndpointAddr,
    spec: StreamSpec,
    posted: u32,
    completed: u32,
}

impl StreamSender {
    /// Create a sender aimed at `peer`.
    pub fn new(peer: EndpointAddr, spec: StreamSpec) -> Self {
        StreamSender {
            peer,
            spec,
            posted: 0,
            completed: 0,
        }
    }

    fn pump(&mut self, ctx: &mut ActorCtx) {
        while self.posted < self.spec.messages {
            let outstanding_cap = self.spec.window.max(1);
            // `posted - completed` is approximated by the driver window; we
            // cap by counting our own outstanding posts via handles.
            if self.posted >= self.completed + outstanding_cap {
                break;
            }
            ctx.post_send(
                self.peer,
                self.spec.msg_len,
                u64::from(self.posted),
                u64::from(self.posted),
            );
            self.posted += 1;
        }
    }
}

impl Actor for StreamSender {
    /// The sender runs until its send budget drains; only the receiver
    /// calls `stop()`.
    fn may_stop(&self) -> bool {
        false
    }

    fn on_start(&mut self, ctx: &mut ActorCtx) {
        self.pump(ctx);
    }

    fn on_send_complete(&mut self, ctx: &mut ActorCtx, _handle: u64) {
        self.completed += 1;
        self.pump(ctx);
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
}

/// The receiving side: measures completion times.
pub struct StreamReceiver {
    expect: u32,
    got: u32,
    first_at: Option<Time>,
    last_at: Option<Time>,
}

impl StreamReceiver {
    /// Create a receiver expecting `expect` messages.
    pub fn new(expect: u32) -> Self {
        StreamReceiver {
            expect,
            got: 0,
            first_at: None,
            last_at: None,
        }
    }

    /// Completion span (first to last), if the stream finished.
    pub fn span(&self) -> Option<(Time, Time)> {
        Some((self.first_at?, self.last_at?))
    }

    /// Messages received so far.
    pub fn received(&self) -> u32 {
        self.got
    }
}

impl Actor for StreamReceiver {
    fn blocking_waits(&self) -> bool {
        // Message-rate receivers block in `mx_wait` between bursts — the
        // configuration where Fig. 4's sleep effects appear.
        true
    }

    fn on_start(&mut self, ctx: &mut ActorCtx) {
        // Keep a pool of wildcard receives pre-posted.
        for i in 0..64u64 {
            ctx.post_recv(0, 0, i);
        }
    }

    fn on_recv_complete(&mut self, ctx: &mut ActorCtx, _c: RecvCompletion) {
        if self.first_at.is_none() {
            self.first_at = Some(ctx.now());
        }
        self.got += 1;
        if self.got >= self.expect {
            self.last_at = Some(ctx.now());
            ctx.stop();
        } else {
            ctx.post_recv(0, 0, u64::from(self.got) + 64);
        }
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
}

impl Cluster {
    /// Run a node-0 → node-1 unidirectional stream and report the rate.
    pub fn run_stream(&mut self, spec: StreamSpec) -> StreamReport {
        assert!(self.config().nodes >= 2, "stream needs two nodes");
        self.add_actor(
            0,
            0,
            Box::new(StreamSender::new(EndpointAddr::new(1, 0), spec)),
        );
        self.add_actor(1, 0, Box::new(StreamReceiver::new(spec.messages)));
        let stop = self.run(Time::from_secs(3_600));
        assert_eq!(
            stop,
            StopCondition::PredicateSatisfied,
            "stream must complete: {stop:?}"
        );
        let recv = self
            .actor::<StreamReceiver>(1, 0)
            .expect("receiver present");
        let (first, last) = recv.span().expect("completed");
        let span_ns = (last - first).as_nanos().max(1) as u64;
        // Rate over the measured completions after the first (span covers
        // messages-1 inter-arrival gaps).
        let rate = (spec.messages.saturating_sub(1)) as f64 / (span_ns as f64 / 1e9);
        let m = self.metrics();
        let rx = &m.nodes[1];
        StreamReport {
            msgs_per_sec: rate,
            rx_interrupts: rx.nic.interrupts.get(),
            interrupts_per_msg: rx.nic.interrupts.get() as f64 / spec.messages as f64,
            rx_wakeups: rx.host.wakeups.get(),
            rx_cache_bounces: rx.host.cache_bounces.get(),
            span_ns,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::system::ClusterBuilder;
    use omx_host::IrqRouting;
    use omx_nic::CoalescingStrategy;

    fn rate(strategy: CoalescingStrategy, routing: IrqRouting, sleep: bool) -> StreamReport {
        ClusterBuilder::new()
            .nodes(2)
            .strategy(strategy)
            .routing(routing)
            .sleep(sleep)
            .build()
            .run_stream(StreamSpec {
                msg_len: 128,
                messages: 1_500,
                window: 32,
            })
    }

    #[test]
    fn disabling_coalescing_tanks_message_rate() {
        // Fig. 4 / Table I: disabling coalescing roughly halves the rate in
        // the default configuration (round-robin IRQs, sleep allowed).
        let default = rate(
            CoalescingStrategy::Timeout { delay_us: 75 },
            IrqRouting::RoundRobin,
            true,
        );
        let disabled = rate(CoalescingStrategy::Disabled, IrqRouting::RoundRobin, true);
        let ratio = default.msgs_per_sec / disabled.msgs_per_sec;
        assert!(
            ratio > 1.5,
            "default {:.0}/s vs disabled {:.0}/s (ratio {ratio:.2})",
            default.msgs_per_sec,
            disabled.msgs_per_sec
        );
        assert!(
            disabled.rx_interrupts > default.rx_interrupts * 5,
            "disabled must interrupt far more often"
        );
    }

    #[test]
    fn disabling_sleep_improves_disabled_coalescing_rate() {
        // Fig. 4: "disabling sleeping significantly improves the message
        // rate" when interrupts are frequent.
        let sleeping = rate(CoalescingStrategy::Disabled, IrqRouting::RoundRobin, true);
        let awake = rate(CoalescingStrategy::Disabled, IrqRouting::RoundRobin, false);
        assert!(
            awake.msgs_per_sec > sleeping.msgs_per_sec * 1.1,
            "awake {:.0}/s vs sleeping {:.0}/s",
            awake.msgs_per_sec,
            sleeping.msgs_per_sec
        );
        assert_eq!(awake.rx_wakeups, 0);
        assert!(sleeping.rx_wakeups > 0);
    }

    #[test]
    fn binding_interrupts_removes_cache_bounces() {
        let scattered = rate(CoalescingStrategy::Disabled, IrqRouting::RoundRobin, false);
        let bound = rate(CoalescingStrategy::Disabled, IrqRouting::Fixed(1), false);
        assert!(bound.rx_cache_bounces < scattered.rx_cache_bounces / 4);
        // Both configurations are sender-bound here; binding must not be
        // meaningfully slower (it removes bounces from the receive path).
        assert!(bound.msgs_per_sec >= scattered.msgs_per_sec * 0.99);
    }

    #[test]
    fn stream_strategy_beats_openmx_on_message_rate() {
        // §IV-C2: Stream coalescing halves the interrupt count of Open-MX
        // coalescing on a small-message stream.
        let openmx = rate(
            CoalescingStrategy::OpenMx { delay_us: 75 },
            IrqRouting::RoundRobin,
            true,
        );
        let stream = rate(
            CoalescingStrategy::Stream { delay_us: 75 },
            IrqRouting::RoundRobin,
            true,
        );
        assert!(
            (stream.rx_interrupts as f64) < openmx.rx_interrupts as f64 * 0.75,
            "stream {} vs open-mx {} interrupts",
            stream.rx_interrupts,
            openmx.rx_interrupts
        );
        assert!(stream.msgs_per_sec >= openmx.msgs_per_sec * 0.95);
    }

    #[test]
    fn openmx_rate_sits_between_disabled_and_default() {
        // Table I row 0 B: Disabled 252k ≤ Open-MX 423k < Default 490k.
        // Our model reproduces Disabled and Default quantitatively; the
        // Open-MX gap over Disabled at 0 B is under-modelled (the paper
        // attributes it to unmarked acks avoiding interrupts, a sender-side
        // effect our receiver-bound equilibrium damps), so we assert the
        // weak ordering only — see EXPERIMENTS.md.
        let disabled = rate(CoalescingStrategy::Disabled, IrqRouting::RoundRobin, true);
        let openmx = rate(
            CoalescingStrategy::OpenMx { delay_us: 75 },
            IrqRouting::RoundRobin,
            true,
        );
        let default = rate(
            CoalescingStrategy::Timeout { delay_us: 75 },
            IrqRouting::RoundRobin,
            true,
        );
        assert!(openmx.msgs_per_sec >= disabled.msgs_per_sec * 0.98);
        assert!(default.msgs_per_sec > openmx.msgs_per_sec);
        assert!(default.msgs_per_sec > disabled.msgs_per_sec * 1.5);
    }
}
