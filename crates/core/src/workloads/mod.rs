//! Built-in microbenchmark workloads, mirroring the paper's §IV benchmarks.
//!
//! * [`pingpong`] — the classic latency/throughput ping-pong (Figs. 5 & 6,
//!   Table II's transfer-time column),
//! * [`stream`] — unidirectional message-rate streams (Fig. 4, Table I),
//! * [`overhead`] — the per-packet interrupt-overhead microbenchmark
//!   (§IV-B2: a stream of invalid packets dropped by the low-level stack),
//! * [`transfer`] — repeated single-message transfers on an idle system
//!   (Table II's 234 KiB anatomy, the §IV-C3 marker ablation, and
//!   Table III's mis-ordering study).
//!
//! Each workload is an [`crate::system::Actor`] pair plus a convenience
//! `Cluster::run_*` method that wires the actors, runs the simulation and
//! extracts a typed report.

pub mod overhead;
pub mod pingpong;
pub mod stream;
pub mod transfer;
