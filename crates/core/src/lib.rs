//! # omx-core — the Open-MX message-passing stack over simulated Ethernet
//!
//! This crate implements the paper's software system: an MX-compatible
//! message-passing stack layered on generic Ethernet, with the sender-side
//! *latency-sensitive packet marking* that the modified NIC firmware
//! (in `omx-nic`) exploits.
//!
//! Layer map (bottom-up):
//!
//! * [`wire`] — the MXoE-style wire protocol: small (≤128 B eager), medium
//!   (≤32 KiB fragmented eager) and large messages (rendezvous → pull →
//!   notify, 32-frame blocks, 4 pipelined requests), plus acks,
//! * [`marking`] — which packets the sender driver marks latency-sensitive
//!   (§III-B), with per-class toggles for the marker-ablation experiment and
//!   the mark-displacement knob used by the mis-ordering experiment,
//! * [`matching`] — MX 64-bit match-info tag matching with masks,
//! * [`proto`] — the per-node driver: fragmentation, reassembly, the pull
//!   engine, ack generation and retransmission,
//! * [`system`] — the cluster orchestrator: N nodes (host + NIC + driver)
//!   on a switched fabric, driven as one `omx_sim::Model`,
//! * [`workloads`] — built-in microbenchmark actors (ping-pong, streams,
//!   the interrupt-overhead test) mirroring the paper's §IV benchmarks,
//! * [`metrics`] — per-run measurement harvest,
//! * [`telemetry`] — windowed time-series samplers (engine-tick driven)
//!   and p50/p99/p999 SLO summaries over the counters the layers above
//!   expose.
//!
//! The quickest entry point is [`ClusterBuilder`]:
//!
//! ```
//! use omx_core::prelude::*;
//!
//! let mut cluster = ClusterBuilder::new()
//!     .nodes(2)
//!     .strategy(CoalescingStrategy::OpenMx { delay_us: 75 })
//!     .build();
//! let report = cluster.run_pingpong(PingPongSpec {
//!     msg_len: 128,
//!     iterations: 100,
//!     warmup: 10,
//! });
//! assert!(report.half_rtt_ns > 0);
//! ```

#![warn(missing_docs)]

pub mod bytebuf;
pub mod config;
pub mod latency;
pub mod marking;
pub mod matching;
pub mod metrics;
pub mod par_run;
pub mod proto;
pub mod sanitizer;
pub mod system;
pub mod telemetry;
pub mod trace;
pub mod wire;
pub mod workloads;

pub use config::ClusterConfig;
pub use omx_nic::offload;
pub use par_run::{take_engine_segments, EngineSegments};
pub use system::{Cluster, ClusterBuilder};

/// Convenience re-exports for examples and downstream users.
pub mod prelude {
    pub use crate::config::ClusterConfig;
    pub use crate::latency::{LatencyBreakdown, PhaseSummary};
    pub use crate::marking::MarkingPolicy;
    pub use crate::metrics::ClusterMetrics;
    pub use crate::sanitizer::SanitizerReport;
    pub use crate::system::{Cluster, ClusterBuilder};
    pub use crate::telemetry::{SloSummary, Telemetry, TelemetryConfig};
    pub use crate::trace::{TraceEvent, TraceKind, Tracer};
    pub use crate::wire::{EndpointAddr, NodeId};
    pub use crate::workloads::pingpong::{PingPongReport, PingPongSpec};
    pub use crate::workloads::stream::{StreamReport, StreamSpec};
    pub use omx_host::{CostModel, HostConfig, IrqRouting};
    pub use omx_nic::offload::{CollOp, OffloadCollDesc, OffloadConfig, OffloadCounters};
    pub use omx_nic::{CoalescingStrategy, NicConfig};
    pub use omx_sim::{Time, TimeDelta};
}
