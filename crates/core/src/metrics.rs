//! Per-run measurement harvest.
//!
//! [`ClusterMetrics`] collects every counter the paper reports on — NIC
//! interrupts (Tables II and V), host wakeups and cache bounces (§IV-B),
//! retransmissions and ack volume (§IV-C2) — in one serialisable struct the
//! experiment harness can diff across strategies.

use crate::proto::DriverCounters;
use omx_host::HostCounters;
use omx_nic::NicCounters;
use omx_sim::stats::TimeWeighted;

/// Counters of one node after a run.
#[derive(Debug, Clone)]
pub struct NodeMetrics {
    /// NIC counters (interrupts, packets, marks, batch sizes).
    pub nic: NicCounters,
    /// Host counters (irqs serviced, wakeups, busy time, bounces).
    pub host: HostCounters,
    /// Driver counters (retransmits, acks, completions).
    pub driver: DriverCounters,
    /// Time-weighted depth of the NIC's in-flight DMA set (how much
    /// reassembly work is outstanding at any instant).
    pub pending_dma: TimeWeighted,
}

omx_sim::impl_to_json!(NodeMetrics {
    nic,
    host,
    driver,
    pending_dma,
});
omx_sim::impl_from_json!(NodeMetrics {
    nic,
    host,
    driver,
    pending_dma,
});

/// Whole-cluster metrics after a run.
#[derive(Debug, Clone)]
pub struct ClusterMetrics {
    /// Simulated time at harvest, nanoseconds.
    pub sim_time_ns: u64,
    /// Frames the fabric carried successfully.
    pub frames_carried: u64,
    /// Frames the fabric dropped (injected loss).
    pub frames_dropped: u64,
    /// Frames tail-dropped at a full switch egress buffer (zero unless
    /// [`omx_fabric::FabricConfig::switch_buffer_frames`] is bounded).
    pub switch_drops: u64,
    /// Deepest any switch egress buffer ever got, in frames.
    pub switch_occupancy_peak: u64,
    /// Per-egress-port time-weighted queue-depth gauge (index = port/node id).
    pub switch_queue_depth: Vec<TimeWeighted>,
    /// Per-node counters.
    pub nodes: Vec<NodeMetrics>,
}

omx_sim::impl_to_json!(ClusterMetrics {
    sim_time_ns,
    frames_carried,
    frames_dropped,
    switch_drops,
    switch_occupancy_peak,
    switch_queue_depth,
    nodes,
});
omx_sim::impl_from_json!(ClusterMetrics {
    sim_time_ns,
    frames_carried,
    frames_dropped,
    switch_drops,
    switch_occupancy_peak,
    switch_queue_depth,
    nodes,
});

impl ClusterMetrics {
    /// Total interrupts across all nodes ("on both sides", Table II).
    pub fn total_interrupts(&self) -> u64 {
        self.nodes.iter().map(|n| n.nic.interrupts.get()).sum()
    }

    /// Total packets accepted by all NICs.
    pub fn total_packets(&self) -> u64 {
        self.nodes.iter().map(|n| n.nic.packets.get()).sum()
    }

    /// Total C1E wakeups across all nodes.
    pub fn total_wakeups(&self) -> u64 {
        self.nodes.iter().map(|n| n.host.wakeups.get()).sum()
    }

    /// Total cache-line bounces across all nodes.
    pub fn total_cache_bounces(&self) -> u64 {
        self.nodes.iter().map(|n| n.host.cache_bounces.get()).sum()
    }

    /// Total host interrupt busy time (ns) across all nodes.
    pub fn total_irq_busy_ns(&self) -> u64 {
        self.nodes.iter().map(|n| n.host.irq_busy_ns.get()).sum()
    }

    /// Total eager retransmissions.
    pub fn total_retransmits(&self) -> u64 {
        self.nodes
            .iter()
            .map(|n| n.driver.eager_retransmits.get())
            .sum()
    }

    /// Total standalone acks sent.
    pub fn total_acks(&self) -> u64 {
        self.nodes.iter().map(|n| n.driver.acks_sent.get()).sum()
    }

    /// Total packets dropped to NIC ring overflow.
    pub fn total_ring_drops(&self) -> u64 {
        self.nodes.iter().map(|n| n.nic.ring_drops.get()).sum()
    }

    /// Total pull-block re-requests (receiver-side stall recovery).
    pub fn total_pull_rerequests(&self) -> u64 {
        self.nodes
            .iter()
            .map(|n| n.driver.pull_rerequests.get())
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn node_with(irqs: u64, wakeups: u64, acks: u64) -> NodeMetrics {
        let mut nic = NicCounters::default();
        nic.interrupts.add(irqs);
        nic.packets.add(irqs * 3);
        let mut host = HostCounters::default();
        host.wakeups.add(wakeups);
        host.irq_busy_ns.add(irqs * 100);
        host.cache_bounces.add(wakeups * 2);
        let mut driver = DriverCounters::default();
        driver.acks_sent.add(acks);
        driver.eager_retransmits.add(1);
        NodeMetrics {
            nic,
            host,
            driver,
            pending_dma: TimeWeighted::default(),
        }
    }

    #[test]
    fn totals_sum_across_nodes() {
        let m = ClusterMetrics {
            sim_time_ns: 1_000,
            frames_carried: 10,
            frames_dropped: 1,
            switch_drops: 0,
            switch_occupancy_peak: 0,
            switch_queue_depth: vec![],
            nodes: vec![node_with(5, 2, 7), node_with(3, 4, 1)],
        };
        assert_eq!(m.total_interrupts(), 8);
        assert_eq!(m.total_packets(), 24);
        assert_eq!(m.total_wakeups(), 6);
        assert_eq!(m.total_cache_bounces(), 12);
        assert_eq!(m.total_irq_busy_ns(), 800);
        assert_eq!(m.total_retransmits(), 2);
        assert_eq!(m.total_acks(), 8);
    }

    #[test]
    fn empty_cluster_is_all_zero() {
        let m = ClusterMetrics {
            sim_time_ns: 0,
            frames_carried: 0,
            frames_dropped: 0,
            switch_drops: 0,
            switch_occupancy_peak: 0,
            switch_queue_depth: vec![],
            nodes: vec![],
        };
        assert_eq!(m.total_interrupts(), 0);
        assert_eq!(m.total_acks(), 0);
    }

    #[test]
    fn metrics_serialize_to_json() {
        let m = ClusterMetrics {
            sim_time_ns: 42,
            frames_carried: 1,
            frames_dropped: 0,
            switch_drops: 3,
            switch_occupancy_peak: 2,
            switch_queue_depth: vec![TimeWeighted::default()],
            nodes: vec![node_with(1, 1, 1)],
        };
        // The bench harness persists these; the shape must stay stable.
        use omx_sim::json::{FromJson, Json, ToJson};
        let json = m.to_json().render();
        assert!(json.contains("\"sim_time_ns\":42"));
        let back =
            ClusterMetrics::from_json(&Json::parse(&json).expect("parses")).expect("roundtrip");
        assert_eq!(back.total_interrupts(), 1);
    }
}
