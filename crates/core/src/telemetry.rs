//! Windowed telemetry: sim-time-aligned samplers over the cluster's
//! counters and gauges.
//!
//! Every metric the harness emitted before this module was a whole-run
//! aggregate, which hides exactly the phenomenon the paper is about: the
//! interrupt-load/latency tradeoff is *dynamic* (the headline failure mode
//! is incast drops phase-locking into 20 ms RTO stalls, invisible in a
//! mean). This module turns the existing counters into time series:
//!
//! * The engine fires [`omx_sim::Model::tick`] at fixed sim-time window
//!   boundaries (see [`TelemetryConfig::window_ns`]). The orchestrator's
//!   tick reads instantaneous taps — [`NodeTap`] per node, [`PortTap`] per
//!   switch egress port — and hands them to [`Telemetry`].
//! * Each sampler diffs cumulative taps against the previous window and
//!   stores one `Copy` record ([`NodeWindow`] / [`PortWindow`]) into a
//!   bounded ring. Steady-state sampling allocates nothing: rings are
//!   pre-sized at enable time and evict oldest-first.
//! * Window semantics are `[start, end)`: the tick closing a window fires
//!   before any event scheduled at exactly the boundary, so a window never
//!   observes its successor's work. The partial final window is closed by
//!   one extra [`Telemetry::begin_window`] sample at drain time.
//!
//! Export paths: [`Telemetry::to_jsonl`] (one record per line, sorted by
//! time for timeline diffing) and [`Telemetry::counter_events`] /
//! [`Telemetry::to_chrome_json`] (Perfetto counter tracks, `ph: "C"`,
//! sharing the envelope and microsecond-timestamp convention of
//! [`crate::trace::Tracer::to_chrome_json`]).
//!
//! [`SloSummary`] is the aggregate companion: p50/p99/p999 over a latency
//! histogram, used by the campaign reports' opt-in `--slo` columns.

use crate::trace;
use omx_sim::json::{Json, ToJson};
use omx_sim::stats::Histogram;
use omx_sim::Time;

/// Configuration for the windowed telemetry sampler.
#[derive(Debug, Clone)]
pub struct TelemetryConfig {
    /// Window length in simulated nanoseconds (default 100 µs).
    pub window_ns: u64,
    /// Maximum windows retained per sampler ring; oldest are evicted first
    /// (default 4096 windows ≈ 400 ms of sim time at the default window).
    pub ring_capacity: usize,
}

impl Default for TelemetryConfig {
    fn default() -> Self {
        TelemetryConfig {
            window_ns: 100_000,
            ring_capacity: 4096,
        }
    }
}

/// Instantaneous per-node reading taken at a window boundary.
///
/// Fields marked *cumulative* are monotone run totals (the sampler stores
/// the delta); the rest are instantaneous gauges (stored as-is).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct NodeTap {
    /// Cumulative interrupts raised by the NIC.
    pub interrupts: u64,
    /// Cumulative coalesce-hold time, ns (sum of the hold histogram).
    pub hold_sum_ns: f64,
    /// Cumulative count of coalesce-hold samples.
    pub hold_count: u64,
    /// RX-ring slots occupied right now.
    pub rx_ring: u64,
    /// DMA transfers in flight right now.
    pub pending_dma: u64,
    /// Cumulative eager retransmissions sent.
    pub retransmits: u64,
    /// Cumulative rendezvous pull re-requests sent.
    pub rerequests: u64,
    /// Packets parked in reorder buffers right now.
    pub reorder_depth: u64,
    /// Cumulative application-payload bytes delivered (goodput).
    pub delivered_bytes: u64,
}

/// Instantaneous per-switch-egress-port reading taken at a window boundary.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PortTap {
    /// Frames buffered at this egress right now.
    pub queue_len: u64,
    /// Cumulative frames tail-dropped at this egress.
    pub drops: u64,
}

/// One closed window of a node's activity: deltas of cumulative taps,
/// boundary values of gauges.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NodeWindow {
    /// Window end, absolute sim nanoseconds (the start is the previous
    /// record's end, or the aligned boundary `end - window_ns`).
    pub end_ns: u64,
    /// Interrupts raised during the window.
    pub interrupts: u64,
    /// Coalesce-hold time accumulated during the window, ns.
    pub hold_sum_ns: u64,
    /// Coalesce-hold samples during the window.
    pub hold_count: u64,
    /// RX-ring occupancy at the window boundary.
    pub rx_ring: u64,
    /// DMAs in flight at the window boundary.
    pub pending_dma: u64,
    /// Eager retransmissions during the window.
    pub retransmits: u64,
    /// Pull re-requests during the window.
    pub rerequests: u64,
    /// Reorder-buffer depth at the window boundary.
    pub reorder_depth: u64,
    /// Goodput bytes delivered during the window.
    pub goodput_bytes: u64,
}

/// One closed window of a switch egress port: boundary queue depth plus
/// drops during the window.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PortWindow {
    /// Window end, absolute sim nanoseconds.
    pub end_ns: u64,
    /// Frames buffered at the window boundary.
    pub queue_len: u64,
    /// Frames tail-dropped during the window.
    pub drops: u64,
}

/// Fixed-capacity ring of window records; oldest evicted first.
#[derive(Debug, Clone)]
struct WindowRing<T> {
    buf: Vec<T>,
    capacity: usize,
    /// Index of the oldest element once the ring has wrapped.
    start: usize,
    /// Records evicted to make room (so exports can say what was lost).
    evicted: u64,
}

impl<T: Copy> WindowRing<T> {
    fn new(capacity: usize) -> Self {
        WindowRing {
            buf: Vec::with_capacity(capacity),
            capacity: capacity.max(1),
            start: 0,
            evicted: 0,
        }
    }

    fn push(&mut self, item: T) {
        if self.buf.len() < self.capacity {
            self.buf.push(item);
        } else {
            self.buf[self.start] = item;
            self.start = (self.start + 1) % self.capacity;
            self.evicted += 1;
        }
    }

    fn iter(&self) -> impl Iterator<Item = &T> {
        let (tail, head) = self.buf.split_at(self.start);
        head.iter().chain(tail.iter())
    }
}

/// Per-node sampler: previous cumulative tap plus the record ring.
#[derive(Debug, Clone)]
struct NodeSampler {
    prev: NodeTap,
    ring: WindowRing<NodeWindow>,
}

/// Per-port sampler: previous cumulative drop count plus the record ring.
#[derive(Debug, Clone)]
struct PortSampler {
    prev_drops: u64,
    ring: WindowRing<PortWindow>,
}

/// The windowed telemetry collector for one cluster run.
///
/// Driven by the orchestrator: each engine tick calls
/// [`Telemetry::begin_window`] then [`Telemetry::sample_node`] /
/// [`Telemetry::sample_port`] for every node and port, keeping all sampler
/// rings in lockstep. The partial final window is closed the same way at
/// drain time (guarded by `begin_window` returning `false` on a repeated
/// boundary, so finalizing is idempotent).
#[derive(Debug, Clone)]
pub struct Telemetry {
    cfg: TelemetryConfig,
    nodes: Vec<NodeSampler>,
    ports: Vec<PortSampler>,
    cur_end_ns: u64,
    last_end_ns: Option<u64>,
    windows: u64,
}

impl Telemetry {
    /// New collector for `nodes` nodes and `ports` switch egress ports.
    pub fn new(cfg: TelemetryConfig, nodes: usize, ports: usize) -> Self {
        let node_samplers = (0..nodes)
            .map(|_| NodeSampler {
                prev: NodeTap::default(),
                ring: WindowRing::new(cfg.ring_capacity),
            })
            .collect();
        let port_samplers = (0..ports)
            .map(|_| PortSampler {
                prev_drops: 0,
                ring: WindowRing::new(cfg.ring_capacity),
            })
            .collect();
        Telemetry {
            cfg,
            nodes: node_samplers,
            ports: port_samplers,
            cur_end_ns: 0,
            last_end_ns: None,
            windows: 0,
        }
    }

    /// Configuration in force.
    pub fn config(&self) -> &TelemetryConfig {
        &self.cfg
    }

    /// Start recording the window ending at `end`. Returns `false` (and
    /// records nothing) when `end` does not advance past the last recorded
    /// boundary — this is what makes drain-time finalization idempotent.
    pub fn begin_window(&mut self, end: Time) -> bool {
        let end_ns = end.as_nanos();
        if self.last_end_ns.is_some_and(|last| end_ns <= last) {
            return false;
        }
        self.cur_end_ns = end_ns;
        self.last_end_ns = Some(end_ns);
        self.windows += 1;
        true
    }

    /// Record node `idx`'s tap for the window opened by
    /// [`Telemetry::begin_window`].
    pub fn sample_node(&mut self, idx: usize, tap: NodeTap) {
        let end_ns = self.cur_end_ns;
        let s = &mut self.nodes[idx];
        // Cumulative sums are integer-valued ns below 2^53, so the f64
        // delta is exact and the cast is lossless.
        let hold_delta = (tap.hold_sum_ns - s.prev.hold_sum_ns).max(0.0) as u64;
        s.ring.push(NodeWindow {
            end_ns,
            interrupts: tap.interrupts - s.prev.interrupts,
            hold_sum_ns: hold_delta,
            hold_count: tap.hold_count - s.prev.hold_count,
            rx_ring: tap.rx_ring,
            pending_dma: tap.pending_dma,
            retransmits: tap.retransmits - s.prev.retransmits,
            rerequests: tap.rerequests - s.prev.rerequests,
            reorder_depth: tap.reorder_depth,
            goodput_bytes: tap.delivered_bytes - s.prev.delivered_bytes,
        });
        s.prev = tap;
    }

    /// Record port `idx`'s tap for the window opened by
    /// [`Telemetry::begin_window`].
    pub fn sample_port(&mut self, idx: usize, tap: PortTap) {
        let end_ns = self.cur_end_ns;
        let s = &mut self.ports[idx];
        s.ring.push(PortWindow {
            end_ns,
            queue_len: tap.queue_len,
            drops: tap.drops - s.prev_drops,
        });
        s.prev_drops = tap.drops;
    }

    /// Number of node samplers.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Number of port samplers.
    pub fn port_count(&self) -> usize {
        self.ports.len()
    }

    /// Windows recorded so far (including any evicted from the rings).
    pub fn windows_recorded(&self) -> u64 {
        self.windows
    }

    /// Total records evicted from rings across all samplers.
    pub fn records_evicted(&self) -> u64 {
        self.nodes.iter().map(|s| s.ring.evicted).sum::<u64>()
            + self.ports.iter().map(|s| s.ring.evicted).sum::<u64>()
    }

    /// Retained window records for node `idx`, oldest first.
    pub fn node_windows(&self, idx: usize) -> impl Iterator<Item = &NodeWindow> {
        self.nodes[idx].ring.iter()
    }

    /// Retained window records for port `idx`, oldest first.
    pub fn port_windows(&self, idx: usize) -> impl Iterator<Item = &PortWindow> {
        self.ports[idx].ring.iter()
    }

    /// Export the retained timeline as JSONL: one record per line, sorted
    /// by `(end_ns, kind, id)` with nodes before ports at equal times, so
    /// two runs with identical seeds produce byte-identical output.
    pub fn to_jsonl(&self) -> String {
        let mut lines: Vec<(u64, u8, usize, String)> = Vec::new();
        for (id, s) in self.nodes.iter().enumerate() {
            for w in s.ring.iter() {
                let obj = Json::obj(vec![
                    ("t_ns", Json::U64(w.end_ns)),
                    ("kind", Json::Str("node".to_string())),
                    ("id", Json::U64(id as u64)),
                    ("interrupts", Json::U64(w.interrupts)),
                    ("hold_sum_ns", Json::U64(w.hold_sum_ns)),
                    ("hold_count", Json::U64(w.hold_count)),
                    ("rx_ring", Json::U64(w.rx_ring)),
                    ("pending_dma", Json::U64(w.pending_dma)),
                    ("retransmits", Json::U64(w.retransmits)),
                    ("rerequests", Json::U64(w.rerequests)),
                    ("reorder_depth", Json::U64(w.reorder_depth)),
                    ("goodput_bytes", Json::U64(w.goodput_bytes)),
                ]);
                lines.push((w.end_ns, 0, id, obj.render()));
            }
        }
        for (id, s) in self.ports.iter().enumerate() {
            for w in s.ring.iter() {
                let obj = Json::obj(vec![
                    ("t_ns", Json::U64(w.end_ns)),
                    ("kind", Json::Str("port".to_string())),
                    ("id", Json::U64(id as u64)),
                    ("queue_len", Json::U64(w.queue_len)),
                    ("drops", Json::U64(w.drops)),
                ]);
                lines.push((w.end_ns, 1, id, obj.render()));
            }
        }
        lines.sort_by_key(|a| (a.0, a.1, a.2));
        let mut out = String::new();
        for (_, _, _, line) in lines {
            out.push_str(&line);
            out.push('\n');
        }
        out
    }

    /// Perfetto counter-track events (`ph: "C"`), one per metric per
    /// window, following the existing exporter's conventions: `pid` = node
    /// (ports map to the node they feed), timestamps in microseconds.
    pub fn counter_events(&self) -> Vec<Json> {
        let us = |ns: u64| Json::F64(ns as f64 / 1000.0);
        let counter = |name: &str, pid: u64, ts: u64, value: u64| {
            Json::obj(vec![
                ("name", Json::Str(name.to_string())),
                ("ph", Json::Str("C".to_string())),
                ("ts", us(ts)),
                ("pid", Json::U64(pid)),
                ("tid", Json::U64(0)),
                ("args", Json::obj(vec![("value", Json::U64(value))])),
            ])
        };
        let mut events = Vec::new();
        for (id, s) in self.nodes.iter().enumerate() {
            let pid = id as u64;
            for w in s.ring.iter() {
                events.push(counter("tel/interrupts", pid, w.end_ns, w.interrupts));
                events.push(counter("tel/hold_sum_ns", pid, w.end_ns, w.hold_sum_ns));
                events.push(counter("tel/rx_ring", pid, w.end_ns, w.rx_ring));
                events.push(counter("tel/pending_dma", pid, w.end_ns, w.pending_dma));
                events.push(counter("tel/retransmits", pid, w.end_ns, w.retransmits));
                events.push(counter("tel/rerequests", pid, w.end_ns, w.rerequests));
                events.push(counter("tel/reorder_depth", pid, w.end_ns, w.reorder_depth));
                events.push(counter("tel/goodput_bytes", pid, w.end_ns, w.goodput_bytes));
            }
        }
        for (id, s) in self.ports.iter().enumerate() {
            let pid = id as u64;
            for w in s.ring.iter() {
                events.push(counter("tel/switch_queue_len", pid, w.end_ns, w.queue_len));
                events.push(counter("tel/switch_drops", pid, w.end_ns, w.drops));
            }
        }
        events
    }

    /// Full Chrome trace-event envelope holding only the counter tracks
    /// (for merging with packet traces, pass [`Telemetry::counter_events`]
    /// to [`crate::trace::chrome_envelope`] alongside the tracer's events).
    pub fn to_chrome_json(&self) -> Json {
        trace::chrome_envelope(self.counter_events())
    }
}

/// p50/p99/p999 summary of a latency histogram — the SLO row attached to
/// campaign report cells when `--slo` is requested.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SloSummary {
    /// Number of latency samples.
    pub count: u64,
    /// Mean latency, ns.
    pub mean_ns: f64,
    /// Median latency, ns.
    pub p50_ns: u64,
    /// 99th-percentile latency, ns.
    pub p99_ns: u64,
    /// 99.9th-percentile latency, ns.
    pub p999_ns: u64,
}

impl SloSummary {
    /// Summarize `h`; `None` when the histogram is empty.
    pub fn from_histogram(h: &Histogram) -> Option<SloSummary> {
        Some(SloSummary {
            count: h.count(),
            mean_ns: h.mean(),
            p50_ns: h.p50()?,
            p99_ns: h.p99()?,
            p999_ns: h.p999()?,
        })
    }
}

impl ToJson for SloSummary {
    fn to_json(&self) -> Json {
        Json::obj(vec![
            ("count", Json::U64(self.count)),
            ("mean_ns", Json::F64(self.mean_ns)),
            ("p50_ns", Json::U64(self.p50_ns)),
            ("p99_ns", Json::U64(self.p99_ns)),
            ("p999_ns", Json::U64(self.p999_ns)),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tap(interrupts: u64, delivered: u64, rx_ring: u64) -> NodeTap {
        NodeTap {
            interrupts,
            delivered_bytes: delivered,
            rx_ring,
            ..NodeTap::default()
        }
    }

    #[test]
    fn deltas_and_gauges_per_window() {
        let mut tel = Telemetry::new(TelemetryConfig::default(), 1, 1);
        assert!(tel.begin_window(Time::from_nanos(100_000)));
        tel.sample_node(0, tap(5, 1_000, 3));
        tel.sample_port(
            0,
            PortTap {
                queue_len: 7,
                drops: 2,
            },
        );
        assert!(tel.begin_window(Time::from_nanos(200_000)));
        tel.sample_node(0, tap(8, 1_500, 1));
        tel.sample_port(
            0,
            PortTap {
                queue_len: 0,
                drops: 2,
            },
        );

        let w: Vec<&NodeWindow> = tel.node_windows(0).collect();
        assert_eq!(w.len(), 2);
        assert_eq!(
            (w[0].interrupts, w[0].goodput_bytes, w[0].rx_ring),
            (5, 1_000, 3)
        );
        assert_eq!(
            (w[1].interrupts, w[1].goodput_bytes, w[1].rx_ring),
            (3, 500, 1)
        );
        let p: Vec<&PortWindow> = tel.port_windows(0).collect();
        assert_eq!((p[0].queue_len, p[0].drops), (7, 2));
        assert_eq!((p[1].queue_len, p[1].drops), (0, 0));
    }

    #[test]
    fn begin_window_is_idempotent_at_same_boundary() {
        let mut tel = Telemetry::new(TelemetryConfig::default(), 1, 0);
        assert!(tel.begin_window(Time::from_nanos(100)));
        tel.sample_node(0, tap(1, 1, 0));
        // Finalize at the same instant: must be a no-op.
        assert!(!tel.begin_window(Time::from_nanos(100)));
        assert!(!tel.begin_window(Time::from_nanos(50)));
        assert_eq!(tel.windows_recorded(), 1);
    }

    #[test]
    fn ring_evicts_oldest() {
        let cfg = TelemetryConfig {
            window_ns: 10,
            ring_capacity: 3,
        };
        let mut tel = Telemetry::new(cfg, 1, 0);
        for i in 1..=5u64 {
            assert!(tel.begin_window(Time::from_nanos(i * 10)));
            tel.sample_node(0, tap(i, 0, 0));
        }
        let ends: Vec<u64> = tel.node_windows(0).map(|w| w.end_ns).collect();
        assert_eq!(ends, vec![30, 40, 50]);
        assert_eq!(tel.records_evicted(), 2);
        assert_eq!(tel.windows_recorded(), 5);
    }

    #[test]
    fn jsonl_is_time_major_and_stable() {
        let mut tel = Telemetry::new(TelemetryConfig::default(), 2, 1);
        tel.begin_window(Time::from_nanos(100));
        tel.sample_node(0, tap(1, 10, 0));
        tel.sample_node(1, tap(2, 20, 0));
        tel.sample_port(
            0,
            PortTap {
                queue_len: 1,
                drops: 0,
            },
        );
        tel.begin_window(Time::from_nanos(200));
        tel.sample_node(0, tap(1, 10, 0));
        tel.sample_node(1, tap(2, 20, 0));
        tel.sample_port(
            0,
            PortTap {
                queue_len: 0,
                drops: 0,
            },
        );

        let jsonl = tel.to_jsonl();
        let lines: Vec<&str> = jsonl.lines().collect();
        assert_eq!(lines.len(), 6);
        // Time-major: both nodes then the port at t=100, then t=200.
        assert!(lines[0].contains("\"t_ns\":100") && lines[0].contains("\"node\""));
        assert!(lines[1].contains("\"t_ns\":100") && lines[1].contains("\"id\":1"));
        assert!(lines[2].contains("\"t_ns\":100") && lines[2].contains("\"port\""));
        assert!(lines[3].contains("\"t_ns\":200"));
        // Determinism: rendering twice is byte-identical.
        assert_eq!(jsonl, tel.to_jsonl());
    }

    #[test]
    fn chrome_counters_reference_all_series() {
        let mut tel = Telemetry::new(TelemetryConfig::default(), 1, 1);
        tel.begin_window(Time::from_nanos(100_000));
        tel.sample_node(0, tap(4, 100, 2));
        tel.sample_port(
            0,
            PortTap {
                queue_len: 3,
                drops: 1,
            },
        );
        let chrome = tel.to_chrome_json().render();
        for name in [
            "tel/interrupts",
            "tel/goodput_bytes",
            "tel/switch_queue_len",
            "tel/switch_drops",
        ] {
            assert!(chrome.contains(name), "missing counter {name}");
        }
        assert!(chrome.contains("\"ph\":\"C\""));
        assert!(chrome.contains("traceEvents"));
    }

    #[test]
    fn slo_summary_from_histogram() {
        let mut h = Histogram::new();
        for v in 1..=1_000u64 {
            h.record(v * 1_000);
        }
        let slo = SloSummary::from_histogram(&h).unwrap();
        assert_eq!(slo.count, 1_000);
        assert!(slo.p50_ns <= slo.p99_ns && slo.p99_ns <= slo.p999_ns);
        assert!((slo.mean_ns - 500_500.0).abs() < 1.0);
        assert!(SloSummary::from_histogram(&Histogram::new()).is_none());
    }
}
