//! Packet-level event tracing.
//!
//! When enabled on a [`crate::Cluster`], the orchestrator records one
//! [`TraceEvent`] per interesting simulation step into a bounded ring
//! buffer. Traces turn "why did this transfer take 20 ms?" from archaeology
//! into reading: the exact interleaving of arrivals, DMA completions, timer
//! firings, interrupt deliveries and driver hand-offs is visible, with the
//! packet kind attached.
//!
//! Tracing is off by default and costs nothing when disabled (a branch on an
//! `Option`).

use crate::wire::{Packet, PacketKind};
use omx_sim::Time;
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// What happened.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum TraceKind {
    /// A frame arrived at a node's NIC from the wire.
    FrameArrival,
    /// A frame's DMA into host memory completed.
    DmaComplete,
    /// The NIC coalescing timer fired.
    CoalesceTimer,
    /// An interrupt was delivered to a core.
    Interrupt,
    /// The receive handler finished a batch of this many packets.
    BatchDone,
    /// The driver handed a completion to an application endpoint.
    AppDelivery,
    /// A frame was dropped (ring overflow or injected loss).
    Drop,
}

/// One trace record.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TraceEvent {
    /// Simulated time.
    pub at_ns: u64,
    /// Node the event happened on.
    pub node: u16,
    /// Event class.
    pub kind: TraceKind,
    /// Short description of the subject (packet kind, batch size, core, …).
    pub detail: String,
}

/// Bounded trace buffer.
#[derive(Debug)]
pub struct Tracer {
    events: VecDeque<TraceEvent>,
    capacity: usize,
    dropped: u64,
}

impl Tracer {
    /// New tracer keeping at most `capacity` events (oldest evicted first).
    pub fn new(capacity: usize) -> Self {
        Tracer {
            events: VecDeque::with_capacity(capacity.min(4096)),
            capacity: capacity.max(1),
            dropped: 0,
        }
    }

    /// Record one event.
    pub fn record(&mut self, at: Time, node: u16, kind: TraceKind, detail: String) {
        if self.events.len() == self.capacity {
            self.events.pop_front();
            self.dropped += 1;
        }
        self.events.push_back(TraceEvent {
            at_ns: at.as_nanos(),
            node,
            kind,
            detail,
        });
    }

    /// The recorded events, oldest first.
    pub fn events(&self) -> impl Iterator<Item = &TraceEvent> {
        self.events.iter()
    }

    /// Number of recorded events currently held.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Events evicted because the buffer was full.
    pub fn evicted(&self) -> u64 {
        self.dropped
    }

    /// Render a human-readable timeline.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for e in &self.events {
            out.push_str(&format!(
                "{:>12} ns  node {}  {:<13} {}\n",
                e.at_ns,
                e.node,
                format!("{:?}", e.kind),
                e.detail
            ));
        }
        if self.dropped > 0 {
            out.push_str(&format!("... ({} earlier events evicted)\n", self.dropped));
        }
        out
    }
}

/// Compact label for a packet in trace details.
pub fn packet_label(pkt: &Packet) -> String {
    let mark = if pkt.hdr.latency_sensitive { "*" } else { "" };
    match pkt.kind {
        PacketKind::Small { msg, len, .. } => format!("small{mark} msg={} len={len}", msg.0),
        PacketKind::MediumFrag {
            msg, frag, frag_count, ..
        } => format!("medium{mark} msg={} frag={frag}/{frag_count}", msg.0),
        PacketKind::Rendezvous { msg, total_len, .. } => {
            format!("rendezvous{mark} msg={} len={total_len}", msg.0)
        }
        PacketKind::PullRequest { msg, block, .. } => {
            format!("pull-req{mark} msg={} block={block}", msg.0)
        }
        PacketKind::PullReply {
            msg, block, frame, last_of_block, ..
        } => format!(
            "pull-reply{mark} msg={} block={block} frame={frame}{}",
            msg.0,
            if last_of_block { " (last)" } else { "" }
        ),
        PacketKind::Notify { msg } => format!("notify{mark} msg={}", msg.0),
        PacketKind::Ack { cumulative_seq } => format!("ack seq={cumulative_seq}"),
        PacketKind::TcpSegment { len } => format!("tcp len={len}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wire::{EndpointAddr, MsgId, OmxHeader};

    fn t(ns: u64) -> Time {
        Time::from_nanos(ns)
    }

    #[test]
    fn records_and_renders_in_order() {
        let mut tr = Tracer::new(16);
        tr.record(t(10), 0, TraceKind::FrameArrival, "a".into());
        tr.record(t(20), 1, TraceKind::Interrupt, "b".into());
        assert_eq!(tr.len(), 2);
        let rendered = tr.render();
        assert!(rendered.contains("FrameArrival"));
        assert!(rendered.contains("Interrupt"));
        assert!(rendered.find("FrameArrival") < rendered.find("Interrupt"));
    }

    #[test]
    fn ring_buffer_evicts_oldest() {
        let mut tr = Tracer::new(3);
        for i in 0..5 {
            tr.record(t(i), 0, TraceKind::DmaComplete, format!("{i}"));
        }
        assert_eq!(tr.len(), 3);
        assert_eq!(tr.evicted(), 2);
        let first = tr.events().next().unwrap();
        assert_eq!(first.detail, "2");
        assert!(tr.render().contains("2 earlier events evicted"));
    }

    #[test]
    fn packet_labels_show_marks_and_structure() {
        let hdr = OmxHeader {
            src: EndpointAddr::new(0, 0),
            dst: EndpointAddr::new(1, 0),
            latency_sensitive: true,
            seq: 0,
            ack: 0,
        };
        let p = Packet {
            hdr,
            kind: PacketKind::PullReply {
                msg: MsgId(7),
                block: 2,
                frame: 31,
                frame_len: 1500,
                last_of_block: true,
            },
        };
        let label = packet_label(&p);
        assert!(label.contains("pull-reply*"));
        assert!(label.contains("block=2"));
        assert!(label.contains("(last)"));

        let q = Packet {
            hdr: OmxHeader {
                latency_sensitive: false,
                ..hdr
            },
            kind: PacketKind::Small {
                msg: MsgId(1),
                match_info: 0,
                len: 64,
            },
        };
        assert!(packet_label(&q).starts_with("small msg=1"));
    }

    #[test]
    fn empty_tracer() {
        let tr = Tracer::new(8);
        assert!(tr.is_empty());
        assert_eq!(tr.render(), "");
    }
}
