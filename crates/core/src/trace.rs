//! Structured packet-level event tracing.
//!
//! When enabled on a [`crate::Cluster`], the orchestrator records one
//! [`TraceEvent`] per interesting simulation step into a bounded ring
//! buffer. Traces turn "why did this transfer take 20 ms?" from archaeology
//! into reading: the exact interleaving of transmissions, arrivals, DMA
//! completions, timer firings, interrupt deliveries and driver hand-offs is
//! visible, with typed payloads attached.
//!
//! Events carry [`TraceData`] — a `Copy` payload of packet/descriptor/core
//! identifiers, not a pre-formatted string — so recording never allocates
//! and the events stay machine-readable. The identifiers are enough to link
//! events causally into per-message lifecycle spans (transmit → frame
//! arrival → DMA complete → coalesce hold → interrupt → driver batch → app
//! delivery); [`crate::latency`] builds those spans and decomposes
//! end-to-end latency into phases.
//!
//! Three exporters read the buffer:
//!
//! * [`Tracer::render`] — a human-readable timeline,
//! * [`Tracer::to_jsonl`] — one JSON object per event, for ad-hoc scripting,
//! * [`Tracer::to_chrome_json`] — the Chrome trace-event format, loadable in
//!   Perfetto (<https://ui.perfetto.dev>) or `chrome://tracing`; nodes map
//!   to processes, cores to threads, and per-message latency phases to
//!   duration slices.
//!
//! Tracing is off by default and costs nothing when disabled: the
//! orchestrator's trace hook takes the payload as a closure and never calls
//! it unless a tracer is installed (a branch on an `Option`).

use crate::latency;
use crate::wire::{Packet, PacketKind};
use omx_sim::json::{Json, ToJson};
use omx_sim::Time;
use std::collections::VecDeque;

/// What happened.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TraceKind {
    /// The driver handed a frame to the NIC TX path.
    Transmit,
    /// A frame arrived at a node's NIC from the wire.
    FrameArrival,
    /// A frame's DMA into host memory completed.
    DmaComplete,
    /// The NIC coalescing timer fired.
    CoalesceTimer,
    /// An interrupt was delivered to a core.
    Interrupt,
    /// The receive handler finished a batch of this many packets.
    BatchDone,
    /// The driver handed a completion to an application endpoint.
    AppDelivery,
    /// A frame was dropped (ring overflow or injected loss).
    Drop,
    /// The NIC offload engine put a collective frame on the wire.
    OffloadFrame,
    /// A NIC-resident collective completed on a node (exactly one per
    /// operation per rank; the completion IRQ is traced as `Interrupt`).
    OffloadComplete,
}

impl TraceKind {
    /// Stable lowercase name used by the JSON exporters.
    pub fn name(&self) -> &'static str {
        match self {
            TraceKind::Transmit => "transmit",
            TraceKind::FrameArrival => "frame_arrival",
            TraceKind::DmaComplete => "dma_complete",
            TraceKind::CoalesceTimer => "coalesce_timer",
            TraceKind::Interrupt => "interrupt",
            TraceKind::BatchDone => "batch_done",
            TraceKind::AppDelivery => "app_delivery",
            TraceKind::Drop => "drop",
            TraceKind::OffloadFrame => "offload_frame",
            TraceKind::OffloadComplete => "offload_complete",
        }
    }
}

/// Typed event payload. Everything is `Copy`: recording a trace event never
/// allocates, so tracing stays cheap enough to leave on for full runs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum TraceData {
    /// No payload.
    None,
    /// Static label (e.g. a drop reason).
    Text(&'static str),
    /// An Open-MX packet; `desc` is the RX DMA descriptor once allocated.
    Packet {
        /// The packet itself (headers only — payloads are synthetic).
        pkt: Packet,
        /// RX descriptor the NIC assigned, if any.
        desc: Option<u64>,
    },
    /// A raw (IP) frame of this wire length.
    RawFrame {
        /// Frame length on the wire, bytes.
        len: u32,
    },
    /// DMA completion for a descriptor.
    Desc {
        /// The completed descriptor.
        desc: u64,
    },
    /// Coalescing-timer epoch.
    Epoch {
        /// Timer epoch that fired.
        epoch: u64,
    },
    /// Interrupt raise: target core, handler start time, sleep state.
    Irq {
        /// Core the interrupt was routed to.
        core: usize,
        /// When the handler actually starts (queued behind earlier work).
        start_ns: u64,
        /// Whether the core had to exit C1E sleep.
        woken: bool,
    },
    /// Receive-handler batch completion on a core.
    Batch {
        /// Core that ran the handler.
        core: usize,
        /// Packets the batch claimed.
        packets: u32,
    },
    /// Application-visible receive completion.
    Recv {
        /// Local endpoint delivered to.
        ep: u8,
        /// Sending node (message ids are per-connection, so the sender is
        /// needed to identify the message globally).
        src: u16,
        /// Message id.
        msg: u64,
        /// Message length, bytes.
        len: u32,
    },
    /// NIC-offloaded collective frame (data hop or NIC-to-NIC ack).
    Coll {
        /// Sending rank (for acks: the rank sending the ack).
        src_rank: u32,
        /// Receiving rank (for acks: the data frame's original sender).
        dst_rank: u32,
        /// Operation sequence number.
        seq: u32,
        /// Schedule round.
        round: u16,
        /// Payload bytes (0 for tokens and acks).
        len: u32,
        /// True for NIC-to-NIC acknowledgments.
        ack: bool,
    },
    /// NIC-offloaded collective completion on a rank.
    CollDone {
        /// Endpoint notified.
        ep: u8,
        /// Operation sequence number.
        seq: u32,
        /// Global rank the operation completed for.
        rank: u32,
    },
}

/// One trace record.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TraceEvent {
    /// Simulated time.
    pub at_ns: u64,
    /// Node the event happened on.
    pub node: u16,
    /// Event class.
    pub kind: TraceKind,
    /// Typed payload.
    pub data: TraceData,
}

impl TraceEvent {
    /// Message id this event is about, when derivable from the payload.
    pub fn msg_id(&self) -> Option<u64> {
        match self.data {
            TraceData::Packet { pkt, .. } => pkt.msg_id().map(|m| m.0),
            TraceData::Recv { msg, .. } => Some(msg),
            _ => None,
        }
    }

    /// Core the event is bound to, when the payload names one. Used as the
    /// Chrome trace `tid` so per-core interrupt activity lines up.
    pub fn core(&self) -> Option<usize> {
        match self.data {
            TraceData::Irq { core, .. } | TraceData::Batch { core, .. } => Some(core),
            _ => None,
        }
    }

    /// Human-readable payload description (allocates; only for rendering).
    pub fn detail(&self) -> String {
        match self.data {
            TraceData::None => String::new(),
            TraceData::Text(s) => s.to_string(),
            TraceData::Packet { pkt, desc } => match desc {
                Some(d) => format!("{} desc={d}", packet_label(&pkt)),
                None => packet_label(&pkt),
            },
            TraceData::RawFrame { len } => format!("raw len={len}"),
            TraceData::Desc { desc } => format!("desc={desc}"),
            TraceData::Epoch { epoch } => format!("epoch {epoch}"),
            TraceData::Irq {
                core,
                start_ns,
                woken,
            } => format!(
                "core {core} start={start_ns}{}",
                if woken { " (woken)" } else { "" }
            ),
            TraceData::Batch { core, packets } => format!("core {core}, {packets} packets"),
            TraceData::Recv { ep, src, msg, len } => {
                format!("ep {ep} src={src} msg={msg} len={len}")
            }
            TraceData::Coll {
                src_rank,
                dst_rank,
                seq,
                round,
                len,
                ack,
            } => format!(
                "coll{} seq={seq} round={round} {src_rank}->{dst_rank} len={len}",
                if ack { " ack" } else { "" }
            ),
            TraceData::CollDone { ep, seq, rank } => {
                format!("rank {rank} ep {ep} seq={seq}")
            }
        }
    }

    fn args(&self) -> Vec<(String, Json)> {
        let mut args = Vec::new();
        let mut put = |k: &str, v: Json| args.push((k.to_string(), v));
        match self.data {
            TraceData::None => {}
            TraceData::Text(s) => put("label", Json::Str(s.to_string())),
            TraceData::Packet { pkt, desc } => {
                put("packet", Json::Str(packet_label(&pkt)));
                if let Some(m) = pkt.msg_id() {
                    put("msg", Json::U64(m.0));
                }
                put("len", Json::U64(u64::from(pkt.payload_len())));
                put("marked", Json::Bool(pkt.hdr.latency_sensitive));
                if let Some(d) = desc {
                    put("desc", Json::U64(d));
                }
            }
            TraceData::RawFrame { len } => {
                put("packet", Json::Str("raw".to_string()));
                put("len", Json::U64(u64::from(len)));
            }
            TraceData::Desc { desc } => put("desc", Json::U64(desc)),
            TraceData::Epoch { epoch } => put("epoch", Json::U64(epoch)),
            TraceData::Irq {
                core,
                start_ns,
                woken,
            } => {
                put("core", Json::U64(core as u64));
                put("start_ns", Json::U64(start_ns));
                put("woken", Json::Bool(woken));
            }
            TraceData::Batch { core, packets } => {
                put("core", Json::U64(core as u64));
                put("packets", Json::U64(u64::from(packets)));
            }
            TraceData::Recv { ep, src, msg, len } => {
                put("ep", Json::U64(u64::from(ep)));
                put("src", Json::U64(u64::from(src)));
                put("msg", Json::U64(msg));
                put("len", Json::U64(u64::from(len)));
            }
            TraceData::Coll {
                src_rank,
                dst_rank,
                seq,
                round,
                len,
                ack,
            } => {
                put("src_rank", Json::U64(u64::from(src_rank)));
                put("dst_rank", Json::U64(u64::from(dst_rank)));
                put("seq", Json::U64(u64::from(seq)));
                put("round", Json::U64(u64::from(round)));
                put("len", Json::U64(u64::from(len)));
                put("ack", Json::Bool(ack));
            }
            TraceData::CollDone { ep, seq, rank } => {
                put("ep", Json::U64(u64::from(ep)));
                put("seq", Json::U64(u64::from(seq)));
                put("rank", Json::U64(u64::from(rank)));
            }
        }
        args
    }
}

impl ToJson for TraceEvent {
    fn to_json(&self) -> Json {
        let mut fields = vec![
            ("at_ns".to_string(), Json::U64(self.at_ns)),
            ("node".to_string(), Json::U64(u64::from(self.node))),
            ("kind".to_string(), Json::Str(self.kind.name().to_string())),
        ];
        fields.extend(self.args());
        Json::Obj(fields)
    }
}

/// Bounded trace buffer.
#[derive(Debug)]
pub struct Tracer {
    events: VecDeque<TraceEvent>,
    capacity: usize,
    dropped: u64,
}

impl Tracer {
    /// New tracer keeping at most `capacity` events (oldest evicted first).
    /// The requested capacity is honored exactly (minimum 1).
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        Tracer {
            events: VecDeque::with_capacity(capacity),
            capacity,
            dropped: 0,
        }
    }

    /// The configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Record one event.
    pub fn record(&mut self, at: Time, node: u16, kind: TraceKind, data: TraceData) {
        if self.events.len() == self.capacity {
            self.events.pop_front();
            self.dropped += 1;
        }
        self.events.push_back(TraceEvent {
            at_ns: at.as_nanos(),
            node,
            kind,
            data,
        });
    }

    /// The recorded events, oldest first.
    pub fn events(&self) -> impl Iterator<Item = &TraceEvent> {
        self.events.iter()
    }

    /// Number of recorded events currently held.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Events evicted because the buffer was full.
    pub fn evicted(&self) -> u64 {
        self.dropped
    }

    /// Render a human-readable timeline.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for e in &self.events {
            out.push_str(&format!(
                "{:>12} ns  node {}  {:<13} {}\n",
                e.at_ns,
                e.node,
                format!("{:?}", e.kind),
                e.detail()
            ));
        }
        if self.dropped > 0 {
            out.push_str(&format!("... ({} earlier events evicted)\n", self.dropped));
        }
        out
    }

    /// Export as JSON Lines: one object per event, oldest first.
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for e in &self.events {
            out.push_str(&e.to_json().render());
            out.push('\n');
        }
        out
    }

    /// Export in the Chrome trace-event format (Perfetto,
    /// `chrome://tracing`).
    ///
    /// Every trace event becomes an instant event (`ph: "i"`) with
    /// `pid` = node and `tid` = core (0 when the event is not core-bound).
    /// On top of the instants, every message lifecycle the
    /// [`crate::latency`] analyzer can assemble is emitted as a stack of
    /// duration slices (`ph: "X"`): one enclosing `msg <id>` slice plus one
    /// slice per latency phase, on the receiving node under
    /// `tid` = `1000 + msg`. Timestamps are microseconds (the format's
    /// unit), kept fractional so nanosecond resolution survives.
    pub fn to_chrome_json(&self) -> Json {
        let us = |ns: u64| Json::F64(ns as f64 / 1000.0);
        let mut trace_events = Vec::new();
        for e in &self.events {
            let mut ev = vec![
                ("name".to_string(), Json::Str(e.kind.name().to_string())),
                ("ph".to_string(), Json::Str("i".to_string())),
                ("ts".to_string(), us(e.at_ns)),
                ("pid".to_string(), Json::U64(u64::from(e.node))),
                ("tid".to_string(), Json::U64(e.core().unwrap_or(0) as u64)),
                ("s".to_string(), Json::Str("t".to_string())),
            ];
            ev.push(("args".to_string(), Json::Obj(e.args())));
            trace_events.push(Json::Obj(ev));
        }
        let events: Vec<TraceEvent> = self.events.iter().copied().collect();
        for b in latency::analyze(&events) {
            // Thread lane for the message on the receiver process.
            let tid = 1000 + b.msg;
            let span = |name: &str, start: u64, dur: u64| {
                Json::obj(vec![
                    ("name", Json::Str(name.to_string())),
                    ("ph", Json::Str("X".to_string())),
                    ("ts", us(start)),
                    ("dur", Json::F64(dur as f64 / 1000.0)),
                    ("pid", Json::U64(u64::from(b.receiver))),
                    ("tid", Json::U64(tid)),
                    ("args", Json::obj(vec![("msg", Json::U64(b.msg))])),
                ])
            };
            trace_events.push(span(&format!("msg {}", b.msg), b.start_ns, b.total_ns()));
            let mut cursor = b.start_ns;
            for (name, dur) in b.phases() {
                if dur > 0 {
                    trace_events.push(span(name, cursor, dur));
                }
                cursor += dur;
            }
        }
        chrome_envelope(trace_events)
    }

    /// Chrome trace-event export with extra pre-built events (e.g. the
    /// telemetry counter tracks from
    /// [`crate::telemetry::Telemetry::counter_events`]) appended to the
    /// same `traceEvents` array, so packet instants, latency slices and
    /// counter tracks land in one Perfetto-loadable file.
    pub fn to_chrome_json_with(&self, extra: Vec<Json>) -> Json {
        let mut json = self.to_chrome_json();
        if let Json::Obj(pairs) = &mut json {
            for (k, v) in pairs.iter_mut() {
                if k == "traceEvents" {
                    if let Json::Arr(events) = v {
                        events.extend(extra);
                    }
                    break;
                }
            }
        }
        json
    }
}

/// Wrap pre-built trace events in the Chrome trace-event envelope shared
/// by every Perfetto export in this crate.
pub fn chrome_envelope(trace_events: Vec<Json>) -> Json {
    Json::obj(vec![
        ("traceEvents", Json::Arr(trace_events)),
        ("displayTimeUnit", Json::Str("ns".to_string())),
    ])
}

/// Compact label for a packet in trace details.
pub fn packet_label(pkt: &Packet) -> String {
    let mark = if pkt.hdr.latency_sensitive { "*" } else { "" };
    match pkt.kind {
        PacketKind::Small { msg, len, .. } => format!("small{mark} msg={} len={len}", msg.0),
        PacketKind::MediumFrag {
            msg,
            frag,
            frag_count,
            ..
        } => format!("medium{mark} msg={} frag={frag}/{frag_count}", msg.0),
        PacketKind::Rendezvous { msg, total_len, .. } => {
            format!("rendezvous{mark} msg={} len={total_len}", msg.0)
        }
        PacketKind::PullRequest { msg, block, .. } => {
            format!("pull-req{mark} msg={} block={block}", msg.0)
        }
        PacketKind::PullReply {
            msg,
            block,
            frame,
            last_of_block,
            ..
        } => format!(
            "pull-reply{mark} msg={} block={block} frame={frame}{}",
            msg.0,
            if last_of_block { " (last)" } else { "" }
        ),
        PacketKind::Notify { msg } => format!("notify{mark} msg={}", msg.0),
        PacketKind::Ack { cumulative_seq } => format!("ack seq={cumulative_seq}"),
        PacketKind::TcpSegment { len } => format!("tcp len={len}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wire::{EndpointAddr, MsgId, OmxHeader};

    fn t(ns: u64) -> Time {
        Time::from_nanos(ns)
    }

    fn small_pkt(msg: u64, marked: bool) -> Packet {
        Packet {
            hdr: OmxHeader {
                src: EndpointAddr::new(0, 0),
                dst: EndpointAddr::new(1, 0),
                latency_sensitive: marked,
                seq: 0,
                ack: 0,
            },
            kind: PacketKind::Small {
                msg: MsgId(msg),
                match_info: 0,
                len: 64,
            },
        }
    }

    #[test]
    fn records_and_renders_in_order() {
        let mut tr = Tracer::new(16);
        tr.record(
            t(10),
            0,
            TraceKind::FrameArrival,
            TraceData::Packet {
                pkt: small_pkt(1, false),
                desc: Some(0),
            },
        );
        tr.record(
            t(20),
            1,
            TraceKind::Interrupt,
            TraceData::Irq {
                core: 0,
                start_ns: 20,
                woken: false,
            },
        );
        assert_eq!(tr.len(), 2);
        let rendered = tr.render();
        assert!(rendered.contains("FrameArrival"));
        assert!(rendered.contains("Interrupt"));
        assert!(rendered.find("FrameArrival") < rendered.find("Interrupt"));
    }

    #[test]
    fn ring_buffer_evicts_oldest() {
        let mut tr = Tracer::new(3);
        for i in 0..5 {
            tr.record(t(i), 0, TraceKind::DmaComplete, TraceData::Desc { desc: i });
        }
        assert_eq!(tr.len(), 3);
        assert_eq!(tr.evicted(), 2);
        let first = tr.events().next().unwrap();
        assert_eq!(first.data, TraceData::Desc { desc: 2 });
        assert!(tr.render().contains("2 earlier events evicted"));
    }

    #[test]
    fn capacity_is_honored_exactly() {
        for cap in [1usize, 5, 4096, 5000] {
            let tr = Tracer::new(cap);
            assert_eq!(tr.capacity(), cap);
            let mut tr = tr;
            for i in 0..(cap as u64 + 10) {
                tr.record(t(i), 0, TraceKind::Transmit, TraceData::None);
            }
            assert_eq!(tr.len(), cap, "ring holds exactly the requested capacity");
            assert_eq!(tr.evicted(), 10);
        }
        // Degenerate request still yields a usable tracer.
        assert_eq!(Tracer::new(0).capacity(), 1);
    }

    #[test]
    fn packet_labels_show_marks_and_structure() {
        let hdr = OmxHeader {
            src: EndpointAddr::new(0, 0),
            dst: EndpointAddr::new(1, 0),
            latency_sensitive: true,
            seq: 0,
            ack: 0,
        };
        let p = Packet {
            hdr,
            kind: PacketKind::PullReply {
                msg: MsgId(7),
                block: 2,
                frame: 31,
                frame_len: 1500,
                last_of_block: true,
            },
        };
        let label = packet_label(&p);
        assert!(label.contains("pull-reply*"));
        assert!(label.contains("block=2"));
        assert!(label.contains("(last)"));

        let q = Packet {
            hdr: OmxHeader {
                latency_sensitive: false,
                ..hdr
            },
            kind: PacketKind::Small {
                msg: MsgId(1),
                match_info: 0,
                len: 64,
            },
        };
        assert!(packet_label(&q).starts_with("small msg=1"));
    }

    #[test]
    fn empty_tracer() {
        let tr = Tracer::new(8);
        assert!(tr.is_empty());
        assert_eq!(tr.render(), "");
        assert_eq!(tr.to_jsonl(), "");
    }

    #[test]
    fn jsonl_has_one_parseable_object_per_event() {
        let mut tr = Tracer::new(8);
        tr.record(
            t(5),
            0,
            TraceKind::Transmit,
            TraceData::Packet {
                pkt: small_pkt(3, true),
                desc: None,
            },
        );
        tr.record(t(9), 1, TraceKind::Drop, TraceData::Text("ring full"));
        let jsonl = tr.to_jsonl();
        let lines: Vec<&str> = jsonl.lines().collect();
        assert_eq!(lines.len(), 2);
        let first = Json::parse(lines[0]).expect("line parses");
        assert_eq!(first.get("kind").and_then(Json::as_str), Some("transmit"));
        assert_eq!(first.get("msg").and_then(Json::as_u64), Some(3));
        assert_eq!(first.get("marked").and_then(Json::as_bool), Some(true));
        let second = Json::parse(lines[1]).expect("line parses");
        assert_eq!(
            second.get("label").and_then(Json::as_str),
            Some("ring full")
        );
    }
}
