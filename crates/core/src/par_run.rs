//! The conservative parallel engine (DESIGN §12).
//!
//! `run_parallel` runs a not-yet-started [`Cluster`] on `parts`
//! partitions while producing output byte-identical to the serial engine —
//! for *every* run shape, including stop-mode workloads (pingpong, Table I
//! cells) that end via [`ActorCtx::stop`]. The scheme:
//!
//! * **Partition.** The cluster's nodes split into `parts` contiguous
//!   shards (`Shard::split`), each with its own event queue
//!   ([`ParQueue`]). Every event handler is shard-local by construction —
//!   cross-node interaction exists only as fabric transmissions.
//!
//! * **Epochs.** Per step the coordinator computes `T0` (the global
//!   minimum next-event time) and the raw epoch window
//!   `[T0, raw_end)` with `raw_end = min(T0 + lookahead, next telemetry
//!   tick boundary, horizon + 1)`. The lookahead is the fabric's minimum
//!   cross-node transit time ([`FabricConfig::lookahead_ns`]): any frame
//!   transmitted by an in-window dispatch arrives at `≥ T0 + lookahead ≥
//!   raw_end`, i.e. always in a later window — partitions never need each
//!   other's in-window effects. Each window then runs in one of three
//!   modes:
//!
//!   1. **Parallel barrier epoch** — when two or more partitions have
//!      events in the window and none of the *active* partitions contains
//!      a stop-capable actor ([`Actor::may_stop`]). Workers drain their
//!      queues concurrently between two barriers; the coordinator then
//!      replays the logged global effects in exact serial dispatch order,
//!      reconstructed by [`merge_order_with`] from the lineage stamps each
//!      dispatch carries (see `omx_sim::par` for the proof). The fabric
//!      (with its disturbance RNG), tracer, and sanitizer observe the
//!      identical call sequence the serial engine would have made. A
//!      `stop()` in this mode is a contract violation and panics.
//!
//!   2. **Single-active inline** — when exactly one partition has events
//!      in the window. The coordinator dispatches that partition inline
//!      (no barrier, no merge — stamps resolve immediately) and
//!      **adaptively widens** the window beyond the raw lookahead: the
//!      upper bound starts at `min(earliest event of any other partition,
//!      next tick, horizon + 1)` and clamps back to the earliest staged
//!      cross-boundary arrival as dispatches transmit. Sparse phases —
//!      coalescing-hold waits, RTO stalls, serialized request/response —
//!      thus advance in one window instead of one barrier per lookahead.
//!      Worked example: with 740 ns lookahead, a partition whose next
//!      event is at t=1 000 while every other partition is idle until
//!      t=2 000 000 (an RTO) would need ~2 700 raw epochs to reach it;
//!      inline mode runs the whole gap in a single window, clamping only
//!      when a transmit puts a frame on the wire (arrival at `t_x +
//!      lookahead` caps the window so the frame's destination partition
//!      re-enters the race at the right time).
//!
//!   3. **Serial window (the global stop vote)** — when several
//!      partitions are active *and* one of them could stop. The
//!      coordinator dispatches one event at a time in global `(time,
//!      Key)` order across all partition queues within `[T0, raw_end)`,
//!      resolving stamps and replaying effects immediately, and checks the
//!      stop flag after every dispatch — so a `stop()` lands at the exact
//!      serial stop ordinal and the run ends with byte-identical state.
//!
//!   Modes 2 and 3 are serial-order-exact by construction, which is what
//!   makes the stop vote sound: a stop can only ever fire on the
//!   coordinator, in global dispatch order. Widening multi-active windows
//!   per-partition is *not* sound — two partitions replaying different
//!   window bounds would interleave fabric RNG calls differently from the
//!   serial engine — so adaptive widening is restricted to mode 2.
//!
//! * **Event-path flattening.** The coordinator owns persistent merge
//!   scratch ([`MergeScratch`]), swap buffers for the per-partition
//!   record/effect logs, and per-owner arrival staging vectors that are
//!   bulk-pushed ([`ParQueue::push_batch`]) after each window — the
//!   steady-state epoch loop allocates nothing.
//!
//! Wall-clock attribution of the phases (dispatch / merge / barrier /
//! fast-forward) accumulates into process-global counters drained by
//! [`take_engine_segments`].
//!
//! [`FabricConfig::lookahead_ns`]: omx_fabric::FabricConfig::lookahead_ns
//! [`Actor::may_stop`]: crate::system::Actor::may_stop
//! [`ActorCtx::stop`]: crate::system::ActorCtx::stop

use crate::system::{Cluster, Ev, Shard, SimCtx, SystemModel, WireFrame};
use crate::telemetry::PortTap;
use crate::trace::{TraceData, TraceKind};
use crate::wire::{NodeId, Packet};
use omx_fabric::{PortId, TransmitOutcome};
use omx_sim::par::{merge_order_with, Key, MergeScratch, ParQueue, Rec, SpinBarrier, Stamp};
use omx_sim::{EventToken, StopCondition, Time};
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};
use std::time::Instant;

// ---------------------------------------------------------------------------
// Per-segment engine time attribution
// ---------------------------------------------------------------------------

static SEG_DISPATCH_NS: AtomicU64 = AtomicU64::new(0);
static SEG_MERGE_NS: AtomicU64 = AtomicU64::new(0);
static SEG_BARRIER_NS: AtomicU64 = AtomicU64::new(0);
static SEG_FAST_FORWARD_NS: AtomicU64 = AtomicU64::new(0);

/// Cumulative wall-clock attribution of parallel-engine runs, drained by
/// [`take_engine_segments`]. The segments overlap by construction (workers
/// dispatch while the coordinator is blocked at a barrier), so they are an
/// attribution, not a partition of the run's wall clock.
#[derive(Debug, Clone, Copy, Default)]
pub struct EngineSegments {
    /// Event dispatch: worker epoch processing (summed across workers, so
    /// concurrent epochs count each worker's wall time) plus the
    /// coordinator-inline and serial-window modes.
    pub dispatch_ns: u64,
    /// Epoch merge: lineage replay of the logged effects, fabric
    /// reinjection staging, and the arrival batch pushes.
    pub merge_ns: u64,
    /// Coordinator wall time blocked at the epoch barrier pair.
    pub barrier_ns: u64,
    /// Run epilogue: shard reassembly and the engine fast-forward.
    pub fast_forward_ns: u64,
}

/// Drain the cumulative per-segment engine timers (swap-to-zero): each call
/// returns the wall time accumulated since the previous call, across every
/// parallel run on any thread.
pub fn take_engine_segments() -> EngineSegments {
    EngineSegments {
        dispatch_ns: SEG_DISPATCH_NS.swap(0, Ordering::Relaxed),
        merge_ns: SEG_MERGE_NS.swap(0, Ordering::Relaxed),
        barrier_ns: SEG_BARRIER_NS.swap(0, Ordering::Relaxed),
        fast_forward_ns: SEG_FAST_FORWARD_NS.swap(0, Ordering::Relaxed),
    }
}

// ---------------------------------------------------------------------------
// Worker-side state
// ---------------------------------------------------------------------------

/// One global side effect logged by a worker dispatch, replayed by the
/// coordinator in serial dispatch order.
enum Effect {
    /// Open-MX packet handed to the fabric. `idx` is the push-intent index
    /// within the dispatch — the arrival's deterministic queue key.
    TxOmx {
        idx: u32,
        t: Time,
        pkt: Packet,
    },
    /// NIC-offload collective frame handed to the fabric.
    TxColl {
        idx: u32,
        t: Time,
        frame: omx_nic::offload::CollFrame,
    },
    /// Raw Ethernet frame handed to the fabric.
    TxRaw {
        idx: u32,
        t: Time,
        src: u16,
        dst: NodeId,
        payload_len: u32,
    },
    /// A trace record (payload built eagerly; only logged when tracing is
    /// enabled, so the disabled case still costs one branch).
    Trace {
        at: Time,
        node: u16,
        kind: TraceKind,
        data: TraceData,
    },
    SanPosted {
        src: u16,
        dst: u16,
        len: u32,
    },
    SanCompleted,
    SanDelivered {
        src: u16,
        dst: u16,
        msg: u64,
        len: u32,
    },
}

/// A worker's slice of the cluster plus its epoch-local logs.
struct WorkerShard {
    shard: Shard,
    queue: ParQueue<Ev>,
    /// Dispatch counter — the `local_seq` of the next minted stamp.
    next_local_seq: u64,
    /// Dispatch records of the current epoch, in pop order (barrier mode
    /// only; the inline modes resolve stamps immediately).
    recs: Vec<Rec>,
    /// Flat effect log of the current epoch/dispatch; in barrier mode,
    /// `effect_counts[i]` effects belong to `recs[i]`.
    effects: Vec<Effect>,
    effect_counts: Vec<u32>,
}

/// The worker-side [`SimCtx`]: node-local scheduling goes to the shard's
/// own queue immediately (keyed by lineage); global effects are logged.
struct ParCtx<'a> {
    queue: &'a mut ParQueue<Ev>,
    effects: &'a mut Vec<Effect>,
    /// Stamp minted for the dispatch currently running.
    parent: &'a Arc<Stamp>,
    /// Next push-intent index within this dispatch. Counts *both* local
    /// schedules and transmit intents, mirroring the serial engine's global
    /// push sequence restricted to this dispatch.
    idx: u32,
    now: Time,
    trace_on: bool,
}

impl ParCtx<'_> {
    fn next_idx(&mut self) -> u32 {
        let idx = self.idx;
        self.idx += 1;
        idx
    }
}

impl SimCtx for ParCtx<'_> {
    fn schedule_at(&mut self, at: Time, ev: Ev) -> EventToken {
        debug_assert!(at >= self.now, "event scheduled into the past");
        let idx = self.next_idx();
        self.queue.push(
            at,
            Key {
                parent: Arc::clone(self.parent),
                idx,
            },
            ev,
        )
    }

    fn cancel(&mut self, tok: EventToken) {
        self.queue.cancel(tok);
    }

    fn transmit_omx_wire(&mut self, t: Time, pkt: Packet) {
        let idx = self.next_idx();
        self.effects.push(Effect::TxOmx { idx, t, pkt });
    }

    fn transmit_coll_wire(&mut self, t: Time, frame: omx_nic::offload::CollFrame) {
        let idx = self.next_idx();
        self.effects.push(Effect::TxColl { idx, t, frame });
    }

    fn transmit_raw_wire(&mut self, t: Time, src: u16, dst: NodeId, payload_len: u32) {
        let idx = self.next_idx();
        self.effects.push(Effect::TxRaw {
            idx,
            t,
            src,
            dst,
            payload_len,
        });
    }

    fn trace(&mut self, at: Time, node: u16, kind: TraceKind, data: impl FnOnce() -> TraceData) {
        if self.trace_on {
            self.effects.push(Effect::Trace {
                at,
                node,
                kind,
                data: data(),
            });
        }
    }

    fn san_send_posted(&mut self, src: u16, dst: u16, len: u32) {
        self.effects.push(Effect::SanPosted { src, dst, len });
    }

    fn san_send_completed(&mut self) {
        self.effects.push(Effect::SanCompleted);
    }

    fn san_delivered(&mut self, src: u16, dst: u16, msg: u64, len: u32) {
        self.effects
            .push(Effect::SanDelivered { src, dst, msg, len });
    }
}

fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Which partition owns global node `node` (`bases` is sorted, starts at 0).
#[inline]
fn owner_of(bases: &[u16], node: u16) -> usize {
    bases.partition_point(|b| *b <= node) - 1
}

const DRAIN_STOP_MSG: &str = "ActorCtx::stop() during a parallel drain run \
     (run_drain promises no actor stops; route stop-mode workloads through \
     Cluster::run)";

/// Drain one worker's queue up to (excluding) `epoch_end`, minting a
/// lineage stamp per dispatch and logging global effects for the barrier
/// replay. Events a dispatch schedules inside the epoch window are
/// processed within the same epoch (the loop re-peeks). Barrier mode only
/// runs when no active partition can stop, so a stop here is always a
/// broken contract.
fn process_epoch(
    ws: &mut WorkerShard,
    shard_id: u32,
    epoch_end: Time,
    trace_on: bool,
    stop_armed: bool,
) {
    while ws.queue.peek_time().is_some_and(|t| t < epoch_end) {
        let (time, key, ev) = ws.queue.pop().expect("peeked event pops");
        let stamp = Stamp::new(time, shard_id, ws.next_local_seq);
        ws.next_local_seq += 1;
        let effects_before = ws.effects.len();
        let mut ctx = ParCtx {
            queue: &mut ws.queue,
            effects: &mut ws.effects,
            parent: &stamp,
            idx: 0,
            now: time,
            trace_on,
        };
        ws.shard.dispatch(time, ev, &mut ctx);
        if ws.shard.stop {
            if stop_armed {
                panic!(
                    "ActorCtx::stop() during a concurrent epoch: every actor \
                     in this partition declared may_stop() == false, yet one \
                     called stop() — fix that actor's may_stop()"
                );
            } else {
                panic!("{}", DRAIN_STOP_MSG);
            }
        }
        ws.recs.push(Rec {
            stamp,
            parent: key.parent,
            parent_idx: key.idx,
        });
        ws.effect_counts
            .push((ws.effects.len() - effects_before) as u32);
    }
}

/// Replay one logged effect against the global model state (fabric with its
/// disturbance RNG, tracer, sanitizer), staging any frame arrival into
/// `arrivals[owner]` for the post-window batch push. Returns the arrival
/// time when the effect put a frame on the wire that will land.
fn replay_effect(
    model: &mut SystemModel,
    bases: &[u16],
    stamp: &Arc<Stamp>,
    eff: Effect,
    arrivals: &mut [Vec<(Time, Key, Ev)>],
) -> Option<Time> {
    let mut stage = |model: &mut SystemModel,
                     tx: Time,
                     src: usize,
                     dst: u16,
                     wire_len: u32,
                     idx: u32,
                     pkt: WireFrame|
     -> Option<Time> {
        let outcome = model
            .fabric
            .transmit(tx, PortId(src), PortId(dst as usize), wire_len);
        if let TransmitOutcome::Arrives(at) = outcome {
            debug_assert!(
                at.as_nanos() >= model.fabric.config().earliest_arrival_ns(tx.as_nanos()),
                "lookahead violated: transmit at {tx:?} arrives at {at:?}"
            );
            arrivals[owner_of(bases, dst)].push((
                at,
                Key {
                    parent: Arc::clone(stamp),
                    idx,
                },
                Ev::FrameArrival { node: dst, pkt },
            ));
            Some(at)
        } else {
            None
        }
    };
    match eff {
        Effect::TxOmx { idx, t, pkt } => {
            let (src, dst) = (pkt.hdr.src.node.0, pkt.hdr.dst.node.0);
            let wire_len = pkt.wire_len();
            stage(
                model,
                t,
                src as usize,
                dst,
                wire_len,
                idx,
                WireFrame::Omx(pkt),
            )
        }
        Effect::TxColl { idx, t, frame } => {
            let (src, dst) = (frame.src_node, frame.dst_node);
            let wire_len = frame.wire_len();
            stage(
                model,
                t,
                src as usize,
                dst,
                wire_len,
                idx,
                WireFrame::Coll(frame),
            )
        }
        Effect::TxRaw {
            idx,
            t,
            src,
            dst,
            payload_len,
        } => {
            let frame = WireFrame::Raw { payload_len };
            stage(model, t, src as usize, dst.0, frame.wire_len(), idx, frame)
        }
        Effect::Trace {
            at,
            node,
            kind,
            data,
        } => {
            if let Some(tr) = model.tracer.as_mut() {
                tr.record(at, node, kind, data);
            }
            None
        }
        Effect::SanPosted { src, dst, len } => {
            model.sanitizer.on_send_posted(src, dst, len);
            None
        }
        Effect::SanCompleted => {
            model.sanitizer.on_send_completed();
            None
        }
        Effect::SanDelivered { src, dst, msg, len } => {
            model.sanitizer.on_delivered(src, dst, msg, len);
            None
        }
    }
}

/// Pop and dispatch the head event of `ws`'s queue inline on the
/// coordinator (modes 2 and 3): mint the stamp, dispatch, resolve the
/// stamp to the next global ordinal immediately — the inline modes run in
/// exact global dispatch order, so children and cross-queue comparisons
/// always see a fully resolved key set — and replay the dispatch's effects
/// on the spot. Returns the dispatch time, whether the dispatch stopped
/// the run, and the earliest staged frame arrival (`u64::MAX` if none).
#[allow(clippy::too_many_arguments)]
fn dispatch_inline(
    model: &mut SystemModel,
    ws: &mut WorkerShard,
    sid: u32,
    trace_on: bool,
    stop_armed: bool,
    bases: &[u16],
    next_ord: &mut u64,
    arrivals: &mut [Vec<(Time, Key, Ev)>],
) -> (Time, bool, u64) {
    let (time, _key, ev) = ws.queue.pop().expect("active partition pops");
    let stamp = Stamp::new(time, sid, ws.next_local_seq);
    ws.next_local_seq += 1;
    let mut ctx = ParCtx {
        queue: &mut ws.queue,
        effects: &mut ws.effects,
        parent: &stamp,
        idx: 0,
        now: time,
        trace_on,
    };
    ws.shard.dispatch(time, ev, &mut ctx);
    stamp.resolve(*next_ord);
    *next_ord += 1;
    let mut min_arrival = u64::MAX;
    for eff in ws.effects.drain(..) {
        if let Some(at) = replay_effect(model, bases, &stamp, eff, arrivals) {
            min_arrival = min_arrival.min(at.as_nanos());
        }
    }
    let stopped = ws.shard.stop;
    if stopped && !stop_armed {
        panic!("{}", DRAIN_STOP_MSG);
    }
    (time, stopped, min_arrival)
}

/// Coordinator-persistent swap buffers for the barrier-mode merge: workers
/// swap their filled record/effect logs for these (emptied, capacity
/// retained) vectors at each merge, so the steady-state epoch loop
/// allocates nothing.
struct MergeBufs {
    recs: Vec<Vec<Rec>>,
    effs: Vec<Vec<Effect>>,
    counts: Vec<Vec<u32>>,
}

/// Run `cluster` on `parts` partitions until quiescence, the horizon, or —
/// when `stop_armed` — an actor-requested stop.
///
/// Called only from [`Cluster::run`] / [`Cluster::run_drain`], which own
/// the eligibility check (not started, ≥ 2 nodes, lookahead ≥ 1 ns) and
/// the post-run bookkeeping (closing the telemetry window, the quiescence
/// sanitize). With `stop_armed == false` (the drain contract) any
/// `ActorCtx::stop` panics; with `stop_armed == true` the run ends at the
/// exact serial stop ordinal via the window modes described in the module
/// docs.
///
/// In parallel mode a horizon cut or a stop discards in-flight events past
/// the cut (the serial path keeps them queued for a follow-up `run`).
pub(crate) fn run_parallel(
    cluster: &mut Cluster,
    horizon: Time,
    parts: usize,
    stop_armed: bool,
) -> StopCondition {
    let tick_period = cluster.engine.tick_period_ns();
    let model = cluster.engine.model_mut();
    let lookahead_ns = model.fabric.config().lookahead_ns();
    debug_assert!(lookahead_ns >= 1, "parallel run needs positive lookahead");
    let trace_on = model.tracer.is_some();
    let keys = model.shard.actor_keys_sorted();

    let mut workers: Vec<Mutex<WorkerShard>> = model
        .shard
        .split(parts)
        .into_iter()
        .map(|shard| {
            Mutex::new(WorkerShard {
                shard,
                queue: ParQueue::new(),
                next_local_seq: 0,
                recs: Vec::new(),
                effects: Vec::new(),
                effect_counts: Vec::new(),
            })
        })
        .collect();
    // Per-partition stop capability, sampled once: drives the window-mode
    // choice (see module docs). Partitions whose actors all declare
    // may_stop() == false never force the serial window.
    let (bases, can_stop): (Vec<u16>, Vec<bool>) = workers
        .iter_mut()
        .map(|w| {
            let ws = w.get_mut().unwrap_or_else(PoisonError::into_inner);
            (ws.shard.base, ws.shard.may_stop())
        })
        .unzip();

    // Prime AppStart in global sorted-key order with root-lineage keys:
    // (time 0, root ordinal 0, idx i) reproduces the serial engine's
    // priming pop order exactly.
    let root = Stamp::root();
    for (i, &(node, ep)) in keys.iter().enumerate() {
        let ws = workers[owner_of(&bases, node)]
            .get_mut()
            .unwrap_or_else(PoisonError::into_inner);
        ws.queue.push(
            Time(0),
            Key {
                parent: Arc::clone(&root),
                idx: i as u32,
            },
            Ev::AppStart { node, ep },
        );
    }

    let start = SpinBarrier::new(parts + 1);
    let finish = SpinBarrier::new(parts + 1);
    let epoch_end = AtomicU64::new(0);
    let done = AtomicBool::new(false);
    let abort = AtomicBool::new(false);
    let panic_box: Mutex<Option<Box<dyn std::any::Any + Send>>> = Mutex::new(None);

    // Global dispatch ordinal (the root stamp owns 0), total dispatched
    // events, and the time of the last dispatched event.
    let mut next_ord: u64 = 1;
    let mut total_events: u64 = 0;
    let mut now = Time(0);
    let mut next_tick = tick_period.unwrap_or(u64::MAX);
    let mut stop = StopCondition::QueueEmpty;
    let horizon_bound = horizon.as_nanos().saturating_add(1);

    // Persistent coordinator state: merge scratch, swap buffers, and the
    // per-owner arrival staging — zero steady-state allocation.
    let mut scratch = MergeScratch::new();
    let mut bufs = MergeBufs {
        recs: (0..parts).map(|_| Vec::new()).collect(),
        effs: (0..parts).map(|_| Vec::new()).collect(),
        counts: (0..parts).map(|_| Vec::new()).collect(),
    };
    let mut arrivals: Vec<Vec<(Time, Key, Ev)>> = (0..parts).map(|_| Vec::new()).collect();

    let coord = std::thread::scope(|scope| {
        for (sid, w) in workers.iter().enumerate() {
            let (start, finish, epoch_end) = (&start, &finish, &epoch_end);
            let (done, abort, panic_box) = (&done, &abort, &panic_box);
            scope.spawn(move || loop {
                start.wait();
                if done.load(Ordering::Acquire) {
                    return;
                }
                // After a sibling's panic the run is aborting: keep
                // participating in the barrier protocol as a no-op so the
                // coordinator can shut everything down cleanly.
                if !abort.load(Ordering::Relaxed) {
                    let end = Time(epoch_end.load(Ordering::Acquire));
                    let t = Instant::now();
                    let r = catch_unwind(AssertUnwindSafe(|| {
                        process_epoch(&mut lock(w), sid as u32, end, trace_on, stop_armed);
                    }));
                    SEG_DISPATCH_NS.fetch_add(t.elapsed().as_nanos() as u64, Ordering::Relaxed);
                    if let Err(p) = r {
                        *lock(panic_box) = Some(p);
                        abort.store(true, Ordering::Release);
                    }
                }
                finish.wait();
            });
        }

        // Coordinator. Between `finish.wait()` and the next `start.wait()`
        // every worker is parked at the start barrier, so locking their
        // mutexes here is uncontended by construction. Panics (actor
        // asserts in the inline modes, merge invariants) are caught so the
        // workers can be released before unwinding — otherwise the scope
        // join would deadlock against the parked barrier.
        let r = catch_unwind(AssertUnwindSafe(|| {
            'run: loop {
                let mut guards: Vec<MutexGuard<'_, WorkerShard>> =
                    workers.iter().map(lock).collect();
                let Some(t0) = guards.iter().filter_map(|g| g.queue.peek_time()).min() else {
                    stop = StopCondition::QueueEmpty;
                    break 'run;
                };
                if t0 > horizon {
                    now = horizon;
                    stop = StopCondition::HorizonReached;
                    break 'run;
                }
                // Fire the telemetry ticks the serial engine would fire
                // before dispatching the next event: every unfired boundary
                // ≤ T0. All events earlier than T0 have been dispatched, so
                // the tick observes exactly the serial state.
                if let Some(p) = tick_period {
                    while next_tick <= t0.as_nanos() {
                        fire_tick(model, Time(next_tick), &mut guards);
                        next_tick += p;
                    }
                }
                // The window never crosses a tick boundary (ticks must
                // observe all events below the boundary first) nor the
                // horizon; it always admits the T0 event, so the run
                // terminates.
                let raw_end = t0
                    .as_nanos()
                    .saturating_add(lookahead_ns)
                    .min(next_tick)
                    .min(horizon_bound);
                let mut active_n = 0usize;
                let mut active_sid = 0usize;
                let mut stop_in_window = false;
                for (s, g) in guards.iter().enumerate() {
                    if g.queue.peek_time().is_some_and(|t| t.as_nanos() < raw_end) {
                        active_n += 1;
                        active_sid = s;
                        stop_in_window |= can_stop[s];
                    }
                }
                debug_assert!(active_n >= 1, "T0 partition must be active");

                if active_n == 1 {
                    // Mode 2: single-active inline with adaptive widening.
                    let sid = active_sid;
                    let f_other = guards
                        .iter()
                        .enumerate()
                        .filter(|&(s, _)| s != sid)
                        .filter_map(|(_, g)| g.queue.peek_time())
                        .map(|t| t.as_nanos())
                        .min()
                        .unwrap_or(u64::MAX);
                    debug_assert!(f_other >= raw_end, "inactive partition inside raw window");
                    let mut end = f_other.min(next_tick).min(horizon_bound);
                    let t_win = Instant::now();
                    let mut stopped = false;
                    while guards[sid]
                        .queue
                        .peek_time()
                        .is_some_and(|t| t.as_nanos() < end)
                    {
                        let (time, stop_hit, min_arrival) = dispatch_inline(
                            model,
                            &mut guards[sid],
                            sid as u32,
                            trace_on,
                            stop_armed,
                            &bases,
                            &mut next_ord,
                            &mut arrivals,
                        );
                        now = time;
                        total_events += 1;
                        // Clamp back on contact: the window must end at or
                        // before the first cross-boundary arrival so the
                        // destination partition re-enters the race in time.
                        end = end.min(min_arrival);
                        if stop_hit {
                            stopped = true;
                            break;
                        }
                    }
                    for (s, g) in guards.iter_mut().enumerate() {
                        g.queue.push_batch(&mut arrivals[s]);
                    }
                    SEG_DISPATCH_NS.fetch_add(t_win.elapsed().as_nanos() as u64, Ordering::Relaxed);
                    if stopped {
                        stop = StopCondition::PredicateSatisfied;
                        break 'run;
                    }
                    continue 'run;
                }

                if stop_armed && stop_in_window {
                    // Mode 3: serial window — the global stop vote. One
                    // dispatch at a time in global (time, Key) order across
                    // all partition queues within [T0, raw_end); every key
                    // parent is resolved (earlier windows resolved theirs,
                    // this window resolves per dispatch), so cross-queue
                    // comparison is exact.
                    let t_win = Instant::now();
                    let mut stopped = false;
                    loop {
                        let best = {
                            let heads: Vec<Option<(Time, &Key)>> =
                                guards.iter().map(|g| g.queue.peek()).collect();
                            let mut best: Option<usize> = None;
                            for (s, h) in heads.iter().enumerate() {
                                let Some((t, k)) = h else { continue };
                                if t.as_nanos() >= raw_end {
                                    continue;
                                }
                                best = match best {
                                    None => Some(s),
                                    Some(b) => {
                                        let (bt, bk) = heads[b].expect("best head stays live");
                                        if *t < bt
                                            || (*t == bt
                                                && k.cmp_key(bk) == std::cmp::Ordering::Less)
                                        {
                                            Some(s)
                                        } else {
                                            Some(b)
                                        }
                                    }
                                };
                            }
                            best
                        };
                        let Some(sid) = best else { break };
                        let (time, stop_hit, _) = dispatch_inline(
                            model,
                            &mut guards[sid],
                            sid as u32,
                            trace_on,
                            stop_armed,
                            &bases,
                            &mut next_ord,
                            &mut arrivals,
                        );
                        now = time;
                        total_events += 1;
                        if stop_hit {
                            stopped = true;
                            break;
                        }
                    }
                    for (s, g) in guards.iter_mut().enumerate() {
                        g.queue.push_batch(&mut arrivals[s]);
                    }
                    SEG_DISPATCH_NS.fetch_add(t_win.elapsed().as_nanos() as u64, Ordering::Relaxed);
                    if stopped {
                        stop = StopCondition::PredicateSatisfied;
                        break 'run;
                    }
                    continue 'run;
                }

                // Mode 1: parallel barrier epoch.
                epoch_end.store(raw_end, Ordering::Release);
                drop(guards);
                let t_bar = Instant::now();
                start.wait();
                // ... workers drain their queues up to `raw_end` ...
                finish.wait();
                SEG_BARRIER_NS.fetch_add(t_bar.elapsed().as_nanos() as u64, Ordering::Relaxed);
                if abort.load(Ordering::Acquire) {
                    break 'run;
                }

                // Merge the epoch: replay every logged effect in exact
                // serial dispatch order against the fabric / tracer /
                // sanitizer, staging cross-shard arrivals per owner for the
                // batch push. Workers swap their filled logs for last
                // epoch's emptied buffers — capacities ping-pong.
                let t_merge = Instant::now();
                let mut guards: Vec<MutexGuard<'_, WorkerShard>> =
                    workers.iter().map(lock).collect();
                for (s, g) in guards.iter_mut().enumerate() {
                    std::mem::swap(&mut g.recs, &mut bufs.recs[s]);
                    std::mem::swap(&mut g.effects, &mut bufs.effs[s]);
                    std::mem::swap(&mut g.effect_counts, &mut bufs.counts[s]);
                }
                {
                    let MergeBufs { recs, effs, counts } = &mut bufs;
                    let counts: &[Vec<u32>] = counts;
                    let mut effs: Vec<std::vec::Drain<'_, Effect>> =
                        effs.iter_mut().map(|v| v.drain(..)).collect();
                    merge_order_with(&mut scratch, recs, &mut next_ord, |s, i, rec| {
                        now = rec.stamp.time;
                        total_events += 1;
                        for _ in 0..counts[s][i] {
                            // Within one shard the merge visits records in
                            // pop order, so each shard's flat effect log is
                            // consumed strictly front to back.
                            let eff = effs[s].next().expect("effect log in sync with recs");
                            replay_effect(model, &bases, &rec.stamp, eff, &mut arrivals);
                        }
                    });
                }
                for (s, g) in guards.iter_mut().enumerate() {
                    g.queue.push_batch(&mut arrivals[s]);
                    bufs.recs[s].clear();
                    bufs.counts[s].clear();
                }
                SEG_MERGE_NS.fetch_add(t_merge.elapsed().as_nanos() as u64, Ordering::Relaxed);
            }
        }));

        done.store(true, Ordering::Release);
        start.wait();
        r
    });

    if let Some(p) = lock(&panic_box).take() {
        resume_unwind(p);
    }
    if let Err(p) = coord {
        resume_unwind(p);
    }

    let t_ff = Instant::now();
    for w in workers {
        let ws = w.into_inner().unwrap_or_else(PoisonError::into_inner);
        model.shard.absorb(ws.shard);
    }
    cluster.engine.fast_forward(now, total_events);
    SEG_FAST_FORWARD_NS.fetch_add(t_ff.elapsed().as_nanos() as u64, Ordering::Relaxed);
    stop
}

/// Close the telemetry window ending at `end`: the split-shard equivalent
/// of `SystemModel::sample_telemetry`. The coordinator already holds every
/// worker's lock when this runs.
fn fire_tick(model: &mut SystemModel, end: Time, guards: &mut [MutexGuard<'_, WorkerShard>]) {
    let Some(tel) = model.telemetry.as_mut() else {
        return;
    };
    if !tel.begin_window(end) {
        return;
    }
    for g in guards.iter() {
        g.shard.sample_nodes(tel);
    }
    for p in 0..model.fabric.ports() {
        tel.sample_port(
            p,
            PortTap {
                queue_len: model.fabric.switch_queue_len_at(PortId(p), end) as u64,
                drops: model.fabric.switch_drops_at(PortId(p)),
            },
        );
    }
}
