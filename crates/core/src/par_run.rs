//! The conservative parallel drain engine (DESIGN §12).
//!
//! [`drain_parallel`] runs a not-yet-started [`Cluster`] to quiescence on
//! `parts` worker threads while producing output byte-identical to the
//! serial engine. The scheme:
//!
//! * **Partition.** The cluster's nodes split into `parts` contiguous
//!   [`Shard`]s ([`Shard::split`]), each with its own event queue
//!   ([`ParQueue`]). Every event handler is shard-local by construction —
//!   cross-node interaction exists only as fabric transmissions.
//!
//! * **Epochs.** Time advances in barrier-synchronized epochs
//!   `[T0, epoch_end)` where `T0` is the global minimum next-event time and
//!   `epoch_end = min(T0 + lookahead, next telemetry tick boundary,
//!   horizon + 1)`. The lookahead is the fabric's minimum cross-node
//!   transit time ([`FabricConfig::lookahead_ns`]): any frame transmitted
//!   by an epoch-`[T0, end)` dispatch arrives at `≥ T0 + lookahead ≥ end`,
//!   i.e. always in a later epoch — workers never need each other's
//!   in-epoch effects.
//!
//! * **Deterministic merge.** Workers dispatch only *node-local* effects
//!   eagerly (their own queue); everything with global state — fabric
//!   transmits, trace records, sanitizer taps — is logged per dispatch.
//!   At the barrier the coordinator replays those logs in *exact serial
//!   dispatch order*, reconstructed by [`merge_order`] from the lineage
//!   stamps each dispatch carries (see `omx_sim::par` for the proof). The
//!   fabric (with its disturbance RNG), tracer, and sanitizer therefore
//!   observe the identical call sequence the serial engine would have made,
//!   and cross-shard frame arrivals are enqueued with deterministic keys.
//!
//! [`FabricConfig::lookahead_ns`]: omx_fabric::FabricConfig::lookahead_ns

use crate::system::{Cluster, Ev, Shard, SimCtx, SystemModel, WireFrame};
use crate::telemetry::PortTap;
use crate::trace::{TraceData, TraceKind};
use crate::wire::{NodeId, Packet};
use omx_fabric::{PortId, TransmitOutcome};
use omx_sim::par::{merge_order, Key, ParQueue, Rec, SpinBarrier, Stamp};
use omx_sim::{EventToken, StopCondition, Time};
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};

/// One global side effect logged by a worker dispatch, replayed by the
/// coordinator at the epoch barrier in serial dispatch order.
enum Effect {
    /// Open-MX packet handed to the fabric. `idx` is the push-intent index
    /// within the dispatch — the arrival's deterministic queue key.
    TxOmx {
        idx: u32,
        t: Time,
        pkt: Packet,
    },
    /// NIC-offload collective frame handed to the fabric.
    TxColl {
        idx: u32,
        t: Time,
        frame: omx_nic::offload::CollFrame,
    },
    /// Raw Ethernet frame handed to the fabric.
    TxRaw {
        idx: u32,
        t: Time,
        src: u16,
        dst: NodeId,
        payload_len: u32,
    },
    /// A trace record (payload built eagerly; only logged when tracing is
    /// enabled, so the disabled case still costs one branch).
    Trace {
        at: Time,
        node: u16,
        kind: TraceKind,
        data: TraceData,
    },
    SanPosted {
        src: u16,
        dst: u16,
        len: u32,
    },
    SanCompleted,
    SanDelivered {
        src: u16,
        dst: u16,
        msg: u64,
        len: u32,
    },
}

/// A worker's slice of the cluster plus its epoch-local logs.
struct WorkerShard {
    shard: Shard,
    queue: ParQueue<Ev>,
    /// Dispatch counter — the `local_seq` of the next minted stamp.
    next_local_seq: u64,
    /// Dispatch records of the current epoch, in pop order.
    recs: Vec<Rec>,
    /// Flat effect log of the current epoch; `effect_counts[i]` effects
    /// belong to `recs[i]`.
    effects: Vec<Effect>,
    effect_counts: Vec<u32>,
}

/// The worker-side [`SimCtx`]: node-local scheduling goes to the shard's
/// own queue immediately (keyed by lineage); global effects are logged.
struct ParCtx<'a> {
    queue: &'a mut ParQueue<Ev>,
    effects: &'a mut Vec<Effect>,
    /// Stamp minted for the dispatch currently running.
    parent: &'a Arc<Stamp>,
    /// Next push-intent index within this dispatch. Counts *both* local
    /// schedules and transmit intents, mirroring the serial engine's global
    /// push sequence restricted to this dispatch.
    idx: u32,
    now: Time,
    trace_on: bool,
}

impl ParCtx<'_> {
    fn next_idx(&mut self) -> u32 {
        let idx = self.idx;
        self.idx += 1;
        idx
    }
}

impl SimCtx for ParCtx<'_> {
    fn schedule_at(&mut self, at: Time, ev: Ev) -> EventToken {
        debug_assert!(at >= self.now, "event scheduled into the past");
        let idx = self.next_idx();
        self.queue.push(
            at,
            Key {
                parent: Arc::clone(self.parent),
                idx,
            },
            ev,
        )
    }

    fn cancel(&mut self, tok: EventToken) {
        self.queue.cancel(tok);
    }

    fn transmit_omx_wire(&mut self, t: Time, pkt: Packet) {
        let idx = self.next_idx();
        self.effects.push(Effect::TxOmx { idx, t, pkt });
    }

    fn transmit_coll_wire(&mut self, t: Time, frame: omx_nic::offload::CollFrame) {
        let idx = self.next_idx();
        self.effects.push(Effect::TxColl { idx, t, frame });
    }

    fn transmit_raw_wire(&mut self, t: Time, src: u16, dst: NodeId, payload_len: u32) {
        let idx = self.next_idx();
        self.effects.push(Effect::TxRaw {
            idx,
            t,
            src,
            dst,
            payload_len,
        });
    }

    fn trace(&mut self, at: Time, node: u16, kind: TraceKind, data: impl FnOnce() -> TraceData) {
        if self.trace_on {
            self.effects.push(Effect::Trace {
                at,
                node,
                kind,
                data: data(),
            });
        }
    }

    fn san_send_posted(&mut self, src: u16, dst: u16, len: u32) {
        self.effects.push(Effect::SanPosted { src, dst, len });
    }

    fn san_send_completed(&mut self) {
        self.effects.push(Effect::SanCompleted);
    }

    fn san_delivered(&mut self, src: u16, dst: u16, msg: u64, len: u32) {
        self.effects
            .push(Effect::SanDelivered { src, dst, msg, len });
    }
}

fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Drain one worker's queue up to (excluding) `epoch_end`, minting a
/// lineage stamp per dispatch and logging global effects for the barrier
/// replay. Events a dispatch schedules inside the epoch window are
/// processed within the same epoch (the loop re-peeks).
fn process_epoch(ws: &mut WorkerShard, shard_id: u32, epoch_end: Time, trace_on: bool) {
    while ws.queue.peek_time().is_some_and(|t| t < epoch_end) {
        let (time, key, ev) = ws.queue.pop().expect("peeked event pops");
        let stamp = Stamp::new(time, shard_id, ws.next_local_seq);
        ws.next_local_seq += 1;
        let effects_before = ws.effects.len();
        let mut ctx = ParCtx {
            queue: &mut ws.queue,
            effects: &mut ws.effects,
            parent: &stamp,
            idx: 0,
            now: time,
            trace_on,
        };
        ws.shard.dispatch(time, ev, &mut ctx);
        assert!(
            !ws.shard.stop,
            "ActorCtx::stop() during a parallel drain run (drain workloads \
             run to quiescence; use the serial Cluster::run for stop-mode \
             workloads)"
        );
        ws.recs.push(Rec {
            stamp,
            parent: key.parent,
            parent_idx: key.idx,
        });
        ws.effect_counts
            .push((ws.effects.len() - effects_before) as u32);
    }
}

/// Run `cluster` to quiescence (or the horizon) on `parts` worker threads.
///
/// Called only from [`Cluster::run_drain`], which owns the eligibility
/// check (not started, ≥ 2 nodes, lookahead ≥ 1 ns) and the post-run
/// bookkeeping (closing the telemetry window, the quiescence sanitize).
pub(crate) fn drain_parallel(cluster: &mut Cluster, horizon: Time, parts: usize) -> StopCondition {
    let tick_period = cluster.engine.tick_period_ns();
    let model = cluster.engine.model_mut();
    let lookahead_ns = model.fabric.config().lookahead_ns();
    debug_assert!(lookahead_ns >= 1, "parallel drain needs positive lookahead");
    let trace_on = model.tracer.is_some();
    let keys = model.shard.actor_keys_sorted();

    let mut workers: Vec<Mutex<WorkerShard>> = model
        .shard
        .split(parts)
        .into_iter()
        .map(|shard| {
            Mutex::new(WorkerShard {
                shard,
                queue: ParQueue::new(),
                next_local_seq: 0,
                recs: Vec::new(),
                effects: Vec::new(),
                effect_counts: Vec::new(),
            })
        })
        .collect();
    let bases: Vec<u16> = workers
        .iter_mut()
        .map(|w| {
            w.get_mut()
                .unwrap_or_else(PoisonError::into_inner)
                .shard
                .base
        })
        .collect();
    // Which worker owns global node `n` (bases are sorted and start at 0).
    let owner = |node: u16| bases.partition_point(|b| *b <= node) - 1;

    // Prime AppStart in global sorted-key order with root-lineage keys:
    // (time 0, root ordinal 0, idx i) reproduces the serial engine's
    // priming pop order exactly.
    let root = Stamp::root();
    for (i, &(node, ep)) in keys.iter().enumerate() {
        let ws = workers[owner(node)]
            .get_mut()
            .unwrap_or_else(PoisonError::into_inner);
        ws.queue.push(
            Time(0),
            Key {
                parent: Arc::clone(&root),
                idx: i as u32,
            },
            Ev::AppStart { node, ep },
        );
    }

    let start = SpinBarrier::new(parts + 1);
    let finish = SpinBarrier::new(parts + 1);
    let epoch_end = AtomicU64::new(0);
    let done = AtomicBool::new(false);
    let abort = AtomicBool::new(false);
    let panic_box: Mutex<Option<Box<dyn std::any::Any + Send>>> = Mutex::new(None);

    // Global dispatch ordinal (the root stamp owns 0), total dispatched
    // events, and the time of the last dispatched event.
    let mut next_ord: u64 = 1;
    let mut total_events: u64 = 0;
    let mut now = Time(0);
    let mut next_tick = tick_period.unwrap_or(u64::MAX);
    let mut stop = StopCondition::QueueEmpty;

    std::thread::scope(|scope| {
        for (sid, w) in workers.iter().enumerate() {
            let (start, finish, epoch_end) = (&start, &finish, &epoch_end);
            let (done, abort, panic_box) = (&done, &abort, &panic_box);
            scope.spawn(move || loop {
                start.wait();
                if done.load(Ordering::Acquire) {
                    return;
                }
                // After a sibling's panic the run is aborting: keep
                // participating in the barrier protocol as a no-op so the
                // coordinator can shut everything down cleanly.
                if !abort.load(Ordering::Relaxed) {
                    let end = Time(epoch_end.load(Ordering::Acquire));
                    let r = catch_unwind(AssertUnwindSafe(|| {
                        process_epoch(&mut lock(w), sid as u32, end, trace_on);
                    }));
                    if let Err(p) = r {
                        *lock(panic_box) = Some(p);
                        abort.store(true, Ordering::Release);
                    }
                }
                finish.wait();
            });
        }

        // Coordinator. Between `finish.wait()` and the next `start.wait()`
        // every worker is parked at the start barrier, so locking their
        // mutexes here is uncontended by construction.
        loop {
            let t0 = workers
                .iter()
                .filter_map(|w| lock(w).queue.peek_time())
                .min();
            let Some(t0) = t0 else {
                stop = StopCondition::QueueEmpty;
                break;
            };
            if t0 > horizon {
                now = horizon;
                stop = StopCondition::HorizonReached;
                break;
            }
            // Fire the telemetry ticks the serial engine would fire before
            // dispatching the next event: every unfired boundary ≤ T0. All
            // events earlier than T0 have been merged, so the tick observes
            // exactly the serial state.
            if let Some(p) = tick_period {
                while next_tick <= t0.as_nanos() {
                    fire_tick(model, Time(next_tick), &workers);
                    next_tick += p;
                }
            }
            // The epoch never crosses a tick boundary (ticks must observe
            // all events below the boundary first) nor the horizon; it
            // always admits the T0 event, so the run terminates.
            let end = t0
                .as_nanos()
                .saturating_add(lookahead_ns)
                .min(next_tick)
                .min(horizon.as_nanos().saturating_add(1));
            epoch_end.store(end, Ordering::Release);
            start.wait();
            // ... workers drain their queues up to `end` ...
            finish.wait();
            if abort.load(Ordering::Acquire) {
                break;
            }

            // Merge the epoch: replay every logged effect in exact serial
            // dispatch order against the fabric / tracer / sanitizer, and
            // enqueue cross-shard arrivals with deterministic keys.
            let mut guards: Vec<MutexGuard<'_, WorkerShard>> = workers.iter().map(lock).collect();
            let mut recs: Vec<Vec<Rec>> = Vec::with_capacity(parts);
            let mut effs = Vec::with_capacity(parts);
            let mut counts: Vec<Vec<u32>> = Vec::with_capacity(parts);
            for g in &mut guards {
                recs.push(std::mem::take(&mut g.recs));
                effs.push(std::mem::take(&mut g.effects).into_iter());
                counts.push(std::mem::take(&mut g.effect_counts));
            }
            merge_order(&recs, &mut next_ord, |s, i, rec| {
                now = rec.stamp.time;
                total_events += 1;
                for _ in 0..counts[s][i] {
                    // Within one shard the merge visits records in pop
                    // order, so each shard's flat effect log is consumed
                    // strictly front to back.
                    match effs[s].next().expect("effect log in sync with recs") {
                        Effect::TxOmx { idx, t, pkt } => {
                            let (src, dst) = (pkt.hdr.src.node.0, pkt.hdr.dst.node.0);
                            let outcome = model.fabric.transmit(
                                t,
                                PortId(src as usize),
                                PortId(dst as usize),
                                pkt.wire_len(),
                            );
                            if let TransmitOutcome::Arrives(at) = outcome {
                                debug_assert!(
                                    at.as_nanos() >= end,
                                    "lookahead violated: arrival {at:?} inside epoch ending {end}"
                                );
                                guards[owner(dst)].queue.push(
                                    at,
                                    Key {
                                        parent: Arc::clone(&rec.stamp),
                                        idx,
                                    },
                                    Ev::FrameArrival {
                                        node: dst,
                                        pkt: WireFrame::Omx(pkt),
                                    },
                                );
                            }
                        }
                        Effect::TxColl { idx, t, frame } => {
                            let outcome = model.fabric.transmit(
                                t,
                                PortId(frame.src_node as usize),
                                PortId(frame.dst_node as usize),
                                frame.wire_len(),
                            );
                            if let TransmitOutcome::Arrives(at) = outcome {
                                debug_assert!(at.as_nanos() >= end);
                                guards[owner(frame.dst_node)].queue.push(
                                    at,
                                    Key {
                                        parent: Arc::clone(&rec.stamp),
                                        idx,
                                    },
                                    Ev::FrameArrival {
                                        node: frame.dst_node,
                                        pkt: WireFrame::Coll(frame),
                                    },
                                );
                            }
                        }
                        Effect::TxRaw {
                            idx,
                            t,
                            src,
                            dst,
                            payload_len,
                        } => {
                            let frame = WireFrame::Raw { payload_len };
                            let outcome = model.fabric.transmit(
                                t,
                                PortId(src as usize),
                                PortId(dst.0 as usize),
                                frame.wire_len(),
                            );
                            if let TransmitOutcome::Arrives(at) = outcome {
                                debug_assert!(at.as_nanos() >= end);
                                guards[owner(dst.0)].queue.push(
                                    at,
                                    Key {
                                        parent: Arc::clone(&rec.stamp),
                                        idx,
                                    },
                                    Ev::FrameArrival {
                                        node: dst.0,
                                        pkt: frame,
                                    },
                                );
                            }
                        }
                        Effect::Trace {
                            at,
                            node,
                            kind,
                            data,
                        } => {
                            if let Some(t) = model.tracer.as_mut() {
                                t.record(at, node, kind, data);
                            }
                        }
                        Effect::SanPosted { src, dst, len } => {
                            model.sanitizer.on_send_posted(src, dst, len);
                        }
                        Effect::SanCompleted => model.sanitizer.on_send_completed(),
                        Effect::SanDelivered { src, dst, msg, len } => {
                            model.sanitizer.on_delivered(src, dst, msg, len);
                        }
                    }
                }
            });
        }

        done.store(true, Ordering::Release);
        start.wait();
    });

    if let Some(p) = lock(&panic_box).take() {
        resume_unwind(p);
    }

    for w in workers {
        let ws = w.into_inner().unwrap_or_else(PoisonError::into_inner);
        model.shard.absorb(ws.shard);
    }
    cluster.engine.fast_forward(now, total_events);
    stop
}

/// Close the telemetry window ending at `end`: the split-shard equivalent
/// of `SystemModel::sample_telemetry`. Workers are parked at the start
/// barrier when this runs, so their locks are free.
fn fire_tick(model: &mut SystemModel, end: Time, workers: &[Mutex<WorkerShard>]) {
    let Some(tel) = model.telemetry.as_mut() else {
        return;
    };
    if !tel.begin_window(end) {
        return;
    }
    for w in workers {
        lock(w).shard.sample_nodes(tel);
    }
    for p in 0..model.fabric.ports() {
        tel.sample_port(
            p,
            PortTap {
                queue_len: model.fabric.switch_queue_len_at(PortId(p), end) as u64,
                drops: model.fabric.switch_drops_at(PortId(p)),
            },
        );
    }
}
