//! The MXoE-style wire protocol.
//!
//! Message formats follow §III-A of the paper:
//!
//! * **Small** (≤ 128 B): one eagerly-sent packet,
//! * **Medium** (≤ 32 KiB): a stream of eager fragments sized by the MTU,
//! * **Large** (> 32 KiB): rendezvous → receiver-driven *pull* (requests of
//!   up to 32 frames, up to 4 requests pipelined) → notify,
//!
//! plus acks and a TCP-stand-in class for background traffic. Every packet
//! carries the Open-MX header whose `latency_sensitive` flag is the entire
//! NIC-visible interface of the paper's firmware change.
//!
//! Packets also have a real byte encoding ([`Packet::encode`] /
//! [`Packet::decode`]) so the wire format is testable; the simulator itself
//! moves typed packets and only uses [`Packet::wire_len`].

use crate::bytebuf::{Bytes, BytesMut};

/// Maximum payload of a Small (single-packet eager) message.
pub const SMALL_MAX: u32 = 128;
/// Maximum total length of a Medium (fragmented eager) message.
pub const MEDIUM_MAX: u32 = 32 * 1024;
/// Frames per pull block (§III-A: "requesting up to 32 fragments at once").
pub const PULL_BLOCK_FRAMES: u32 = 32;
/// Pull requests kept in flight (§IV-C3: "the driver tries to pipeline 4
/// requests at the same time").
pub const PULL_PIPELINE: u32 = 4;
/// Open-MX header bytes on the wire (ethertype demux + header fields).
pub const OMX_HEADER_BYTES: u32 = 32;
/// Ethernet header bytes (dst/src MAC + ethertype).
pub const ETH_HEADER_BYTES: u32 = 14;

/// Identifies a node (host) in the cluster.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub u16);

/// Identifies an endpoint (application attach point) on a node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct EndpointAddr {
    /// Owning node.
    pub node: NodeId,
    /// Endpoint index on that node.
    pub endpoint: u8,
}

impl EndpointAddr {
    /// Shorthand constructor.
    pub fn new(node: u16, endpoint: u8) -> Self {
        EndpointAddr {
            node: NodeId(node),
            endpoint,
        }
    }
}

/// Per-sender message identifier (unique within a source endpoint).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct MsgId(pub u64);

/// The Open-MX packet header (the part the NIC firmware may inspect).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OmxHeader {
    /// Source endpoint.
    pub src: EndpointAddr,
    /// Destination endpoint.
    pub dst: EndpointAddr,
    /// The latency-sensitive marker flag (§III-B) — set by the sender
    /// driver, read by the NIC firmware.
    pub latency_sensitive: bool,
    /// Eager sequence number on this connection (0 for non-eager packets;
    /// eager numbering starts at 1).
    pub seq: u64,
    /// Piggybacked cumulative ack of the reverse direction.
    pub ack: u64,
}

/// Packet body: one variant per wire format.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PacketKind {
    /// Small eager message (full payload in one packet).
    Small {
        /// Message id.
        msg: MsgId,
        /// MX match info.
        match_info: u64,
        /// Payload length (≤ [`SMALL_MAX`]).
        len: u32,
    },
    /// One fragment of a medium eager message.
    MediumFrag {
        /// Message id.
        msg: MsgId,
        /// MX match info (repeated in every fragment; the first to arrive
        /// performs the match).
        match_info: u64,
        /// Fragment index (0-based).
        frag: u32,
        /// Total fragment count.
        frag_count: u32,
        /// Payload bytes in this fragment.
        frag_len: u32,
        /// Total message length.
        total_len: u32,
    },
    /// Large-message rendezvous (no payload).
    Rendezvous {
        /// Message id.
        msg: MsgId,
        /// MX match info.
        match_info: u64,
        /// Total message length.
        total_len: u32,
    },
    /// Receiver asks the sender for one block of fragments.
    PullRequest {
        /// Message id being pulled.
        msg: MsgId,
        /// Block index (0-based).
        block: u32,
        /// Frames requested in this block (≤ [`PULL_BLOCK_FRAMES`]).
        frame_count: u32,
    },
    /// One frame of data answering a pull request.
    PullReply {
        /// Message id.
        msg: MsgId,
        /// Block index.
        block: u32,
        /// Frame index within the block.
        frame: u32,
        /// Payload bytes in this frame.
        frame_len: u32,
        /// This is the last frame of its block.
        last_of_block: bool,
    },
    /// Transfer-complete notification, receiver → sender.
    Notify {
        /// Message id.
        msg: MsgId,
    },
    /// Acknowledgement of eager traffic (per-connection cumulative seqno).
    Ack {
        /// Highest eager sequence number received in order.
        cumulative_seq: u64,
    },
    /// Background TCP-like traffic (not Open-MX; never marked).
    TcpSegment {
        /// Payload length.
        len: u32,
    },
}

/// A full packet: header + body.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Packet {
    /// Open-MX header.
    pub hdr: OmxHeader,
    /// Body.
    pub kind: PacketKind,
}

impl Packet {
    /// Payload bytes carried (0 for control packets).
    pub fn payload_len(&self) -> u32 {
        match self.kind {
            PacketKind::Small { len, .. } => len,
            PacketKind::MediumFrag { frag_len, .. } => frag_len,
            PacketKind::PullReply { frame_len, .. } => frame_len,
            PacketKind::TcpSegment { len } => len,
            PacketKind::Rendezvous { .. }
            | PacketKind::PullRequest { .. }
            | PacketKind::Notify { .. }
            | PacketKind::Ack { .. } => 0,
        }
    }

    /// Total frame length on the wire (Ethernet + Open-MX headers + payload).
    pub fn wire_len(&self) -> u32 {
        ETH_HEADER_BYTES + OMX_HEADER_BYTES + self.payload_len()
    }

    /// True for control packets of the large-message protocol.
    pub fn is_control(&self) -> bool {
        matches!(
            self.kind,
            PacketKind::Rendezvous { .. }
                | PacketKind::PullRequest { .. }
                | PacketKind::Notify { .. }
                | PacketKind::Ack { .. }
        )
    }

    /// Message id, when the packet belongs to a message.
    pub fn msg_id(&self) -> Option<MsgId> {
        match self.kind {
            PacketKind::Small { msg, .. }
            | PacketKind::MediumFrag { msg, .. }
            | PacketKind::Rendezvous { msg, .. }
            | PacketKind::PullRequest { msg, .. }
            | PacketKind::PullReply { msg, .. }
            | PacketKind::Notify { msg } => Some(msg),
            PacketKind::Ack { .. } | PacketKind::TcpSegment { .. } => None,
        }
    }

    // -- byte encoding -------------------------------------------------------

    /// Encode header + body to bytes (payload is synthetic and not encoded;
    /// the length fields fully describe it).
    pub fn encode(&self) -> Bytes {
        let mut b = BytesMut::with_capacity(64);
        b.put_u16(self.hdr.src.node.0);
        b.put_u8(self.hdr.src.endpoint);
        b.put_u16(self.hdr.dst.node.0);
        b.put_u8(self.hdr.dst.endpoint);
        b.put_u8(self.hdr.latency_sensitive as u8);
        b.put_u64(self.hdr.seq);
        b.put_u64(self.hdr.ack);
        match self.kind {
            PacketKind::Small {
                msg,
                match_info,
                len,
            } => {
                b.put_u8(0);
                b.put_u64(msg.0);
                b.put_u64(match_info);
                b.put_u32(len);
            }
            PacketKind::MediumFrag {
                msg,
                match_info,
                frag,
                frag_count,
                frag_len,
                total_len,
            } => {
                b.put_u8(1);
                b.put_u64(msg.0);
                b.put_u64(match_info);
                b.put_u32(frag);
                b.put_u32(frag_count);
                b.put_u32(frag_len);
                b.put_u32(total_len);
            }
            PacketKind::Rendezvous {
                msg,
                match_info,
                total_len,
            } => {
                b.put_u8(2);
                b.put_u64(msg.0);
                b.put_u64(match_info);
                b.put_u32(total_len);
            }
            PacketKind::PullRequest {
                msg,
                block,
                frame_count,
            } => {
                b.put_u8(3);
                b.put_u64(msg.0);
                b.put_u32(block);
                b.put_u32(frame_count);
            }
            PacketKind::PullReply {
                msg,
                block,
                frame,
                frame_len,
                last_of_block,
            } => {
                b.put_u8(4);
                b.put_u64(msg.0);
                b.put_u32(block);
                b.put_u32(frame);
                b.put_u32(frame_len);
                b.put_u8(last_of_block as u8);
            }
            PacketKind::Notify { msg } => {
                b.put_u8(5);
                b.put_u64(msg.0);
            }
            PacketKind::Ack { cumulative_seq } => {
                b.put_u8(6);
                b.put_u64(cumulative_seq);
            }
            PacketKind::TcpSegment { len } => {
                b.put_u8(7);
                b.put_u32(len);
            }
        }
        b.freeze()
    }

    /// Decode a packet previously produced by [`Packet::encode`].
    pub fn decode(mut buf: Bytes) -> Result<Packet, DecodeError> {
        fn need(buf: &Bytes, n: usize) -> Result<(), DecodeError> {
            if buf.remaining() < n {
                Err(DecodeError::Truncated)
            } else {
                Ok(())
            }
        }
        need(&buf, 7 + 16 + 1)?;
        let hdr = OmxHeader {
            src: EndpointAddr {
                node: NodeId(buf.get_u16()),
                endpoint: buf.get_u8(),
            },
            dst: EndpointAddr {
                node: NodeId(buf.get_u16()),
                endpoint: buf.get_u8(),
            },
            latency_sensitive: buf.get_u8() != 0,
            seq: buf.get_u64(),
            ack: buf.get_u64(),
        };
        let tag = buf.get_u8();
        let kind = match tag {
            0 => {
                need(&buf, 20)?;
                PacketKind::Small {
                    msg: MsgId(buf.get_u64()),
                    match_info: buf.get_u64(),
                    len: buf.get_u32(),
                }
            }
            1 => {
                need(&buf, 32)?;
                PacketKind::MediumFrag {
                    msg: MsgId(buf.get_u64()),
                    match_info: buf.get_u64(),
                    frag: buf.get_u32(),
                    frag_count: buf.get_u32(),
                    frag_len: buf.get_u32(),
                    total_len: buf.get_u32(),
                }
            }
            2 => {
                need(&buf, 20)?;
                PacketKind::Rendezvous {
                    msg: MsgId(buf.get_u64()),
                    match_info: buf.get_u64(),
                    total_len: buf.get_u32(),
                }
            }
            3 => {
                need(&buf, 16)?;
                PacketKind::PullRequest {
                    msg: MsgId(buf.get_u64()),
                    block: buf.get_u32(),
                    frame_count: buf.get_u32(),
                }
            }
            4 => {
                need(&buf, 21)?;
                PacketKind::PullReply {
                    msg: MsgId(buf.get_u64()),
                    block: buf.get_u32(),
                    frame: buf.get_u32(),
                    frame_len: buf.get_u32(),
                    last_of_block: buf.get_u8() != 0,
                }
            }
            5 => {
                need(&buf, 8)?;
                PacketKind::Notify {
                    msg: MsgId(buf.get_u64()),
                }
            }
            6 => {
                need(&buf, 8)?;
                PacketKind::Ack {
                    cumulative_seq: buf.get_u64(),
                }
            }
            7 => {
                need(&buf, 4)?;
                PacketKind::TcpSegment { len: buf.get_u32() }
            }
            other => return Err(DecodeError::UnknownKind(other)),
        };
        Ok(Packet { hdr, kind })
    }
}

/// Wire decoding failure.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DecodeError {
    /// Buffer ended before the packet was complete.
    Truncated,
    /// Unknown packet kind tag.
    UnknownKind(u8),
}

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DecodeError::Truncated => write!(f, "truncated packet"),
            DecodeError::UnknownKind(k) => write!(f, "unknown packet kind {k}"),
        }
    }
}

impl std::error::Error for DecodeError {}

/// Usable payload bytes per *medium eager* fragment for a given MTU.
///
/// Medium fragments carry the full Open-MX eager header (match info, offsets)
/// inside the MTU, so a 32 KiB message at MTU 1500 takes 23 packets —
/// matching §IV-C4 of the paper.
pub fn medium_frag_payload(mtu: u32) -> u32 {
    mtu.checked_sub(OMX_HEADER_BYTES)
        .expect("MTU smaller than the Open-MX header")
}

/// Usable payload bytes per *pull reply* frame for a given MTU.
///
/// Pull replies use a minimal header that rides in the Ethernet framing, so
/// the payload equals the MTU: a 234 KiB message takes exactly 160 reply
/// frames = 5 blocks of 32, matching §IV-C3 of the paper (162 packets with
/// the rendezvous and notify).
pub fn pull_frame_payload(mtu: u32) -> u32 {
    mtu
}

/// Number of medium fragments a message of `len` bytes needs at a given MTU
/// (at least one, so zero-length messages still send a packet).
pub fn frag_count(len: u32, mtu: u32) -> u32 {
    len.div_ceil(medium_frag_payload(mtu)).max(1)
}

/// Number of pull reply frames a large message of `len` bytes needs.
pub fn pull_frame_count(len: u32, mtu: u32) -> u32 {
    len.div_ceil(pull_frame_payload(mtu)).max(1)
}

/// Number of pull blocks for a large message of `len` bytes.
pub fn pull_block_count(len: u32, mtu: u32) -> u32 {
    pull_frame_count(len, mtu).div_ceil(PULL_BLOCK_FRAMES)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hdr(marked: bool) -> OmxHeader {
        OmxHeader {
            src: EndpointAddr::new(0, 1),
            dst: EndpointAddr::new(1, 2),
            latency_sensitive: marked,
            seq: 12,
            ack: 34,
        }
    }

    fn all_kinds() -> Vec<PacketKind> {
        vec![
            PacketKind::Small {
                msg: MsgId(7),
                match_info: 0xDEAD_BEEF,
                len: 128,
            },
            PacketKind::MediumFrag {
                msg: MsgId(8),
                match_info: 42,
                frag: 3,
                frag_count: 23,
                frag_len: 1468,
                total_len: 32 * 1024,
            },
            PacketKind::Rendezvous {
                msg: MsgId(9),
                match_info: 1,
                total_len: 1 << 20,
            },
            PacketKind::PullRequest {
                msg: MsgId(9),
                block: 4,
                frame_count: 32,
            },
            PacketKind::PullReply {
                msg: MsgId(9),
                block: 4,
                frame: 31,
                frame_len: 1468,
                last_of_block: true,
            },
            PacketKind::Notify { msg: MsgId(9) },
            PacketKind::Ack { cumulative_seq: 99 },
            PacketKind::TcpSegment { len: 1460 },
        ]
    }

    #[test]
    fn encode_decode_roundtrip_all_kinds() {
        for kind in all_kinds() {
            for marked in [false, true] {
                let p = Packet {
                    hdr: hdr(marked),
                    kind,
                };
                let decoded = Packet::decode(p.encode()).expect("decode");
                assert_eq!(decoded, p);
            }
        }
    }

    #[test]
    fn decode_rejects_truncation() {
        let p = Packet {
            hdr: hdr(true),
            kind: PacketKind::Small {
                msg: MsgId(1),
                match_info: 2,
                len: 3,
            },
        };
        let full = p.encode();
        for cut in 0..full.len() {
            let res = Packet::decode(full.slice(0..cut));
            assert_eq!(res, Err(DecodeError::Truncated), "cut at {cut}");
        }
    }

    #[test]
    fn decode_rejects_unknown_kind() {
        let mut raw = BytesMut::new();
        raw.put_slice(&[0, 0, 0, 0, 1, 0, 0]);
        raw.put_u64(0);
        raw.put_u64(0);
        raw.put_u8(200);
        assert_eq!(
            Packet::decode(raw.freeze()),
            Err(DecodeError::UnknownKind(200))
        );
    }

    #[test]
    fn wire_len_includes_headers() {
        let p = Packet {
            hdr: hdr(false),
            kind: PacketKind::Small {
                msg: MsgId(0),
                match_info: 0,
                len: 128,
            },
        };
        assert_eq!(p.wire_len(), ETH_HEADER_BYTES + OMX_HEADER_BYTES + 128);
        let c = Packet {
            hdr: hdr(false),
            kind: PacketKind::Notify { msg: MsgId(0) },
        };
        assert_eq!(c.wire_len(), ETH_HEADER_BYTES + OMX_HEADER_BYTES);
        assert!(c.is_control());
    }

    #[test]
    fn frag_math_matches_paper() {
        // §IV-C4: a 32 KiB medium message at MTU 1500 is 23 packets.
        assert_eq!(frag_count(32 * 1024, 1500), 23);
        // §IV-C3: 234 KiB needs exactly 5 pull blocks of 32 frames (160
        // reply packets; 162 total with rendezvous + notify).
        assert_eq!(pull_frame_count(234 * 1024, 1500), 160);
        assert_eq!(pull_block_count(234 * 1024, 1500), 5);
        // Zero-length messages still need one packet.
        assert_eq!(frag_count(0, 1500), 1);
        assert_eq!(pull_frame_count(0, 1500), 1);
    }

    #[test]
    fn msg_id_accessor() {
        let p = Packet {
            hdr: hdr(false),
            kind: PacketKind::Ack { cumulative_seq: 0 },
        };
        assert_eq!(p.msg_id(), None);
        let q = Packet {
            hdr: hdr(false),
            kind: PacketKind::Notify { msg: MsgId(5) },
        };
        assert_eq!(q.msg_id(), Some(MsgId(5)));
    }
}
