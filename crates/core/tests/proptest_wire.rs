//! Property tests for the wire codec and the fragmentation arithmetic.

use omx_core::marking::MarkingPolicy;
use omx_core::wire::{
    frag_count, medium_frag_payload, pull_block_count, pull_frame_count, pull_frame_payload,
    EndpointAddr, MsgId, OmxHeader, Packet, PacketKind, PULL_BLOCK_FRAMES,
};
use proptest::prelude::*;

fn arb_header() -> impl Strategy<Value = OmxHeader> {
    (
        any::<u16>(),
        any::<u8>(),
        any::<u16>(),
        any::<u8>(),
        any::<bool>(),
        any::<u64>(),
        any::<u64>(),
    )
        .prop_map(|(sn, se, dn, de, m, seq, ack)| OmxHeader {
            src: EndpointAddr::new(sn, se),
            dst: EndpointAddr::new(dn, de),
            latency_sensitive: m,
            seq,
            ack,
        })
}

fn arb_kind() -> impl Strategy<Value = PacketKind> {
    prop_oneof![
        (any::<u64>(), any::<u64>(), 0u32..=128).prop_map(|(m, mi, len)| PacketKind::Small {
            msg: MsgId(m),
            match_info: mi,
            len
        }),
        (any::<u64>(), any::<u64>(), 0u32..64, 1u32..64, 0u32..1500, any::<u32>()).prop_map(
            |(m, mi, frag, count, flen, total)| PacketKind::MediumFrag {
                msg: MsgId(m),
                match_info: mi,
                frag: frag % count,
                frag_count: count,
                frag_len: flen,
                total_len: total,
            }
        ),
        (any::<u64>(), any::<u64>(), any::<u32>()).prop_map(|(m, mi, len)| {
            PacketKind::Rendezvous {
                msg: MsgId(m),
                match_info: mi,
                total_len: len,
            }
        }),
        (any::<u64>(), any::<u32>(), 1u32..=32).prop_map(|(m, b, fc)| PacketKind::PullRequest {
            msg: MsgId(m),
            block: b,
            frame_count: fc
        }),
        (any::<u64>(), any::<u32>(), 0u32..32, 0u32..1500, any::<bool>()).prop_map(
            |(m, b, f, l, last)| PacketKind::PullReply {
                msg: MsgId(m),
                block: b,
                frame: f,
                frame_len: l,
                last_of_block: last,
            }
        ),
        any::<u64>().prop_map(|m| PacketKind::Notify { msg: MsgId(m) }),
        any::<u64>().prop_map(|s| PacketKind::Ack { cumulative_seq: s }),
        (0u32..1500).prop_map(|len| PacketKind::TcpSegment { len }),
    ]
}

proptest! {
    /// Encode/decode is the identity for every representable packet.
    #[test]
    fn codec_roundtrip(hdr in arb_header(), kind in arb_kind()) {
        let pkt = Packet { hdr, kind };
        let decoded = Packet::decode(pkt.encode()).expect("decode");
        prop_assert_eq!(decoded, pkt);
    }

    /// Truncating an encoded packet anywhere yields an error, never a panic
    /// or a silently wrong packet.
    #[test]
    fn codec_rejects_truncation(hdr in arb_header(), kind in arb_kind(), cut_frac in 0.0f64..1.0) {
        let pkt = Packet { hdr, kind };
        let bytes = pkt.encode();
        let cut = ((bytes.len() as f64) * cut_frac) as usize;
        if cut < bytes.len() {
            prop_assert!(Packet::decode(bytes.slice(0..cut)).is_err());
        }
    }

    /// Fragment arithmetic: counts × payloads always cover the message with
    /// the last fragment holding the (nonzero) remainder.
    #[test]
    fn fragmentation_covers_message(len in 0u32..32 * 1024, mtu in 576u32..9000) {
        let count = frag_count(len, mtu);
        let per = medium_frag_payload(mtu);
        prop_assert!(count >= 1);
        prop_assert!(per * (count - 1) < len.max(1));
        prop_assert!(per * count >= len);
    }

    /// Pull geometry: frames cover the message; blocks cover the frames.
    #[test]
    fn pull_geometry_consistent(len in 1u32..16 * 1024 * 1024, mtu in 576u32..9000) {
        let frames = pull_frame_count(len, mtu);
        let blocks = pull_block_count(len, mtu);
        prop_assert!(pull_frame_payload(mtu) * frames >= len);
        prop_assert!(pull_frame_payload(mtu) * (frames - 1) < len);
        prop_assert_eq!(blocks, frames.div_ceil(PULL_BLOCK_FRAMES));
    }

    /// Marking is deterministic and only ever sets the flag for the classes
    /// the policy enables.
    #[test]
    fn marking_respects_policy(kind in arb_kind()) {
        let all = MarkingPolicy::all();
        let none = MarkingPolicy::none();
        prop_assert!(!none.should_mark(&kind));
        // Acks and TCP are never marked even by the full policy.
        if matches!(kind, PacketKind::Ack { .. } | PacketKind::TcpSegment { .. }) {
            prop_assert!(!all.should_mark(&kind));
        }
        // Determinism.
        prop_assert_eq!(all.should_mark(&kind), all.should_mark(&kind));
    }
}
