//! Property tests for the wire codec and the fragmentation arithmetic.
//!
//! Randomised with the simulator's deterministic [`SimRng`] (fixed seeds, so
//! failures reproduce exactly) instead of an external property-test harness.

use omx_core::marking::MarkingPolicy;
use omx_core::wire::{
    frag_count, medium_frag_payload, pull_block_count, pull_frame_count, pull_frame_payload,
    EndpointAddr, MsgId, OmxHeader, Packet, PacketKind, PULL_BLOCK_FRAMES,
};
use omx_sim::rng::SimRng;

fn arb_header(rng: &mut SimRng) -> OmxHeader {
    OmxHeader {
        src: EndpointAddr::new(rng.next_u64() as u16, rng.next_u64() as u8),
        dst: EndpointAddr::new(rng.next_u64() as u16, rng.next_u64() as u8),
        latency_sensitive: rng.chance(0.5),
        seq: rng.next_u64(),
        ack: rng.next_u64(),
    }
}

fn arb_kind(rng: &mut SimRng) -> PacketKind {
    match rng.range_u64(0, 8) {
        0 => PacketKind::Small {
            msg: MsgId(rng.next_u64()),
            match_info: rng.next_u64(),
            len: rng.range_u64(0, 129) as u32,
        },
        1 => {
            let count = rng.range_u64(1, 64) as u32;
            PacketKind::MediumFrag {
                msg: MsgId(rng.next_u64()),
                match_info: rng.next_u64(),
                frag: rng.range_u64(0, 64) as u32 % count,
                frag_count: count,
                frag_len: rng.range_u64(0, 1500) as u32,
                total_len: rng.next_u64() as u32,
            }
        }
        2 => PacketKind::Rendezvous {
            msg: MsgId(rng.next_u64()),
            match_info: rng.next_u64(),
            total_len: rng.next_u64() as u32,
        },
        3 => PacketKind::PullRequest {
            msg: MsgId(rng.next_u64()),
            block: rng.next_u64() as u32,
            frame_count: rng.range_u64(1, 33) as u32,
        },
        4 => PacketKind::PullReply {
            msg: MsgId(rng.next_u64()),
            block: rng.next_u64() as u32,
            frame: rng.range_u64(0, 32) as u32,
            frame_len: rng.range_u64(0, 1500) as u32,
            last_of_block: rng.chance(0.5),
        },
        5 => PacketKind::Notify {
            msg: MsgId(rng.next_u64()),
        },
        6 => PacketKind::Ack {
            cumulative_seq: rng.next_u64(),
        },
        _ => PacketKind::TcpSegment {
            len: rng.range_u64(0, 1500) as u32,
        },
    }
}

/// Encode/decode is the identity for every representable packet.
#[test]
fn codec_roundtrip() {
    let mut rng = SimRng::new(0x5EED_3001);
    for _case in 0..512 {
        let pkt = Packet {
            hdr: arb_header(&mut rng),
            kind: arb_kind(&mut rng),
        };
        let decoded = Packet::decode(pkt.encode()).expect("decode");
        assert_eq!(decoded, pkt);
    }
}

/// Truncating an encoded packet anywhere yields an error, never a panic
/// or a silently wrong packet.
#[test]
fn codec_rejects_truncation() {
    let mut rng = SimRng::new(0x5EED_3002);
    for _case in 0..512 {
        let pkt = Packet {
            hdr: arb_header(&mut rng),
            kind: arb_kind(&mut rng),
        };
        let bytes = pkt.encode();
        let cut = ((bytes.len() as f64) * rng.unit()) as usize;
        if cut < bytes.len() {
            assert!(Packet::decode(bytes.slice(0..cut)).is_err());
        }
    }
}

/// Fragment arithmetic: counts × payloads always cover the message with
/// the last fragment holding the (nonzero) remainder.
#[test]
fn fragmentation_covers_message() {
    let mut rng = SimRng::new(0x5EED_3003);
    for _case in 0..512 {
        let len = rng.range_u64(0, 32 * 1024) as u32;
        let mtu = rng.range_u64(576, 9000) as u32;
        let count = frag_count(len, mtu);
        let per = medium_frag_payload(mtu);
        assert!(count >= 1);
        assert!(per * (count - 1) < len.max(1));
        assert!(per * count >= len);
    }
}

/// Pull geometry: frames cover the message; blocks cover the frames.
#[test]
fn pull_geometry_consistent() {
    let mut rng = SimRng::new(0x5EED_3004);
    for _case in 0..512 {
        let len = rng.range_u64(1, 16 * 1024 * 1024) as u32;
        let mtu = rng.range_u64(576, 9000) as u32;
        let frames = pull_frame_count(len, mtu);
        let blocks = pull_block_count(len, mtu);
        assert!(pull_frame_payload(mtu) * frames >= len);
        assert!(pull_frame_payload(mtu) * (frames - 1) < len);
        assert_eq!(blocks, frames.div_ceil(PULL_BLOCK_FRAMES));
    }
}

/// Marking is deterministic and only ever sets the flag for the classes
/// the policy enables.
#[test]
fn marking_respects_policy() {
    let mut rng = SimRng::new(0x5EED_3005);
    for _case in 0..512 {
        let kind = arb_kind(&mut rng);
        let all = MarkingPolicy::all();
        let none = MarkingPolicy::none();
        assert!(!none.should_mark(&kind));
        // Acks and TCP are never marked even by the full policy.
        if matches!(kind, PacketKind::Ack { .. } | PacketKind::TcpSegment { .. }) {
            assert!(!all.should_mark(&kind));
        }
        // Determinism.
        assert_eq!(all.should_mark(&kind), all.should_mark(&kind));
    }
}
