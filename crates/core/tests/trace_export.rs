//! Export-format and latency-attribution invariants.
//!
//! * A golden-file test pins the Chrome trace-event export schema: the keys
//!   Perfetto relies on (`traceEvents`, `ph`, `ts`, `pid`, `tid`, `name`)
//!   must not drift.
//! * Property tests (randomised with the deterministic [`SimRng`], fixed
//!   seeds) assert that every [`LatencyBreakdown`] the analyzer produces
//!   has phases summing exactly to its end-to-end total — on synthetic
//!   event soups and on traces from real simulations.

use omx_core::latency::{analyze, PhaseSummary};
use omx_core::prelude::*;
use omx_core::trace::{TraceData, TraceEvent, TraceKind, Tracer};
use omx_core::wire::{EndpointAddr, MsgId, OmxHeader, Packet, PacketKind};
use omx_sim::json::Json;
use omx_sim::rng::SimRng;
use omx_sim::Time;

fn t(ns: u64) -> Time {
    Time::from_nanos(ns)
}

fn small_pkt(src: u16, dst: u16, msg: u64) -> Packet {
    Packet {
        hdr: OmxHeader {
            src: EndpointAddr::new(src, 0),
            dst: EndpointAddr::new(dst, 0),
            latency_sensitive: true,
            seq: 1,
            ack: 0,
        },
        kind: PacketKind::Small {
            msg: MsgId(msg),
            match_info: 0,
            len: 64,
        },
    }
}

/// One complete, hand-placed message lifecycle.
fn lifecycle(tr: &mut Tracer, src: u16, dst: u16, msg: u64, base: u64) {
    let pkt = small_pkt(src, dst, msg);
    tr.record(
        t(base),
        src,
        TraceKind::Transmit,
        TraceData::Packet { pkt, desc: None },
    );
    tr.record(
        t(base + 2_000),
        dst,
        TraceKind::FrameArrival,
        TraceData::Packet {
            pkt,
            desc: Some(msg),
        },
    );
    tr.record(
        t(base + 2_300),
        dst,
        TraceKind::DmaComplete,
        TraceData::Desc { desc: msg },
    );
    tr.record(
        t(base + 10_000),
        dst,
        TraceKind::Interrupt,
        TraceData::Irq {
            core: 0,
            start_ns: base + 10_500,
            woken: false,
        },
    );
    tr.record(
        t(base + 12_000),
        dst,
        TraceKind::BatchDone,
        TraceData::Batch {
            core: 0,
            packets: 1,
        },
    );
    tr.record(
        t(base + 12_400),
        dst,
        TraceKind::AppDelivery,
        TraceData::Recv {
            ep: 0,
            src,
            msg,
            len: 64,
        },
    );
}

/// The Chrome export of a fixed two-message trace must match the checked-in
/// golden file byte for byte. When the format changes on purpose, rerun
/// with `UPDATE_GOLDEN=1` to regenerate `tests/golden/chrome_trace.json`
/// and review the diff.
#[test]
fn chrome_export_matches_golden_file() {
    let mut tr = Tracer::new(64);
    lifecycle(&mut tr, 0, 1, 1, 1_000);
    lifecycle(&mut tr, 1, 0, 2, 20_000);
    let rendered = tr.to_chrome_json().render_pretty();
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::write("tests/golden/chrome_trace.json", &rendered).expect("golden file written");
    }
    let golden = include_str!("golden/chrome_trace.json");
    assert_eq!(
        rendered.trim(),
        golden.trim(),
        "Chrome trace export drifted from tests/golden/chrome_trace.json; \
         if the change is intentional, regenerate the golden file"
    );
}

/// Schema invariants Perfetto depends on, checked structurally (robust to
/// cosmetic golden regeneration).
#[test]
fn chrome_export_schema_is_valid() {
    let mut tr = Tracer::new(64);
    lifecycle(&mut tr, 0, 1, 1, 1_000);
    let doc = tr.to_chrome_json();
    // Round-trips through the parser.
    let doc = Json::parse(&doc.render()).expect("chrome export is valid JSON");
    let events = match doc.get("traceEvents") {
        Some(Json::Arr(events)) => events,
        other => panic!("traceEvents must be an array, got {other:?}"),
    };
    assert!(!events.is_empty());
    let mut saw_instant = false;
    let mut saw_span = false;
    for ev in events {
        let ph = ev
            .get("ph")
            .and_then(Json::as_str)
            .expect("every event has ph");
        assert!(
            ev.get("name").and_then(Json::as_str).is_some(),
            "every event has a name"
        );
        assert!(ev.get("ts").and_then(Json::as_f64).is_some());
        assert!(ev.get("pid").and_then(Json::as_u64).is_some());
        assert!(ev.get("tid").and_then(Json::as_u64).is_some());
        match ph {
            "i" => saw_instant = true,
            "X" => {
                saw_span = true;
                assert!(
                    ev.get("dur").and_then(Json::as_f64).is_some(),
                    "duration slices carry dur"
                );
            }
            other => panic!("unexpected phase {other:?}"),
        }
    }
    assert!(saw_instant, "raw events exported as instants");
    assert!(saw_span, "latency phases exported as duration slices");
}

/// Random well-formed lifecycles with jittered anchor spacings: every
/// breakdown's phases must sum exactly to its total.
#[test]
fn prop_phases_sum_to_total_on_synthetic_lifecycles() {
    let mut rng = SimRng::new(0x5EED_6001);
    for _ in 0..256 {
        let mut tr = Tracer::new(4096);
        let msgs = rng.range_u64(1, 12);
        let mut base = rng.range_u64(0, 10_000);
        for msg in 0..msgs {
            let src = rng.range_u64(0, 4) as u16;
            let dst = (src + 1 + rng.range_u64(0, 3) as u16) % 4;
            lifecycle(&mut tr, src, dst, msg, base);
            base += rng.range_u64(1_000, 200_000);
        }
        let events: Vec<TraceEvent> = tr.events().copied().collect();
        let breakdowns = analyze(&events);
        assert_eq!(breakdowns.len() as u64, msgs);
        for b in &breakdowns {
            assert_eq!(
                b.phase_sum(),
                b.total_ns(),
                "phases must telescope to the total: {b:?}"
            );
        }
    }
}

/// Adversarial: random event soups (dropped anchors, shuffled-in noise,
/// out-of-order stamps). The analyzer may skip messages it cannot link, but
/// whatever it returns must keep the sum invariant and stay in-window.
#[test]
fn prop_phases_sum_to_total_on_adversarial_soup() {
    let mut rng = SimRng::new(0x5EED_6002);
    for _ in 0..256 {
        let mut tr = Tracer::new(4096);
        let n = rng.range_u64(1, 80);
        for _ in 0..n {
            let at = t(rng.range_u64(0, 500_000));
            let node = rng.range_u64(0, 3) as u16;
            let msg = rng.range_u64(0, 5);
            let (kind, data) = match rng.range_u64(0, 7) {
                0 => (
                    TraceKind::Transmit,
                    TraceData::Packet {
                        pkt: small_pkt(node, (node + 1) % 3, msg),
                        desc: None,
                    },
                ),
                1 => (
                    TraceKind::FrameArrival,
                    TraceData::Packet {
                        pkt: small_pkt((node + 1) % 3, node, msg),
                        desc: if rng.chance(0.8) {
                            Some(rng.range_u64(0, 4))
                        } else {
                            None
                        },
                    },
                ),
                2 => (
                    TraceKind::DmaComplete,
                    TraceData::Desc {
                        desc: rng.range_u64(0, 4),
                    },
                ),
                3 => (
                    TraceKind::Interrupt,
                    TraceData::Irq {
                        core: rng.range_u64(0, 2) as usize,
                        start_ns: rng.range_u64(0, 500_000),
                        woken: rng.chance(0.3),
                    },
                ),
                4 => (
                    TraceKind::BatchDone,
                    TraceData::Batch {
                        core: rng.range_u64(0, 2) as usize,
                        packets: rng.range_u64(1, 5) as u32,
                    },
                ),
                5 => (
                    TraceKind::AppDelivery,
                    TraceData::Recv {
                        ep: 0,
                        src: rng.range_u64(0, 3) as u16,
                        msg,
                        len: 64,
                    },
                ),
                _ => (TraceKind::Drop, TraceData::Text("ring full")),
            };
            tr.record(at, node, kind, data);
        }
        let events: Vec<TraceEvent> = tr.events().copied().collect();
        for b in analyze(&events) {
            assert_eq!(b.phase_sum(), b.total_ns(), "soup breakdown: {b:?}");
            assert!(b.start_ns <= b.end_ns);
        }
    }
}

/// Real simulations across sizes and strategies: the invariant holds on
/// every breakdown the analyzer extracts from a live trace, and messages
/// are actually extracted.
#[test]
fn prop_phases_sum_to_total_on_real_traces() {
    let mut rng = SimRng::new(0x5EED_6003);
    let strategies = [
        CoalescingStrategy::Disabled,
        CoalescingStrategy::Timeout { delay_us: 75 },
        CoalescingStrategy::OpenMx { delay_us: 75 },
        CoalescingStrategy::Stream { delay_us: 75 },
    ];
    for _ in 0..8 {
        let strategy = strategies[rng.range_u64(0, strategies.len() as u64) as usize];
        let msg_len = [0u32, 64, 4096, 40_000][rng.range_u64(0, 4) as usize];
        let mut cluster = ClusterBuilder::new().nodes(2).strategy(strategy).build();
        cluster.enable_tracing(1 << 16);
        cluster.run_pingpong(PingPongSpec {
            msg_len,
            iterations: 3,
            warmup: 1,
        });
        let events: Vec<TraceEvent> = cluster
            .tracer()
            .expect("tracing enabled")
            .events()
            .copied()
            .collect();
        let breakdowns = analyze(&events);
        assert!(
            !breakdowns.is_empty(),
            "live trace yields breakdowns ({strategy:?}, {msg_len} B)"
        );
        for b in &breakdowns {
            assert_eq!(b.phase_sum(), b.total_ns(), "{b:?}");
        }
        let summary = PhaseSummary::of(&breakdowns);
        assert_eq!(
            summary.total_ns,
            breakdowns.iter().map(|b| b.total_ns()).sum::<u64>()
        );
    }
}
