//! Property tests for the driver protocol: delivery is exact under
//! arbitrary message sizes, packet reordering, and drop patterns.
//!
//! Randomised with the simulator's deterministic [`SimRng`] (fixed seeds, so
//! failures reproduce exactly) instead of an external property-test harness.

use omx_core::proto::{DriverAction, NodeDriver, ProtoConfig};
use omx_core::wire::{EndpointAddr, Packet};
use omx_sim::rng::SimRng;
use omx_sim::{Time, TimeDelta};
use std::collections::VecDeque;

/// Drive two drivers to quiescence with an adversarial network: packets are
/// delivered in an arbitrary interleaving (`order_seed` permutes), and
/// `drop_mask` drops the i-th wire transmission (first pass only —
/// retransmissions always deliver, as the paper's fabric eventually does).
/// Timers fire whenever the network goes quiet.
fn converge(
    a: &mut NodeDriver,
    b: &mut NodeDriver,
    initial: Vec<Packet>,
    order_seed: u64,
    drop_mask: &[bool],
) -> (Vec<DriverAction>, Vec<DriverAction>) {
    let mut wire: VecDeque<Packet> = VecDeque::new();
    let mut out_a = Vec::new();
    let mut out_b = Vec::new();
    let mut now = Time::from_micros(1);
    let mut tx_count = 0usize;
    let mut rng = order_seed;

    let submit = |wire: &mut VecDeque<Packet>, pkt: Packet, tx_count: &mut usize| {
        let dropped = *drop_mask.get(*tx_count).unwrap_or(&false);
        *tx_count += 1;
        if !dropped {
            wire.push_back(pkt);
        }
    };

    for pkt in initial {
        submit(&mut wire, pkt, &mut tx_count);
    }

    for _round in 0..100_000 {
        if wire.is_empty() {
            // Quiet network: advance time past every deadline and fire
            // timers. Keep firing across quiet rounds — a retransmission can
            // itself be dropped and need another timeout.
            now += TimeDelta::from_millis(25);
            let mut any_deadline = false;
            for (drv, _out) in [(&mut *a, &mut out_a), (&mut *b, &mut out_b)] {
                if drv.next_deadline().is_some() {
                    any_deadline = true;
                    for act in drv.on_timer(now) {
                        if let DriverAction::Transmit(p) = act {
                            submit(&mut wire, p, &mut tx_count);
                        }
                    }
                }
            }
            if wire.is_empty() && !any_deadline {
                break; // fully quiescent
            }
            continue;
        }
        // Pseudo-random pick from the wire (adversarial reordering).
        rng = rng
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        let idx = (rng >> 33) as usize % wire.len();
        let pkt = wire.remove(idx).expect("index in range");
        now += TimeDelta::from_micros(1);
        let (target, sink) = if pkt.hdr.dst.node.0 == a.node() {
            (&mut *a, &mut out_a)
        } else {
            (&mut *b, &mut out_b)
        };
        for act in target.handle_packet(now, pkt) {
            match act {
                DriverAction::Transmit(p) => submit(&mut wire, p, &mut tx_count),
                DriverAction::ArmTimer { .. } => {}
                other => sink.push(other),
            }
        }
    }
    (out_a, out_b)
}

fn recv_completions(actions: &[DriverAction]) -> Vec<(u64, u32)> {
    actions
        .iter()
        .filter_map(|a| match a {
            DriverAction::RecvComplete { handle, len, .. } => Some((*handle, *len)),
            _ => None,
        })
        .collect()
}

/// Any mix of message sizes delivers exactly once, regardless of wire
/// interleaving.
#[test]
fn exact_delivery_under_reordering() {
    let mut rng = SimRng::new(0x5EED_2001);
    for _case in 0..64 {
        let n = rng.range_u64(1, 6) as usize;
        let lens: Vec<u32> = (0..n).map(|_| rng.range_u64(0, 300_000) as u32).collect();
        let order_seed = rng.next_u64();
        let cfg = ProtoConfig::default();
        let mut a = NodeDriver::new(0, 1, cfg);
        let mut b = NodeDriver::new(1, 1, cfg);
        let mut initial = Vec::new();
        for (i, &len) in lens.iter().enumerate() {
            b.post_recv(Time::from_micros(1), 0, i as u64, !0, 1_000 + i as u64);
            for act in a.post_send(
                Time::from_micros(1),
                0,
                EndpointAddr::new(1, 0),
                len,
                i as u64,
                i as u64,
            ) {
                if let DriverAction::Transmit(p) = act {
                    initial.push(p);
                }
            }
        }
        let (_, out_b) = converge(&mut a, &mut b, initial, order_seed, &[]);
        let mut got = recv_completions(&out_b);
        got.sort_unstable();
        let mut expect: Vec<(u64, u32)> = lens
            .iter()
            .enumerate()
            .map(|(i, &l)| (1_000 + i as u64, l))
            .collect();
        expect.sort_unstable();
        assert_eq!(got, expect);
    }
}

/// Dropping arbitrary first-transmission packets still yields exact
/// delivery via retransmission (eager) or block re-request (pull).
#[test]
fn exact_delivery_under_drops() {
    let mut rng = SimRng::new(0x5EED_2002);
    for _case in 0..64 {
        let len = rng.range_u64(0, 200_000) as u32;
        let order_seed = rng.next_u64();
        let mask_len = rng.range_u64(0, 400) as usize;
        let drop_mask: Vec<bool> = (0..mask_len).map(|_| rng.chance(0.5)).collect();
        let cfg = ProtoConfig {
            rto_ns: 5_000_000,
            ..ProtoConfig::default()
        };
        let mut a = NodeDriver::new(0, 1, cfg);
        let mut b = NodeDriver::new(1, 1, cfg);
        b.post_recv(Time::from_micros(1), 0, 7, !0, 99);
        let mut initial = Vec::new();
        for act in a.post_send(Time::from_micros(1), 0, EndpointAddr::new(1, 0), len, 7, 1) {
            if let DriverAction::Transmit(p) = act {
                initial.push(p);
            }
        }
        let (_, out_b) = converge(&mut a, &mut b, initial, order_seed, &drop_mask);
        let got = recv_completions(&out_b);
        assert_eq!(got, vec![(99u64, len)]);
    }
}

/// Large-message senders always learn about completion (notify arrives,
/// possibly retransmitted).
#[test]
fn sender_always_completes() {
    let mut rng = SimRng::new(0x5EED_2003);
    for _case in 0..64 {
        let len = rng.range_u64(32_769, 150_000) as u32;
        let order_seed = rng.next_u64();
        let mask_len = rng.range_u64(0, 200) as usize;
        let drop_mask: Vec<bool> = (0..mask_len).map(|_| rng.chance(0.5)).collect();
        let cfg = ProtoConfig {
            rto_ns: 5_000_000,
            ..ProtoConfig::default()
        };
        let mut a = NodeDriver::new(0, 1, cfg);
        let mut b = NodeDriver::new(1, 1, cfg);
        b.post_recv(Time::from_micros(1), 0, 7, !0, 99);
        let mut initial = Vec::new();
        for act in a.post_send(Time::from_micros(1), 0, EndpointAddr::new(1, 0), len, 7, 42) {
            if let DriverAction::Transmit(p) = act {
                initial.push(p);
            }
        }
        let (out_a, _) = converge(&mut a, &mut b, initial, order_seed, &drop_mask);
        assert!(
            out_a
                .iter()
                .any(|x| matches!(x, DriverAction::SendComplete { handle: 42, .. })),
            "sender never completed"
        );
    }
}
