//! Protocol-refactor equivalence golden.
//!
//! The slab-indexed protocol state (PR 5) changes how per-packet state is
//! *found*, never what the simulation *does*. This test pins that claim
//! with a randomized disturbance schedule: lossy, delaying, jittering
//! fabric runs across all five coalescing strategies and all three message
//! classes (small eager, medium fragmented, large rendezvous/pull) must
//! produce cluster metrics — every per-node NIC/host/driver counter
//! included — byte-identical to the golden captured with the pre-refactor
//! map-based implementation.
//!
//! Loss forces the retransmission and pull-rerequest paths; delay forces
//! reordering and duplicate-suppression; jitter varies DMA/arrival
//! overlap. If a refactor changes any lookup into an observable ordering
//! difference, some counter in some cell moves and the render diverges.
//!
//! Regenerate (only when the simulation is *meant* to change) with:
//!
//! ```text
//! OMX_BLESS=1 cargo test -p omx-core --test proto_equivalence
//! ```

use omx_core::prelude::*;
use omx_fabric::DisturbanceConfig;
use omx_sim::json::{Json, ToJson};

const GOLDEN: &str = concat!(
    env!("CARGO_MANIFEST_DIR"),
    "/tests/golden/proto_equivalence.json"
);

fn strategies() -> Vec<(&'static str, CoalescingStrategy)> {
    vec![
        ("disabled", CoalescingStrategy::Disabled),
        ("timeout", CoalescingStrategy::Timeout { delay_us: 75 }),
        ("open-mx", CoalescingStrategy::OpenMx { delay_us: 75 }),
        ("stream", CoalescingStrategy::Stream { delay_us: 75 }),
        (
            "adaptive",
            CoalescingStrategy::Adaptive {
                min_delay_us: 0,
                max_delay_us: 75,
            },
        ),
    ]
}

/// `(label, msg_len, messages)` covering the three protocol classes.
fn shapes() -> Vec<(&'static str, u32, u32)> {
    vec![
        ("small", 256, 80),
        ("medium", 32 << 10, 30),
        ("large", 200 << 10, 5),
    ]
}

fn run_cell(strategy: CoalescingStrategy, msg_len: u32, messages: u32, seed: u64) -> Json {
    let disturbance = DisturbanceConfig {
        loss_probability: 0.01,
        delay_probability: 0.05,
        delay_min_ns: 5_000,
        delay_max_ns: 60_000,
        jitter_ns: 300,
    };
    let mut cluster = ClusterBuilder::new()
        .nodes(2)
        .strategy(strategy)
        .disturbance(disturbance)
        .seed(seed)
        .build();
    cluster.run_stream(StreamSpec {
        msg_len,
        messages,
        window: 8,
    });
    cluster.metrics().to_json()
}

fn render_all() -> String {
    let mut cells = Vec::new();
    for (slabel, strategy) in strategies() {
        for (shape, msg_len, messages) in shapes() {
            for seed in [0xD15EA5Eu64, 0xFACADE] {
                let metrics = run_cell(strategy, msg_len, messages, seed);
                cells.push(Json::obj(vec![
                    ("strategy", Json::Str(slabel.to_string())),
                    ("shape", Json::Str(shape.to_string())),
                    ("msg_len", Json::U64(u64::from(msg_len))),
                    ("seed", Json::U64(seed)),
                    ("metrics", metrics),
                ]));
            }
        }
    }
    Json::obj(vec![
        ("schema", Json::Str("omx-proto-equivalence/1".into())),
        ("cells", Json::Arr(cells)),
    ])
    .render_pretty()
}

#[test]
fn lossy_reordered_runs_match_map_based_golden() {
    let rendered = render_all();
    if std::env::var_os("OMX_BLESS").is_some() {
        std::fs::write(GOLDEN, &rendered).expect("write golden");
        return;
    }
    let golden = std::fs::read_to_string(GOLDEN).expect(
        "golden missing; bless with OMX_BLESS=1 cargo test -p omx-core --test proto_equivalence",
    );
    assert_eq!(
        rendered, golden,
        "metrics diverged from the map-based golden — the protocol refactor \
         changed simulation behaviour, not just state lookup"
    );
}
