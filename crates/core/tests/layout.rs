//! Hot-path type layout regression tests.
//!
//! `Packet` is copied on every transmit, retransmit-queue insert, and trace
//! record; `DriverAction` is pushed into the per-tick action scratch on
//! every protocol step; `TraceEvent` embeds a `Packet` and is written per
//! frame when tracing. A grown enum variant silently doubles the memcpy
//! traffic on all of those paths, so the exact sizes are pinned here — if a
//! change legitimately needs a bigger variant, move the payload behind a
//! `Box` or shrink a field, and only then update the constant.

use std::mem::size_of;

#[test]
fn packet_stays_compact() {
    assert_eq!(size_of::<omx_core::wire::Packet>(), 72);
}

#[test]
fn driver_action_stays_compact() {
    assert_eq!(size_of::<omx_core::proto::DriverAction>(), 72);
}

#[test]
fn trace_event_stays_compact() {
    assert_eq!(size_of::<omx_core::trace::TraceEvent>(), 104);
}
