//! Disturbance injection: delay, reordering and loss.
//!
//! The paper's Table III studies how the Stream coalescing firmware copes
//! with mis-ordered packets on a loaded fabric. We reproduce that with an
//! injector that can (a) add random or targeted extra latency to selected
//! frames — which physically reorders them relative to their neighbours —
//! and (b) drop frames with a configured probability to exercise the
//! retransmission path.

use omx_sim::rng::SimRng;

/// Configuration of the fabric disturbance injector. All fields are
/// scalars, so the config is `Copy` — constructing an [`Injector`] or a
/// fabric never clones.
#[derive(Debug, Clone, Copy)]
pub struct DisturbanceConfig {
    /// Probability that a frame receives extra delay.
    pub delay_probability: f64,
    /// Minimum extra delay (ns) when delayed.
    pub delay_min_ns: u64,
    /// Maximum extra delay (ns) when delayed.
    pub delay_max_ns: u64,
    /// Probability that a frame is silently dropped.
    pub loss_probability: f64,
    /// Uniform jitter applied to every frame (± ns). Zero disables.
    pub jitter_ns: u64,
}

impl Default for DisturbanceConfig {
    fn default() -> Self {
        DisturbanceConfig {
            delay_probability: 0.0,
            delay_min_ns: 0,
            delay_max_ns: 0,
            loss_probability: 0.0,
            jitter_ns: 0,
        }
    }
}

impl DisturbanceConfig {
    /// A quiet fabric: no disturbance at all.
    pub fn none() -> Self {
        Self::default()
    }

    /// True when no knob is active (fast-path check).
    pub fn is_quiet(&self) -> bool {
        self.delay_probability == 0.0 && self.loss_probability == 0.0 && self.jitter_ns == 0
    }
}

/// What the injector decided for one frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Disturbance {
    /// Deliver after the normal wire latency plus `extra_ns`.
    Deliver {
        /// Extra delay in nanoseconds (may be negative under jitter).
        extra_ns: i64,
    },
    /// Drop the frame.
    Drop,
}

/// Stateful injector owning its RNG sub-stream.
pub struct Injector {
    cfg: DisturbanceConfig,
    rng: SimRng,
    frames_seen: u64,
    frames_dropped: u64,
    frames_delayed: u64,
}

impl Injector {
    /// Create an injector from config and a forked RNG stream.
    pub fn new(cfg: DisturbanceConfig, rng: SimRng) -> Self {
        Injector {
            cfg,
            rng,
            frames_seen: 0,
            frames_dropped: 0,
            frames_delayed: 0,
        }
    }

    /// Decide the fate of one frame.
    pub fn decide(&mut self) -> Disturbance {
        self.frames_seen += 1;
        if self.cfg.is_quiet() {
            return Disturbance::Deliver { extra_ns: 0 };
        }
        if self.cfg.loss_probability > 0.0 && self.rng.chance(self.cfg.loss_probability) {
            self.frames_dropped += 1;
            return Disturbance::Drop;
        }
        let mut extra = 0i64;
        if self.cfg.delay_probability > 0.0 && self.rng.chance(self.cfg.delay_probability) {
            self.frames_delayed += 1;
            let lo = self.cfg.delay_min_ns;
            let hi = self.cfg.delay_max_ns.max(lo + 1);
            extra += self.rng.range_u64(lo, hi) as i64;
        }
        if self.cfg.jitter_ns > 0 {
            extra += self.rng.jitter_ns(self.cfg.jitter_ns);
        }
        Disturbance::Deliver { extra_ns: extra }
    }

    /// Frames that passed through the injector.
    pub fn frames_seen(&self) -> u64 {
        self.frames_seen
    }

    /// Frames dropped so far.
    pub fn frames_dropped(&self) -> u64 {
        self.frames_dropped
    }

    /// Frames given extra delay so far.
    pub fn frames_delayed(&self) -> u64 {
        self.frames_delayed
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> SimRng {
        SimRng::new(0xC0FFEE)
    }

    #[test]
    fn quiet_config_is_transparent() {
        let mut inj = Injector::new(DisturbanceConfig::none(), rng());
        for _ in 0..100 {
            assert_eq!(inj.decide(), Disturbance::Deliver { extra_ns: 0 });
        }
        assert_eq!(inj.frames_seen(), 100);
        assert_eq!(inj.frames_dropped(), 0);
    }

    #[test]
    fn certain_loss_drops_everything() {
        let cfg = DisturbanceConfig {
            loss_probability: 1.0,
            ..DisturbanceConfig::none()
        };
        let mut inj = Injector::new(cfg, rng());
        for _ in 0..50 {
            assert_eq!(inj.decide(), Disturbance::Drop);
        }
        assert_eq!(inj.frames_dropped(), 50);
    }

    #[test]
    fn certain_delay_is_within_bounds() {
        let cfg = DisturbanceConfig {
            delay_probability: 1.0,
            delay_min_ns: 100,
            delay_max_ns: 200,
            ..DisturbanceConfig::none()
        };
        let mut inj = Injector::new(cfg, rng());
        for _ in 0..200 {
            match inj.decide() {
                Disturbance::Deliver { extra_ns } => {
                    assert!((100..200).contains(&extra_ns), "extra {extra_ns}")
                }
                Disturbance::Drop => panic!("no loss configured"),
            }
        }
        assert_eq!(inj.frames_delayed(), 200);
    }

    #[test]
    fn probabilistic_loss_is_roughly_calibrated() {
        let cfg = DisturbanceConfig {
            loss_probability: 0.2,
            ..DisturbanceConfig::none()
        };
        let mut inj = Injector::new(cfg, rng());
        let n = 20_000;
        for _ in 0..n {
            inj.decide();
        }
        let rate = inj.frames_dropped() as f64 / n as f64;
        assert!((rate - 0.2).abs() < 0.02, "observed loss {rate}");
    }

    #[test]
    fn jitter_can_be_negative_but_bounded() {
        let cfg = DisturbanceConfig {
            jitter_ns: 30,
            ..DisturbanceConfig::none()
        };
        let mut inj = Injector::new(cfg, rng());
        for _ in 0..500 {
            match inj.decide() {
                Disturbance::Deliver { extra_ns } => assert!((-30..=30).contains(&extra_ns)),
                Disturbance::Drop => panic!(),
            }
        }
    }

    #[test]
    fn deterministic_given_same_seed() {
        let cfg = DisturbanceConfig {
            delay_probability: 0.5,
            delay_min_ns: 10,
            delay_max_ns: 1000,
            loss_probability: 0.1,
            jitter_ns: 5,
        };
        let mut a = Injector::new(cfg, SimRng::new(99));
        let mut b = Injector::new(cfg, SimRng::new(99));
        for _ in 0..1000 {
            assert_eq!(a.decide(), b.decide());
        }
    }
}
