//! Point-to-point link timing.
//!
//! A link is characterised by bandwidth and propagation delay. Serialization
//! of back-to-back frames is enforced by a [`PortClock`]: a frame cannot
//! start leaving a port before the previous frame finished, which is what
//! creates queueing at line rate (and, with a switch in between, the
//! store-and-forward pipeline of the real testbed).

use omx_sim::{Time, TimeDelta};

/// Static link parameters.
#[derive(Debug, Clone, Copy)]
pub struct LinkConfig {
    /// Line rate in bits per second (Myri-10G: 10 Gbit/s).
    pub bandwidth_bps: u64,
    /// One-way propagation delay of the cable in nanoseconds.
    pub propagation_ns: u64,
    /// Fixed per-frame overhead on the wire in bytes (preamble + IFG + FCS).
    pub wire_overhead_bytes: u32,
}

impl Default for LinkConfig {
    fn default() -> Self {
        // 10 GbE with a short cable. Ethernet adds 7+1 B preamble/SFD,
        // 4 B FCS and a 12 B inter-frame gap = 24 B of wire overhead.
        LinkConfig {
            bandwidth_bps: 10_000_000_000,
            propagation_ns: 200,
            wire_overhead_bytes: 24,
        }
    }
}

impl LinkConfig {
    /// Time to clock `frame_bytes` of payload (plus overhead) onto the wire.
    pub fn serialization(&self, frame_bytes: u32) -> TimeDelta {
        let bits = (frame_bytes as u64 + self.wire_overhead_bytes as u64) * 8;
        // Round up so zero-cost frames are impossible on a finite-rate link.
        let ns = (bits * 1_000_000_000).div_ceil(self.bandwidth_bps);
        TimeDelta::from_nanos(ns as i64)
    }

    /// One-way propagation delay.
    pub fn propagation(&self) -> TimeDelta {
        TimeDelta::from_nanos(self.propagation_ns as i64)
    }
}

/// Tracks when a transmit port next becomes free.
#[derive(Debug, Clone, Copy, Default)]
pub struct PortClock {
    next_free: Time,
}

impl PortClock {
    /// New port, free from time zero.
    pub fn new() -> Self {
        PortClock {
            next_free: Time::ZERO,
        }
    }

    /// Reserve the port for one frame of `frame_bytes` starting no earlier
    /// than `now`. Returns `(start, end_of_serialization)`.
    pub fn reserve(&mut self, now: Time, cfg: &LinkConfig, frame_bytes: u32) -> (Time, Time) {
        let start = if self.next_free > now {
            self.next_free
        } else {
            now
        };
        let end = start + cfg.serialization(frame_bytes);
        self.next_free = end;
        (start, end)
    }

    /// Time at which the port next becomes idle.
    pub fn next_free(&self) -> Time {
        self.next_free
    }

    /// Backlog (ns) a frame would wait if submitted at `now`.
    pub fn backlog(&self, now: Time) -> TimeDelta {
        self.next_free.saturating_since(now)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gbe10() -> LinkConfig {
        LinkConfig::default()
    }

    #[test]
    fn serialization_scales_with_size() {
        let cfg = gbe10();
        // 1500 B + 24 B overhead = 12192 bits on a 10 Gb/s wire = 1219.2 ns.
        let t = cfg.serialization(1500);
        assert_eq!(t.as_nanos(), 1220);
        // Minimum frame still takes nonzero time.
        assert!(cfg.serialization(0).as_nanos() > 0);
    }

    #[test]
    fn serialization_rounds_up() {
        let cfg = LinkConfig {
            bandwidth_bps: 3,
            propagation_ns: 0,
            wire_overhead_bytes: 0,
        };
        // 1 byte = 8 bits at 3 bps = 2.67 s => rounds up.
        assert_eq!(cfg.serialization(1).as_nanos(), 2_666_666_667);
    }

    #[test]
    fn port_clock_serializes_back_to_back() {
        let cfg = gbe10();
        let mut port = PortClock::new();
        let (s1, e1) = port.reserve(Time::ZERO, &cfg, 1500);
        assert_eq!(s1, Time::ZERO);
        let (s2, e2) = port.reserve(Time::ZERO, &cfg, 1500);
        assert_eq!(s2, e1, "second frame waits for the first");
        assert_eq!(e2 - s2, cfg.serialization(1500));
    }

    #[test]
    fn port_clock_idles_between_sparse_frames() {
        let cfg = gbe10();
        let mut port = PortClock::new();
        let (_, e1) = port.reserve(Time::ZERO, &cfg, 64);
        let later = e1 + TimeDelta::from_micros(5);
        let (s2, _) = port.reserve(later, &cfg, 64);
        assert_eq!(s2, later, "idle port starts immediately");
    }

    #[test]
    fn backlog_reporting() {
        let cfg = gbe10();
        let mut port = PortClock::new();
        port.reserve(Time::ZERO, &cfg, 1500);
        let b = port.backlog(Time::ZERO);
        assert_eq!(b, cfg.serialization(1500));
        assert_eq!(port.backlog(port.next_free()), TimeDelta::ZERO);
    }
}
