//! # omx-fabric — simulated Ethernet wire
//!
//! Models the physical substrate of the reproduction: full-duplex links with
//! finite bandwidth and propagation delay, a store-and-forward switch, and
//! disturbance injectors (extra delay, reordering, loss) used by the packet
//! mis-ordering experiment (Table III of the paper).
//!
//! The fabric is a *passive timing oracle*: the cluster orchestrator asks it
//! "this frame leaves node A for node B at time t — when does it arrive, if
//! at all?" and schedules the arrival event itself. Keeping the fabric free
//! of its own event queue makes it trivially unit-testable and keeps all
//! event flow in one place.

#![warn(missing_docs)]

pub mod inject;
pub mod link;
pub mod topology;

pub use inject::{Disturbance, DisturbanceConfig};
pub use link::{LinkConfig, PortClock};
pub use topology::{EthernetFabric, FabricConfig, PortId, TransmitOutcome};
