//! Star topology through a store-and-forward switch.
//!
//! The paper's testbed is two hosts on a Myri-10G Ethernet fabric. We model
//! the general case: `n` host ports attached to one switch. A frame from
//! port A to port B crosses:
//!
//! 1. A's egress serialization (host NIC TX) + cable propagation,
//! 2. the switch store-and-forward latency once fully received,
//! 3. the switch's egress port toward B (serialization, possibly queued
//!    behind frames from other sources) + cable propagation.
//!
//! All state is per-port [`PortClock`]s, so contention between senders
//! targeting the same destination emerges naturally.

use crate::inject::{Disturbance, DisturbanceConfig, Injector};
use crate::link::{LinkConfig, PortClock};
use omx_sim::rng::SimRng;
use omx_sim::stats::TimeWeighted;
use omx_sim::{Time, TimeDelta};
use std::collections::VecDeque;

/// Identifies one host port on the fabric.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PortId(pub usize);

/// Fabric-wide configuration. Plain-old-data throughout ([`LinkConfig`]
/// and [`DisturbanceConfig`] are `Copy`), so fabrics and clusters embed it
/// by value — no per-construction clone.
#[derive(Debug, Clone, Copy)]
pub struct FabricConfig {
    /// Link characteristics (same for every hop; the testbed was homogeneous).
    pub link: LinkConfig,
    /// Switch store-and-forward processing latency in nanoseconds.
    pub switch_latency_ns: u64,
    /// Maximum transmission unit in bytes (payload handed to the fabric must
    /// not exceed this; enforced with a panic because fragmentation is the
    /// sender driver's job).
    pub mtu: u32,
    /// Per-egress-port switch buffer capacity in frames. A frame reaching a
    /// switch egress port whose FIFO already holds this many queued frames
    /// is tail-dropped (the incast failure mode of shallow-buffered
    /// cut-price switches). The default is effectively unbounded, which
    /// reproduces the paper's uncongested two-node testbed exactly.
    pub switch_buffer_frames: u32,
    /// Disturbance injection.
    pub disturbance: DisturbanceConfig,
}

impl Default for FabricConfig {
    fn default() -> Self {
        FabricConfig {
            link: LinkConfig::default(),
            switch_latency_ns: 300,
            mtu: 1500,
            switch_buffer_frames: u32::MAX,
            disturbance: DisturbanceConfig::none(),
        }
    }
}

impl FabricConfig {
    /// Undisturbed lower bound, in nanoseconds, on how long *any* frame
    /// spends in the fabric between [`EthernetFabric::transmit`] and its
    /// arrival: two zero-byte serializations (host egress and switch
    /// egress are both finite-rate), two cable propagations, and the
    /// switch store-and-forward latency. Queueing, frame payload, and
    /// injected delay only ever add to this.
    pub fn min_transit_ns(&self) -> u64 {
        2 * self.link.serialization(0).as_nanos() as u64
            + 2 * self.link.propagation_ns
            + self.switch_latency_ns
    }

    /// Conservative-parallel lookahead, in nanoseconds: a frame handed to
    /// the fabric at time `t` is guaranteed to arrive no earlier than
    /// `t + lookahead_ns()`. This is [`FabricConfig::min_transit_ns`]
    /// minus the disturbance jitter spread, the one injector term that can
    /// be *negative* (delay injection only adds; loss delivers nothing).
    /// A parallel DES engine may process events up to this far ahead of
    /// the global minimum time without ever seeing a cross-node frame
    /// land in its past. Returns 0 — "no safe lookahead, run serial" —
    /// if the jitter spread swallows the whole transit floor.
    pub fn lookahead_ns(&self) -> u64 {
        self.min_transit_ns()
            .saturating_sub(self.disturbance.jitter_ns)
    }

    /// Earliest possible arrival, in nanoseconds, of a frame handed to the
    /// fabric at `tx_ns` — the cross-partition intent bound the adaptive
    /// epoch scheduler clamps against. Saturates at `u64::MAX` so callers
    /// can fold it into a running `min` with "no intent in flight"
    /// represented as `u64::MAX`.
    pub fn earliest_arrival_ns(&self, tx_ns: u64) -> u64 {
        tx_ns.saturating_add(self.lookahead_ns())
    }
}

/// Result of submitting a frame to the fabric.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TransmitOutcome {
    /// The frame will arrive at the destination port at this absolute time.
    Arrives(Time),
    /// The injector dropped the frame (wire loss between host and switch).
    Lost,
    /// The switch egress buffer toward the destination was full: tail drop.
    SwitchDropped,
}

/// One switch egress port: serialization clock plus a bounded FIFO of
/// frames queued behind the one on the wire.
#[derive(Debug, Clone, Default)]
struct EgressPort {
    clock: PortClock,
    /// End-of-serialization times of queued/in-flight frames, FIFO order
    /// (monotonically non-decreasing because the clock serialises).
    departures: VecDeque<Time>,
    /// Frames tail-dropped at this egress port.
    drops: u64,
    /// Highest queue occupancy observed (frames buffered at once).
    occupancy_peak: u64,
    /// Time-weighted queue depth (frames buffered, sampled at admissions).
    depth: TimeWeighted,
}

impl EgressPort {
    /// Drop frames that finished serialising by `now` from the FIFO view.
    fn purge(&mut self, now: Time) {
        while self.departures.front().is_some_and(|&d| d <= now) {
            self.departures.pop_front();
        }
    }
}

/// The simulated switch fabric.
///
/// ```
/// use omx_fabric::{EthernetFabric, FabricConfig, PortId, TransmitOutcome};
/// use omx_sim::{rng::SimRng, Time};
///
/// let mut fabric = EthernetFabric::new(2, FabricConfig::default(), SimRng::new(1));
/// match fabric.transmit(Time::ZERO, PortId(0), PortId(1), 1500) {
///     TransmitOutcome::Arrives(at) => assert!(at > Time::ZERO),
///     TransmitOutcome::Lost => unreachable!("no loss configured"),
///     TransmitOutcome::SwitchDropped => unreachable!("default buffer is unbounded"),
/// }
/// ```
pub struct EthernetFabric {
    cfg: FabricConfig,
    /// Host NIC egress ports (host -> switch direction).
    host_egress: Vec<PortClock>,
    /// Switch egress ports (switch -> host direction), one per destination.
    switch_egress: Vec<EgressPort>,
    injector: Injector,
    frames_carried: u64,
    bytes_carried: u64,
}

impl EthernetFabric {
    /// Build a fabric with `ports` host ports.
    pub fn new(ports: usize, cfg: FabricConfig, rng: SimRng) -> Self {
        let injector = Injector::new(cfg.disturbance, rng);
        EthernetFabric {
            cfg,
            host_egress: vec![PortClock::new(); ports],
            switch_egress: vec![EgressPort::default(); ports],
            injector,
            frames_carried: 0,
            bytes_carried: 0,
        }
    }

    /// Fabric configuration.
    pub fn config(&self) -> &FabricConfig {
        &self.cfg
    }

    /// Number of host ports.
    pub fn ports(&self) -> usize {
        self.host_egress.len()
    }

    /// Submit one frame of `frame_bytes` from `src` to `dst` at time `now`.
    ///
    /// # Panics
    /// Panics if `frame_bytes` exceeds the MTU or the ports are out of range
    /// or equal — those are orchestrator bugs, not runtime conditions.
    pub fn transmit(
        &mut self,
        now: Time,
        src: PortId,
        dst: PortId,
        frame_bytes: u32,
    ) -> TransmitOutcome {
        assert!(
            frame_bytes <= self.cfg.mtu,
            "frame of {frame_bytes} B exceeds MTU {}",
            self.cfg.mtu
        );
        assert_ne!(src, dst, "loopback frames never reach the fabric");
        let link = self.cfg.link;

        // Decide the injector's fate *before* reserving any serialization
        // resource: a frame lost on the host→switch cable never occupies the
        // switch egress port, so it must not delay frames behind it.
        let extra_ns = match self.injector.decide() {
            Disturbance::Drop => return TransmitOutcome::Lost,
            Disturbance::Deliver { extra_ns } => extra_ns,
        };

        // Hop 1: host egress + cable.
        let (_, host_ser_end) = self.host_egress[src.0].reserve(now, &link, frame_bytes);
        let at_switch = host_ser_end + link.propagation();

        // Switch store-and-forward processing.
        let forward_ready = at_switch + TimeDelta::from_nanos(self.cfg.switch_latency_ns as i64);

        // Hop 2: bounded egress FIFO toward dst. Frames that finished
        // serialising by `forward_ready` have left the buffer; if what
        // remains fills it, this frame is tail-dropped (it consumed host
        // egress and switch processing, but never the egress wire).
        let egress = &mut self.switch_egress[dst.0];
        egress.purge(forward_ready);
        let queued = egress.departures.len() as u64;
        if queued >= u64::from(self.cfg.switch_buffer_frames) {
            egress.drops += 1;
            egress.depth.set(forward_ready, queued as f64);
            return TransmitOutcome::SwitchDropped;
        }
        let (_, sw_ser_end) = egress.clock.reserve(forward_ready, &link, frame_bytes);
        egress.departures.push_back(sw_ser_end);
        let occupancy = queued + 1;
        egress.occupancy_peak = egress.occupancy_peak.max(occupancy);
        egress.depth.set(forward_ready, occupancy as f64);
        let arrival = sw_ser_end + link.propagation();

        self.frames_carried += 1;
        self.bytes_carried += frame_bytes as u64;
        let arrival = arrival.saturating_add(TimeDelta::from_nanos(extra_ns));
        // Disturbed frames may not arrive before they were sent.
        let arrival = arrival.max(now);
        TransmitOutcome::Arrives(arrival)
    }

    /// Unloaded one-way latency for a frame of `frame_bytes` (no queueing,
    /// no disturbance): the baseline the paper's ping-pong rides on.
    pub fn unloaded_latency(&self, frame_bytes: u32) -> TimeDelta {
        let link = self.cfg.link;
        link.serialization(frame_bytes)
            + link.propagation()
            + TimeDelta::from_nanos(self.cfg.switch_latency_ns as i64)
            + link.serialization(frame_bytes)
            + link.propagation()
    }

    /// Total frames successfully carried.
    pub fn frames_carried(&self) -> u64 {
        self.frames_carried
    }

    /// Total payload bytes successfully carried.
    pub fn bytes_carried(&self) -> u64 {
        self.bytes_carried
    }

    /// Frames dropped by the injector.
    pub fn frames_dropped(&self) -> u64 {
        self.injector.frames_dropped()
    }

    /// Frames tail-dropped at switch egress buffers, summed over ports.
    pub fn switch_drops(&self) -> u64 {
        self.switch_egress.iter().map(|p| p.drops).sum()
    }

    /// Frames tail-dropped at the egress buffer toward `port`.
    pub fn switch_drops_at(&self, port: PortId) -> u64 {
        self.switch_egress[port.0].drops
    }

    /// Highest egress-buffer occupancy ever observed toward `port`, frames.
    pub fn switch_occupancy_peak_at(&self, port: PortId) -> u64 {
        self.switch_egress[port.0].occupancy_peak
    }

    /// Highest egress-buffer occupancy over all ports, frames.
    pub fn switch_occupancy_peak(&self) -> u64 {
        self.switch_egress
            .iter()
            .map(|p| p.occupancy_peak)
            .max()
            .unwrap_or(0)
    }

    /// Time-weighted egress queue-depth gauge toward `port` (sampled at
    /// frame admissions; the simulation's incast-pressure signal).
    pub fn switch_queue_depth_at(&self, port: PortId) -> &TimeWeighted {
        &self.switch_egress[port.0].depth
    }

    /// Frames still buffered at the egress toward `port` at `now`.
    ///
    /// Read-only variant of the purge done on the admission path: frames
    /// whose departure time has passed are no longer occupying the buffer,
    /// but the queue itself is not mutated, so sampling this from a
    /// telemetry tick cannot perturb the simulation.
    pub fn switch_queue_len_at(&self, port: PortId, now: Time) -> usize {
        self.switch_egress[port.0]
            .departures
            .iter()
            .filter(|&&d| d > now)
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fabric(ports: usize) -> EthernetFabric {
        EthernetFabric::new(ports, FabricConfig::default(), SimRng::new(1))
    }

    fn arrives(o: TransmitOutcome) -> Time {
        match o {
            TransmitOutcome::Arrives(t) => t,
            TransmitOutcome::Lost => panic!("frame lost unexpectedly"),
            TransmitOutcome::SwitchDropped => panic!("frame switch-dropped unexpectedly"),
        }
    }

    #[test]
    fn lookahead_matches_transit_components() {
        let cfg = FabricConfig::default();
        // 10 GbE: ser(0) = ceil(24 B · 8 / 10 bpns) = 20 ns, propagation
        // 200 ns per hop, switch 300 ns.
        assert_eq!(cfg.min_transit_ns(), 2 * 20 + 2 * 200 + 300);
        assert_eq!(cfg.lookahead_ns(), cfg.min_transit_ns());

        let mut jittery = FabricConfig::default();
        jittery.disturbance.jitter_ns = 100;
        assert_eq!(jittery.lookahead_ns(), jittery.min_transit_ns() - 100);

        // Pathological jitter swallows the transit floor: no safe lookahead.
        jittery.disturbance.jitter_ns = u64::MAX;
        assert_eq!(jittery.lookahead_ns(), 0);
    }

    #[test]
    fn earliest_arrival_is_tx_plus_lookahead_and_saturates() {
        let cfg = FabricConfig::default();
        assert_eq!(cfg.earliest_arrival_ns(1_000), 1_000 + cfg.lookahead_ns());
        assert_eq!(cfg.earliest_arrival_ns(u64::MAX - 1), u64::MAX);
    }

    #[test]
    fn every_arrival_respects_the_lookahead_bound() {
        // The conservative-parallel safety contract: under load, random
        // loss, delay injection, *and* negative jitter, a frame handed to
        // the fabric at `t` never arrives before `t + lookahead_ns()`.
        let cfg = FabricConfig {
            switch_buffer_frames: 4,
            disturbance: DisturbanceConfig {
                delay_probability: 0.2,
                delay_min_ns: 50,
                delay_max_ns: 5_000,
                loss_probability: 0.1,
                jitter_ns: 120,
            },
            ..FabricConfig::default()
        };
        let lookahead = TimeDelta::from_nanos(cfg.lookahead_ns() as i64);
        let mut f = EthernetFabric::new(8, cfg, SimRng::new(0xFEED));
        let mut rng = SimRng::new(0x5EED);
        let mut now = Time::ZERO;
        let mut arrivals = 0u32;
        for _ in 0..5_000 {
            now += TimeDelta::from_nanos(rng.range_u64(0, 400) as i64);
            let src = PortId(rng.range_u64(0, 8) as usize);
            let mut dst = PortId(rng.range_u64(0, 8) as usize);
            if dst == src {
                dst = PortId((dst.0 + 1) % 8);
            }
            let bytes = rng.range_u64(64, 1_500) as u32;
            if let TransmitOutcome::Arrives(at) = f.transmit(now, src, dst, bytes) {
                assert!(
                    at >= now + lookahead,
                    "frame sent at {now:?} arrived at {at:?}, inside the \
                     {lookahead:?} lookahead window"
                );
                arrivals += 1;
            }
        }
        assert!(arrivals > 1_000, "disturbance ate the sample ({arrivals})");
    }

    #[test]
    fn unloaded_latency_matches_components() {
        let mut f = fabric(2);
        let t0 = Time::from_micros(10);
        let got = arrives(f.transmit(t0, PortId(0), PortId(1), 1500));
        assert_eq!(got - t0, f.unloaded_latency(1500));
    }

    #[test]
    fn back_to_back_frames_queue_at_line_rate() {
        let mut f = fabric(2);
        let t0 = Time::ZERO;
        let a1 = arrives(f.transmit(t0, PortId(0), PortId(1), 1500));
        let a2 = arrives(f.transmit(t0, PortId(0), PortId(1), 1500));
        let ser = f.config().link.serialization(1500);
        assert_eq!(a2 - a1, ser, "pipeline spacing equals serialization time");
    }

    #[test]
    fn two_senders_contend_on_destination_port() {
        let mut f = fabric(3);
        let t0 = Time::ZERO;
        let a = arrives(f.transmit(t0, PortId(0), PortId(2), 1500));
        let b = arrives(f.transmit(t0, PortId(1), PortId(2), 1500));
        // Host egress is parallel, but the switch egress to port 2 serializes.
        let ser = f.config().link.serialization(1500);
        assert_eq!(b - a, ser);
    }

    #[test]
    fn reverse_direction_is_independent() {
        let mut f = fabric(2);
        let t0 = Time::ZERO;
        let fwd = arrives(f.transmit(t0, PortId(0), PortId(1), 1500));
        let rev = arrives(f.transmit(t0, PortId(1), PortId(0), 1500));
        assert_eq!(
            fwd - t0,
            rev - t0,
            "full duplex: directions do not interact"
        );
    }

    #[test]
    #[should_panic(expected = "exceeds MTU")]
    fn oversized_frame_panics() {
        let mut f = fabric(2);
        f.transmit(Time::ZERO, PortId(0), PortId(1), 9000);
    }

    #[test]
    #[should_panic(expected = "loopback")]
    fn loopback_panics() {
        let mut f = fabric(2);
        f.transmit(Time::ZERO, PortId(0), PortId(0), 100);
    }

    #[test]
    fn accounting_counts_frames_and_bytes() {
        let mut f = fabric(2);
        f.transmit(Time::ZERO, PortId(0), PortId(1), 100);
        f.transmit(Time::ZERO, PortId(0), PortId(1), 200);
        assert_eq!(f.frames_carried(), 2);
        assert_eq!(f.bytes_carried(), 300);
        assert_eq!(f.frames_dropped(), 0);
    }

    #[test]
    fn lossy_fabric_reports_drops() {
        let cfg = FabricConfig {
            disturbance: DisturbanceConfig {
                loss_probability: 1.0,
                ..DisturbanceConfig::none()
            },
            ..FabricConfig::default()
        };
        let mut f = EthernetFabric::new(2, cfg, SimRng::new(3));
        assert_eq!(
            f.transmit(Time::ZERO, PortId(0), PortId(1), 100),
            TransmitOutcome::Lost
        );
        assert_eq!(f.frames_dropped(), 1);
        assert_eq!(f.frames_carried(), 0);
    }

    #[test]
    fn injector_dropped_frame_does_not_delay_the_next() {
        // Regression for the drop-accounting bug: a frame the injector
        // drops must not reserve host or switch egress serialization, so
        // the next frame sails through at the unloaded latency. Probe a few
        // seeds for the pattern (drop, deliver) at 50% loss — the first
        // match is deterministic forever after.
        let cfg = FabricConfig {
            disturbance: DisturbanceConfig {
                loss_probability: 0.5,
                ..DisturbanceConfig::none()
            },
            ..FabricConfig::default()
        };
        let mut checked = false;
        for seed in 0..64 {
            let mut f = EthernetFabric::new(2, cfg, SimRng::new(seed));
            let first = f.transmit(Time::ZERO, PortId(0), PortId(1), 1500);
            if first != TransmitOutcome::Lost {
                continue;
            }
            let unloaded = f.unloaded_latency(1500);
            if let TransmitOutcome::Arrives(at) = f.transmit(Time::ZERO, PortId(0), PortId(1), 1500)
            {
                assert_eq!(
                    at - Time::ZERO,
                    unloaded,
                    "seed {seed}: frame behind a dropped frame must not queue"
                );
                checked = true;
                break;
            }
        }
        assert!(checked, "no seed produced the (drop, deliver) pattern");
    }

    #[test]
    fn bounded_egress_buffer_tail_drops_incast() {
        // 4 senders blast one destination through a 2-frame egress buffer:
        // the overflow tail-drops and the per-port counters say where.
        let cfg = FabricConfig {
            switch_buffer_frames: 2,
            ..FabricConfig::default()
        };
        let mut f = EthernetFabric::new(5, cfg, SimRng::new(1));
        let mut delivered = 0;
        let mut dropped = 0;
        for burst in 0..4u64 {
            for src in 0..4 {
                match f.transmit(Time::from_nanos(burst * 10), PortId(src), PortId(4), 1500) {
                    TransmitOutcome::Arrives(_) => delivered += 1,
                    TransmitOutcome::SwitchDropped => dropped += 1,
                    TransmitOutcome::Lost => panic!("no injector loss configured"),
                }
            }
        }
        assert!(dropped > 0, "16 frames into a 2-deep buffer must overflow");
        assert_eq!(delivered + dropped, 16);
        assert_eq!(f.switch_drops(), dropped);
        assert_eq!(f.switch_drops_at(PortId(4)), dropped);
        assert_eq!(f.switch_drops_at(PortId(0)), 0, "only the hot port drops");
        assert_eq!(f.frames_carried(), delivered);
        assert!(
            f.switch_occupancy_peak_at(PortId(4)) <= 2,
            "bound respected"
        );
        assert!(f.switch_occupancy_peak_at(PortId(4)) >= 2, "buffer filled");
        assert!(f.switch_queue_depth_at(PortId(4)).peak() >= 1.0);
    }

    #[test]
    fn unbounded_default_never_switch_drops() {
        let mut f = fabric(5);
        for burst in 0..64u64 {
            for src in 0..4 {
                let out = f.transmit(Time::from_nanos(burst), PortId(src), PortId(4), 1500);
                assert!(matches!(out, TransmitOutcome::Arrives(_)));
            }
        }
        assert_eq!(f.switch_drops(), 0);
        // Occupancy still tracked: the incast genuinely queued.
        assert!(f.switch_occupancy_peak_at(PortId(4)) > 4);
        assert_eq!(f.switch_occupancy_peak_at(PortId(0)), 0);
    }

    #[test]
    fn egress_buffer_drains_as_frames_serialize() {
        // Fill a 2-deep buffer, wait for it to drain, and confirm the port
        // accepts frames again (tail drop is transient, not sticky).
        let cfg = FabricConfig {
            switch_buffer_frames: 2,
            ..FabricConfig::default()
        };
        let mut f = EthernetFabric::new(3, cfg, SimRng::new(1));
        let mut last_arrival = Time::ZERO;
        for _ in 0..4 {
            for src in 0..2 {
                if let TransmitOutcome::Arrives(at) =
                    f.transmit(Time::ZERO, PortId(src), PortId(2), 1500)
                {
                    last_arrival = last_arrival.max(at);
                }
            }
        }
        assert!(f.switch_drops() > 0, "burst must overflow");
        let drops_before = f.switch_drops();
        let out = f.transmit(last_arrival, PortId(0), PortId(2), 1500);
        assert!(matches!(out, TransmitOutcome::Arrives(_)), "buffer drained");
        assert_eq!(f.switch_drops(), drops_before);
    }

    #[test]
    fn delayed_frames_can_overtake() {
        // Frame 1 gets a large extra delay, frame 2 none: with certainty of
        // delay only on some frames this is probabilistic; here we force the
        // situation by alternating configs across two fabrics and comparing.
        let cfg = FabricConfig {
            disturbance: DisturbanceConfig {
                delay_probability: 0.5,
                delay_min_ns: 50_000,
                delay_max_ns: 50_001,
                ..DisturbanceConfig::none()
            },
            ..FabricConfig::default()
        };
        let mut f = EthernetFabric::new(2, cfg, SimRng::new(7));
        let mut arrivals = Vec::new();
        for _ in 0..64 {
            if let TransmitOutcome::Arrives(t) = f.transmit(Time::ZERO, PortId(0), PortId(1), 1500)
            {
                arrivals.push(t);
            }
        }
        let sorted = {
            let mut s = arrivals.clone();
            s.sort();
            s
        };
        assert_ne!(arrivals, sorted, "expected at least one reordering");
    }
}
