//! Property and stress tests for the work-stealing pool (ISSUE 7,
//! satellite 4): no task lost under contention, panic propagation to the
//! submitter, graceful shutdown with tasks in flight, and the ordered
//! fork-join commit that campaign determinism stands on.
//!
//! Randomised cases use the crate's own deterministic [`SimRng`] (fixed
//! seeds, so failures reproduce exactly) — same idiom as the queue and
//! collective property tests.

use omx_sim::pool::{self, Pool};
use omx_sim::rng::SimRng;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

/// Model-checked counter: every spawned task runs exactly once, whatever
/// the contention. Submitters race from multiple external threads while
/// workers steal among themselves; the final count must equal the exact
/// number of spawns (a lost task undercounts, a double-run overcounts).
#[test]
fn no_task_lost_under_contention() {
    let mut rng = SimRng::new(0x9001_0001);
    for case in 0..8 {
        let workers = 1 + (case % 4);
        let submitters = 1 + (case % 3);
        let per_submitter = rng.range_u64(50, 400);
        let pool = Arc::new(Pool::new(workers));
        let ran = Arc::new(AtomicU64::new(0));
        let spawned = Arc::new(AtomicU64::new(0));
        std::thread::scope(|s| {
            for _ in 0..submitters {
                let pool = Arc::clone(&pool);
                let ran = Arc::clone(&ran);
                let spawned = Arc::clone(&spawned);
                s.spawn(move || {
                    for i in 0..per_submitter {
                        spawned.fetch_add(1, Ordering::Relaxed);
                        let ran = Arc::clone(&ran);
                        pool.spawn(move || {
                            // Vary task weight so stealing actually happens.
                            if i % 13 == 0 {
                                std::thread::yield_now();
                            }
                            ran.fetch_add(1, Ordering::Relaxed);
                        });
                    }
                });
            }
        });
        // Barrier: a scope joins only after the pool drained everything
        // ahead of it in this submitter's view; then drop the pool to
        // flush any stragglers deterministically.
        let pool = Arc::try_unwrap(pool).unwrap_or_else(|arc| {
            panic!(
                "submitters done, sole owner expected ({} refs)",
                Arc::strong_count(&arc)
            )
        });
        drop(pool);
        assert_eq!(
            ran.load(Ordering::Relaxed),
            spawned.load(Ordering::Relaxed),
            "case {case}: every submitted task runs exactly once"
        );
    }
}

/// Ordered map equals the serial map for randomized input sizes and task
/// durations — the determinism contract (execution may reorder, output
/// never does), checked against the model implementation.
#[test]
fn map_matches_serial_model_under_random_loads() {
    let mut rng = SimRng::new(0x9001_0002);
    let pool = Pool::new(4);
    for _case in 0..32 {
        let n = rng.range_u64(0, 120) as usize;
        let inputs: Vec<u64> = (0..n).map(|_| rng.range_u64(0, 1_000_000)).collect();
        let model: Vec<String> = inputs.iter().map(|x| format!("{:x}", x * 7 + 1)).collect();
        let out = pool.map(inputs, |x| {
            if x % 17 == 0 {
                std::thread::yield_now();
            }
            format!("{:x}", x * 7 + 1)
        });
        assert_eq!(out, model);
    }
}

/// A panic in a worker task crosses back to the submitting thread, and
/// sibling tasks of the same scope still complete before it surfaces.
#[test]
fn worker_panic_propagates_after_siblings_finish() {
    let pool = Pool::new(3);
    let finished = AtomicUsize::new(0);
    let caught = catch_unwind(AssertUnwindSafe(|| {
        pool.scope(|s| {
            for i in 0..24 {
                let finished = &finished;
                s.spawn(move || {
                    if i == 5 {
                        panic!("worker task {i} failed");
                    }
                    finished.fetch_add(1, Ordering::Relaxed);
                });
            }
        });
    }));
    assert!(caught.is_err(), "panic must reach the submitter");
    assert_eq!(
        finished.load(Ordering::Relaxed),
        23,
        "scope joins every sibling before re-raising"
    );
    // The pool is not poisoned: it keeps executing new work.
    assert_eq!(pool.map(vec![1u32, 2, 3], |x| x + 1), vec![2, 3, 4]);
}

/// Graceful shutdown with tasks in flight: dropping the pool while queued
/// tasks are still pending runs them all — submission guarantees
/// execution, nothing is cancelled.
#[test]
fn drop_drains_tasks_in_flight() {
    for workers in [1, 2, 8] {
        let pool = Pool::new(workers);
        let ran = Arc::new(AtomicU64::new(0));
        for _ in 0..500 {
            let ran = Arc::clone(&ran);
            pool.spawn(move || {
                ran.fetch_add(1, Ordering::Relaxed);
            });
        }
        drop(pool); // joins workers; queues drain before exit
        assert_eq!(
            ran.load(Ordering::Relaxed),
            500,
            "{workers}-worker pool must drain its backlog on drop"
        );
    }
}

/// Tasks spawned from inside a running task (nested scopes) complete
/// without deadlock even on a single-worker pool — the joining worker
/// helps execute queued tasks instead of parking.
#[test]
fn nested_scopes_on_one_worker_do_not_deadlock() {
    let pool = Pool::new(1);
    let total = AtomicU64::new(0);
    pool.scope(|outer| {
        let total = &total;
        let pool = &pool;
        outer.spawn(move || {
            pool.scope(|inner| {
                for _ in 0..8 {
                    inner.spawn(|| {
                        total.fetch_add(1, Ordering::Relaxed);
                    });
                }
            });
            total.fetch_add(100, Ordering::Relaxed);
        });
    });
    assert_eq!(total.load(Ordering::Relaxed), 108);
}

/// The jobs policy: `with_jobs` scopes the effective value to the closure
/// (panic-safe restore), and 1 is the documented serial sentinel.
#[test]
fn with_jobs_restores_on_panic() {
    let baseline = pool::effective_jobs();
    let caught = catch_unwind(AssertUnwindSafe(|| {
        pool::with_jobs(7, || {
            assert_eq!(pool::effective_jobs(), 7);
            panic!("inside override");
        })
    }));
    assert!(caught.is_err());
    assert_eq!(
        pool::effective_jobs(),
        baseline,
        "override must unwind with the stack"
    );
}
