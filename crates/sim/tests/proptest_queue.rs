//! Property tests for the event queue: ordering, FIFO ties, cancellation.
//!
//! Randomised with the crate's own deterministic [`SimRng`] (fixed seeds, so
//! failures reproduce exactly) instead of an external property-test harness.

use omx_sim::rng::SimRng;
use omx_sim::{EventQueue, Time};

/// Events always pop in nondecreasing time order, with FIFO order among
/// equal timestamps, regardless of push order.
#[test]
fn pop_order_is_time_then_fifo() {
    let mut rng = SimRng::new(0x5EED_0001);
    for _case in 0..128 {
        let n = rng.range_u64(1, 200) as usize;
        let times: Vec<u64> = (0..n).map(|_| rng.range_u64(0, 1_000)).collect();
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.push(Time::from_nanos(t), (t, i));
        }
        let mut last: Option<(u64, usize)> = None;
        let mut popped = 0;
        while let Some((at, (t, i))) = q.pop() {
            popped += 1;
            assert_eq!(at.as_nanos(), t);
            if let Some((lt, li)) = last {
                assert!(
                    t > lt || (t == lt && i > li),
                    "order violated: ({lt},{li}) then ({t},{i})"
                );
            }
            last = Some((t, i));
        }
        assert_eq!(popped, times.len());
    }
}

/// Cancelled events never pop; everything else always pops exactly once.
#[test]
fn cancellation_is_exact() {
    let mut rng = SimRng::new(0x5EED_0002);
    for _case in 0..128 {
        let n = rng.range_u64(1, 200) as usize;
        let times: Vec<u64> = (0..n).map(|_| rng.range_u64(0, 500)).collect();
        let cancel_mask: Vec<bool> = (0..n).map(|_| rng.chance(0.5)).collect();
        let mut q = EventQueue::new();
        let tokens: Vec<_> = times
            .iter()
            .enumerate()
            .map(|(i, &t)| (i, q.push(Time::from_nanos(t), i)))
            .collect();
        let mut cancelled = std::collections::HashSet::new();
        for (i, tok) in &tokens {
            if cancel_mask[*i] {
                assert!(q.cancel(*tok), "first cancel must succeed");
                assert!(!q.cancel(*tok), "second cancel must fail");
                cancelled.insert(*i);
            }
        }
        assert_eq!(q.len(), times.len() - cancelled.len());
        let mut seen = std::collections::HashSet::new();
        while let Some((_, i)) = q.pop() {
            assert!(!cancelled.contains(&i), "cancelled event {i} popped");
            assert!(seen.insert(i), "event {i} popped twice");
        }
        assert_eq!(seen.len(), times.len() - cancelled.len());
    }
}

/// Model-based check: drive the real queue and a naive sorted-`Vec`
/// reference model through arbitrary interleavings of push / cancel / pop /
/// peek and assert every observable result is identical. The model is the
/// executable spec of "ordered multiset keyed by (time, insertion seq)":
/// whatever layout the queue uses internally (heap, wheel, slab reuse), its
/// behaviour must be indistinguishable from this.
#[test]
fn queue_matches_sorted_vec_model() {
    #[derive(Clone, Copy)]
    struct ModelEntry {
        time: u64,
        seq: u64,
        id: u64,
    }

    let mut rng = SimRng::new(0x5EED_0004);
    for case in 0..256 {
        let ops = rng.range_u64(1, 400) as usize;
        let mut q = EventQueue::new();
        // Reference: entries kept sorted by (time, seq); front pops first.
        let mut model: Vec<ModelEntry> = Vec::new();
        let mut seq = 0u64;
        let mut next_id = 0u64;
        // Live tokens, with a parallel list of (id, model-seq) for cancel.
        let mut live: Vec<(omx_sim::EventToken, u64)> = Vec::new();
        // Tokens already consumed (popped or cancelled); must stay dead.
        let mut dead: Vec<omx_sim::EventToken> = Vec::new();
        let mut floor = 0u64; // pops are monotone; pushes must respect it

        for _ in 0..ops {
            match rng.range_u64(0, 100) {
                // Push (45%) — mix of short horizons (wheel-range) and far.
                0..=44 => {
                    let t = if rng.chance(0.7) {
                        floor + rng.range_u64(0, 100_000) // within wheel spans
                    } else {
                        floor + rng.range_u64(0, 10_000_000_000) // far future
                    };
                    let id = next_id;
                    next_id += 1;
                    let tok = q.push(Time::from_nanos(t), id);
                    let s = seq;
                    seq += 1;
                    let pos = model
                        .binary_search_by_key(&(t, s), |e| (e.time, e.seq))
                        .unwrap_err();
                    model.insert(
                        pos,
                        ModelEntry {
                            time: t,
                            seq: s,
                            id,
                        },
                    );
                    live.push((tok, s));
                }
                // Cancel a live token (20%).
                45..=64 => {
                    if live.is_empty() {
                        continue;
                    }
                    let k = rng.range_u64(0, live.len() as u64) as usize;
                    let (tok, s) = live.swap_remove(k);
                    assert!(q.cancel(tok), "case {case}: live token must cancel");
                    let pos = model
                        .iter()
                        .position(|e| e.seq == s)
                        .expect("model has live entry");
                    model.remove(pos);
                    dead.push(tok);
                }
                // Cancel a dead token (10%) — must be rejected.
                65..=74 => {
                    if let Some(&tok) = dead.last() {
                        assert!(!q.cancel(tok), "case {case}: dead token cancelled");
                    }
                }
                // Pop (15%).
                75..=89 => {
                    let got = q.pop();
                    if model.is_empty() {
                        assert!(got.is_none(), "case {case}: pop from empty");
                    } else {
                        let e = model.remove(0);
                        let (at, id) = got.expect("model non-empty but pop was None");
                        assert_eq!(
                            (at.as_nanos(), id),
                            (e.time, e.id),
                            "case {case}: pop mismatch"
                        );
                        floor = e.time;
                        let k = live.iter().position(|&(_, s)| s == e.seq).unwrap();
                        let (tok, _) = live.swap_remove(k);
                        dead.push(tok);
                    }
                }
                // Peek (10%).
                _ => {
                    let expect = model.first().map(|e| e.time);
                    assert_eq!(
                        q.peek_time().map(|t| t.as_nanos()),
                        expect,
                        "case {case}: peek mismatch"
                    );
                }
            }
            assert_eq!(q.len(), model.len(), "case {case}: len mismatch");
            assert_eq!(q.is_empty(), model.is_empty());
        }

        // Drain: the tail must come out exactly in model order.
        while let Some(e) = if model.is_empty() {
            None
        } else {
            Some(model.remove(0))
        } {
            let (at, id) = q.pop().expect("queue drained before model");
            assert_eq!((at.as_nanos(), id), (e.time, e.id), "case {case}: drain");
        }
        assert!(q.pop().is_none());
    }
}

/// Interleaved push/pop keeps the min-heap property observable: any pop
/// returns a time ≥ the previous pop.
#[test]
fn interleaved_operations_stay_ordered() {
    let mut rng = SimRng::new(0x5EED_0003);
    for _case in 0..128 {
        let ops = rng.range_u64(1, 300) as usize;
        let mut q = EventQueue::new();
        let mut last_popped = 0u64;
        let mut clock = 0u64; // scheduling must be >= last pop for realism
        for _ in 0..ops {
            let t = rng.range_u64(0, 1000);
            if rng.chance(0.5) {
                if let Some((at, ())) = q.pop() {
                    assert!(at.as_nanos() >= last_popped);
                    last_popped = at.as_nanos();
                }
            } else {
                let at = clock + t; // non-decreasing baseline
                q.push(Time::from_nanos(at.max(last_popped)), ());
                clock = clock.max(at / 2);
            }
        }
    }
}
