//! Property tests for the event queue: ordering, FIFO ties, cancellation.

use omx_sim::{EventQueue, Time};
use proptest::prelude::*;

proptest! {
    /// Events always pop in nondecreasing time order, with FIFO order among
    /// equal timestamps, regardless of push order.
    #[test]
    fn pop_order_is_time_then_fifo(times in prop::collection::vec(0u64..1_000, 1..200)) {
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.push(Time::from_nanos(t), (t, i));
        }
        let mut last: Option<(u64, usize)> = None;
        let mut popped = 0;
        while let Some((at, (t, i))) = q.pop() {
            popped += 1;
            prop_assert_eq!(at.as_nanos(), t);
            if let Some((lt, li)) = last {
                prop_assert!(t > lt || (t == lt && i > li), "order violated: ({lt},{li}) then ({t},{i})");
            }
            last = Some((t, i));
        }
        prop_assert_eq!(popped, times.len());
    }

    /// Cancelled events never pop; everything else always pops exactly once.
    #[test]
    fn cancellation_is_exact(
        times in prop::collection::vec(0u64..500, 1..200),
        cancel_mask in prop::collection::vec(any::<bool>(), 1..200),
    ) {
        let mut q = EventQueue::new();
        let tokens: Vec<_> = times
            .iter()
            .enumerate()
            .map(|(i, &t)| (i, q.push(Time::from_nanos(t), i)))
            .collect();
        let mut cancelled = std::collections::HashSet::new();
        for (i, tok) in &tokens {
            if *cancel_mask.get(*i).unwrap_or(&false) {
                prop_assert!(q.cancel(*tok), "first cancel must succeed");
                prop_assert!(!q.cancel(*tok), "second cancel must fail");
                cancelled.insert(*i);
            }
        }
        prop_assert_eq!(q.len(), times.len() - cancelled.len());
        let mut seen = std::collections::HashSet::new();
        while let Some((_, i)) = q.pop() {
            prop_assert!(!cancelled.contains(&i), "cancelled event {i} popped");
            prop_assert!(seen.insert(i), "event {i} popped twice");
        }
        prop_assert_eq!(seen.len(), times.len() - cancelled.len());
    }

    /// Interleaved push/pop keeps the min-heap property observable: any pop
    /// returns a time ≥ the previous pop.
    #[test]
    fn interleaved_operations_stay_ordered(ops in prop::collection::vec((0u64..1000, any::<bool>()), 1..300)) {
        let mut q = EventQueue::new();
        let mut last_popped = 0u64;
        let mut clock = 0u64; // scheduling must be >= last pop for realism
        for (t, do_pop) in ops {
            if do_pop {
                if let Some((at, ())) = q.pop() {
                    prop_assert!(at.as_nanos() >= last_popped);
                    last_popped = at.as_nanos();
                }
            } else {
                let at = clock + t; // non-decreasing baseline
                q.push(Time::from_nanos(at.max(last_popped)), ());
                clock = clock.max(at / 2);
            }
        }
    }
}
