//! Property tests for the event queue: ordering, FIFO ties, cancellation.
//!
//! Randomised with the crate's own deterministic [`SimRng`] (fixed seeds, so
//! failures reproduce exactly) instead of an external property-test harness.

use omx_sim::rng::SimRng;
use omx_sim::{EventQueue, Time};

/// Events always pop in nondecreasing time order, with FIFO order among
/// equal timestamps, regardless of push order.
#[test]
fn pop_order_is_time_then_fifo() {
    let mut rng = SimRng::new(0x5EED_0001);
    for _case in 0..128 {
        let n = rng.range_u64(1, 200) as usize;
        let times: Vec<u64> = (0..n).map(|_| rng.range_u64(0, 1_000)).collect();
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.push(Time::from_nanos(t), (t, i));
        }
        let mut last: Option<(u64, usize)> = None;
        let mut popped = 0;
        while let Some((at, (t, i))) = q.pop() {
            popped += 1;
            assert_eq!(at.as_nanos(), t);
            if let Some((lt, li)) = last {
                assert!(
                    t > lt || (t == lt && i > li),
                    "order violated: ({lt},{li}) then ({t},{i})"
                );
            }
            last = Some((t, i));
        }
        assert_eq!(popped, times.len());
    }
}

/// Cancelled events never pop; everything else always pops exactly once.
#[test]
fn cancellation_is_exact() {
    let mut rng = SimRng::new(0x5EED_0002);
    for _case in 0..128 {
        let n = rng.range_u64(1, 200) as usize;
        let times: Vec<u64> = (0..n).map(|_| rng.range_u64(0, 500)).collect();
        let cancel_mask: Vec<bool> = (0..n).map(|_| rng.chance(0.5)).collect();
        let mut q = EventQueue::new();
        let tokens: Vec<_> = times
            .iter()
            .enumerate()
            .map(|(i, &t)| (i, q.push(Time::from_nanos(t), i)))
            .collect();
        let mut cancelled = std::collections::HashSet::new();
        for (i, tok) in &tokens {
            if cancel_mask[*i] {
                assert!(q.cancel(*tok), "first cancel must succeed");
                assert!(!q.cancel(*tok), "second cancel must fail");
                cancelled.insert(*i);
            }
        }
        assert_eq!(q.len(), times.len() - cancelled.len());
        let mut seen = std::collections::HashSet::new();
        while let Some((_, i)) = q.pop() {
            assert!(!cancelled.contains(&i), "cancelled event {i} popped");
            assert!(seen.insert(i), "event {i} popped twice");
        }
        assert_eq!(seen.len(), times.len() - cancelled.len());
    }
}

/// Interleaved push/pop keeps the min-heap property observable: any pop
/// returns a time ≥ the previous pop.
#[test]
fn interleaved_operations_stay_ordered() {
    let mut rng = SimRng::new(0x5EED_0003);
    for _case in 0..128 {
        let ops = rng.range_u64(1, 300) as usize;
        let mut q = EventQueue::new();
        let mut last_popped = 0u64;
        let mut clock = 0u64; // scheduling must be >= last pop for realism
        for _ in 0..ops {
            let t = rng.range_u64(0, 1000);
            if rng.chance(0.5) {
                if let Some((at, ())) = q.pop() {
                    assert!(at.as_nanos() >= last_popped);
                    last_popped = at.as_nanos();
                }
            } else {
                let at = clock + t; // non-decreasing baseline
                q.push(Time::from_nanos(at.max(last_popped)), ());
                clock = clock.max(at / 2);
            }
        }
    }
}
