//! Simulation driver.
//!
//! A [`Model`] is the whole simulated world (cluster, NICs, hosts, protocol
//! state). The [`Engine`] owns the event queue and the clock; it pops one
//! event at a time and hands it to the model together with a [`Scheduler`]
//! through which the model queues follow-up events and arms/cancels timers.
//!
//! The split keeps component logic free of queue plumbing and makes the
//! event loop trivially auditable: time never goes backwards, and events at
//! equal times are dispatched in scheduling order.

use crate::queue::{EventQueue, EventToken};
use crate::time::Time;

/// The simulated world driven by an [`Engine`].
pub trait Model {
    /// The event payload type dispatched to this model.
    type Event;

    /// Handle one event at simulated time `now`. Follow-up events are
    /// scheduled through `sched`.
    fn handle(&mut self, now: Time, event: Self::Event, sched: &mut Scheduler<Self::Event>);

    /// Periodic observation hook, fired by the engine at tick-period
    /// boundaries (see [`Engine::set_tick_period`]). Deliberately *not*
    /// given a [`Scheduler`]: a tick can read and snapshot model state but
    /// cannot schedule events, so enabling ticks can never keep the queue
    /// alive, change the drain point, or perturb event dispatch order.
    /// Default is a no-op.
    fn tick(&mut self, _now: Time) {}
}

/// Interface handed to [`Model::handle`] for scheduling future events.
pub struct Scheduler<E> {
    queue: EventQueue<E>,
    now: Time,
}

impl<E> Scheduler<E> {
    fn new() -> Self {
        Scheduler {
            queue: EventQueue::new(),
            now: Time::ZERO,
        }
    }

    /// Current simulated time.
    #[inline]
    pub fn now(&self) -> Time {
        self.now
    }

    /// Schedule `event` at absolute time `at`.
    ///
    /// # Panics
    /// Panics if `at` is in the past — a model scheduling backwards in time
    /// is always a bug, and silently clamping would hide it.
    pub fn schedule_at(&mut self, at: Time, event: E) -> EventToken {
        assert!(
            at >= self.now,
            "event scheduled in the past: now={}, at={}",
            self.now,
            at
        );
        self.queue.push(at, event)
    }

    /// Schedule `event` after `delay_ns` nanoseconds.
    ///
    /// # Panics
    /// Panics if `now + delay_ns` overflows the u64 nanosecond clock. A
    /// wrapping add would schedule the event in the distant past and corrupt
    /// the simulation silently in release builds; ~584 years of simulated
    /// time is always a delay-computation bug.
    pub fn schedule_in(&mut self, delay_ns: u64, event: E) -> EventToken {
        let at = self
            .now
            .as_nanos()
            .checked_add(delay_ns)
            .unwrap_or_else(|| {
                panic!(
                    "schedule_in overflows simulated time: now={} + delay={}ns \
                     exceeds the u64 nanosecond clock",
                    self.now, delay_ns
                )
            });
        self.queue.push(Time::from_nanos(at), event)
    }

    /// Schedule `event` at the current instant (after all already-queued
    /// events for this instant).
    pub fn schedule_now(&mut self, event: E) -> EventToken {
        self.queue.push(self.now, event)
    }

    /// Cancel a scheduled event; returns whether it was still pending.
    pub fn cancel(&mut self, token: EventToken) -> bool {
        self.queue.cancel(token)
    }

    /// Number of live scheduled events.
    pub fn pending_events(&self) -> usize {
        self.queue.len()
    }
}

/// Why [`Engine::run`] returned.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StopCondition {
    /// The event queue drained completely.
    QueueEmpty,
    /// The configured time horizon was reached.
    HorizonReached,
    /// The configured event budget was exhausted (runaway protection).
    EventBudgetExhausted,
    /// The model requested an early stop via [`Engine::run_until`]'s predicate.
    PredicateSatisfied,
}

/// The simulation engine: event loop, clock, and run-control.
///
/// ```
/// use omx_sim::{Engine, Model, Scheduler, Time};
///
/// /// Counts down, one event per microsecond.
/// struct Countdown(u32);
///
/// impl Model for Countdown {
///     type Event = ();
///     fn handle(&mut self, _now: Time, _ev: (), sched: &mut Scheduler<()>) {
///         if self.0 > 0 {
///             self.0 -= 1;
///             sched.schedule_in(1_000, ());
///         }
///     }
/// }
///
/// let mut engine = Engine::new(Countdown(3));
/// engine.prime(Time::ZERO, ());
/// engine.run(Time::MAX, u64::MAX);
/// assert_eq!(engine.model().0, 0);
/// assert_eq!(engine.now(), Time::from_micros(3));
/// ```
pub struct Engine<M: Model> {
    model: M,
    sched: Scheduler<M::Event>,
    events_processed: u64,
    /// Tick period in nanoseconds; `None` disables [`Model::tick`] entirely
    /// (one branch per dispatched event — zero cost in the common case).
    tick_period_ns: Option<u64>,
    /// Absolute time of the next pending tick boundary.
    next_tick_ns: u64,
}

impl<M: Model> Engine<M> {
    /// Create an engine around `model` with an empty queue at time zero.
    pub fn new(model: M) -> Self {
        Engine {
            model,
            sched: Scheduler::new(),
            events_processed: 0,
            tick_period_ns: None,
            next_tick_ns: 0,
        }
    }

    /// Access the model (for seeding initial state or reading results).
    pub fn model(&self) -> &M {
        &self.model
    }

    /// Mutable access to the model.
    pub fn model_mut(&mut self) -> &mut M {
        &mut self.model
    }

    /// Consume the engine and return the model.
    pub fn into_model(self) -> M {
        self.model
    }

    /// Current simulated time (time of the last dispatched event).
    pub fn now(&self) -> Time {
        self.sched.now()
    }

    /// Total events dispatched so far.
    pub fn events_processed(&self) -> u64 {
        self.events_processed
    }

    /// Enable periodic [`Model::tick`] callbacks every `period_ns` of
    /// simulated time.
    ///
    /// Boundaries are absolute multiples of the period. The tick closing
    /// window `[k·p, (k+1)·p)` fires at `(k+1)·p`, *before* any event
    /// scheduled at exactly that instant, so a window never observes work
    /// from its successor. Ticks only fire while events are still being
    /// dispatched — they piggyback on event-time progress rather than
    /// driving the clock — so an enabled tick never delays `QueueEmpty`.
    ///
    /// # Panics
    /// Panics if `period_ns` is zero.
    pub fn set_tick_period(&mut self, period_ns: u64) {
        assert!(period_ns > 0, "tick period must be non-zero");
        self.tick_period_ns = Some(period_ns);
        // First boundary strictly after the current instant, aligned to the
        // period grid.
        self.next_tick_ns = (self.sched.now.as_nanos() / period_ns + 1) * period_ns;
    }

    /// The configured tick period, if periodic ticks are enabled.
    pub fn tick_period_ns(&self) -> Option<u64> {
        self.tick_period_ns
    }

    /// Adopt the outcome of running this engine's model elsewhere: advance
    /// the clock to `now` and credit `events` dispatched events.
    ///
    /// Used by the conservative parallel runner, which executes the model
    /// on partition-local schedulers and hands the finished state back so
    /// `now()` / `events_processed()` keep reporting the truth. The tick
    /// grid realigns exactly as [`Engine::set_tick_period`] would.
    ///
    /// # Panics
    /// Panics if the queue is non-empty (the parallel runner owns all
    /// pending work) or if `now` would move time backwards.
    pub fn fast_forward(&mut self, now: Time, events: u64) {
        assert!(
            self.sched.queue.is_empty(),
            "fast_forward with events still queued"
        );
        assert!(now >= self.sched.now, "fast_forward must not rewind time");
        self.sched.now = now;
        self.events_processed += events;
        if let Some(period_ns) = self.tick_period_ns {
            self.next_tick_ns = (now.as_nanos() / period_ns + 1) * period_ns;
        }
    }

    /// Schedule an initial event before running.
    ///
    /// # Panics
    /// Panics if `at` is before the engine's current time, exactly like
    /// [`Scheduler::schedule_at`] — priming after a previous `run` must not
    /// move time backwards.
    pub fn prime(&mut self, at: Time, event: M::Event) -> EventToken {
        self.sched.schedule_at(at, event)
    }

    /// Run until the queue drains or `horizon` is passed (whichever first).
    ///
    /// `max_events` bounds the total number of dispatched events as a
    /// runaway-simulation guard; pass `u64::MAX` for "unbounded".
    pub fn run(&mut self, horizon: Time, max_events: u64) -> StopCondition {
        self.run_until(horizon, max_events, |_| false)
    }

    /// Like [`Engine::run`] but additionally stops as soon as `stop(&model)`
    /// returns true (checked after each dispatched event).
    pub fn run_until(
        &mut self,
        horizon: Time,
        max_events: u64,
        mut stop: impl FnMut(&M) -> bool,
    ) -> StopCondition {
        loop {
            if self.events_processed >= max_events {
                return StopCondition::EventBudgetExhausted;
            }
            let Some(next) = self.sched.queue.peek_time() else {
                return StopCondition::QueueEmpty;
            };
            if next > horizon {
                // Leave the event queued; the caller may extend the horizon.
                self.sched.now = horizon;
                return StopCondition::HorizonReached;
            }
            if let Some(period) = self.tick_period_ns {
                // Fire every tick boundary up to and including the next
                // event's timestamp (tick-before-event on exact ties).
                while self.next_tick_ns <= next.as_nanos() {
                    let at = Time::from_nanos(self.next_tick_ns);
                    self.sched.now = at;
                    self.model.tick(at);
                    self.next_tick_ns += period;
                }
            }
            let (time, event) = self.sched.queue.pop().expect("peeked event vanished");
            debug_assert!(time >= self.sched.now, "time went backwards");
            self.sched.now = time;
            self.model.handle(time, event, &mut self.sched);
            self.events_processed += 1;
            if stop(&self.model) {
                return StopCondition::PredicateSatisfied;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A model that re-schedules itself `remaining` times with a fixed period
    /// and records dispatch timestamps.
    struct Ticker {
        period_ns: u64,
        remaining: u32,
        fired_at: Vec<Time>,
    }

    impl Model for Ticker {
        type Event = ();
        fn handle(&mut self, now: Time, _ev: (), sched: &mut Scheduler<()>) {
            self.fired_at.push(now);
            if self.remaining > 0 {
                self.remaining -= 1;
                sched.schedule_in(self.period_ns, ());
            }
        }
    }

    #[test]
    fn periodic_model_runs_to_completion() {
        let mut eng = Engine::new(Ticker {
            period_ns: 100,
            remaining: 4,
            fired_at: Vec::new(),
        });
        eng.prime(Time::from_nanos(50), ());
        let stop = eng.run(Time::from_secs(1), u64::MAX);
        assert_eq!(stop, StopCondition::QueueEmpty);
        let expect: Vec<Time> = (0..5).map(|i| Time::from_nanos(50 + i * 100)).collect();
        assert_eq!(eng.model().fired_at, expect);
        assert_eq!(eng.events_processed(), 5);
    }

    #[test]
    fn horizon_stops_run_and_preserves_queue() {
        let mut eng = Engine::new(Ticker {
            period_ns: 100,
            remaining: 1000,
            fired_at: Vec::new(),
        });
        eng.prime(Time::ZERO, ());
        let stop = eng.run(Time::from_nanos(450), u64::MAX);
        assert_eq!(stop, StopCondition::HorizonReached);
        assert_eq!(eng.model().fired_at.len(), 5); // t = 0,100,200,300,400
        assert_eq!(eng.now(), Time::from_nanos(450));
        // Continuing picks up exactly where it left off.
        let stop = eng.run(Time::from_nanos(800), u64::MAX);
        assert_eq!(stop, StopCondition::HorizonReached);
        assert_eq!(eng.model().fired_at.len(), 9);
    }

    #[test]
    fn event_budget_guard_trips() {
        let mut eng = Engine::new(Ticker {
            period_ns: 1,
            remaining: u32::MAX,
            fired_at: Vec::new(),
        });
        eng.prime(Time::ZERO, ());
        let stop = eng.run(Time::MAX, 10);
        assert_eq!(stop, StopCondition::EventBudgetExhausted);
        assert_eq!(eng.events_processed(), 10);
    }

    #[test]
    fn predicate_stop() {
        let mut eng = Engine::new(Ticker {
            period_ns: 10,
            remaining: 1000,
            fired_at: Vec::new(),
        });
        eng.prime(Time::ZERO, ());
        let stop = eng.run_until(Time::MAX, u64::MAX, |m| m.fired_at.len() >= 3);
        assert_eq!(stop, StopCondition::PredicateSatisfied);
        assert_eq!(eng.model().fired_at.len(), 3);
    }

    #[test]
    #[should_panic(expected = "scheduled in the past")]
    fn scheduling_in_the_past_panics() {
        struct Bad;
        impl Model for Bad {
            type Event = ();
            fn handle(&mut self, now: Time, _ev: (), sched: &mut Scheduler<()>) {
                sched.schedule_at(now - crate::TimeDelta::from_nanos(1), ());
            }
        }
        let mut eng = Engine::new(Bad);
        eng.prime(Time::from_nanos(100), ());
        eng.run(Time::MAX, u64::MAX);
    }

    #[test]
    #[should_panic(expected = "schedule_in overflows simulated time")]
    fn schedule_in_overflow_panics() {
        struct Overflow;
        impl Model for Overflow {
            type Event = ();
            fn handle(&mut self, _now: Time, _ev: (), sched: &mut Scheduler<()>) {
                // now is non-zero here, so now + u64::MAX wraps.
                sched.schedule_in(u64::MAX, ());
            }
        }
        let mut eng = Engine::new(Overflow);
        eng.prime(Time::from_nanos(100), ());
        eng.run(Time::MAX, u64::MAX);
    }

    #[test]
    #[should_panic(expected = "scheduled in the past")]
    fn priming_in_the_past_panics() {
        let mut eng = Engine::new(Ticker {
            period_ns: 100,
            remaining: 0,
            fired_at: Vec::new(),
        });
        eng.prime(Time::from_nanos(500), ());
        eng.run(Time::MAX, u64::MAX);
        assert_eq!(eng.now(), Time::from_nanos(500));
        // Re-priming behind the clock must trip the invariant.
        eng.prime(Time::from_nanos(10), ());
    }

    /// Records both event dispatches and tick callbacks in arrival order.
    struct TickLogger {
        period_ns: u64,
        remaining: u32,
        log: Vec<(&'static str, Time)>,
    }

    impl Model for TickLogger {
        type Event = ();
        fn handle(&mut self, now: Time, _ev: (), sched: &mut Scheduler<()>) {
            self.log.push(("event", now));
            if self.remaining > 0 {
                self.remaining -= 1;
                sched.schedule_in(self.period_ns, ());
            }
        }
        fn tick(&mut self, now: Time) {
            self.log.push(("tick", now));
        }
    }

    #[test]
    fn ticks_fire_on_boundaries_between_events() {
        let mut eng = Engine::new(TickLogger {
            period_ns: 250,
            remaining: 4,
            log: Vec::new(),
        });
        eng.set_tick_period(100);
        eng.prime(Time::from_nanos(30), ());
        let stop = eng.run(Time::MAX, u64::MAX);
        assert_eq!(stop, StopCondition::QueueEmpty);
        // Events at 30, 280, 530, 780, 1030; ticks at every 100 ns boundary
        // up to the last event. Ticks never count as events.
        assert_eq!(eng.events_processed(), 5);
        let ticks: Vec<u64> = eng
            .model()
            .log
            .iter()
            .filter(|(k, _)| *k == "tick")
            .map(|(_, t)| t.as_nanos())
            .collect();
        assert_eq!(
            ticks,
            vec![100, 200, 300, 400, 500, 600, 700, 800, 900, 1000]
        );
        // Interleaving: tick at 100 precedes event at 280, etc.
        let order: Vec<(&str, u64)> = eng
            .model()
            .log
            .iter()
            .map(|(k, t)| (*k, t.as_nanos()))
            .collect();
        assert_eq!(order[0], ("event", 30));
        assert_eq!(order[1], ("tick", 100));
        assert_eq!(order[2], ("tick", 200));
        assert_eq!(order[3], ("event", 280));
    }

    #[test]
    fn tick_fires_before_event_at_same_instant() {
        let mut eng = Engine::new(TickLogger {
            period_ns: 100,
            remaining: 2,
            log: Vec::new(),
        });
        eng.set_tick_period(100);
        eng.prime(Time::from_nanos(100), ());
        eng.run(Time::MAX, u64::MAX);
        let order: Vec<(&str, u64)> = eng
            .model()
            .log
            .iter()
            .map(|(k, t)| (*k, t.as_nanos()))
            .collect();
        // At t=100 the window [0,100) closes before the event at 100 runs.
        assert_eq!(order[0], ("tick", 100));
        assert_eq!(order[1], ("event", 100));
        assert_eq!(order[2], ("tick", 200));
        assert_eq!(order[3], ("event", 200));
    }

    #[test]
    fn ticks_do_not_keep_queue_alive_or_pass_last_event() {
        let mut eng = Engine::new(TickLogger {
            period_ns: 0,
            remaining: 0,
            log: Vec::new(),
        });
        eng.set_tick_period(50);
        eng.prime(Time::from_nanos(120), ());
        let stop = eng.run(Time::MAX, u64::MAX);
        assert_eq!(stop, StopCondition::QueueEmpty);
        // Boundaries at 50 and 100 fire (they precede the event at 120);
        // nothing fires after the last event — ticks never extend the run.
        let ticks: Vec<u64> = eng
            .model()
            .log
            .iter()
            .filter(|(k, _)| *k == "tick")
            .map(|(_, t)| t.as_nanos())
            .collect();
        assert_eq!(ticks, vec![50, 100]);
    }

    #[test]
    fn tick_disabled_by_default_matches_event_trace() {
        let run = |tick: bool| {
            let mut eng = Engine::new(TickLogger {
                period_ns: 100,
                remaining: 10,
                log: Vec::new(),
            });
            if tick {
                eng.set_tick_period(70);
            }
            eng.prime(Time::ZERO, ());
            eng.run(Time::MAX, u64::MAX);
            eng.model()
                .log
                .iter()
                .filter(|(k, _)| *k == "event")
                .map(|(_, t)| t.as_nanos())
                .collect::<Vec<u64>>()
        };
        // Enabling ticks must not change the event schedule at all.
        assert_eq!(run(false), run(true));
    }

    #[test]
    fn schedule_now_runs_after_current_instant_events() {
        struct TwoPhase {
            log: Vec<&'static str>,
        }
        impl Model for TwoPhase {
            type Event = &'static str;
            fn handle(
                &mut self,
                _now: Time,
                ev: &'static str,
                sched: &mut Scheduler<&'static str>,
            ) {
                self.log.push(ev);
                if ev == "first" {
                    sched.schedule_now("follow-up");
                }
            }
        }
        let mut eng = Engine::new(TwoPhase { log: vec![] });
        eng.prime(Time::from_nanos(10), "first");
        eng.prime(Time::from_nanos(10), "second");
        eng.run(Time::MAX, u64::MAX);
        assert_eq!(eng.model().log, vec!["first", "second", "follow-up"]);
    }
}
