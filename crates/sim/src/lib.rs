//! # omx-sim — deterministic discrete-event simulation engine
//!
//! This crate is the foundation of the Open-MX interrupt-coalescing
//! reproduction. It provides:
//!
//! * [`Time`] — a nanosecond-resolution simulated clock value,
//! * [`EventQueue`] — a slab-backed, index-tracked 4-ary heap hybridised
//!   with a hierarchical timer wheel: stable FIFO ordering among
//!   simultaneous events, true O(log n) cancellation (O(1) for
//!   short-horizon timers, the coalescing re-arm pattern), and no hashing
//!   or per-event allocation on the hot path,
//! * [`Engine`] / [`Model`] — the simulation driver: a model consumes one
//!   event at a time and schedules follow-up events through a [`Scheduler`],
//! * [`Slab`] — the event queue's generation-stamped token idiom made
//!   generic: dense O(1) state storage with use-after-free panics, used by
//!   the protocol layer to avoid per-packet map lookups,
//! * [`rng`] — seeded deterministic random-number helpers so that every
//!   experiment is exactly reproducible,
//! * [`stats`] — counters, histograms and online summary statistics used by
//!   the measurement harness,
//! * [`json`] — the self-contained JSON value model used by the result
//!   writers and the trace exporters (no external serialisation crates),
//! * [`pool`] — a dependency-free work-stealing thread pool ([`Pool`])
//!   with ordered fork-join commit, plus the process-wide `--jobs` /
//!   `OMX_JOBS` worker-count policy and the `--sim-jobs` / `OMX_SIM_JOBS`
//!   policy for the parallel engine,
//! * [`par`] — the substrate for the conservative parallel DES engine:
//!   per-partition event queues, lineage stamps, and the deterministic
//!   merge that reconstructs serial dispatch order across partitions.
//!
//! Determinism is a hard requirement for the paper reproduction
//! (identical seeds must produce identical interrupt counts), and it is
//! preserved at every level of parallelism. The [`engine`] event loop
//! itself is single-threaded; the experiment harness runs many
//! *independent* simulations at once on the [`pool`], committing their
//! results in input order (see the `pool` module docs for the determinism
//! contract); and a single simulation can be partitioned across workers
//! by the conservative epoch engine built on [`par`] (`--sim-jobs N`,
//! DESIGN §12), whose merge replays cross-partition effects in exact
//! serial dispatch order — every report is byte-identical to a serial
//! run either way.

#![warn(missing_docs)]

pub mod engine;
pub mod json;
pub mod par;
pub mod pool;
pub mod queue;
pub mod rng;
pub mod slab;
pub mod stats;
pub mod time;

pub use engine::{Engine, Model, Scheduler, StopCondition};
pub use pool::Pool;
pub use queue::{EventQueue, EventToken};
pub use slab::{Slab, SlabToken};
pub use time::{Time, TimeDelta};
