//! Measurement primitives used across the reproduction harness.
//!
//! * [`Counter`] — monotonically increasing event counts (interrupts raised,
//!   packets received, cache bounces, …),
//! * [`OnlineStats`] — streaming mean/variance/min/max (Welford),
//! * [`Histogram`] — log-bucketed latency histogram with quantile queries,
//! * [`TimeWeighted`] — time-weighted average of a piecewise-constant gauge
//!   (e.g. pending-DMA depth, core sleep occupancy).

use crate::time::Time;

/// A monotonically increasing event counter.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct Counter(u64);

impl Counter {
    /// New zeroed counter.
    pub const fn new() -> Self {
        Counter(0)
    }

    /// Add one.
    #[inline]
    pub fn incr(&mut self) {
        self.0 += 1;
    }

    /// Add `n`.
    #[inline]
    pub fn add(&mut self, n: u64) {
        self.0 += n;
    }

    /// Current value.
    #[inline]
    pub const fn get(self) -> u64 {
        self.0
    }
}

/// Streaming mean / variance / extremes (Welford's algorithm).
#[derive(Debug, Clone, Default)]
pub struct OnlineStats {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl OnlineStats {
    /// New empty accumulator.
    pub fn new() -> Self {
        OnlineStats {
            n: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Record one sample.
    pub fn record(&mut self, x: f64) {
        self.n += 1;
        let d = x - self.mean;
        self.mean += d / self.n as f64;
        self.m2 += d * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of samples recorded.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Sample mean (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Sample variance (unbiased; 0 with fewer than two samples).
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / (self.n - 1) as f64
        }
    }

    /// Sample standard deviation.
    pub fn stddev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Smallest sample (`None` when empty).
    pub fn min(&self) -> Option<f64> {
        (self.n > 0).then_some(self.min)
    }

    /// Largest sample (`None` when empty).
    pub fn max(&self) -> Option<f64> {
        (self.n > 0).then_some(self.max)
    }

    /// Merge another accumulator into this one (parallel Welford).
    pub fn merge(&mut self, other: &OnlineStats) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = other.clone();
            return;
        }
        let n = self.n + other.n;
        let d = other.mean - self.mean;
        let mean = self.mean + d * other.n as f64 / n as f64;
        let m2 = self.m2 + other.m2 + d * d * (self.n as f64 * other.n as f64) / n as f64;
        self.n = n;
        self.mean = mean;
        self.m2 = m2;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

/// Log-bucketed histogram of nanosecond values with quantile queries.
///
/// Buckets grow geometrically — 32 per decade (ratio `10^(1/32)`, ~7.5 %
/// relative width) from 1 ns to ~10 minutes — giving bucket-midpoint
/// quantile error below ~12 % worst case (usually ≲ 4 %), plenty for
/// latency distributions, with a fixed 384-slot footprint. Zero values sit
/// outside the log grid entirely: they are counted exactly in a dedicated
/// `zeros` slot so that quantiles of all-zero (or zero-heavy) series report
/// 0 rather than the first bucket's nonzero midpoint.
#[derive(Debug, Clone)]
pub struct Histogram {
    buckets: Vec<u64>,
    /// Values recorded as exactly 0 ns (held out of the log buckets).
    zeros: u64,
    count: u64,
    sum: f64,
    overflow: u64,
}

const BUCKETS_PER_DECADE: usize = 32;
const DECADES: usize = 12; // 1 ns .. 10^12 ns (~17 min)
const NUM_BUCKETS: usize = BUCKETS_PER_DECADE * DECADES;

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// New empty histogram.
    pub fn new() -> Self {
        Histogram {
            buckets: vec![0; NUM_BUCKETS],
            zeros: 0,
            count: 0,
            sum: 0.0,
            overflow: 0,
        }
    }

    /// Bucket for a *positive* value (zeros never reach the log grid).
    fn bucket_index(value_ns: u64) -> usize {
        if value_ns <= 1 {
            return 0;
        }
        let idx = ((value_ns as f64).log10() * BUCKETS_PER_DECADE as f64) as usize;
        idx.min(NUM_BUCKETS - 1)
    }

    fn bucket_value(idx: usize) -> u64 {
        10f64.powf((idx as f64 + 0.5) / BUCKETS_PER_DECADE as f64) as u64
    }

    /// Record one nanosecond value.
    ///
    /// `0` is held out of the log buckets — `(0f64).log10()` is `-inf` and
    /// would land in bucket 0 only by cast saturation, making quantiles of
    /// all-zero series report bucket 0's nonzero midpoint — and is instead
    /// counted exactly so [`Histogram::quantile`] can return `Some(0)`.
    pub fn record(&mut self, value_ns: u64) {
        if value_ns == 0 {
            self.zeros += 1;
        } else {
            let idx = Self::bucket_index(value_ns);
            if idx >= NUM_BUCKETS {
                self.overflow += 1;
            } else {
                self.buckets[idx] += 1;
            }
        }
        self.count += 1;
        self.sum += value_ns as f64;
    }

    /// Record a [`crate::TimeDelta`]-style value given as nanoseconds.
    pub fn record_time(&mut self, t: Time) {
        self.record(t.as_nanos());
    }

    /// Number of recorded values.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Mean of recorded values in nanoseconds.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// Rank of the `q`-quantile sample (`None` when empty).
    fn quantile_target(&self, q: f64) -> Option<u64> {
        if self.count == 0 {
            return None;
        }
        Some((q.clamp(0.0, 1.0) * (self.count - 1) as f64) as u64)
    }

    /// Index of the bucket holding the rank-`q` sample. `None` when empty
    /// *or* when the sample is one of the recorded zeros, which live in no
    /// bucket.
    fn quantile_bucket(&self, q: f64) -> Option<usize> {
        let target = self.quantile_target(q)?;
        if target < self.zeros {
            return None;
        }
        let mut seen = self.zeros;
        for (idx, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen > target {
                return Some(idx);
            }
        }
        Some(NUM_BUCKETS - 1)
    }

    /// Approximate quantile (`q` in `[0, 1]`) in nanoseconds. Exactly 0
    /// when the rank-`q` sample was recorded as 0.
    pub fn quantile(&self, q: f64) -> Option<u64> {
        let target = self.quantile_target(q)?;
        if target < self.zeros {
            return Some(0);
        }
        self.quantile_bucket(q).map(Self::bucket_value)
    }

    /// Median shortcut.
    pub fn median(&self) -> Option<u64> {
        self.quantile(0.5)
    }

    /// p50 shortcut (alias for [`Histogram::median`]).
    pub fn p50(&self) -> Option<u64> {
        self.quantile(0.5)
    }

    /// p99 shortcut.
    pub fn p99(&self) -> Option<u64> {
        self.quantile(0.99)
    }

    /// p999 shortcut.
    pub fn p999(&self) -> Option<u64> {
        self.quantile(0.999)
    }

    /// Sum of recorded values in nanoseconds.
    ///
    /// Exact (accumulated from the raw values, not reconstructed from bucket
    /// midpoints), which makes `sum` deltas usable for windowed rate
    /// sampling.
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Merge another histogram into this one.
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += b;
        }
        self.zeros += other.zeros;
        self.count += other.count;
        self.sum += other.sum;
        self.overflow += other.overflow;
    }
}

/// Time-weighted average of a piecewise-constant gauge.
#[derive(Debug, Clone, Default)]
pub struct TimeWeighted {
    last_time: Time,
    last_value: f64,
    weighted_sum: f64,
    total_time: f64,
    peak: f64,
}

impl TimeWeighted {
    /// New gauge starting at `value` at time `start`.
    pub fn new(start: Time, value: f64) -> Self {
        TimeWeighted {
            last_time: start,
            last_value: value,
            weighted_sum: 0.0,
            total_time: 0.0,
            peak: value,
        }
    }

    /// Record that the gauge changed to `value` at time `now`.
    pub fn set(&mut self, now: Time, value: f64) {
        let dt = now.saturating_since(self.last_time).as_nanos() as f64;
        self.weighted_sum += self.last_value * dt;
        self.total_time += dt;
        self.last_time = now;
        self.last_value = value;
        self.peak = self.peak.max(value);
    }

    /// Current gauge value.
    pub fn current(&self) -> f64 {
        self.last_value
    }

    /// Largest value ever set.
    pub fn peak(&self) -> f64 {
        self.peak
    }

    /// Copy of this gauge with the tail up to `now` folded into the
    /// weighted sum.
    ///
    /// A gauge only accumulates weight when [`TimeWeighted::set`] is called,
    /// so a run that goes quiescent (e.g. drains to `QueueEmpty` long after
    /// the last DMA completed) under-weights the final value unless the
    /// harvest path finalizes it at drain time. The returned gauge has
    /// `last_time == now` and an unchanged current value, so finalizing is
    /// idempotent.
    pub fn finalized(&self, now: Time) -> TimeWeighted {
        let mut g = self.clone();
        g.set(now, g.last_value);
        g
    }

    /// Time-weighted mean up to `now`.
    pub fn mean_at(&self, now: Time) -> f64 {
        let dt = now.saturating_since(self.last_time).as_nanos() as f64;
        let total = self.total_time + dt;
        if total == 0.0 {
            self.last_value
        } else {
            (self.weighted_sum + self.last_value * dt) / total
        }
    }
}

// ---------------------------------------------------------------------------
// JSON conversions (replacing the former derive-based serialisation)
// ---------------------------------------------------------------------------

use crate::json::{FromJson, Json, ToJson};

impl ToJson for Counter {
    fn to_json(&self) -> Json {
        Json::U64(self.0)
    }
}

impl FromJson for Counter {
    fn from_json(value: &Json) -> Option<Self> {
        value.as_u64().map(Counter)
    }
}

crate::impl_to_json!(OnlineStats {
    n,
    mean,
    m2,
    min,
    max
});
crate::impl_from_json!(OnlineStats {
    n,
    mean,
    m2,
    min,
    max
});

impl ToJson for Histogram {
    fn to_json(&self) -> Json {
        // Sparse bucket encoding: only non-empty slots as [index, count].
        let buckets: Vec<(u64, u64)> = self
            .buckets
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| (i as u64, c))
            .collect();
        let mut fields = vec![
            ("count", Json::U64(self.count)),
            ("sum", Json::F64(self.sum)),
            ("overflow", Json::U64(self.overflow)),
            ("buckets", buckets.to_json()),
        ];
        // Emitted only when present, like the sparse buckets: histograms
        // that never saw a zero serialise exactly as before the zero-slot
        // fix, keeping historical artifacts comparable.
        if self.zeros > 0 {
            fields.insert(1, ("zeros", Json::U64(self.zeros)));
        }
        Json::obj(fields)
    }
}

impl FromJson for Histogram {
    fn from_json(value: &Json) -> Option<Self> {
        let mut h = Histogram::new();
        h.count = value.get("count")?.as_u64()?;
        h.zeros = value.get("zeros").and_then(Json::as_u64).unwrap_or(0);
        h.sum = value.get("sum")?.as_f64()?;
        h.overflow = value.get("overflow")?.as_u64()?;
        let sparse: Vec<(u64, u64)> = FromJson::from_json(value.get("buckets")?)?;
        for (idx, c) in sparse {
            *h.buckets.get_mut(idx as usize)? = c;
        }
        Some(h)
    }
}

impl ToJson for TimeWeighted {
    fn to_json(&self) -> Json {
        Json::obj(vec![
            ("last_time_ns", Json::U64(self.last_time.as_nanos())),
            ("last_value", Json::F64(self.last_value)),
            ("weighted_sum", Json::F64(self.weighted_sum)),
            ("total_time", Json::F64(self.total_time)),
            ("peak", Json::F64(self.peak)),
        ])
    }
}

impl FromJson for TimeWeighted {
    fn from_json(value: &Json) -> Option<Self> {
        Some(TimeWeighted {
            last_time: Time::from_nanos(value.get("last_time_ns")?.as_u64()?),
            last_value: value.get("last_value")?.as_f64()?,
            weighted_sum: value.get("weighted_sum")?.as_f64()?,
            total_time: value.get("total_time")?.as_f64()?,
            peak: value.get("peak")?.as_f64()?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_basics() {
        let mut c = Counter::new();
        c.incr();
        c.add(4);
        assert_eq!(c.get(), 5);
    }

    #[test]
    fn online_stats_mean_var() {
        let mut s = OnlineStats::new();
        for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
            s.record(x);
        }
        assert_eq!(s.count(), 8);
        assert!((s.mean() - 5.0).abs() < 1e-12);
        // Population variance of this classic set is 4 => sample variance 32/7.
        assert!((s.variance() - 32.0 / 7.0).abs() < 1e-12);
        assert_eq!(s.min(), Some(2.0));
        assert_eq!(s.max(), Some(9.0));
    }

    #[test]
    fn online_stats_merge_equals_sequential() {
        let xs: Vec<f64> = (0..100).map(|i| (i * i % 37) as f64).collect();
        let mut whole = OnlineStats::new();
        for &x in &xs {
            whole.record(x);
        }
        let mut left = OnlineStats::new();
        let mut right = OnlineStats::new();
        for &x in &xs[..41] {
            left.record(x);
        }
        for &x in &xs[41..] {
            right.record(x);
        }
        left.merge(&right);
        assert_eq!(left.count(), whole.count());
        assert!((left.mean() - whole.mean()).abs() < 1e-9);
        assert!((left.variance() - whole.variance()).abs() < 1e-9);
    }

    #[test]
    fn empty_stats_are_sane() {
        let s = OnlineStats::new();
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.variance(), 0.0);
        assert_eq!(s.min(), None);
        assert_eq!(s.max(), None);
    }

    #[test]
    fn histogram_quantiles_are_close() {
        let mut h = Histogram::new();
        for v in 1..=10_000u64 {
            h.record(v);
        }
        let med = h.median().unwrap() as f64;
        assert!(
            (med - 5_000.0).abs() / 5_000.0 < 0.08,
            "median {med} too far from 5000"
        );
        let p99 = h.quantile(0.99).unwrap() as f64;
        assert!((p99 - 9_900.0).abs() / 9_900.0 < 0.08, "p99 {p99}");
        assert!((h.mean() - 5_000.5).abs() < 1.0);
    }

    /// Property test: for random inputs, every streamed quantile must land
    /// within one log-bucket of the exact sorted-vector quantile. The
    /// histogram only remembers bucket counts, so the strongest guarantee it
    /// can make is bucket-level agreement — this pins that guarantee across
    /// seeds, sizes, and heavy-tailed value ranges.
    #[test]
    fn histogram_quantiles_within_one_bucket_of_exact() {
        use crate::rng::SimRng;

        for seed in 0..20u64 {
            let mut rng = SimRng::new(0x5747_5000 + seed);
            let n = 1 + (rng.next_u64() % 5_000) as usize;
            // Mix of scales: uniform small, uniform large, and log-uniform
            // heavy tail, chosen per seed.
            let values: Vec<u64> = (0..n)
                .map(|_| match seed % 3 {
                    0 => 1 + rng.next_u64() % 1_000,
                    1 => 1 + rng.next_u64() % 100_000_000,
                    _ => {
                        let exp = rng.next_u64() % 10;
                        1 + rng.next_u64() % 10u64.pow(exp as u32 + 1)
                    }
                })
                .collect();

            let mut h = Histogram::new();
            for &v in &values {
                h.record(v);
            }
            let mut sorted = values.clone();
            sorted.sort_unstable();

            for q in [0.0, 0.1, 0.5, 0.9, 0.99, 0.999, 1.0] {
                let exact = sorted[((q * (n - 1) as f64) as usize).min(n - 1)];
                let eb = Histogram::bucket_index(exact) as i64;
                let ab = h.quantile_bucket(q).unwrap() as i64;
                assert!(
                    (eb - ab).abs() <= 1,
                    "seed {seed} q={q}: histogram picked bucket {ab} but \
                     exact quantile {exact} lives in bucket {eb}"
                );
                // Pin the documented error bound of the 32-buckets-per-decade
                // log grid: being off by at most one bucket from the exact
                // sample's bucket, the reported midpoint is within
                // 10^(1.5/32) - 1 ≈ 11.4 % of the exact value. Integer
                // truncation distorts tiny values, so pin it for exact ≥ 10.
                let approx = h.quantile(q).unwrap();
                if exact >= 10 {
                    let rel = (approx as f64 - exact as f64).abs() / exact as f64;
                    assert!(
                        rel <= 0.12,
                        "seed {seed} q={q}: quantile {approx} is {:.1} % off \
                         exact {exact}, above the documented ~12 % bound",
                        rel * 100.0
                    );
                }
            }
        }
    }

    #[test]
    fn histogram_quantile_shortcuts_and_sum() {
        let mut h = Histogram::new();
        for v in 1..=1_000u64 {
            h.record(v);
        }
        assert_eq!(h.p50(), h.quantile(0.5));
        assert_eq!(h.p99(), h.quantile(0.99));
        assert_eq!(h.p999(), h.quantile(0.999));
        assert!((h.sum() - 500_500.0).abs() < 1e-9);
    }

    #[test]
    fn histogram_all_zero_series_reports_zero_quantiles() {
        // Regression: record(0) used to land in bucket 0 by cast
        // saturation, so an all-zero series reported bucket 0's nonzero
        // midpoint (1 ns) for every quantile.
        let mut h = Histogram::new();
        for _ in 0..100 {
            h.record(0);
        }
        assert_eq!(h.count(), 100);
        assert_eq!(h.sum(), 0.0);
        assert_eq!(h.mean(), 0.0);
        for q in [0.0, 0.5, 0.99, 1.0] {
            assert_eq!(h.quantile(q), Some(0), "q={q} of an all-zero series");
        }
    }

    #[test]
    fn histogram_mixed_zero_series_splits_quantiles_at_the_zero_mass() {
        // 60 zeros + 40 copies of 1000 ns: ranks 0..=59 are zero, so the
        // median is 0 while upper quantiles see the real values.
        let mut h = Histogram::new();
        for _ in 0..60 {
            h.record(0);
        }
        for _ in 0..40 {
            h.record(1_000);
        }
        assert_eq!(h.count(), 100);
        assert_eq!(h.quantile(0.0), Some(0));
        assert_eq!(h.quantile(0.5), Some(0));
        let p99 = h.quantile(0.99).unwrap();
        assert!(
            (900..=1100).contains(&p99),
            "p99 of the nonzero mass should be ~1000 ns, got {p99}"
        );
        // Merging carries the zero slot along.
        let mut other = Histogram::new();
        other.record(0);
        other.merge(&h);
        assert_eq!(other.count(), 101);
        assert_eq!(other.quantile(0.5), Some(0));
        // And the JSON round-trip preserves it (the `zeros` field is only
        // emitted when nonzero, so zero-free artifacts are unchanged).
        let json = other.to_json();
        assert!(json.get("zeros").is_some());
        let back = Histogram::from_json(&json).expect("round-trip");
        assert_eq!(back.quantile(0.5), Some(0));
        assert_eq!(back.count(), 101);
        let zero_free = Histogram::new().to_json();
        assert!(zero_free.get("zeros").is_none());
    }

    #[test]
    fn histogram_empty_and_merge() {
        let h = Histogram::new();
        assert_eq!(h.quantile(0.5), None);
        assert_eq!(h.mean(), 0.0);

        let mut a = Histogram::new();
        let mut b = Histogram::new();
        for v in [10u64, 20, 30] {
            a.record(v);
        }
        for v in [40u64, 50] {
            b.record(v);
        }
        a.merge(&b);
        assert_eq!(a.count(), 5);
        assert!((a.mean() - 30.0).abs() < 1e-9);
    }

    #[test]
    fn time_weighted_mean() {
        let mut g = TimeWeighted::new(Time::ZERO, 0.0);
        g.set(Time::from_nanos(100), 10.0); // value 0 for 100 ns
        g.set(Time::from_nanos(300), 0.0); // value 10 for 200 ns
                                           // At t=400: value 0 for another 100 ns. Mean = (0*100+10*200+0*100)/400 = 5.
        assert!((g.mean_at(Time::from_nanos(400)) - 5.0).abs() < 1e-12);
        assert_eq!(g.peak(), 10.0);
        assert_eq!(g.current(), 0.0);
    }

    #[test]
    fn time_weighted_finalized_weights_quiescent_tail() {
        let mut g = TimeWeighted::new(Time::ZERO, 0.0);
        g.set(Time::from_nanos(100), 10.0);
        g.set(Time::from_nanos(200), 0.0); // last event: drops back to 0
                                           // Run drains 800 ns later; without finalizing, the tail is invisible
                                           // to consumers that read the serialized weighted_sum/total_time.
        let f = g.finalized(Time::from_nanos(1_000));
        assert!((f.mean_at(Time::from_nanos(1_000)) - 1.0).abs() < 1e-12);
        assert_eq!(f.current(), 0.0);
        // Idempotent: finalizing again at the same instant changes nothing.
        let f2 = f.finalized(Time::from_nanos(1_000));
        assert_eq!(
            f2.to_json().render(),
            f.to_json().render(),
            "finalize must be idempotent"
        );
    }

    #[test]
    fn time_weighted_no_elapsed_time() {
        let g = TimeWeighted::new(Time::from_nanos(5), 3.0);
        assert_eq!(g.mean_at(Time::from_nanos(5)), 3.0);
    }

    #[test]
    fn stats_json_roundtrip() {
        let mut c = Counter::new();
        c.add(7);
        let c2 = Counter::from_json(&Json::parse(&c.to_json().render()).unwrap()).unwrap();
        assert_eq!(c2.get(), 7);

        let mut s = OnlineStats::new();
        for x in [1.0, 2.0, 4.0] {
            s.record(x);
        }
        let s2 = OnlineStats::from_json(&Json::parse(&s.to_json().render()).unwrap()).unwrap();
        assert_eq!(s2.count(), 3);
        assert!((s2.mean() - s.mean()).abs() < 1e-12);

        let mut h = Histogram::new();
        for v in [10u64, 20, 20, 5_000] {
            h.record(v);
        }
        let h2 = Histogram::from_json(&Json::parse(&h.to_json().render()).unwrap()).unwrap();
        assert_eq!(h2.count(), 4);
        assert_eq!(h2.median(), h.median());

        let mut g = TimeWeighted::new(Time::ZERO, 1.0);
        g.set(Time::from_nanos(50), 3.0);
        let g2 = TimeWeighted::from_json(&Json::parse(&g.to_json().render()).unwrap()).unwrap();
        assert_eq!(g2.current(), 3.0);
        assert_eq!(g2.peak(), 3.0);
    }
}
